#include "baselines/heuristic.h"

#include <algorithm>

#include "common/timer.h"

namespace zeus::baselines {

ZeusHeuristic::ZeusHeuristic(const Options& opts,
                             const core::ConfigurationSpace* space,
                             apfg::FeatureCache* cache)
    : opts_(opts), space_(space), cache_(cache) {
  fast_id_ = space_->FastestId();
  slow_id_ = space_->SlowestId();
  // Mid: the configuration with the median effective throughput.
  std::vector<int> ids;
  for (const core::Configuration& c : space_->configs()) ids.push_back(c.id);
  std::sort(ids.begin(), ids.end(), [&](int a, int b) {
    return space_->config(a).throughput_fps < space_->config(b).throughput_fps;
  });
  mid_id_ = ids[ids.size() / 2];
}

core::RunResult ZeusHeuristic::Localize(
    const std::vector<const video::Video*>& videos) {
  common::WallTimer timer;
  core::RunResult result;
  for (const video::Video* vp : videos) {
    const video::Video& v = *vp;
    core::FrameMask mask(static_cast<size_t>(v.num_frames()), 0);
    int position = 0;
    int current = slow_id_;  // start with the most accurate configuration
    int consecutive_no_action = 0;
    bool prev_prediction = false;
    bool first = true;
    while (position < v.num_frames()) {
      const core::Configuration& c = space_->config(current);
      const auto out_ptr = cache_->Get(v, position, c.spec);
      const apfg::Apfg::Output& out = *out_ptr;
      int end = std::min(v.num_frames(), position + c.CoveredFrames());
      result.gpu_seconds += c.gpu_seconds_per_invocation;
      ++result.invocations;
      result.frames_per_config[c.id] += end - position;
      bool prediction = out.prediction != 0;
      if (prediction) {
        for (int f = position; f < end; ++f) mask[static_cast<size_t>(f)] = 1;
        consecutive_no_action = 0;
      } else {
        ++consecutive_no_action;
      }
      // Rule set of §6.1.
      if (prediction) {
        current = slow_id_;  // rule (1)
      } else if (!first && prev_prediction) {
        current = mid_id_;  // rule (2): ACTION -> NO-ACTION flip
      } else if (consecutive_no_action >= opts_.fast_after) {
        current = fast_id_;  // rule (3)
      }
      prev_prediction = prediction;
      first = false;
      position = end;
    }
    result.total_frames += v.num_frames();
    result.masks.push_back(std::move(mask));
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace zeus::baselines
