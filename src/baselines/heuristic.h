#ifndef ZEUS_BASELINES_HEURISTIC_H_
#define ZEUS_BASELINES_HEURISTIC_H_

#include <vector>

#include "apfg/feature_cache.h"
#include "core/configuration.h"
#include "core/localizer.h"

namespace zeus::baselines {

// Zeus-Heuristic (§1, §6.1): dynamic configuration selection driven by
// hard-coded rules instead of a learned policy:
//   (1) use the slowest configuration while the APFG predicts ACTION;
//   (2) drop to a mid configuration when the prediction flips from ACTION
//       to NO-ACTION;
//   (3) jump to the fastest configuration after `fast_after` consecutive
//       NO-ACTION steps.
// The rules have no handle on the accuracy target, which is the property
// the paper's evaluation repeatedly exposes (§6.2, §6.8).
class ZeusHeuristic : public core::Localizer {
 public:
  struct Options {
    int fast_after = 10;  // consecutive NO-ACTION steps before rule (3)
  };

  // `space` must have costs attached. The heuristic internally uses the
  // {fastest, median, slowest} levels of the given space, matching the
  // paper's use of a configuration subset.
  ZeusHeuristic(const Options& opts, const core::ConfigurationSpace* space,
                apfg::FeatureCache* cache);

  core::RunResult Localize(
      const std::vector<const video::Video*>& videos) override;
  std::string name() const override { return "Zeus-Heuristic"; }

  int fast_id() const { return fast_id_; }
  int mid_id() const { return mid_id_; }
  int slow_id() const { return slow_id_; }

 private:
  Options opts_;
  const core::ConfigurationSpace* space_;
  apfg::FeatureCache* cache_;
  int fast_id_ = 0;
  int mid_id_ = 0;
  int slow_id_ = 0;
};

}  // namespace zeus::baselines

#endif  // ZEUS_BASELINES_HEURISTIC_H_
