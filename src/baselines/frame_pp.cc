#include "baselines/frame_pp.h"

#include <algorithm>

#include "apfg/segment_sampler.h"
#include "common/timer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"
#include "video/decoder.h"

namespace zeus::baselines {

namespace {

// Decodes a single frame into a {1, r, r} tensor (one batch sample).
tensor::Tensor DecodeFrame(const video::Video& v, int frame, int res) {
  video::DecodeSpec spec;
  spec.resolution_px = res;
  spec.segment_length = 1;
  spec.sampling_rate = 1;
  tensor::Tensor t = video::SegmentDecoder::Decode(v, frame, spec);
  return t.Reshape({1, res, res});
}

}  // namespace

FramePp::FramePp(const Options& opts, const core::CostModel& cost_model,
                 std::vector<video::ActionClass> targets, common::Rng* rng)
    : opts_(opts),
      cost_model_(cost_model),
      targets_(std::move(targets)),
      rng_(rng->Fork()) {
  net_ = std::make_unique<apfg::Frame2dNet>(opts_.model, &rng_);
}

common::Status FramePp::Train(const std::vector<const video::Video*>& videos,
                              double* train_seconds) {
  common::WallTimer timer;
  auto examples = apfg::SampleFrames(videos, targets_,
                                     opts_.train_frame_stride, &rng_,
                                     opts_.neg_per_pos);
  if (examples.empty()) {
    return common::Status::FailedPrecondition("no frame examples");
  }
  nn::Adam optimizer(net_->Parameters(), opts_.learning_rate);
  for (int epoch = 0; epoch < opts_.train_epochs; ++epoch) {
    rng_.Shuffle(&examples);
    for (size_t off = 0; off < examples.size();
         off += static_cast<size_t>(opts_.batch_size)) {
      size_t n = std::min(static_cast<size_t>(opts_.batch_size),
                          examples.size() - off);
      std::vector<tensor::Tensor> frames;
      std::vector<int> labels;
      for (size_t i = 0; i < n; ++i) {
        const auto& ex = examples[off + i];
        frames.push_back(DecodeFrame(*videos[static_cast<size_t>(ex.video_idx)],
                                     ex.start_frame, opts_.resolution_px));
        labels.push_back(ex.label);
      }
      tensor::Tensor batch = tensor::Stack(frames);
      tensor::Tensor logits = net_->Logits(batch, /*train=*/true);
      nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
      net_->Backward(loss.grad);
      optimizer.Step();
    }
  }
  if (train_seconds != nullptr) *train_seconds = timer.ElapsedSeconds();
  return common::Status::Ok();
}

core::RunResult FramePp::Localize(
    const std::vector<const video::Video*>& videos) {
  common::WallTimer timer;
  core::RunResult result;
  const int res = opts_.resolution_px;
  const double frame_cost = cost_model_.FrameCost(opts_.nominal_resolution);
  const int batch_size = 64;
  for (const video::Video* vp : videos) {
    const video::Video& v = *vp;
    core::FrameMask mask(static_cast<size_t>(v.num_frames()), 0);
    for (int f0 = 0; f0 < v.num_frames(); f0 += batch_size) {
      int n = std::min(batch_size, v.num_frames() - f0);
      std::vector<tensor::Tensor> frames;
      frames.reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        frames.push_back(DecodeFrame(v, f0 + i, res));
      }
      tensor::Tensor logits =
          net_->Logits(tensor::Stack(frames), /*train=*/false);
      for (int i = 0; i < n; ++i) {
        bool pred = logits[static_cast<size_t>(i) * 2 + 1] >
                    logits[static_cast<size_t>(i) * 2];
        mask[static_cast<size_t>(f0 + i)] = pred ? 1 : 0;
      }
      result.invocations += n;
      result.gpu_seconds += frame_cost * n;
    }
    result.total_frames += v.num_frames();
    result.masks.push_back(std::move(mask));
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace zeus::baselines
