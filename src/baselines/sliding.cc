#include "baselines/sliding.h"

#include <algorithm>

#include "common/timer.h"

namespace zeus::baselines {

ZeusSliding::ZeusSliding(const core::Configuration& config, apfg::Apfg* apfg,
                         const core::CostModel& cost_model)
    : config_(config), apfg_(apfg), cost_model_(cost_model) {
  if (config_.gpu_seconds_per_invocation <= 0.0) {
    config_.gpu_seconds_per_invocation = cost_model_.SegmentCost(
        config_.nominal_resolution, config_.nominal_segment_length);
  }
}

core::RunResult ZeusSliding::Localize(
    const std::vector<const video::Video*>& videos) {
  common::WallTimer timer;
  core::RunResult result;
  const int covered = config_.CoveredFrames();
  for (const video::Video* vp : videos) {
    const video::Video& v = *vp;
    core::FrameMask mask(static_cast<size_t>(v.num_frames()), 0);
    for (int start = 0; start < v.num_frames(); start += covered) {
      apfg::Apfg::Output out = apfg_->Process(v, start, config_.spec);
      result.gpu_seconds += config_.gpu_seconds_per_invocation;
      ++result.invocations;
      int end = std::min(v.num_frames(), start + covered);
      result.frames_per_config[config_.id] += end - start;
      if (out.prediction) {
        for (int f = start; f < end; ++f) mask[static_cast<size_t>(f)] = 1;
      }
    }
    result.total_frames += v.num_frames();
    result.masks.push_back(std::move(mask));
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

int PickSlidingConfig(const core::ConfigurationSpace& space, double target) {
  // Validation F1 is estimated from a few hundred sampled windows, so a
  // configuration that *barely* clears the target is as likely as not to
  // miss it at execution time. The planner therefore requires a margin of
  // one estimator standard error (~0.05 at profiling sample sizes) — this
  // is what makes Zeus-Sliding land at-or-above the target in the paper's
  // experiments instead of under-shooting on fast, optimistically-profiled
  // configurations.
  constexpr double kEstimatorMargin = 0.05;
  int best = -1;
  double best_tput = -1.0;
  int most_accurate = 0;
  double best_f1 = -1.0;
  for (const core::Configuration& c : space.configs()) {
    if (c.validation_f1 > best_f1) {
      best_f1 = c.validation_f1;
      most_accurate = c.id;
    }
    if (c.validation_f1 >= target + kEstimatorMargin &&
        c.throughput_fps > best_tput) {
      best_tput = c.throughput_fps;
      best = c.id;
    }
  }
  return best >= 0 ? best : most_accurate;
}

}  // namespace zeus::baselines
