#ifndef ZEUS_BASELINES_SEGMENT_PP_H_
#define ZEUS_BASELINES_SEGMENT_PP_H_

#include <memory>
#include <vector>

#include "apfg/apfg.h"
#include "apfg/lite3d.h"
#include "common/rng.h"
#include "core/configuration.h"
#include "core/cost_model.h"
#include "core/localizer.h"

namespace zeus::baselines {

// Segment-PP (§1): extends frame-level probabilistic predicates to
// segments. A lightweight 3-D filter scans all non-overlapping segments and
// discards those predicted negative; the surviving segments are verified by
// the full R3D model (the trained APFG). Cheap, but the filter lacks the
// capacity for complex action signatures (§6.2).
class SegmentPp : public core::Localizer {
 public:
  struct Options {
    int train_epochs = 4;
    int batch_size = 16;
    float learning_rate = 3e-3f;
    double neg_per_pos = 1.5;
    // Filter pass threshold on the lite model's action probability: below
    // this the segment is dropped without verification.
    float filter_threshold = 0.35f;
    apfg::LiteSegmentNet::Options model;
  };

  // `apfg` is the already-trained full model used for verification;
  // `config` is the configuration both stages run at (the planner hands the
  // most accurate one, mirroring the paper's setup).
  SegmentPp(const Options& opts, const core::CostModel& cost_model,
            const core::Configuration& config, apfg::Apfg* apfg,
            std::vector<video::ActionClass> targets, common::Rng* rng);

  common::Status Train(const std::vector<const video::Video*>& videos,
                       double* train_seconds = nullptr);

  core::RunResult Localize(
      const std::vector<const video::Video*>& videos) override;
  std::string name() const override { return "Segment-PP"; }

 private:
  Options opts_;
  core::CostModel cost_model_;
  core::Configuration config_;
  apfg::Apfg* apfg_;
  std::vector<video::ActionClass> targets_;
  common::Rng rng_;
  std::unique_ptr<apfg::LiteSegmentNet> filter_;
};

}  // namespace zeus::baselines

#endif  // ZEUS_BASELINES_SEGMENT_PP_H_
