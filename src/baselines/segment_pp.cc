#include "baselines/segment_pp.h"

#include <algorithm>

#include "apfg/segment_sampler.h"
#include "common/timer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"
#include "video/decoder.h"

namespace zeus::baselines {

SegmentPp::SegmentPp(const Options& opts, const core::CostModel& cost_model,
                     const core::Configuration& config, apfg::Apfg* apfg,
                     std::vector<video::ActionClass> targets,
                     common::Rng* rng)
    : opts_(opts),
      cost_model_(cost_model),
      config_(config),
      apfg_(apfg),
      targets_(std::move(targets)),
      rng_(rng->Fork()) {
  filter_ = std::make_unique<apfg::LiteSegmentNet>(opts_.model, &rng_);
}

common::Status SegmentPp::Train(
    const std::vector<const video::Video*>& videos, double* train_seconds) {
  common::WallTimer timer;
  auto examples = apfg::SampleSegments(videos, targets_, config_.spec, &rng_,
                                       opts_.neg_per_pos);
  if (examples.empty()) {
    return common::Status::FailedPrecondition("no segment examples");
  }
  nn::Adam optimizer(filter_->Parameters(), opts_.learning_rate);
  for (int epoch = 0; epoch < opts_.train_epochs; ++epoch) {
    rng_.Shuffle(&examples);
    for (size_t off = 0; off < examples.size();
         off += static_cast<size_t>(opts_.batch_size)) {
      size_t n = std::min(static_cast<size_t>(opts_.batch_size),
                          examples.size() - off);
      std::vector<tensor::Tensor> segs;
      std::vector<int> labels;
      for (size_t i = 0; i < n; ++i) {
        const auto& ex = examples[off + i];
        segs.push_back(video::SegmentDecoder::Decode(
            *videos[static_cast<size_t>(ex.video_idx)], ex.start_frame,
            config_.spec));
        labels.push_back(ex.label);
      }
      tensor::Tensor logits =
          filter_->Logits(tensor::Stack(segs), /*train=*/true);
      nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
      filter_->Backward(loss.grad);
      optimizer.Step();
    }
  }
  if (train_seconds != nullptr) *train_seconds = timer.ElapsedSeconds();
  return common::Status::Ok();
}

core::RunResult SegmentPp::Localize(
    const std::vector<const video::Video*>& videos) {
  common::WallTimer timer;
  core::RunResult result;
  const int covered = config_.CoveredFrames();
  const double lite_cost = cost_model_.LiteSegmentCost(
      config_.nominal_resolution, config_.nominal_segment_length);
  const double full_cost = config_.gpu_seconds_per_invocation > 0.0
                               ? config_.gpu_seconds_per_invocation
                               : cost_model_.SegmentCost(
                                     config_.nominal_resolution,
                                     config_.nominal_segment_length);
  for (const video::Video* vp : videos) {
    const video::Video& v = *vp;
    core::FrameMask mask(static_cast<size_t>(v.num_frames()), 0);
    for (int start = 0; start < v.num_frames(); start += covered) {
      tensor::Tensor seg = video::SegmentDecoder::Decode(v, start, config_.spec);
      std::vector<int> dims = seg.shape();
      dims.insert(dims.begin(), 1);
      tensor::Tensor batch = seg.Reshape(dims);
      tensor::Tensor logits = filter_->Logits(batch, /*train=*/false);
      tensor::Tensor probs = tensor::SoftmaxRows(logits);
      result.gpu_seconds += lite_cost;
      ++result.invocations;
      if (probs[1] < opts_.filter_threshold) continue;  // filtered out
      // Verification by the full model.
      apfg::Apfg::Output out = apfg_->Process(v, start, config_.spec);
      result.gpu_seconds += full_cost;
      ++result.invocations;
      if (out.prediction) {
        int end = std::min(v.num_frames(), start + covered);
        for (int f = start; f < end; ++f) mask[static_cast<size_t>(f)] = 1;
      }
    }
    result.total_frames += v.num_frames();
    result.masks.push_back(std::move(mask));
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace zeus::baselines
