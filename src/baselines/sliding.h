#ifndef ZEUS_BASELINES_SLIDING_H_
#define ZEUS_BASELINES_SLIDING_H_

#include <vector>

#include "apfg/apfg.h"
#include "core/configuration.h"
#include "core/cost_model.h"
#include "core/localizer.h"

namespace zeus::baselines {

// Zeus-Sliding (§2, Fig. 4): the R3D network applied in a sliding-window
// fashion under a single static configuration — the state-of-the-art
// baseline Zeus-RL is measured against. The planner selects the fastest
// configuration whose validation accuracy still meets the query target.
class ZeusSliding : public core::Localizer {
 public:
  ZeusSliding(const core::Configuration& config, apfg::Apfg* apfg,
              const core::CostModel& cost_model);

  core::RunResult Localize(
      const std::vector<const video::Video*>& videos) override;
  std::string name() const override { return "Zeus-Sliding"; }

  const core::Configuration& config() const { return config_; }

 private:
  core::Configuration config_;
  apfg::Apfg* apfg_;
  core::CostModel cost_model_;
};

// Picks the fastest configuration whose validation_f1 >= target; if none
// qualifies, returns the most accurate configuration (the paper's fallback:
// run everything at the best the model can do). Requires validation_f1 and
// costs to be attached.
int PickSlidingConfig(const core::ConfigurationSpace& space, double target);

}  // namespace zeus::baselines

#endif  // ZEUS_BASELINES_SLIDING_H_
