#ifndef ZEUS_BASELINES_FRAME_PP_H_
#define ZEUS_BASELINES_FRAME_PP_H_

#include <memory>
#include <vector>

#include "apfg/frame2d.h"
#include "common/rng.h"
#include "core/cost_model.h"
#include "core/localizer.h"
#include "video/decoder.h"

namespace zeus::baselines {

// Frame-PP (§1, Fig. 2a): a per-frame 2-D CNN classifier, the frame-level
// probabilistic-predicate technique of existing VDBMSs applied to action
// queries. It classifies every frame independently at the most accurate
// resolution — fast per invocation, but blind to temporal context, which is
// exactly why its F1 collapses on action queries (§6.2).
class FramePp : public core::Localizer {
 public:
  struct Options {
    int nominal_resolution = 300;  // most accurate available (for the query)
    int resolution_px = 30;
    int train_epochs = 4;
    int batch_size = 32;
    float learning_rate = 3e-3f;
    double neg_per_pos = 1.5;
    int train_frame_stride = 3;
    apfg::Frame2dNet::Options model;
  };

  FramePp(const Options& opts, const core::CostModel& cost_model,
          std::vector<video::ActionClass> targets, common::Rng* rng);

  // Supervised training on per-frame labels.
  common::Status Train(const std::vector<const video::Video*>& videos,
                       double* train_seconds = nullptr);

  core::RunResult Localize(
      const std::vector<const video::Video*>& videos) override;
  std::string name() const override { return "Frame-PP"; }

 private:
  Options opts_;
  core::CostModel cost_model_;
  std::vector<video::ActionClass> targets_;
  common::Rng rng_;
  std::unique_ptr<apfg::Frame2dNet> net_;
};

}  // namespace zeus::baselines

#endif  // ZEUS_BASELINES_FRAME_PP_H_
