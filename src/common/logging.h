#ifndef ZEUS_COMMON_LOGGING_H_
#define ZEUS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

#include "common/status.h"

namespace zeus::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Minimum level that is actually emitted; default kInfo. Benchmarks raise
// this to kWarning so tables stay readable.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted log line to stderr (thread-safe enough for our
// single-threaded + pool usage: a single fprintf per line).
void LogLine(LogLevel level, const std::string& message);

namespace internal {

// Stream-style log statement collector, used by the ZEUS_LOG macro.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace zeus::common

#define ZEUS_LOG(level)                             \
  if (::zeus::common::LogLevel::k##level >=         \
      ::zeus::common::GetLogLevel())                \
  ::zeus::common::internal::LogMessage(::zeus::common::LogLevel::k##level)

#define ZEUS_CHECK(cond)                                             \
  if (!(cond))                                                       \
  ::zeus::common::Panic(std::string("CHECK failed: ") + #cond +      \
                        " at " + __FILE__ + ":" + std::to_string(__LINE__))

#endif  // ZEUS_COMMON_LOGGING_H_
