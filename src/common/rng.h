#ifndef ZEUS_COMMON_RNG_H_
#define ZEUS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace zeus::common {

// Deterministic pseudo-random generator (xoshiro256** seeded via SplitMix64).
// Every source of randomness in the library flows through an Rng instance so
// experiments are reproducible bit-for-bit given a seed. Not thread-safe;
// give each thread its own instance (e.g. Fork()).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();
  float NextFloat() { return static_cast<float>(NextDouble()); }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  // Uniform real in [lo, hi).
  double NextUniform(double lo, double hi);

  // Standard normal via Box-Muller (cached second value).
  double NextGaussian();
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  // Bernoulli with probability p of returning true.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextU64() % (i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  // Derives an independent child generator; used to give subsystems their
  // own deterministic stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace zeus::common

#endif  // ZEUS_COMMON_RNG_H_
