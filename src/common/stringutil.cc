#include "common/stringutil.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace zeus::common {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace zeus::common
