#ifndef ZEUS_COMMON_THREAD_POOL_H_
#define ZEUS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace zeus::common {

// Minimal fixed-size thread pool. Used by the APFG's batch pre-extraction
// (§5: the paper parallelizes feature extraction over multiple GPUs; here,
// over CPU threads). Tasks are plain std::function<void()>; Wait() blocks
// until every submitted task has finished.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues one task.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and all workers are idle.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // True when the calling thread is a worker of *any* ThreadPool in the
  // process. ParallelFor uses this to run nested parallel sections inline:
  // a worker that submitted tasks and then blocked in Wait() could never
  // drain its own `active_` count, so nested fan-out would deadlock.
  static bool InWorkerThread();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;   // signals workers
  std::condition_variable cv_idle_;   // signals Wait()
  int active_ = 0;
  bool stop_ = false;
};

// Runs fn(i) for i in [0, n) across the pool (or inline when pool is null
// or single-threaded).
void ParallelFor(ThreadPool* pool, int n, const std::function<void(int)>& fn);

}  // namespace zeus::common

#endif  // ZEUS_COMMON_THREAD_POOL_H_
