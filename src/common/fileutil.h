#ifndef ZEUS_COMMON_FILEUTIL_H_
#define ZEUS_COMMON_FILEUTIL_H_

#include <string>

#include "common/status.h"

namespace zeus::common {

// Crash-atomic whole-file write: the contents land in a same-directory
// temp file first and are rename(2)-ed over `path` only after a successful
// write+flush. Readers therefore see either the old file or the complete
// new one — never a torn prefix. This is what keeps the plan catalog
// (PlanIo manifests and their `.key` sidecars) safe against a shard
// process dying mid-checkpoint: a killed writer leaves at most a stray
// temp file, which scanners ignore, instead of a truncated entry the next
// warm start would trip on.
//
// The temp name embeds the pid so concurrent writers of the same path
// (two shards racing on one catalog entry) cannot collide on the temp
// file; last rename wins, atomically.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

}  // namespace zeus::common

#endif  // ZEUS_COMMON_FILEUTIL_H_
