#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace zeus::common {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(CodeName(code_)) + ": " + message_;
}

void Panic(const std::string& message) {
  std::fprintf(stderr, "ZEUS PANIC: %s\n", message.c_str());
  std::abort();
}

}  // namespace zeus::common
