#include "common/crc32.h"

#include <array>

namespace zeus::common {
namespace {

// Table for the reflected IEEE polynomial 0xEDB88320, built at static
// initialization time (constexpr, so no dynamic-init ordering concerns).
constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace zeus::common
