#include "common/thread_pool.h"

namespace zeus::common {

namespace {
thread_local bool tls_in_worker = false;
}  // namespace

bool ThreadPool::InWorkerThread() { return tls_in_worker; }

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int n, const std::function<void(int)>& fn) {
  // Run inline when there is no pool to use — or when we *are* the pool:
  // nested fan-out from a worker would block in Wait() forever.
  if (pool == nullptr || pool->num_threads() <= 1 ||
      ThreadPool::InWorkerThread()) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  for (int i = 0; i < n; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->Wait();
}

}  // namespace zeus::common
