#ifndef ZEUS_COMMON_TIMER_H_
#define ZEUS_COMMON_TIMER_H_

#include <chrono>

namespace zeus::common {

// Monotonic wall-clock stopwatch used for the real (CPU) side of every
// throughput number we report next to the calibrated cost-model number.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace zeus::common

#endif  // ZEUS_COMMON_TIMER_H_
