#ifndef ZEUS_COMMON_STATS_H_
#define ZEUS_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace zeus::common {

// Streaming mean/variance/min/max accumulator (Welford). Used for dataset
// statistics (Table 3) and benchmark reporting.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  // Population variance; 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Exact percentile (nearest-rank) over a copy of the data.
double Percentile(std::vector<double> values, double pct);

}  // namespace zeus::common

#endif  // ZEUS_COMMON_STATS_H_
