#ifndef ZEUS_COMMON_STATUS_H_
#define ZEUS_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace zeus::common {

// Error codes used across the library. Modeled after the Status idiom used
// in Arrow / RocksDB: recoverable failures are returned, not thrown.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kResourceExhausted,
  kCancelled,
  // Transient distributed-systems failure: the callee could not be reached
  // or the response was lost. Explicitly retryable — the cluster layer's
  // contract is that a query either succeeds bit-identically or fails with
  // THIS code, never a silent wrong answer (see docs/ARCHITECTURE.md,
  // "Cluster").
  kUnavailable,
};

// True for codes a caller may safely retry (the operation may not have
// executed, or executing it again is harmless).
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

// A Status is either OK or carries an error code plus a human-readable
// message. It is cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> is a Status or a value. Accessing the value of a failed Result
// aborts, so callers must check ok() first (enforced in tests).
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return Status::...;` interchangeably, mirroring arrow::Result.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

 private:
  void CheckOk() const;

  Status status_;
  // Held in an optional so T need not be default-constructible.
  std::optional<T> value_;
};

// Aborts the process with a message; used for programmer errors only.
[[noreturn]] void Panic(const std::string& message);

template <typename T>
void Result<T>::CheckOk() const {
  if (!status_.ok()) {
    Panic("Result::value() called on error status: " + status_.ToString());
  }
}

}  // namespace zeus::common

// Propagates a non-OK Status from an expression, RocksDB-style.
#define ZEUS_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::zeus::common::Status _st = (expr);            \
    if (!_st.ok()) return _st;                      \
  } while (0)

#endif  // ZEUS_COMMON_STATUS_H_
