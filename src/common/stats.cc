#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace zeus::common {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace zeus::common
