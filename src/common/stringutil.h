#ifndef ZEUS_COMMON_STRINGUTIL_H_
#define ZEUS_COMMON_STRINGUTIL_H_

#include <string>
#include <vector>

namespace zeus::common {

// Lower-cases ASCII characters.
std::string ToLower(const std::string& s);

// Strips leading and trailing whitespace.
std::string Trim(const std::string& s);

// Splits on a delimiter character; empty tokens preserved.
std::vector<std::string> Split(const std::string& s, char delim);

// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace zeus::common

#endif  // ZEUS_COMMON_STRINGUTIL_H_
