#include "common/rng.h"

#include <cmath>

namespace zeus::common {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int Rng::NextInt(int lo, int hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(NextU64() % span);
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace zeus::common
