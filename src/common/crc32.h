#ifndef ZEUS_COMMON_CRC32_H_
#define ZEUS_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace zeus::common {

// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum RocksDB-style
// storage formats attach to every block. Incremental usage:
//
//   uint32_t crc = Crc32(0, header, header_len);
//   crc = Crc32(crc, payload, payload_len);
//
// A single-shot call with `crc = 0` matches zlib's crc32().
uint32_t Crc32(uint32_t crc, const void* data, size_t n);

}  // namespace zeus::common

#endif  // ZEUS_COMMON_CRC32_H_
