#include "common/fileutil.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/stringutil.h"

namespace zeus::common {

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp =
      Format("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IoError("cannot open " + tmp + " for writing");
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IoError("write failed for " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path + " failed: " +
                           ec.message());
  }
  return Status::Ok();
}

}  // namespace zeus::common
