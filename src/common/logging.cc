#include "common/logging.h"

#include <cstdio>

namespace zeus::common {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogLine(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace zeus::common
