#include "common/timer.h"

// WallTimer is header-only; this translation unit exists so the build file
// stays uniform (one .cc per header) and to pin the vtable-free class here
// if it ever grows virtuals.
