#ifndef ZEUS_STORAGE_VIDEO_STORE_H_
#define ZEUS_STORAGE_VIDEO_STORE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/video_file.h"
#include "video/dataset.h"
#include "video/video.h"

namespace zeus::storage {

// A directory-backed corpus of annotated videos — the persistent half of a
// VDBMS ingest path. Each video lives in its own ZVF1 file named by id
// (`v<id>.zvf`); a text MANIFEST lists the ids in insertion order so a
// reopened store preserves ordering even if directory listing order
// differs.
//
//   auto store = VideoStore::Open(dir).value();
//   store.Put(video);
//   auto v = store.Get(video.id());
//
// The store is an on-disk structure, not a cache: Get() always decodes from
// the file, and Put() is durable once it returns OK.
//
// Append mode (live-stream ingest): a stored video can grow without
// rewriting its base file. AppendFrames() appends raw frame records to a
// side file (`v<id>.tail`) and then commits the new total length + tail
// checksum in a commit sidecar (`v<id>.commit`) written with
// AtomicWriteFile. Readers trust only the commit sidecar: a process
// killed mid-append leaves either the old commit (new tail bytes past the
// committed length are invisible — the prior snapshot stays readable,
// byte-identical) or the new one (every committed byte present and
// checksummed). There is no state in which Get() observes a torn tail.
class VideoStore {
 public:
  // Opens (creating if needed) a store rooted at `dir`. Reads the manifest
  // if one exists.
  static common::Result<VideoStore> Open(const std::string& dir);

  // Writes `video` under its id. Fails with AlreadyExists if the id is
  // already present (ids are the primary key).
  common::Status Put(const video::Video& video,
                     PixelEncoding encoding = PixelEncoding::kUint8);

  // Loads the video with `id` (base frames plus any committed tail), or
  // NotFound.
  common::Result<video::Video> Get(int id) const;

  // Removes the video with `id` (including any tail/commit sidecars) from
  // the manifest and the filesystem.
  common::Status Remove(int id);

  // ---- Stream append mode -------------------------------------------------

  // Appends `tail`'s frames to stored video `id` with a crash-atomic
  // length commit (see the class comment). Tail frames are stored as
  // lossless float32 records so replica catch-up stays bit-identical.
  // Shapes must match the stored video.
  common::Status AppendFrames(int id, const video::Video& tail);

  // Registers a brand-new video arriving on a stream. Same durability as
  // Put (which already commits its manifest atomically); spelled
  // separately so ingest call sites read as appends, not corpus loads.
  common::Status AppendVideo(const video::Video& video,
                             PixelEncoding encoding = PixelEncoding::kUint8);

  // Committed total frame count of video `id` — the length snapshot a
  // reader may safely decode to.
  common::Result<long> CommittedFrames(int id) const;

  bool Contains(int id) const;
  const std::vector<int>& ids() const { return ids_; }
  size_t size() const { return ids_.size(); }
  const std::string& dir() const { return dir_; }

  // Path of the file that stores (or would store) video `id`.
  std::string PathFor(int id) const;
  // Paths of the append side file and its commit sidecar.
  std::string TailPathFor(int id) const;
  std::string CommitPathFor(int id) const;

 private:
  VideoStore() = default;

  common::Status WriteManifest() const;

  std::string dir_;
  std::vector<int> ids_;
};

// Dataset persistence built on VideoStore: the full SyntheticDataset
// (profile, every video, split indices) round-trips through one directory.
// The profile and splits are stored in a text `DATASET` manifest next to
// the video files.
common::Status SaveDataset(const std::string& dir,
                           const video::SyntheticDataset& dataset,
                           PixelEncoding encoding = PixelEncoding::kUint8);

common::Result<video::SyntheticDataset> LoadDataset(const std::string& dir);

}  // namespace zeus::storage

#endif  // ZEUS_STORAGE_VIDEO_STORE_H_
