#ifndef ZEUS_STORAGE_VIDEO_STORE_H_
#define ZEUS_STORAGE_VIDEO_STORE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/video_file.h"
#include "video/dataset.h"
#include "video/video.h"

namespace zeus::storage {

// A directory-backed corpus of annotated videos — the persistent half of a
// VDBMS ingest path. Each video lives in its own ZVF1 file named by id
// (`v<id>.zvf`); a text MANIFEST lists the ids in insertion order so a
// reopened store preserves ordering even if directory listing order
// differs.
//
//   auto store = VideoStore::Open(dir).value();
//   store.Put(video);
//   auto v = store.Get(video.id());
//
// The store is an on-disk structure, not a cache: Get() always decodes from
// the file, and Put() is durable once it returns OK.
class VideoStore {
 public:
  // Opens (creating if needed) a store rooted at `dir`. Reads the manifest
  // if one exists.
  static common::Result<VideoStore> Open(const std::string& dir);

  // Writes `video` under its id. Fails with AlreadyExists if the id is
  // already present (ids are the primary key).
  common::Status Put(const video::Video& video,
                     PixelEncoding encoding = PixelEncoding::kUint8);

  // Loads the video with `id`, or NotFound.
  common::Result<video::Video> Get(int id) const;

  // Removes the video with `id` from the manifest and the filesystem.
  common::Status Remove(int id);

  bool Contains(int id) const;
  const std::vector<int>& ids() const { return ids_; }
  size_t size() const { return ids_.size(); }
  const std::string& dir() const { return dir_; }

  // Path of the file that stores (or would store) video `id`.
  std::string PathFor(int id) const;

 private:
  VideoStore() = default;

  common::Status WriteManifest() const;

  std::string dir_;
  std::vector<int> ids_;
};

// Dataset persistence built on VideoStore: the full SyntheticDataset
// (profile, every video, split indices) round-trips through one directory.
// The profile and splits are stored in a text `DATASET` manifest next to
// the video files.
common::Status SaveDataset(const std::string& dir,
                           const video::SyntheticDataset& dataset,
                           PixelEncoding encoding = PixelEncoding::kUint8);

common::Result<video::SyntheticDataset> LoadDataset(const std::string& dir);

}  // namespace zeus::storage

#endif  // ZEUS_STORAGE_VIDEO_STORE_H_
