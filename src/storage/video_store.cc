#include "storage/video_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/crc32.h"
#include "common/fileutil.h"
#include "common/stringutil.h"

namespace zeus::storage {
namespace {

namespace fs = std::filesystem;

constexpr char kManifestName[] = "MANIFEST";
constexpr char kDatasetName[] = "DATASET";

// Key/value text manifest codec shared by MANIFEST and DATASET files.
// Lines are `key value...`; unknown keys are ignored so the format can grow.
common::Result<std::map<std::string, std::vector<std::string>>> ReadKvFile(
    const std::string& path) {
  std::ifstream is(path);
  if (!is) return common::Status::IoError("cannot open: " + path);
  std::map<std::string, std::vector<std::string>> kv;
  std::string line;
  while (std::getline(is, line)) {
    line = common::Trim(line);
    if (line.empty() || line[0] == '#') continue;
    auto tokens = common::Split(line, ' ');
    std::vector<std::string> values(tokens.begin() + 1, tokens.end());
    kv[tokens[0]] = std::move(values);
  }
  return kv;
}

std::string JoinInts(const std::vector<int>& v) {
  std::ostringstream os;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) os << ' ';
    os << v[i];
  }
  return os.str();
}

common::Result<std::vector<int>> ParseInts(
    const std::vector<std::string>& tokens) {
  std::vector<int> out;
  out.reserve(tokens.size());
  for (const std::string& t : tokens) {
    if (t.empty()) continue;
    try {
      out.push_back(std::stoi(t));
    } catch (...) {
      return common::Status::IoError("bad integer in manifest: " + t);
    }
  }
  return out;
}

// ---- Append side-file helpers ----------------------------------------------

// Tail records are lossless: [i32 label][f32 pixels...] per frame,
// host-endian like the ZVF1 base file. Float32 (not the quantized uint8
// encoding) because appended frames must survive replica catch-up
// bit-identically — quantization parameters would differ per batch.
size_t TailRecordBytes(int height, int width) {
  return sizeof(int32_t) +
         sizeof(float) * static_cast<size_t>(height) * width;
}

// Contents of the commit sidecar: the only length a reader trusts.
struct TailCommit {
  long frames = 0;        // committed TOTAL frames (base + tail)
  size_t tail_bytes = 0;  // committed prefix of the tail file
  uint32_t crc = 0;       // crc32 over that prefix
};

common::Result<TailCommit> ReadCommit(const std::string& path) {
  auto kv_or = ReadKvFile(path);
  if (!kv_or.ok()) return kv_or.status();
  const auto& kv = kv_or.value();
  TailCommit c;
  auto scalar = [&kv](const char* key) -> common::Result<long> {
    auto it = kv.find(key);
    if (it == kv.end() || it->second.empty()) {
      return common::Status::IoError(std::string("commit missing key: ") + key);
    }
    try {
      return std::stol(it->second[0]);
    } catch (...) {
      return common::Status::IoError(std::string("bad commit value: ") + key);
    }
  };
  auto frames = scalar("frames");
  if (!frames.ok()) return frames.status();
  auto bytes = scalar("tail_bytes");
  if (!bytes.ok()) return bytes.status();
  auto crc = scalar("crc");
  if (!crc.ok()) return crc.status();
  c.frames = frames.value();
  c.tail_bytes = static_cast<size_t>(bytes.value());
  c.crc = static_cast<uint32_t>(static_cast<unsigned long>(crc.value()));
  return c;
}

common::Status WriteCommit(const std::string& path, const TailCommit& c) {
  std::ostringstream os;
  os << "# zeus tail commit\n";
  os << "frames " << c.frames << "\n";
  os << "tail_bytes " << c.tail_bytes << "\n";
  os << "crc " << static_cast<unsigned long>(c.crc) << "\n";
  return common::AtomicWriteFile(path, os.str());
}

// Reads the committed prefix of the tail file and validates its checksum.
// Bytes past `commit.tail_bytes` (a torn append) are ignored by design.
common::Result<std::string> ReadCommittedTail(const std::string& tail_path,
                                              const TailCommit& commit) {
  std::ifstream is(tail_path, std::ios::binary);
  if (!is) return common::Status::IoError("cannot open tail: " + tail_path);
  std::string bytes(commit.tail_bytes, '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (static_cast<size_t>(is.gcount()) != bytes.size()) {
    return common::Status::IoError("tail shorter than committed length: " +
                                   tail_path);
  }
  if (common::Crc32(0, bytes.data(), bytes.size()) != commit.crc) {
    return common::Status::IoError("tail checksum mismatch: " + tail_path);
  }
  return bytes;
}

}  // namespace

common::Result<VideoStore> VideoStore::Open(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return common::Status::IoError("cannot create store dir: " + dir + ": " +
                                   ec.message());
  }
  VideoStore store;
  store.dir_ = dir;
  const fs::path manifest = fs::path(dir) / kManifestName;
  if (fs::exists(manifest)) {
    auto kv = ReadKvFile(manifest.string());
    if (!kv.ok()) return kv.status();
    auto it = kv.value().find("ids");
    if (it != kv.value().end()) {
      auto ids = ParseInts(it->second);
      if (!ids.ok()) return ids.status();
      store.ids_ = std::move(ids).value();
    }
  }
  return store;
}

std::string VideoStore::PathFor(int id) const {
  return (fs::path(dir_) / common::Format("v%d.zvf", id)).string();
}

std::string VideoStore::TailPathFor(int id) const {
  return (fs::path(dir_) / common::Format("v%d.tail", id)).string();
}

std::string VideoStore::CommitPathFor(int id) const {
  return (fs::path(dir_) / common::Format("v%d.commit", id)).string();
}

bool VideoStore::Contains(int id) const {
  return std::find(ids_.begin(), ids_.end(), id) != ids_.end();
}

common::Status VideoStore::WriteManifest() const {
  // Atomic so a crash mid-rewrite never loses the id list (an ingesting
  // store rewrites this on every AppendVideo).
  std::ostringstream os;
  os << "# zeus video store manifest\n";
  os << "ids " << JoinInts(ids_) << "\n";
  return common::AtomicWriteFile((fs::path(dir_) / kManifestName).string(),
                                 os.str());
}

common::Status VideoStore::Put(const video::Video& video,
                               PixelEncoding encoding) {
  if (Contains(video.id())) {
    return common::Status::AlreadyExists(
        common::Format("video id %d already stored", video.id()));
  }
  ZEUS_RETURN_IF_ERROR(VideoFile::Save(PathFor(video.id()), video, encoding));
  ids_.push_back(video.id());
  return WriteManifest();
}

common::Result<video::Video> VideoStore::Get(int id) const {
  if (!Contains(id)) {
    return common::Status::NotFound(common::Format("video id %d", id));
  }
  auto base = VideoFile::Load(PathFor(id));
  if (!base.ok()) return base.status();
  video::Video v = std::move(base).value();
  if (!fs::exists(CommitPathFor(id))) return v;

  auto commit = ReadCommit(CommitPathFor(id));
  if (!commit.ok()) return commit.status();
  const long tail_frames = commit.value().frames - v.num_frames();
  if (tail_frames < 0) {
    return common::Status::IoError("commit shorter than base video");
  }
  if (tail_frames == 0) return v;
  const size_t rec = TailRecordBytes(v.height(), v.width());
  if (commit.value().tail_bytes != rec * static_cast<size_t>(tail_frames)) {
    return common::Status::IoError("commit length does not match record size");
  }
  auto bytes = ReadCommittedTail(TailPathFor(id), commit.value());
  if (!bytes.ok()) return bytes.status();

  video::Video tail(static_cast<int>(tail_frames), v.height(), v.width());
  const char* p = bytes.value().data();
  const size_t frame_px = static_cast<size_t>(v.height()) * v.width();
  for (long f = 0; f < tail_frames; ++f) {
    int32_t label = 0;
    std::memcpy(&label, p, sizeof(label));
    p += sizeof(label);
    if (label < 0 || label > video::kMaxActionClassId) {
      return common::Status::IoError("tail label out of range");
    }
    tail.SetLabel(static_cast<int>(f),
                  static_cast<video::ActionClass>(label));
    std::memcpy(tail.FrameData(static_cast<int>(f)), p,
                frame_px * sizeof(float));
    p += frame_px * sizeof(float);
  }
  v.Append(tail);
  return v;
}

common::Result<long> VideoStore::CommittedFrames(int id) const {
  if (!Contains(id)) {
    return common::Status::NotFound(common::Format("video id %d", id));
  }
  if (fs::exists(CommitPathFor(id))) {
    auto commit = ReadCommit(CommitPathFor(id));
    if (!commit.ok()) return commit.status();
    return commit.value().frames;
  }
  auto base = VideoFile::Load(PathFor(id));
  if (!base.ok()) return base.status();
  return static_cast<long>(base.value().num_frames());
}

common::Status VideoStore::AppendFrames(int id, const video::Video& tail) {
  if (!Contains(id)) {
    return common::Status::NotFound(common::Format("video id %d", id));
  }
  auto base = VideoFile::Load(PathFor(id));
  if (!base.ok()) return base.status();
  const int h = base.value().height();
  const int w = base.value().width();
  if (tail.height() != h || tail.width() != w) {
    return common::Status::InvalidArgument("append shape mismatch");
  }
  const size_t rec = TailRecordBytes(h, w);

  // Committed tail so far (absent commit = no appended frames yet).
  TailCommit commit;
  commit.frames = base.value().num_frames();
  if (fs::exists(CommitPathFor(id))) {
    auto c = ReadCommit(CommitPathFor(id));
    if (!c.ok()) return c.status();
    commit = c.value();
  }
  const size_t committed_bytes = commit.tail_bytes;

  // Re-read the committed prefix (also validates it) — the new crc covers
  // the whole tail region and a previous torn append may have left
  // garbage past the committed length that must be truncated away first.
  std::string prefix;
  if (committed_bytes > 0) {
    auto bytes = ReadCommittedTail(TailPathFor(id), commit);
    if (!bytes.ok()) return bytes.status();
    prefix = std::move(bytes).value();
  }

  // Serialize the new records.
  std::string appended;
  appended.reserve(rec * static_cast<size_t>(tail.num_frames()));
  const size_t frame_px = static_cast<size_t>(h) * w;
  for (int f = 0; f < tail.num_frames(); ++f) {
    int32_t label = static_cast<int32_t>(tail.Label(f));
    appended.append(reinterpret_cast<const char*>(&label), sizeof(label));
    appended.append(reinterpret_cast<const char*>(tail.FrameData(f)),
                    frame_px * sizeof(float));
  }

  // Step 1: land the new bytes at the committed offset. The committed
  // prefix is never rewritten — a crash anywhere in here leaves the old
  // commit pointing at intact bytes, so readers still see the prior
  // snapshot. Garbage past the committed length (this write torn, or a
  // previous one) is invisible and gets overwritten by the next append.
  {
    auto mode = std::ios::binary | std::ios::out;
    if (committed_bytes == 0) {
      mode |= std::ios::trunc;  // also creates the file on first append
    } else {
      mode |= std::ios::in;  // positioned write, keep existing bytes
    }
    std::fstream os(TailPathFor(id), mode);
    if (!os) return common::Status::IoError("cannot write tail file");
    os.seekp(static_cast<std::streamoff>(committed_bytes));
    os.write(appended.data(), static_cast<std::streamsize>(appended.size()));
    os.flush();
    os.close();
    if (!os.good()) return common::Status::IoError("tail write failed");
  }

  // Step 2: atomically publish the new length.
  TailCommit next;
  next.frames = commit.frames + tail.num_frames();
  next.tail_bytes = committed_bytes + appended.size();
  uint32_t crc = common::Crc32(0, prefix.data(), prefix.size());
  crc = common::Crc32(crc, appended.data(), appended.size());
  next.crc = crc;
  return WriteCommit(CommitPathFor(id), next);
}

common::Status VideoStore::AppendVideo(const video::Video& video,
                                       PixelEncoding encoding) {
  return Put(video, encoding);
}

common::Status VideoStore::Remove(int id) {
  auto it = std::find(ids_.begin(), ids_.end(), id);
  if (it == ids_.end()) {
    return common::Status::NotFound(common::Format("video id %d", id));
  }
  std::error_code ec;
  fs::remove(PathFor(id), ec);
  if (ec) return common::Status::IoError("remove failed: " + ec.message());
  // Sidecars are optional; ignore missing.
  fs::remove(TailPathFor(id), ec);
  fs::remove(CommitPathFor(id), ec);
  ids_.erase(it);
  return WriteManifest();
}

common::Status SaveDataset(const std::string& dir,
                           const video::SyntheticDataset& dataset,
                           PixelEncoding encoding) {
  auto store = VideoStore::Open(dir);
  if (!store.ok()) return store.status();
  for (const video::Video& v : dataset.videos()) {
    ZEUS_RETURN_IF_ERROR(store.value().Put(v, encoding));
  }

  const video::DatasetProfile& p = dataset.profile();
  std::ofstream os(fs::path(dir) / kDatasetName, std::ios::trunc);
  if (!os) return common::Status::IoError("cannot write dataset manifest");
  os << "# zeus dataset manifest\n";
  os << "family " << static_cast<int>(p.family) << "\n";
  // The name may contain spaces; it is always the line's remainder.
  os << "name " << p.name << "\n";
  os << "num_videos " << p.num_videos << "\n";
  os << "frames_per_video " << p.frames_per_video << "\n";
  os << "native_resolution " << p.native_resolution << "\n";
  {
    std::vector<int> classes;
    classes.reserve(p.classes.size());
    for (auto c : p.classes) classes.push_back(static_cast<int>(c));
    os << "classes " << JoinInts(classes) << "\n";
  }
  os << "action_fraction " << p.action_fraction << "\n";
  os << "mean_action_length " << p.mean_action_length << "\n";
  os << "stddev_action_length " << p.stddev_action_length << "\n";
  os << "min_action_length " << p.min_action_length << "\n";
  os << "max_action_length " << p.max_action_length << "\n";
  os << "distractor_rate " << p.distractor_rate << "\n";
  os << "style " << p.style.base_brightness << ' ' << p.style.texture_amplitude
     << ' ' << p.style.noise_sigma << ' ' << p.style.drift_speed << ' '
     << p.style.blob_amplitude << ' ' << p.style.blob_sigma << ' '
     << p.style.speed_scale << "\n";
  // Stream identity (optional keys — absent for FromParts datasets that
  // never recorded a generation seed): lets a reloaded dataset keep
  // growing deterministically from where the saved one stopped.
  if (dataset.base_frames() > 0) {
    os << "stream_seed " << dataset.stream_seed() << "\n";
    os << "base_frames " << dataset.base_frames() << "\n";
    os << "frame_epoch " << dataset.frame_epoch() << "\n";
  }
  // Splits are stored as positions into the stored id order, which matches
  // dataset.videos() order by construction.
  os << "train " << JoinInts(dataset.train_indices()) << "\n";
  os << "val " << JoinInts(dataset.val_indices()) << "\n";
  os << "test " << JoinInts(dataset.test_indices()) << "\n";
  os.close();
  if (!os.good()) return common::Status::IoError("dataset manifest write");
  return common::Status::Ok();
}

common::Result<video::SyntheticDataset> LoadDataset(const std::string& dir) {
  auto store = VideoStore::Open(dir);
  if (!store.ok()) return store.status();
  auto kv_or = ReadKvFile((fs::path(dir) / kDatasetName).string());
  if (!kv_or.ok()) return kv_or.status();
  const auto& kv = kv_or.value();

  auto get = [&kv](const std::string& key)
      -> common::Result<std::vector<std::string>> {
    auto it = kv.find(key);
    if (it == kv.end()) {
      return common::Status::IoError("dataset manifest missing key: " + key);
    }
    return it->second;
  };
  auto get_scalar = [&get](const std::string& key) -> common::Result<double> {
    auto v = get(key);
    if (!v.ok()) return v.status();
    if (v.value().empty()) return common::Status::IoError("empty key: " + key);
    try {
      return std::stod(v.value()[0]);
    } catch (...) {
      return common::Status::IoError("bad number for key: " + key);
    }
  };

  video::DatasetProfile p;
#define ZEUS_LOAD_SCALAR(field, key, type)                 \
  do {                                                     \
    auto v = get_scalar(key);                              \
    if (!v.ok()) return v.status();                        \
    p.field = static_cast<type>(v.value());                \
  } while (0)
  ZEUS_LOAD_SCALAR(family, "family", video::DatasetFamily);
  ZEUS_LOAD_SCALAR(num_videos, "num_videos", int);
  ZEUS_LOAD_SCALAR(frames_per_video, "frames_per_video", int);
  ZEUS_LOAD_SCALAR(native_resolution, "native_resolution", int);
  ZEUS_LOAD_SCALAR(action_fraction, "action_fraction", double);
  ZEUS_LOAD_SCALAR(mean_action_length, "mean_action_length", double);
  ZEUS_LOAD_SCALAR(stddev_action_length, "stddev_action_length", double);
  ZEUS_LOAD_SCALAR(min_action_length, "min_action_length", int);
  ZEUS_LOAD_SCALAR(max_action_length, "max_action_length", int);
  ZEUS_LOAD_SCALAR(distractor_rate, "distractor_rate", double);
#undef ZEUS_LOAD_SCALAR

  {
    auto name = get("name");
    if (!name.ok()) return name.status();
    std::string joined;
    for (const auto& tok : name.value()) {
      if (!joined.empty()) joined += ' ';
      joined += tok;
    }
    p.name = joined;
  }
  {
    auto classes = get("classes");
    if (!classes.ok()) return classes.status();
    auto ints = ParseInts(classes.value());
    if (!ints.ok()) return ints.status();
    for (int c : ints.value()) {
      p.classes.push_back(static_cast<video::ActionClass>(c));
    }
  }
  {
    auto style = get("style");
    if (!style.ok()) return style.status();
    if (style.value().size() != 7) {
      return common::Status::IoError("style line must have 7 numbers");
    }
    const auto& s = style.value();
    try {
      p.style.base_brightness = std::stod(s[0]);
      p.style.texture_amplitude = std::stod(s[1]);
      p.style.noise_sigma = std::stod(s[2]);
      p.style.drift_speed = std::stod(s[3]);
      p.style.blob_amplitude = std::stod(s[4]);
      p.style.blob_sigma = std::stod(s[5]);
      p.style.speed_scale = std::stod(s[6]);
    } catch (...) {
      return common::Status::IoError("bad number in style line");
    }
  }

  std::vector<video::Video> videos;
  videos.reserve(store.value().size());
  for (int id : store.value().ids()) {
    auto v = store.value().Get(id);
    if (!v.ok()) return v.status();
    videos.push_back(std::move(v).value());
  }

  std::vector<std::vector<int>> splits(3);
  const char* split_keys[3] = {"train", "val", "test"};
  for (int i = 0; i < 3; ++i) {
    auto tokens = get(split_keys[i]);
    if (!tokens.ok()) return tokens.status();
    auto ints = ParseInts(tokens.value());
    if (!ints.ok()) return ints.status();
    splits[static_cast<size_t>(i)] = std::move(ints).value();
    for (int idx : splits[static_cast<size_t>(i)]) {
      if (idx < 0 || idx >= static_cast<int>(videos.size())) {
        return common::Status::IoError("split index out of range");
      }
    }
  }

  video::SyntheticDataset ds = video::SyntheticDataset::FromParts(
      std::move(p), std::move(videos), std::move(splits[0]),
      std::move(splits[1]), std::move(splits[2]));

  // Restore stream identity when present (older manifests lack it).
  const auto seed_it = kv.find("stream_seed");
  const auto base_it = kv.find("base_frames");
  const auto epoch_it = kv.find("frame_epoch");
  if (seed_it != kv.end() && base_it != kv.end() && epoch_it != kv.end() &&
      !seed_it->second.empty() && !base_it->second.empty() &&
      !epoch_it->second.empty()) {
    try {
      ds.RestoreStreamState(std::stoull(seed_it->second[0]),
                            std::stoi(base_it->second[0]),
                            std::stoull(epoch_it->second[0]));
    } catch (...) {
      return common::Status::IoError("bad stream state in dataset manifest");
    }
  }
  return ds;
}

}  // namespace zeus::storage
