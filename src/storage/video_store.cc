#include "storage/video_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/stringutil.h"

namespace zeus::storage {
namespace {

namespace fs = std::filesystem;

constexpr char kManifestName[] = "MANIFEST";
constexpr char kDatasetName[] = "DATASET";

// Key/value text manifest codec shared by MANIFEST and DATASET files.
// Lines are `key value...`; unknown keys are ignored so the format can grow.
common::Result<std::map<std::string, std::vector<std::string>>> ReadKvFile(
    const std::string& path) {
  std::ifstream is(path);
  if (!is) return common::Status::IoError("cannot open: " + path);
  std::map<std::string, std::vector<std::string>> kv;
  std::string line;
  while (std::getline(is, line)) {
    line = common::Trim(line);
    if (line.empty() || line[0] == '#') continue;
    auto tokens = common::Split(line, ' ');
    std::vector<std::string> values(tokens.begin() + 1, tokens.end());
    kv[tokens[0]] = std::move(values);
  }
  return kv;
}

std::string JoinInts(const std::vector<int>& v) {
  std::ostringstream os;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) os << ' ';
    os << v[i];
  }
  return os.str();
}

common::Result<std::vector<int>> ParseInts(
    const std::vector<std::string>& tokens) {
  std::vector<int> out;
  out.reserve(tokens.size());
  for (const std::string& t : tokens) {
    if (t.empty()) continue;
    try {
      out.push_back(std::stoi(t));
    } catch (...) {
      return common::Status::IoError("bad integer in manifest: " + t);
    }
  }
  return out;
}

}  // namespace

common::Result<VideoStore> VideoStore::Open(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return common::Status::IoError("cannot create store dir: " + dir + ": " +
                                   ec.message());
  }
  VideoStore store;
  store.dir_ = dir;
  const fs::path manifest = fs::path(dir) / kManifestName;
  if (fs::exists(manifest)) {
    auto kv = ReadKvFile(manifest.string());
    if (!kv.ok()) return kv.status();
    auto it = kv.value().find("ids");
    if (it != kv.value().end()) {
      auto ids = ParseInts(it->second);
      if (!ids.ok()) return ids.status();
      store.ids_ = std::move(ids).value();
    }
  }
  return store;
}

std::string VideoStore::PathFor(int id) const {
  return (fs::path(dir_) / common::Format("v%d.zvf", id)).string();
}

bool VideoStore::Contains(int id) const {
  return std::find(ids_.begin(), ids_.end(), id) != ids_.end();
}

common::Status VideoStore::WriteManifest() const {
  const fs::path path = fs::path(dir_) / kManifestName;
  std::ofstream os(path, std::ios::trunc);
  if (!os) return common::Status::IoError("cannot write manifest");
  os << "# zeus video store manifest\n";
  os << "ids " << JoinInts(ids_) << "\n";
  os.close();
  if (!os.good()) return common::Status::IoError("manifest write failed");
  return common::Status::Ok();
}

common::Status VideoStore::Put(const video::Video& video,
                               PixelEncoding encoding) {
  if (Contains(video.id())) {
    return common::Status::AlreadyExists(
        common::Format("video id %d already stored", video.id()));
  }
  ZEUS_RETURN_IF_ERROR(VideoFile::Save(PathFor(video.id()), video, encoding));
  ids_.push_back(video.id());
  return WriteManifest();
}

common::Result<video::Video> VideoStore::Get(int id) const {
  if (!Contains(id)) {
    return common::Status::NotFound(common::Format("video id %d", id));
  }
  return VideoFile::Load(PathFor(id));
}

common::Status VideoStore::Remove(int id) {
  auto it = std::find(ids_.begin(), ids_.end(), id);
  if (it == ids_.end()) {
    return common::Status::NotFound(common::Format("video id %d", id));
  }
  std::error_code ec;
  fs::remove(PathFor(id), ec);
  if (ec) return common::Status::IoError("remove failed: " + ec.message());
  ids_.erase(it);
  return WriteManifest();
}

common::Status SaveDataset(const std::string& dir,
                           const video::SyntheticDataset& dataset,
                           PixelEncoding encoding) {
  auto store = VideoStore::Open(dir);
  if (!store.ok()) return store.status();
  for (const video::Video& v : dataset.videos()) {
    ZEUS_RETURN_IF_ERROR(store.value().Put(v, encoding));
  }

  const video::DatasetProfile& p = dataset.profile();
  std::ofstream os(fs::path(dir) / kDatasetName, std::ios::trunc);
  if (!os) return common::Status::IoError("cannot write dataset manifest");
  os << "# zeus dataset manifest\n";
  os << "family " << static_cast<int>(p.family) << "\n";
  // The name may contain spaces; it is always the line's remainder.
  os << "name " << p.name << "\n";
  os << "num_videos " << p.num_videos << "\n";
  os << "frames_per_video " << p.frames_per_video << "\n";
  os << "native_resolution " << p.native_resolution << "\n";
  {
    std::vector<int> classes;
    classes.reserve(p.classes.size());
    for (auto c : p.classes) classes.push_back(static_cast<int>(c));
    os << "classes " << JoinInts(classes) << "\n";
  }
  os << "action_fraction " << p.action_fraction << "\n";
  os << "mean_action_length " << p.mean_action_length << "\n";
  os << "stddev_action_length " << p.stddev_action_length << "\n";
  os << "min_action_length " << p.min_action_length << "\n";
  os << "max_action_length " << p.max_action_length << "\n";
  os << "distractor_rate " << p.distractor_rate << "\n";
  os << "style " << p.style.base_brightness << ' ' << p.style.texture_amplitude
     << ' ' << p.style.noise_sigma << ' ' << p.style.drift_speed << ' '
     << p.style.blob_amplitude << ' ' << p.style.blob_sigma << ' '
     << p.style.speed_scale << "\n";
  // Splits are stored as positions into the stored id order, which matches
  // dataset.videos() order by construction.
  os << "train " << JoinInts(dataset.train_indices()) << "\n";
  os << "val " << JoinInts(dataset.val_indices()) << "\n";
  os << "test " << JoinInts(dataset.test_indices()) << "\n";
  os.close();
  if (!os.good()) return common::Status::IoError("dataset manifest write");
  return common::Status::Ok();
}

common::Result<video::SyntheticDataset> LoadDataset(const std::string& dir) {
  auto store = VideoStore::Open(dir);
  if (!store.ok()) return store.status();
  auto kv_or = ReadKvFile((fs::path(dir) / kDatasetName).string());
  if (!kv_or.ok()) return kv_or.status();
  const auto& kv = kv_or.value();

  auto get = [&kv](const std::string& key)
      -> common::Result<std::vector<std::string>> {
    auto it = kv.find(key);
    if (it == kv.end()) {
      return common::Status::IoError("dataset manifest missing key: " + key);
    }
    return it->second;
  };
  auto get_scalar = [&get](const std::string& key) -> common::Result<double> {
    auto v = get(key);
    if (!v.ok()) return v.status();
    if (v.value().empty()) return common::Status::IoError("empty key: " + key);
    try {
      return std::stod(v.value()[0]);
    } catch (...) {
      return common::Status::IoError("bad number for key: " + key);
    }
  };

  video::DatasetProfile p;
#define ZEUS_LOAD_SCALAR(field, key, type)                 \
  do {                                                     \
    auto v = get_scalar(key);                              \
    if (!v.ok()) return v.status();                        \
    p.field = static_cast<type>(v.value());                \
  } while (0)
  ZEUS_LOAD_SCALAR(family, "family", video::DatasetFamily);
  ZEUS_LOAD_SCALAR(num_videos, "num_videos", int);
  ZEUS_LOAD_SCALAR(frames_per_video, "frames_per_video", int);
  ZEUS_LOAD_SCALAR(native_resolution, "native_resolution", int);
  ZEUS_LOAD_SCALAR(action_fraction, "action_fraction", double);
  ZEUS_LOAD_SCALAR(mean_action_length, "mean_action_length", double);
  ZEUS_LOAD_SCALAR(stddev_action_length, "stddev_action_length", double);
  ZEUS_LOAD_SCALAR(min_action_length, "min_action_length", int);
  ZEUS_LOAD_SCALAR(max_action_length, "max_action_length", int);
  ZEUS_LOAD_SCALAR(distractor_rate, "distractor_rate", double);
#undef ZEUS_LOAD_SCALAR

  {
    auto name = get("name");
    if (!name.ok()) return name.status();
    std::string joined;
    for (const auto& tok : name.value()) {
      if (!joined.empty()) joined += ' ';
      joined += tok;
    }
    p.name = joined;
  }
  {
    auto classes = get("classes");
    if (!classes.ok()) return classes.status();
    auto ints = ParseInts(classes.value());
    if (!ints.ok()) return ints.status();
    for (int c : ints.value()) {
      p.classes.push_back(static_cast<video::ActionClass>(c));
    }
  }
  {
    auto style = get("style");
    if (!style.ok()) return style.status();
    if (style.value().size() != 7) {
      return common::Status::IoError("style line must have 7 numbers");
    }
    const auto& s = style.value();
    try {
      p.style.base_brightness = std::stod(s[0]);
      p.style.texture_amplitude = std::stod(s[1]);
      p.style.noise_sigma = std::stod(s[2]);
      p.style.drift_speed = std::stod(s[3]);
      p.style.blob_amplitude = std::stod(s[4]);
      p.style.blob_sigma = std::stod(s[5]);
      p.style.speed_scale = std::stod(s[6]);
    } catch (...) {
      return common::Status::IoError("bad number in style line");
    }
  }

  std::vector<video::Video> videos;
  videos.reserve(store.value().size());
  for (int id : store.value().ids()) {
    auto v = store.value().Get(id);
    if (!v.ok()) return v.status();
    videos.push_back(std::move(v).value());
  }

  std::vector<std::vector<int>> splits(3);
  const char* split_keys[3] = {"train", "val", "test"};
  for (int i = 0; i < 3; ++i) {
    auto tokens = get(split_keys[i]);
    if (!tokens.ok()) return tokens.status();
    auto ints = ParseInts(tokens.value());
    if (!ints.ok()) return ints.status();
    splits[static_cast<size_t>(i)] = std::move(ints).value();
    for (int idx : splits[static_cast<size_t>(i)]) {
      if (idx < 0 || idx >= static_cast<int>(videos.size())) {
        return common::Status::IoError("split index out of range");
      }
    }
  }

  return video::SyntheticDataset::FromParts(
      std::move(p), std::move(videos), std::move(splits[0]),
      std::move(splits[1]), std::move(splits[2]));
}

}  // namespace zeus::storage
