#ifndef ZEUS_STORAGE_VIDEO_FILE_H_
#define ZEUS_STORAGE_VIDEO_FILE_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "video/video.h"

namespace zeus::storage {

// Pixel encodings supported by the on-disk video format.
//
//   kFloat32 — lossless, 4 bytes/pixel.
//   kUint8   — lossy min/max-quantized, 1 byte/pixel. Synthetic frames live
//              in [0, 1] with ~8 bits of useful dynamic range, so this is
//              the default for corpus storage (4x smaller, decode error
//              bounded by (max-min)/255/2 per pixel).
enum class PixelEncoding : uint8_t {
  kFloat32 = 0,
  kUint8 = 1,
};

// Single-video container format ("ZVF1"):
//
//   u32 magic 'Z','V','F','1' | u32 version | i32 id
//   i32 frames | i32 height | i32 width | u8 encoding
//   u32 label_runs | label_runs x { i32 length, i32 class }   (RLE labels)
//   pixels: f32[n]                    (kFloat32)
//         | f32 min, f32 max, u8[n]   (kUint8)
//   u32 crc32 over every byte after the magic word
//
// All integers are host-endian (the library targets a single machine; the
// magic word doubles as an endianness check). Readers validate the magic,
// version, shape sanity, and the trailing checksum, so truncated or
// bit-flipped files fail with IoError instead of returning garbage.
class VideoFile {
 public:
  static constexpr uint32_t kMagic = 0x3156465Au;  // "ZVF1" little-endian
  static constexpr uint32_t kVersion = 1;

  // Serializes `video` to `path`. Overwrites any existing file.
  static common::Status Save(const std::string& path,
                             const video::Video& video,
                             PixelEncoding encoding = PixelEncoding::kUint8);

  // Reads a video previously written by Save(). Fails with IoError on any
  // corruption (bad magic/version, impossible shape, checksum mismatch,
  // truncation).
  static common::Result<video::Video> Load(const std::string& path);

  // Stream variants used by VideoStore and tests.
  static common::Status Write(std::ostream& os, const video::Video& video,
                              PixelEncoding encoding);
  static common::Result<video::Video> Read(std::istream& is);
};

}  // namespace zeus::storage

#endif  // ZEUS_STORAGE_VIDEO_FILE_H_
