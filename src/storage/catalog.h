#ifndef ZEUS_STORAGE_CATALOG_H_
#define ZEUS_STORAGE_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace zeus::storage {

// A trained-plan registration: which dataset it was planned against, the
// action classes (canonical comma-joined names, e.g. "CrossRight" or
// "CrossRight,CrossLeft"), the accuracy target, and the PlanIo prefix the
// checkpoint files live under.
struct PlanEntry {
  std::string dataset;
  std::string classes;
  double accuracy_target = 0.0;
  std::string prefix;
};

// The persistent catalog of a Zeus deployment: which datasets exist (name →
// directory of a SaveDataset() corpus) and which query plans have been
// trained (PlanIo checkpoints). One text file `CATALOG` under the root
// directory; every mutation rewrites it durably before returning OK, so a
// crashed process never loses an acknowledged registration.
//
// The catalog stores locations, not data — datasets and plan weights stay
// in their own files and are loaded lazily by the caller.
class Catalog {
 public:
  // Opens (creating if needed) the catalog rooted at `root`.
  static common::Result<Catalog> Open(const std::string& root);

  // Registers a dataset corpus directory under `name`. The directory is
  // interpreted relative to the catalog root when not absolute.
  common::Status AddDataset(const std::string& name, const std::string& dir);

  // Directory for dataset `name`, or NotFound.
  common::Result<std::string> DatasetDir(const std::string& name) const;

  std::vector<std::string> DatasetNames() const;

  // Registers a plan checkpoint. Replaces any previous entry with the same
  // (dataset, classes, accuracy_target) key. Accuracy targets match by
  // band grid point (core::AccuracyMillis), never raw float equality.
  common::Status AddPlan(const PlanEntry& entry);

  // Band-quantized plan lookup: targets on the same milli grid point
  // match even when they differ by an ulp.
  std::optional<PlanEntry> FindPlan(const std::string& dataset,
                                    const std::string& classes,
                                    double accuracy_target) const;

  const std::vector<PlanEntry>& plans() const { return plans_; }
  const std::string& root() const { return root_; }

 private:
  Catalog() = default;

  common::Status Persist() const;
  std::string Resolve(const std::string& dir) const;

  std::string root_;
  std::vector<std::pair<std::string, std::string>> datasets_;  // name → dir
  std::vector<PlanEntry> plans_;
};

}  // namespace zeus::storage

#endif  // ZEUS_STORAGE_CATALOG_H_
