#include "storage/catalog.h"

#include <filesystem>
#include <fstream>

#include "common/stringutil.h"
#include "core/accuracy.h"

namespace zeus::storage {
namespace {

namespace fs = std::filesystem;

constexpr char kCatalogName[] = "CATALOG";

// Catalog values (names, dirs, class lists) may not contain spaces or
// newlines because the format is line/space delimited.
bool IsCleanToken(const std::string& s) {
  return !s.empty() && s.find_first_of(" \t\n\r") == std::string::npos;
}

}  // namespace

common::Result<Catalog> Catalog::Open(const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return common::Status::IoError("cannot create catalog root: " +
                                   ec.message());
  }
  Catalog catalog;
  catalog.root_ = root;
  const fs::path path = fs::path(root) / kCatalogName;
  if (!fs::exists(path)) return catalog;

  std::ifstream is(path);
  if (!is) return common::Status::IoError("cannot open catalog file");
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    line = common::Trim(line);
    if (line.empty() || line[0] == '#') continue;
    auto tokens = common::Split(line, ' ');
    if (tokens[0] == "dataset" && tokens.size() == 3) {
      catalog.datasets_.emplace_back(tokens[1], tokens[2]);
    } else if (tokens[0] == "plan" && tokens.size() == 5) {
      PlanEntry entry;
      entry.dataset = tokens[1];
      entry.classes = tokens[2];
      try {
        // Quantize on read: the value round-trips through text, so it
        // must land back on the same band grid point it was written at.
        entry.accuracy_target = core::QuantizeAccuracy(std::stod(tokens[3]));
      } catch (...) {
        return common::Status::IoError(
            common::Format("catalog line %d: bad accuracy", lineno));
      }
      entry.prefix = tokens[4];
      catalog.plans_.push_back(std::move(entry));
    } else {
      return common::Status::IoError(
          common::Format("catalog line %d: unrecognized record", lineno));
    }
  }
  return catalog;
}

common::Status Catalog::Persist() const {
  const fs::path path = fs::path(root_) / kCatalogName;
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return common::Status::IoError("cannot write catalog");
    os << "# zeus catalog\n";
    for (const auto& [name, dir] : datasets_) {
      os << "dataset " << name << ' ' << dir << "\n";
    }
    for (const PlanEntry& p : plans_) {
      // %.3f matches the milli-unit band grid exactly — the default
      // ostream precision could alias two nearby targets on re-read.
      os << "plan " << p.dataset << ' ' << p.classes << ' '
         << common::Format("%.3f", p.accuracy_target) << ' ' << p.prefix
         << "\n";
    }
    os.close();
    if (!os.good()) return common::Status::IoError("catalog write failed");
  }
  // Atomic replace so readers never observe a half-written catalog.
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return common::Status::IoError("catalog rename: " + ec.message());
  return common::Status::Ok();
}

std::string Catalog::Resolve(const std::string& dir) const {
  fs::path p(dir);
  if (p.is_absolute()) return dir;
  return (fs::path(root_) / p).string();
}

common::Status Catalog::AddDataset(const std::string& name,
                                   const std::string& dir) {
  if (!IsCleanToken(name) || !IsCleanToken(dir)) {
    return common::Status::InvalidArgument(
        "dataset name/dir must be non-empty and whitespace-free");
  }
  for (const auto& [existing, _] : datasets_) {
    if (existing == name) {
      return common::Status::AlreadyExists("dataset: " + name);
    }
  }
  datasets_.emplace_back(name, dir);
  return Persist();
}

common::Result<std::string> Catalog::DatasetDir(const std::string& name) const {
  for (const auto& [existing, dir] : datasets_) {
    if (existing == name) return Resolve(dir);
  }
  return common::Status::NotFound("dataset: " + name);
}

std::vector<std::string> Catalog::DatasetNames() const {
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, _] : datasets_) names.push_back(name);
  return names;
}

common::Status Catalog::AddPlan(const PlanEntry& entry) {
  if (!IsCleanToken(entry.dataset) || !IsCleanToken(entry.classes) ||
      !IsCleanToken(entry.prefix)) {
    return common::Status::InvalidArgument(
        "plan entry fields must be non-empty and whitespace-free");
  }
  for (PlanEntry& existing : plans_) {
    if (existing.dataset == entry.dataset &&
        existing.classes == entry.classes &&
        core::SameAccuracyBand(existing.accuracy_target,
                               entry.accuracy_target)) {
      existing = entry;
      return Persist();
    }
  }
  plans_.push_back(entry);
  return Persist();
}

std::optional<PlanEntry> Catalog::FindPlan(const std::string& dataset,
                                           const std::string& classes,
                                           double accuracy_target) const {
  for (const PlanEntry& p : plans_) {
    if (p.dataset == dataset && p.classes == classes &&
        core::SameAccuracyBand(p.accuracy_target, accuracy_target)) {
      return p;
    }
  }
  return std::nullopt;
}

}  // namespace zeus::storage
