#include "storage/video_file.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common/crc32.h"
#include "common/stringutil.h"

namespace zeus::storage {
namespace {

// Serialization sink that both writes bytes and folds them into a running
// CRC, so the trailing checksum covers exactly what was emitted.
class CrcWriter {
 public:
  explicit CrcWriter(std::ostream& os) : os_(os) {}

  void Write(const void* data, size_t n) {
    os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    crc_ = common::Crc32(crc_, data, n);
  }

  template <typename T>
  void WritePod(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write(&value, sizeof(T));
  }

  uint32_t crc() const { return crc_; }
  bool ok() const { return os_.good(); }

 private:
  std::ostream& os_;
  uint32_t crc_ = 0;
};

class CrcReader {
 public:
  explicit CrcReader(std::istream& is) : is_(is) {}

  bool Read(void* data, size_t n) {
    is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(is_.gcount()) != n) return false;
    crc_ = common::Crc32(crc_, data, n);
    return true;
  }

  template <typename T>
  bool ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Read(value, sizeof(T));
  }

  uint32_t crc() const { return crc_; }

 private:
  std::istream& is_;
  uint32_t crc_ = 0;
};

// Run-length encodes the per-frame labels: long stretches of kNone dominate
// real annotations, so RLE keeps label storage negligible.
std::vector<std::pair<int32_t, int32_t>> EncodeLabels(
    const video::Video& video) {
  std::vector<std::pair<int32_t, int32_t>> runs;
  for (int f = 0; f < video.num_frames(); ++f) {
    int32_t cls = static_cast<int32_t>(video.Label(f));
    if (!runs.empty() && runs.back().second == cls) {
      ++runs.back().first;
    } else {
      runs.push_back({1, cls});
    }
  }
  return runs;
}

constexpr int kMaxDim = 1 << 20;  // sanity bound on frames/height/width

}  // namespace

common::Status VideoFile::Write(std::ostream& os, const video::Video& video,
                                PixelEncoding encoding) {
  // The magic word is written outside the CRC so the checksum matches the
  // documented "every byte after the magic" contract.
  uint32_t magic = kMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));

  CrcWriter w(os);
  w.WritePod<uint32_t>(kVersion);
  w.WritePod<int32_t>(video.id());
  w.WritePod<int32_t>(video.num_frames());
  w.WritePod<int32_t>(video.height());
  w.WritePod<int32_t>(video.width());
  w.WritePod<uint8_t>(static_cast<uint8_t>(encoding));

  const auto runs = EncodeLabels(video);
  w.WritePod<uint32_t>(static_cast<uint32_t>(runs.size()));
  for (const auto& [length, cls] : runs) {
    w.WritePod<int32_t>(length);
    w.WritePod<int32_t>(cls);
  }

  const size_t n = static_cast<size_t>(video.num_frames()) * video.height() *
                   video.width();
  const float* pixels = n > 0 ? video.FrameData(0) : nullptr;
  switch (encoding) {
    case PixelEncoding::kFloat32:
      if (n > 0) w.Write(pixels, n * sizeof(float));
      break;
    case PixelEncoding::kUint8: {
      float lo = 0.0f, hi = 1.0f;
      if (n > 0) {
        const auto [mn, mx] = std::minmax_element(pixels, pixels + n);
        lo = *mn;
        hi = *mx;
      }
      if (hi <= lo) hi = lo + 1.0f;  // constant frame: any scale works
      w.WritePod<float>(lo);
      w.WritePod<float>(hi);
      const float scale = 255.0f / (hi - lo);
      std::vector<uint8_t> quantized(n);
      for (size_t i = 0; i < n; ++i) {
        float q = (pixels[i] - lo) * scale + 0.5f;
        quantized[i] = static_cast<uint8_t>(std::clamp(q, 0.0f, 255.0f));
      }
      if (n > 0) w.Write(quantized.data(), n);
      break;
    }
    default:
      return common::Status::InvalidArgument("unknown pixel encoding");
  }

  uint32_t crc = w.crc();
  os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  if (!os.good()) return common::Status::IoError("short write");
  return common::Status::Ok();
}

common::Result<video::Video> VideoFile::Read(std::istream& is) {
  uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (static_cast<size_t>(is.gcount()) != sizeof(magic) || magic != kMagic) {
    return common::Status::IoError("bad magic: not a ZVF1 video file");
  }

  CrcReader r(is);
  uint32_t version = 0;
  int32_t id = 0, frames = 0, height = 0, width = 0;
  uint8_t encoding_byte = 0;
  if (!r.ReadPod(&version) || !r.ReadPod(&id) || !r.ReadPod(&frames) ||
      !r.ReadPod(&height) || !r.ReadPod(&width) ||
      !r.ReadPod(&encoding_byte)) {
    return common::Status::IoError("truncated header");
  }
  if (version != kVersion) {
    return common::Status::IoError(
        common::Format("unsupported version %u", version));
  }
  if (frames < 0 || height <= 0 || width <= 0 || frames > kMaxDim ||
      height > kMaxDim || width > kMaxDim) {
    return common::Status::IoError("implausible shape in header");
  }

  video::Video video(frames, height, width);
  video.set_id(id);

  uint32_t num_runs = 0;
  if (!r.ReadPod(&num_runs)) return common::Status::IoError("truncated labels");
  int f = 0;
  for (uint32_t i = 0; i < num_runs; ++i) {
    int32_t length = 0, cls = 0;
    if (!r.ReadPod(&length) || !r.ReadPod(&cls)) {
      return common::Status::IoError("truncated label run");
    }
    if (length <= 0 || f + length > frames) {
      return common::Status::IoError("label runs exceed frame count");
    }
    for (int k = 0; k < length; ++k, ++f) {
      video.SetLabel(f, static_cast<video::ActionClass>(cls));
    }
  }
  if (f != frames) {
    return common::Status::IoError("label runs do not cover all frames");
  }

  const size_t n =
      static_cast<size_t>(frames) * height * width;
  float* pixels = n > 0 ? video.FrameData(0) : nullptr;
  switch (static_cast<PixelEncoding>(encoding_byte)) {
    case PixelEncoding::kFloat32:
      if (n > 0 && !r.Read(pixels, n * sizeof(float))) {
        return common::Status::IoError("truncated float32 pixels");
      }
      break;
    case PixelEncoding::kUint8: {
      float lo = 0.0f, hi = 1.0f;
      if (!r.ReadPod(&lo) || !r.ReadPod(&hi)) {
        return common::Status::IoError("truncated quantization range");
      }
      std::vector<uint8_t> quantized(n);
      if (n > 0 && !r.Read(quantized.data(), n)) {
        return common::Status::IoError("truncated uint8 pixels");
      }
      const float scale = (hi - lo) / 255.0f;
      for (size_t i = 0; i < n; ++i) {
        pixels[i] = lo + static_cast<float>(quantized[i]) * scale;
      }
      break;
    }
    default:
      return common::Status::IoError("unknown pixel encoding byte");
  }

  uint32_t expected_crc = r.crc();
  uint32_t stored_crc = 0;
  is.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
  if (static_cast<size_t>(is.gcount()) != sizeof(stored_crc)) {
    return common::Status::IoError("truncated checksum");
  }
  if (stored_crc != expected_crc) {
    return common::Status::IoError(
        common::Format("checksum mismatch: stored %08x computed %08x",
                       stored_crc, expected_crc));
  }
  return video;
}

common::Status VideoFile::Save(const std::string& path,
                               const video::Video& video,
                               PixelEncoding encoding) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return common::Status::IoError("cannot open for write: " + path);
  ZEUS_RETURN_IF_ERROR(Write(os, video, encoding));
  os.close();
  if (!os.good()) return common::Status::IoError("close failed: " + path);
  return common::Status::Ok();
}

common::Result<video::Video> VideoFile::Load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return common::Status::IoError("cannot open for read: " + path);
  return Read(is);
}

}  // namespace zeus::storage
