#include "cluster/protocol.h"

namespace zeus::cluster {

namespace {

constexpr int kMaxFamily = static_cast<int>(video::DatasetFamily::kKittiLike);
constexpr int kMaxStatusCode =
    static_cast<int>(common::StatusCode::kUnavailable);
constexpr int kMaxQueryState =
    static_cast<int>(engine::QueryState::kCancelled);
constexpr int kMaxConsistency =
    static_cast<int>(engine::Consistency::kDegraded);
constexpr int kMaxTier = static_cast<int>(core::QueryTier::kBestEffort);

void EncodeHist(net::WireWriter* w, const engine::HistogramStats& h) {
  w->I64(h.count);
  w->F64(h.sum_seconds);
  for (long b : h.buckets) w->I64(b);
}

bool DecodeHist(net::WireReader* r, engine::HistogramStats* h) {
  int64_t count = 0;
  if (!r->I64(&count) || !r->F64(&h->sum_seconds)) return false;
  h->count = count;
  for (size_t i = 0; i < engine::HistogramStats::kNumBuckets; ++i) {
    int64_t b = 0;
    if (!r->I64(&b)) return false;
    h->buckets[i] = b;
  }
  return true;
}

void EncodeCounters(net::WireWriter* w, const engine::ServingCounters& c) {
  w->I64(c.queue_depth);
  w->I64(c.active);
  w->I64(c.peak_queue_depth);
  w->I64(c.submitted);
  w->I64(c.completed);
  w->I64(c.failed);
  w->I64(c.cancelled);
  w->I64(c.rejected);
  w->I64(c.drains);
  w->I64(c.planner_runs);
  w->I64(c.cache_hits);
  w->I64(c.disk_loads);
  w->I64(c.degrade_level);
  w->I64(c.band_degraded);
  w->F64(c.degraded_band_seconds);
  w->U32(static_cast<uint32_t>(c.band_plan_hits.size()));
  for (const auto& [band, hits] : c.band_plan_hits) {
    w->I64(band);
    w->I64(hits);
  }
  w->I64(c.confidence.count);
  w->F64(c.confidence.sum);
  for (long b : c.confidence.buckets) w->I64(b);
  EncodeHist(w, c.queue_wait);
  EncodeHist(w, c.exec);
  // Live-stream counters (appended last; the histograms above anchor the
  // legacy prefix).
  w->I64(c.appends);
  w->I64(c.appended_frames);
  w->I64(c.subscribes);
  w->I64(c.unsubscribes);
  w->I64(c.stream_results);
  w->I64(c.stream_dropped);
  w->I64(c.feature_hits);
  w->I64(c.feature_misses);
  w->I64(c.feature_evictions);
}

bool DecodeCounters(net::WireReader* r, engine::ServingCounters* c) {
  int64_t v[14];
  for (auto& x : v) {
    if (!r->I64(&x)) return false;
  }
  c->queue_depth = v[0];
  c->active = v[1];
  c->peak_queue_depth = v[2];
  c->submitted = v[3];
  c->completed = v[4];
  c->failed = v[5];
  c->cancelled = v[6];
  c->rejected = v[7];
  c->drains = v[8];
  c->planner_runs = v[9];
  c->cache_hits = v[10];
  c->disk_loads = v[11];
  c->degrade_level = static_cast<int>(v[12]);
  c->band_degraded = v[13];
  if (!r->F64(&c->degraded_band_seconds)) return false;
  uint32_t bands = 0;
  if (!r->U32(&bands)) return false;
  // Each entry is 16 bytes — reject a lying header before allocating.
  if (bands > r->remaining() / 16) return false;
  c->band_plan_hits.clear();
  for (uint32_t i = 0; i < bands; ++i) {
    int64_t band = 0, hits = 0;
    if (!r->I64(&band) || !r->I64(&hits)) return false;
    c->band_plan_hits[band] = hits;
  }
  int64_t conf_count = 0;
  if (!r->I64(&conf_count) || !r->F64(&c->confidence.sum)) return false;
  c->confidence.count = conf_count;
  for (size_t i = 0; i < engine::ConfidenceStats::kNumBuckets; ++i) {
    int64_t b = 0;
    if (!r->I64(&b)) return false;
    c->confidence.buckets[i] = b;
  }
  if (!DecodeHist(r, &c->queue_wait) || !DecodeHist(r, &c->exec)) return false;
  int64_t s[9];
  for (auto& x : s) {
    if (!r->I64(&x)) return false;
  }
  c->appends = s[0];
  c->appended_frames = s[1];
  c->subscribes = s[2];
  c->unsubscribes = s[3];
  c->stream_results = s[4];
  c->stream_dropped = s[5];
  c->feature_hits = s[6];
  c->feature_misses = s[7];
  c->feature_evictions = s[8];
  return true;
}

}  // namespace

video::DatasetProfile ProfileFor(const DatasetSpec& spec) {
  video::DatasetProfile profile = video::DatasetProfile::ForFamily(spec.family);
  if (spec.num_videos > 0) {
    profile.num_videos = static_cast<int>(spec.num_videos);
  }
  if (spec.frames_per_video > 0) {
    profile.frames_per_video = static_cast<int>(spec.frames_per_video);
  }
  if (spec.native_resolution > 0) {
    profile.native_resolution = static_cast<int>(spec.native_resolution);
  }
  return profile;
}

std::string EncodeDatasetSpec(const DatasetSpec& spec) {
  net::WireWriter w;
  w.Str(spec.name);
  w.U8(static_cast<uint8_t>(spec.family));
  w.U64(spec.seed);
  w.U32(spec.num_videos);
  w.U32(spec.frames_per_video);
  w.U32(spec.native_resolution);
  w.U8(spec.warm_plans ? 1 : 0);
  w.U64(spec.epoch);
  return w.Take();
}

bool DecodeDatasetSpec(const std::string& payload, DatasetSpec* out) {
  net::WireReader r(payload);
  uint8_t family = 0, warm = 0;
  if (!r.Str(&out->name) || !r.U8(&family) || !r.U64(&out->seed) ||
      !r.U32(&out->num_videos) || !r.U32(&out->frames_per_video) ||
      !r.U32(&out->native_resolution) || !r.U8(&warm) ||
      !r.U64(&out->epoch)) {
    return false;
  }
  if (out->name.empty() || family > kMaxFamily) return false;
  out->family = static_cast<video::DatasetFamily>(family);
  out->warm_plans = warm != 0;
  return r.AtEnd();
}

std::string EncodeExecRequest(const ExecRequest& req) {
  net::WireWriter w;
  w.Str(req.dataset);
  w.Str(req.sql);
  w.I32(req.priority);
  w.U8(static_cast<uint8_t>(req.tier));
  w.F64(req.min_accuracy);
  w.F64(req.max_latency_budget);
  return w.Take();
}

bool DecodeExecRequest(const std::string& payload, ExecRequest* out) {
  net::WireReader r(payload);
  uint8_t tier = 0;
  if (!r.Str(&out->dataset) || !r.Str(&out->sql) || !r.I32(&out->priority) ||
      !r.U8(&tier) || !r.F64(&out->min_accuracy) ||
      !r.F64(&out->max_latency_budget)) {
    return false;
  }
  if (tier > kMaxTier) return false;
  out->tier = static_cast<core::QueryTier>(tier);
  return !out->dataset.empty() && r.AtEnd();
}

std::string EncodeQueryResult(const engine::QueryResult& result) {
  net::WireWriter w;
  w.U32(static_cast<uint32_t>(result.segments.size()));
  for (const auto& seg : result.segments) {
    w.I32(seg.video_id);
    w.I32(seg.start);
    w.I32(seg.end);
  }
  w.I64(result.metrics.tp);
  w.I64(result.metrics.fp);
  w.I64(result.metrics.fn);
  w.I64(result.metrics.tn);
  w.F64(result.metrics.precision);
  w.F64(result.metrics.recall);
  w.F64(result.metrics.f1);
  w.F64(result.throughput_fps);
  w.F64(result.gpu_seconds);
  w.F64(result.wall_seconds);
  w.F64(result.plan_seconds);
  w.Str(result.executor);
  w.Str(result.explanation);
  w.U8(static_cast<uint8_t>(result.consistency));
  w.Str(result.divergence);
  w.U64(result.epoch);
  w.F64(result.achieved_confidence);
  w.F64(result.accuracy_band);
  w.U8(static_cast<uint8_t>(result.tier));
  w.U8(result.budget_exhausted ? 1 : 0);
  w.I64(result.window_begin);
  w.I64(result.window_end);
  w.U64(result.frame_epoch);
  return w.Take();
}

bool DecodeQueryResult(const std::string& payload, engine::QueryResult* out) {
  net::WireReader r(payload);
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  // Segment count is bounded by the remaining bytes (12 per segment) —
  // reject before allocating on a lying header.
  if (n > payload.size() / 12) return false;
  out->segments.resize(n);
  for (auto& seg : out->segments) {
    if (!r.I32(&seg.video_id) || !r.I32(&seg.start) || !r.I32(&seg.end)) {
      return false;
    }
  }
  if (!r.I64(&out->metrics.tp) || !r.I64(&out->metrics.fp) ||
      !r.I64(&out->metrics.fn) || !r.I64(&out->metrics.tn) ||
      !r.F64(&out->metrics.precision) || !r.F64(&out->metrics.recall) ||
      !r.F64(&out->metrics.f1) || !r.F64(&out->throughput_fps) ||
      !r.F64(&out->gpu_seconds) || !r.F64(&out->wall_seconds) ||
      !r.F64(&out->plan_seconds) || !r.Str(&out->executor) ||
      !r.Str(&out->explanation)) {
    return false;
  }
  uint8_t consistency = 0;
  if (!r.U8(&consistency) || !r.Str(&out->divergence) || !r.U64(&out->epoch)) {
    return false;
  }
  if (consistency > kMaxConsistency) return false;
  out->consistency = static_cast<engine::Consistency>(consistency);
  // kCertain carries no divergence reason by contract.
  if (out->consistency == engine::Consistency::kCertain &&
      !out->divergence.empty()) {
    return false;
  }
  uint8_t tier = 0, budget_exhausted = 0;
  if (!r.F64(&out->achieved_confidence) || !r.F64(&out->accuracy_band) ||
      !r.U8(&tier) || !r.U8(&budget_exhausted)) {
    return false;
  }
  if (tier > kMaxTier || budget_exhausted > 1) return false;
  out->tier = static_cast<core::QueryTier>(tier);
  out->budget_exhausted = budget_exhausted != 0;
  int64_t window_begin = 0, window_end = 0;
  if (!r.I64(&window_begin) || !r.I64(&window_end) ||
      !r.U64(&out->frame_epoch)) {
    return false;
  }
  // The covered range is a well-formed, non-negative interval or absent
  // (both zero) — a stream consumer dedupes on it, so garbage here is a
  // reject, not a shrug.
  if (window_begin < 0 || window_end < window_begin) return false;
  out->window_begin = window_begin;
  out->window_end = window_end;
  return r.AtEnd();
}

std::string EncodeSyncPlans(const SyncPlansRequest& req) {
  net::WireWriter w;
  w.Str(req.name);
  w.U64(req.epoch);
  return w.Take();
}

bool DecodeSyncPlans(const std::string& payload, SyncPlansRequest* out) {
  net::WireReader r(payload);
  return r.Str(&out->name) && !out->name.empty() && r.U64(&out->epoch) &&
         r.AtEnd();
}

std::string EncodeSyncReply(const SyncReply& reply) {
  net::WireWriter w;
  w.U64(reply.plans_warmed);
  w.U64(reply.epoch);
  return w.Take();
}

bool DecodeSyncReply(const std::string& payload, SyncReply* out) {
  net::WireReader r(payload);
  return r.U64(&out->plans_warmed) && r.U64(&out->epoch) && r.AtEnd();
}

std::string EncodeEpochReply(const EpochReply& reply) {
  net::WireWriter w;
  w.U64(reply.epoch);
  w.U8(reply.has_dataset ? 1 : 0);
  w.U64(reply.stream_length);
  return w.Take();
}

bool DecodeEpochReply(const std::string& payload, EpochReply* out) {
  net::WireReader r(payload);
  uint8_t has = 0;
  if (!r.U64(&out->epoch) || !r.U8(&has) || !r.U64(&out->stream_length)) {
    return false;
  }
  if (has > 1) return false;
  out->has_dataset = has != 0;
  return r.AtEnd();
}

// ---- Live streams ----------------------------------------------------------

std::string EncodeAppendFrames(const AppendFramesRequest& req) {
  net::WireWriter w;
  w.Str(req.name);
  w.U64(req.target_frames);
  w.U64(req.relative_frames);
  w.U64(req.epoch);
  return w.Take();
}

bool DecodeAppendFrames(const std::string& payload, AppendFramesRequest* out) {
  net::WireReader r(payload);
  if (!r.Str(&out->name) || !r.U64(&out->target_frames) ||
      !r.U64(&out->relative_frames) || !r.U64(&out->epoch)) {
    return false;
  }
  // Exactly one of the two forms: absolute (target, epoch) or relative.
  if (out->name.empty()) return false;
  if (out->target_frames == 0 && out->relative_frames == 0) return false;
  if (out->target_frames != 0 && out->relative_frames != 0) return false;
  return r.AtEnd();
}

std::string EncodeAppendReply(const AppendReply& reply) {
  net::WireWriter w;
  w.U64(reply.frame_epoch);
  w.U64(reply.stream_length);
  w.U64(reply.appended);
  return w.Take();
}

bool DecodeAppendReply(const std::string& payload, AppendReply* out) {
  net::WireReader r(payload);
  return r.U64(&out->frame_epoch) && r.U64(&out->stream_length) &&
         r.U64(&out->appended) && out->appended <= out->stream_length &&
         r.AtEnd();
}

std::string EncodeSubscribeRequest(const SubscribeRequest& req) {
  net::WireWriter w;
  w.Str(req.dataset);
  w.Str(req.sql);
  w.U64(req.sub_id);
  w.I64(req.window_frames);
  w.U32(req.max_buffered);
  w.U8(static_cast<uint8_t>(req.tier));
  w.F64(req.min_accuracy);
  w.F64(req.max_latency_budget);
  return w.Take();
}

bool DecodeSubscribeRequest(const std::string& payload,
                            SubscribeRequest* out) {
  net::WireReader r(payload);
  uint8_t tier = 0;
  if (!r.Str(&out->dataset) || !r.Str(&out->sql) || !r.U64(&out->sub_id) ||
      !r.I64(&out->window_frames) || !r.U32(&out->max_buffered) ||
      !r.U8(&tier) || !r.F64(&out->min_accuracy) ||
      !r.F64(&out->max_latency_budget)) {
    return false;
  }
  // sub_id 0 is valid on the wire: a client subscribing THROUGH the router
  // sends 0 to let the router assign the id. The shard side rejects 0 in
  // its handler (its ids are always the caller's — that is what makes
  // re-attach idempotent).
  if (out->dataset.empty() || out->sql.empty() || out->window_frames < 0 ||
      tier > kMaxTier) {
    return false;
  }
  out->tier = static_cast<core::QueryTier>(tier);
  return r.AtEnd();
}

std::string EncodeSubscribeReply(const SubscribeReply& reply) {
  net::WireWriter w;
  w.U64(reply.sub_id);
  w.U64(reply.frame_epoch);
  w.U8(reply.attached_existing ? 1 : 0);
  return w.Take();
}

bool DecodeSubscribeReply(const std::string& payload, SubscribeReply* out) {
  net::WireReader r(payload);
  uint8_t attached = 0;
  if (!r.U64(&out->sub_id) || !r.U64(&out->frame_epoch) || !r.U8(&attached)) {
    return false;
  }
  if (out->sub_id == 0 || attached > 1) return false;
  out->attached_existing = attached != 0;
  return r.AtEnd();
}

std::string EncodeStreamPoll(const StreamPollRequest& req) {
  net::WireWriter w;
  w.U64(req.sub_id);
  w.U64(req.after_seq);
  w.U32(req.timeout_ms);
  return w.Take();
}

bool DecodeStreamPoll(const std::string& payload, StreamPollRequest* out) {
  net::WireReader r(payload);
  return r.U64(&out->sub_id) && out->sub_id != 0 && r.U64(&out->after_seq) &&
         r.U32(&out->timeout_ms) && r.AtEnd();
}

std::string EncodeStreamResult(const StreamResultMsg& msg) {
  net::WireWriter w;
  w.U64(msg.seq);
  w.U64(msg.dropped);
  w.Str(EncodeQueryResult(msg.result));
  return w.Take();
}

bool DecodeStreamResult(const std::string& payload, StreamResultMsg* out) {
  net::WireReader r(payload);
  std::string result;
  if (!r.U64(&out->seq) || out->seq == 0 || !r.U64(&out->dropped) ||
      !r.Str(&result) || !r.AtEnd()) {
    return false;
  }
  return DecodeQueryResult(result, &out->result);
}

std::string EncodeStatsReply(const StatsReply& reply) {
  net::WireWriter w;
  w.I32(reply.stats.shard);
  EncodeCounters(&w, reply.stats);
  w.U32(static_cast<uint32_t>(reply.stats.datasets.size()));
  for (const auto& ds : reply.stats.datasets) {
    w.Str(ds.dataset);
    w.I64(ds.queue_depth);
    w.I32(ds.weight);
    w.I64(ds.submitted);
    w.I64(ds.completed);
    w.I64(ds.failed);
    w.I64(ds.cancelled);
    w.I64(ds.rejected);
    EncodeHist(&w, ds.queue_wait);
    EncodeHist(&w, ds.exec);
  }
  w.I32(reply.num_shards);
  w.I64(reply.failovers);
  w.I64(reply.rehomed_datasets);
  w.I64(reply.dead_shards);
  w.I32(reply.replication);
  w.I64(reply.replicas_behind);
  w.I64(reply.read_failovers);
  w.I64(reply.certain_answers);
  w.I64(reply.degraded_answers);
  w.I64(reply.plan_resyncs);
  return w.Take();
}

bool DecodeStatsReply(const std::string& payload, StatsReply* out) {
  net::WireReader r(payload);
  if (!r.I32(&out->stats.shard)) return false;
  if (!DecodeCounters(&r, &out->stats)) return false;
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  if (n > payload.size() / 8) return false;  // each row is far larger
  out->stats.datasets.resize(n);
  for (auto& ds : out->stats.datasets) {
    int64_t qd = 0, sub = 0, comp = 0, fail = 0, canc = 0, rej = 0;
    if (!r.Str(&ds.dataset) || !r.I64(&qd) || !r.I32(&ds.weight) ||
        !r.I64(&sub) || !r.I64(&comp) || !r.I64(&fail) || !r.I64(&canc) ||
        !r.I64(&rej) || !DecodeHist(&r, &ds.queue_wait) ||
        !DecodeHist(&r, &ds.exec)) {
      return false;
    }
    ds.queue_depth = qd;
    ds.submitted = sub;
    ds.completed = comp;
    ds.failed = fail;
    ds.cancelled = canc;
    ds.rejected = rej;
  }
  if (!r.I32(&out->num_shards) || !r.I64(&out->failovers) ||
      !r.I64(&out->rehomed_datasets) || !r.I64(&out->dead_shards)) {
    return false;
  }
  if (!r.I32(&out->replication) || !r.I64(&out->replicas_behind) ||
      !r.I64(&out->read_failovers) || !r.I64(&out->certain_answers) ||
      !r.I64(&out->degraded_answers) || !r.I64(&out->plan_resyncs)) {
    return false;
  }
  return r.AtEnd();
}

std::string EncodeTicketId(uint64_t id) {
  net::WireWriter w;
  w.U64(id);
  return w.Take();
}

bool DecodeTicketId(const std::string& payload, uint64_t* id) {
  net::WireReader r(payload);
  return r.U64(id) && r.AtEnd();
}

std::string EncodeTicketState(const TicketStateReply& reply) {
  net::WireWriter w;
  w.U8(static_cast<uint8_t>(reply.state));
  w.F64(reply.progress);
  return w.Take();
}

bool DecodeTicketState(const std::string& payload, TicketStateReply* out) {
  net::WireReader r(payload);
  uint8_t state = 0;
  if (!r.U8(&state) || !r.F64(&out->progress)) return false;
  if (state > kMaxQueryState) return false;
  out->state = static_cast<engine::QueryState>(state);
  return r.AtEnd();
}

std::string EncodeRegisterReply(uint64_t plans_warmed) {
  net::WireWriter w;
  w.U64(plans_warmed);
  return w.Take();
}

bool DecodeRegisterReply(const std::string& payload, uint64_t* plans_warmed) {
  net::WireReader r(payload);
  return r.U64(plans_warmed) && r.AtEnd();
}

std::string EncodeName(const std::string& name) {
  net::WireWriter w;
  w.Str(name);
  return w.Take();
}

bool DecodeName(const std::string& payload, std::string* name) {
  net::WireReader r(payload);
  return r.Str(name) && !name->empty() && r.AtEnd();
}

net::Frame MakeErrorFrame(uint64_t request_id, const common::Status& status) {
  net::Frame frame;
  frame.type = net::FrameType::kError;
  frame.request_id = request_id;
  net::WireWriter w;
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.message());
  frame.payload = w.Take();
  return frame;
}

common::Status DecodeErrorFrame(const net::Frame& frame) {
  net::WireReader r(frame.payload);
  uint8_t code = 0;
  std::string message;
  if (!r.U8(&code) || !r.Str(&message) || code > kMaxStatusCode || code == 0) {
    return common::Status::Unavailable("malformed error frame");
  }
  return common::Status(static_cast<common::StatusCode>(code),
                        std::move(message));
}

}  // namespace zeus::cluster
