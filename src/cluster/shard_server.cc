#include "cluster/shard_server.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "core/query.h"

namespace zeus::cluster {

namespace {

net::Frame OkFrame(uint64_t request_id) {
  net::Frame f;
  f.type = net::FrameType::kOk;
  f.request_id = request_id;
  return f;
}

net::Frame Reply(uint64_t request_id, net::FrameType type,
                 std::string payload) {
  net::Frame f;
  f.type = type;
  f.request_id = request_id;
  f.payload = std::move(payload);
  return f;
}

net::Frame BadPayload(const net::Frame& req) {
  return MakeErrorFrame(
      req.request_id,
      common::Status::InvalidArgument(
          std::string("malformed ") + net::FrameTypeName(req.type) +
          " payload"));
}

}  // namespace

ShardServer::ShardServer(Options options)
    : opts_(std::move(options)), engine_(opts_.engine) {}

ShardServer::~ShardServer() { Stop(); }

common::Status ShardServer::Start() {
  if (running_.load()) return common::Status::FailedPrecondition("running");
  ZEUS_RETURN_IF_ERROR(listener_.Listen(opts_.host, opts_.port));
  port_ = listener_.port();
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  ZEUS_LOG(Info) << opts_.name << " listening on " << opts_.host << ":"
                 << port_;
  return common::Status::Ok();
}

void ShardServer::CloseAllConns() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& [fd, weak] : conns_) {
    if (auto conn = weak.lock()) conn->Shutdown();
  }
}

void ShardServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  listener_.Close();
  // Drain before kicking connections: requests already inside the engine
  // finish and their responses still go out. New frames racing in will
  // fail when their connection is shut below — the cluster contract is
  // explicit kUnavailable, not silent loss, and the client side maps a
  // dead connection to exactly that.
  engine_.DrainAll();
  CloseAllConns();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
}

void ShardServer::Kill() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  listener_.Close();
  CloseAllConns();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
}

void ShardServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      ZEUS_LOG(Warning) << opts_.name
                        << " accept failed: " << accepted.status().ToString();
      return;
    }
    auto conn = std::make_shared<net::FrameConn>(
        std::move(accepted).value(), "server:" + opts_.name);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load()) return;
    conns_[conn->socket().fd()] = conn;
    conn_threads_.emplace_back([this, conn] { ConnLoop(conn); });
  }
}

void ShardServer::ConnLoop(std::shared_ptr<net::FrameConn> conn) {
  while (!stopping_.load()) {
    net::Frame req;
    // Block until a frame arrives; Stop()/Kill() shut the socket down,
    // which surfaces here as an error.
    common::Status st = conn->ReadFrame(&req, /*deadline_ms=*/-1);
    if (!st.ok()) break;  // clean close, corrupt frame, or shutdown
    net::Frame resp = Dispatch(req);
    st = conn->WriteFrame(resp, opts_.write_deadline_ms);
    if (!st.ok()) break;
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn->socket().fd());
}

net::Frame ShardServer::Dispatch(const net::Frame& req) {
  switch (req.type) {
    case net::FrameType::kPing:
      return Reply(req.request_id, net::FrameType::kPong, {});
    case net::FrameType::kExecute:
      return HandleExecute(req);
    case net::FrameType::kSubmit:
      return HandleSubmit(req);
    case net::FrameType::kCancel:
      return HandleCancel(req);
    case net::FrameType::kTicketState:
      return HandleTicketState(req);
    case net::FrameType::kTicketWait:
      return HandleTicketWait(req);
    case net::FrameType::kStats:
      return HandleStats(req);
    case net::FrameType::kRegisterDataset:
      return HandleRegisterDataset(req);
    case net::FrameType::kRemoveDataset:
      return HandleRemoveDataset(req);
    case net::FrameType::kSyncPlans:
      return HandleSyncPlans(req);
    case net::FrameType::kEpochQuery:
      return HandleEpochQuery(req);
    default:
      return MakeErrorFrame(
          req.request_id,
          common::Status::InvalidArgument(
              std::string("unexpected frame ") +
              net::FrameTypeName(req.type)));
  }
}

net::Frame ShardServer::HandleExecute(const net::Frame& req) {
  ExecRequest exec;
  if (!DecodeExecRequest(req.payload, &exec)) return BadPayload(req);
  auto parsed = core::QueryParser::Parse(exec.sql);
  if (!parsed.ok()) return MakeErrorFrame(req.request_id, parsed.status());
  engine::QueryOptions opts = engine_.options().exec;
  opts.priority = exec.priority;
  opts.tier = exec.tier;
  opts.min_accuracy = exec.min_accuracy;
  opts.max_latency_budget = exec.max_latency_budget;
  auto result = engine_.Execute(exec.dataset, parsed.value(), opts);
  if (!result.ok()) return MakeErrorFrame(req.request_id, result.status());
  engine::QueryResult stamped = std::move(result).value();
  stamped.epoch = AppliedEpoch(exec.dataset);
  return Reply(req.request_id, net::FrameType::kResult,
               EncodeQueryResult(stamped));
}

net::Frame ShardServer::HandleSubmit(const net::Frame& req) {
  ExecRequest exec;
  if (!DecodeExecRequest(req.payload, &exec)) return BadPayload(req);
  auto parsed = core::QueryParser::Parse(exec.sql);
  if (!parsed.ok()) return MakeErrorFrame(req.request_id, parsed.status());
  engine::QueryOptions opts = engine_.options().exec;
  opts.priority = exec.priority;
  opts.tier = exec.tier;
  opts.min_accuracy = exec.min_accuracy;
  opts.max_latency_budget = exec.max_latency_budget;
  auto ticket = engine_.Submit(exec.dataset, parsed.value(), opts);
  if (!ticket.ok()) return MakeErrorFrame(req.request_id, ticket.status());
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    id = next_ticket_id_++;
    tickets_.emplace(id,
                     PendingTicket{std::move(ticket).value(), exec.dataset});
  }
  return Reply(req.request_id, net::FrameType::kSubmitReply,
               EncodeTicketId(id));
}

net::Frame ShardServer::HandleCancel(const net::Frame& req) {
  uint64_t id = 0;
  if (!DecodeTicketId(req.payload, &id)) return BadPayload(req);
  std::lock_guard<std::mutex> lock(tickets_mu_);
  auto it = tickets_.find(id);
  // Cancel of an unknown (already reaped / never existed) ticket is a
  // no-op, which is what makes kCancel idempotent and retry-safe.
  if (it != tickets_.end()) it->second.ticket.Cancel();
  return OkFrame(req.request_id);
}

net::Frame ShardServer::HandleTicketState(const net::Frame& req) {
  uint64_t id = 0;
  if (!DecodeTicketId(req.payload, &id)) return BadPayload(req);
  std::lock_guard<std::mutex> lock(tickets_mu_);
  auto it = tickets_.find(id);
  if (it == tickets_.end()) {
    return MakeErrorFrame(req.request_id,
                          common::Status::NotFound("unknown ticket"));
  }
  TicketStateReply reply;
  reply.state = it->second.ticket.state();
  reply.progress = it->second.ticket.progress();
  return Reply(req.request_id, net::FrameType::kTicketStateReply,
               EncodeTicketState(reply));
}

net::Frame ShardServer::HandleTicketWait(const net::Frame& req) {
  uint64_t id = 0;
  if (!DecodeTicketId(req.payload, &id)) return BadPayload(req);
  std::optional<engine::QueryTicket> ticket;
  std::string dataset;
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    auto it = tickets_.find(id);
    if (it != tickets_.end()) {
      ticket = it->second.ticket;  // copy: shared state
      dataset = it->second.dataset;
    }
  }
  if (!ticket.has_value()) {
    return MakeErrorFrame(req.request_id,
                          common::Status::NotFound("unknown ticket"));
  }
  // Wait outside the lock — other ticket operations proceed meanwhile.
  const auto& result = ticket->Wait();
  {
    // Terminal: the ticket has served its purpose.
    std::lock_guard<std::mutex> lock(tickets_mu_);
    tickets_.erase(id);
  }
  if (!result.ok()) return MakeErrorFrame(req.request_id, result.status());
  engine::QueryResult stamped = result.value();
  stamped.epoch = AppliedEpoch(dataset);
  return Reply(req.request_id, net::FrameType::kResult,
               EncodeQueryResult(stamped));
}

net::Frame ShardServer::HandleStats(const net::Frame& req) {
  StatsReply reply;
  reply.stats = engine_.Stats();
  reply.num_shards = 1;
  return Reply(req.request_id, net::FrameType::kStatsReply,
               EncodeStatsReply(reply));
}

net::Frame ShardServer::HandleRegisterDataset(const net::Frame& req) {
  DatasetSpec spec;
  if (!DecodeDatasetSpec(req.payload, &spec)) return BadPayload(req);
  if (!engine_.HasDataset(spec.name)) {
    auto dataset =
        video::SyntheticDataset::Generate(ProfileFor(spec), spec.seed);
    common::Status st = engine_.RegisterDataset(spec.name, std::move(dataset));
    // A racing duplicate registration is fine — the spec is deterministic,
    // so both writers produced the same dataset.
    if (!st.ok() && st.code() != common::StatusCode::kAlreadyExists) {
      return MakeErrorFrame(req.request_id, st);
    }
    ZEUS_LOG(Info) << opts_.name << " registered dataset '" << spec.name
                   << "'";
  }
  uint64_t warmed = 0;
  if (spec.warm_plans) {
    warmed = engine_.WarmUpDataset(spec.name);
    if (warmed > 0) {
      ZEUS_LOG(Info) << opts_.name << " warmed " << warmed << " plan(s) for '"
                     << spec.name << "'";
    }
  }
  {
    // Monotone: a re-delivered (retried or stale) registration can only
    // hold the epoch, never roll it back.
    std::lock_guard<std::mutex> lock(epochs_mu_);
    uint64_t& applied = epochs_[spec.name];
    applied = std::max(applied, spec.epoch);
  }
  return Reply(req.request_id, net::FrameType::kRegisterReply,
               EncodeRegisterReply(warmed));
}

net::Frame ShardServer::HandleRemoveDataset(const net::Frame& req) {
  std::string name;
  if (!DecodeName(req.payload, &name)) return BadPayload(req);
  if (engine_.HasDataset(name)) {
    engine_.DrainDataset(name);
    engine_.RemoveDataset(name);
  }
  {
    std::lock_guard<std::mutex> lock(epochs_mu_);
    epochs_.erase(name);
  }
  return OkFrame(req.request_id);
}

net::Frame ShardServer::HandleSyncPlans(const net::Frame& req) {
  SyncPlansRequest sync;
  if (!DecodeSyncPlans(req.payload, &sync)) return BadPayload(req);
  if (!engine_.HasDataset(sync.name)) {
    // No replica here — the router falls back to a full RegisterDataset.
    return MakeErrorFrame(
        req.request_id,
        common::Status::NotFound("no replica of '" + sync.name + "'"));
  }
  SyncReply reply;
  // Re-read the dataset's persisted plans from the shared catalog; plans
  // trained elsewhere since the last sync become memory-resident here, so
  // a later promotion answers with planner_runs == 0.
  reply.plans_warmed = engine_.WarmUpDataset(sync.name);
  {
    std::lock_guard<std::mutex> lock(epochs_mu_);
    uint64_t& applied = epochs_[sync.name];
    applied = std::max(applied, sync.epoch);
    reply.epoch = applied;
  }
  return Reply(req.request_id, net::FrameType::kSyncReply,
               EncodeSyncReply(reply));
}

net::Frame ShardServer::HandleEpochQuery(const net::Frame& req) {
  std::string name;
  if (!DecodeName(req.payload, &name)) return BadPayload(req);
  EpochReply reply;
  reply.has_dataset = engine_.HasDataset(name);
  reply.epoch = AppliedEpoch(name);
  return Reply(req.request_id, net::FrameType::kEpochReply,
               EncodeEpochReply(reply));
}

uint64_t ShardServer::AppliedEpoch(const std::string& name) {
  std::lock_guard<std::mutex> lock(epochs_mu_);
  auto it = epochs_.find(name);
  return it != epochs_.end() ? it->second : 0;
}

}  // namespace zeus::cluster
