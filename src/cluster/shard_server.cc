#include "cluster/shard_server.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "core/query.h"

namespace zeus::cluster {

namespace {

net::Frame OkFrame(uint64_t request_id) {
  net::Frame f;
  f.type = net::FrameType::kOk;
  f.request_id = request_id;
  return f;
}

net::Frame Reply(uint64_t request_id, net::FrameType type,
                 std::string payload) {
  net::Frame f;
  f.type = type;
  f.request_id = request_id;
  f.payload = std::move(payload);
  return f;
}

net::Frame BadPayload(const net::Frame& req) {
  return MakeErrorFrame(
      req.request_id,
      common::Status::InvalidArgument(
          std::string("malformed ") + net::FrameTypeName(req.type) +
          " payload"));
}

}  // namespace

ShardServer::ShardServer(Options options)
    : opts_(std::move(options)), engine_(opts_.engine) {}

ShardServer::~ShardServer() { Stop(); }

common::Status ShardServer::Start() {
  if (running_.load()) return common::Status::FailedPrecondition("running");
  ZEUS_RETURN_IF_ERROR(listener_.Listen(opts_.host, opts_.port));
  port_ = listener_.port();
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  ZEUS_LOG(Info) << opts_.name << " listening on " << opts_.host << ":"
                 << port_;
  return common::Status::Ok();
}

void ShardServer::CloseAllConns() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& [fd, weak] : conns_) {
    if (auto conn = weak.lock()) conn->Shutdown();
  }
}

void ShardServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  listener_.Close();
  // Cancel standing queries first: a connection thread parked in a
  // long-poll Next() wakes as kCancelled instead of riding out its
  // timeout against a closing server.
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (auto& [id, sub] : subs_) sub.ticket.Cancel();
  }
  // Drain before kicking connections: requests already inside the engine
  // finish and their responses still go out. New frames racing in will
  // fail when their connection is shut below — the cluster contract is
  // explicit kUnavailable, not silent loss, and the client side maps a
  // dead connection to exactly that.
  engine_.DrainAll();
  CloseAllConns();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
}

void ShardServer::Kill() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  listener_.Close();
  {
    // Even the kill -9 stand-in must unpark long-poll threads — they are
    // this process's threads, not the dead server's.
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (auto& [id, sub] : subs_) sub.ticket.Cancel();
  }
  CloseAllConns();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
}

void ShardServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      ZEUS_LOG(Warning) << opts_.name
                        << " accept failed: " << accepted.status().ToString();
      return;
    }
    auto conn = std::make_shared<net::FrameConn>(
        std::move(accepted).value(), "server:" + opts_.name);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load()) return;
    conns_[conn->socket().fd()] = conn;
    conn_threads_.emplace_back([this, conn] { ConnLoop(conn); });
  }
}

void ShardServer::ConnLoop(std::shared_ptr<net::FrameConn> conn) {
  while (!stopping_.load()) {
    net::Frame req;
    // Block until a frame arrives; Stop()/Kill() shut the socket down,
    // which surfaces here as an error.
    common::Status st = conn->ReadFrame(&req, /*deadline_ms=*/-1);
    if (!st.ok()) break;  // clean close, corrupt frame, or shutdown
    net::Frame resp = Dispatch(req);
    st = conn->WriteFrame(resp, opts_.write_deadline_ms);
    if (!st.ok()) break;
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn->socket().fd());
}

net::Frame ShardServer::Dispatch(const net::Frame& req) {
  switch (req.type) {
    case net::FrameType::kPing:
      return Reply(req.request_id, net::FrameType::kPong, {});
    case net::FrameType::kExecute:
      return HandleExecute(req);
    case net::FrameType::kSubmit:
      return HandleSubmit(req);
    case net::FrameType::kCancel:
      return HandleCancel(req);
    case net::FrameType::kTicketState:
      return HandleTicketState(req);
    case net::FrameType::kTicketWait:
      return HandleTicketWait(req);
    case net::FrameType::kStats:
      return HandleStats(req);
    case net::FrameType::kRegisterDataset:
      return HandleRegisterDataset(req);
    case net::FrameType::kRemoveDataset:
      return HandleRemoveDataset(req);
    case net::FrameType::kSyncPlans:
      return HandleSyncPlans(req);
    case net::FrameType::kEpochQuery:
      return HandleEpochQuery(req);
    case net::FrameType::kAppendFrames:
      return HandleAppendFrames(req);
    case net::FrameType::kSubscribe:
      return HandleSubscribe(req);
    case net::FrameType::kStreamPoll:
      return HandleStreamPoll(req);
    case net::FrameType::kUnsubscribe:
      return HandleUnsubscribe(req);
    default:
      return MakeErrorFrame(
          req.request_id,
          common::Status::InvalidArgument(
              std::string("unexpected frame ") +
              net::FrameTypeName(req.type)));
  }
}

net::Frame ShardServer::HandleExecute(const net::Frame& req) {
  ExecRequest exec;
  if (!DecodeExecRequest(req.payload, &exec)) return BadPayload(req);
  auto parsed = core::QueryParser::Parse(exec.sql);
  if (!parsed.ok()) return MakeErrorFrame(req.request_id, parsed.status());
  engine::QueryOptions opts = engine_.options().exec;
  opts.priority = exec.priority;
  opts.tier = exec.tier;
  opts.min_accuracy = exec.min_accuracy;
  opts.max_latency_budget = exec.max_latency_budget;
  auto result = engine_.Execute(exec.dataset, parsed.value(), opts);
  if (!result.ok()) return MakeErrorFrame(req.request_id, result.status());
  engine::QueryResult stamped = std::move(result).value();
  stamped.epoch = AppliedEpoch(exec.dataset);
  return Reply(req.request_id, net::FrameType::kResult,
               EncodeQueryResult(stamped));
}

net::Frame ShardServer::HandleSubmit(const net::Frame& req) {
  ExecRequest exec;
  if (!DecodeExecRequest(req.payload, &exec)) return BadPayload(req);
  auto parsed = core::QueryParser::Parse(exec.sql);
  if (!parsed.ok()) return MakeErrorFrame(req.request_id, parsed.status());
  engine::QueryOptions opts = engine_.options().exec;
  opts.priority = exec.priority;
  opts.tier = exec.tier;
  opts.min_accuracy = exec.min_accuracy;
  opts.max_latency_budget = exec.max_latency_budget;
  auto ticket = engine_.Submit(exec.dataset, parsed.value(), opts);
  if (!ticket.ok()) return MakeErrorFrame(req.request_id, ticket.status());
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    id = next_ticket_id_++;
    tickets_.emplace(id,
                     PendingTicket{std::move(ticket).value(), exec.dataset});
  }
  return Reply(req.request_id, net::FrameType::kSubmitReply,
               EncodeTicketId(id));
}

net::Frame ShardServer::HandleCancel(const net::Frame& req) {
  uint64_t id = 0;
  if (!DecodeTicketId(req.payload, &id)) return BadPayload(req);
  std::lock_guard<std::mutex> lock(tickets_mu_);
  auto it = tickets_.find(id);
  // Cancel of an unknown (already reaped / never existed) ticket is a
  // no-op, which is what makes kCancel idempotent and retry-safe.
  if (it != tickets_.end()) it->second.ticket.Cancel();
  return OkFrame(req.request_id);
}

net::Frame ShardServer::HandleTicketState(const net::Frame& req) {
  uint64_t id = 0;
  if (!DecodeTicketId(req.payload, &id)) return BadPayload(req);
  std::lock_guard<std::mutex> lock(tickets_mu_);
  auto it = tickets_.find(id);
  if (it == tickets_.end()) {
    return MakeErrorFrame(req.request_id,
                          common::Status::NotFound("unknown ticket"));
  }
  TicketStateReply reply;
  reply.state = it->second.ticket.state();
  reply.progress = it->second.ticket.progress();
  return Reply(req.request_id, net::FrameType::kTicketStateReply,
               EncodeTicketState(reply));
}

net::Frame ShardServer::HandleTicketWait(const net::Frame& req) {
  uint64_t id = 0;
  if (!DecodeTicketId(req.payload, &id)) return BadPayload(req);
  std::optional<engine::QueryTicket> ticket;
  std::string dataset;
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    auto it = tickets_.find(id);
    if (it != tickets_.end()) {
      ticket = it->second.ticket;  // copy: shared state
      dataset = it->second.dataset;
    }
  }
  if (!ticket.has_value()) {
    return MakeErrorFrame(req.request_id,
                          common::Status::NotFound("unknown ticket"));
  }
  // Wait outside the lock — other ticket operations proceed meanwhile.
  const auto& result = ticket->Wait();
  {
    // Terminal: the ticket has served its purpose.
    std::lock_guard<std::mutex> lock(tickets_mu_);
    tickets_.erase(id);
  }
  if (!result.ok()) return MakeErrorFrame(req.request_id, result.status());
  engine::QueryResult stamped = result.value();
  stamped.epoch = AppliedEpoch(dataset);
  return Reply(req.request_id, net::FrameType::kResult,
               EncodeQueryResult(stamped));
}

net::Frame ShardServer::HandleStats(const net::Frame& req) {
  StatsReply reply;
  reply.stats = engine_.Stats();
  reply.num_shards = 1;
  return Reply(req.request_id, net::FrameType::kStatsReply,
               EncodeStatsReply(reply));
}

net::Frame ShardServer::HandleRegisterDataset(const net::Frame& req) {
  DatasetSpec spec;
  if (!DecodeDatasetSpec(req.payload, &spec)) return BadPayload(req);
  if (!engine_.HasDataset(spec.name)) {
    auto dataset =
        video::SyntheticDataset::Generate(ProfileFor(spec), spec.seed);
    common::Status st = engine_.RegisterDataset(spec.name, std::move(dataset));
    // A racing duplicate registration is fine — the spec is deterministic,
    // so both writers produced the same dataset.
    if (!st.ok() && st.code() != common::StatusCode::kAlreadyExists) {
      return MakeErrorFrame(req.request_id, st);
    }
    ZEUS_LOG(Info) << opts_.name << " registered dataset '" << spec.name
                   << "'";
  }
  uint64_t warmed = 0;
  if (spec.warm_plans) {
    warmed = engine_.WarmUpDataset(spec.name);
    if (warmed > 0) {
      ZEUS_LOG(Info) << opts_.name << " warmed " << warmed << " plan(s) for '"
                     << spec.name << "'";
    }
  }
  {
    // Monotone: a re-delivered (retried or stale) registration can only
    // hold the epoch, never roll it back.
    std::lock_guard<std::mutex> lock(epochs_mu_);
    uint64_t& applied = epochs_[spec.name];
    applied = std::max(applied, spec.epoch);
  }
  return Reply(req.request_id, net::FrameType::kRegisterReply,
               EncodeRegisterReply(warmed));
}

net::Frame ShardServer::HandleRemoveDataset(const net::Frame& req) {
  std::string name;
  if (!DecodeName(req.payload, &name)) return BadPayload(req);
  if (engine_.HasDataset(name)) {
    engine_.DrainDataset(name);
    engine_.RemoveDataset(name);
  }
  {
    std::lock_guard<std::mutex> lock(epochs_mu_);
    epochs_.erase(name);
  }
  return OkFrame(req.request_id);
}

net::Frame ShardServer::HandleSyncPlans(const net::Frame& req) {
  SyncPlansRequest sync;
  if (!DecodeSyncPlans(req.payload, &sync)) return BadPayload(req);
  if (!engine_.HasDataset(sync.name)) {
    // No replica here — the router falls back to a full RegisterDataset.
    return MakeErrorFrame(
        req.request_id,
        common::Status::NotFound("no replica of '" + sync.name + "'"));
  }
  SyncReply reply;
  // Re-read the dataset's persisted plans from the shared catalog; plans
  // trained elsewhere since the last sync become memory-resident here, so
  // a later promotion answers with planner_runs == 0.
  reply.plans_warmed = engine_.WarmUpDataset(sync.name);
  {
    std::lock_guard<std::mutex> lock(epochs_mu_);
    uint64_t& applied = epochs_[sync.name];
    applied = std::max(applied, sync.epoch);
    reply.epoch = applied;
  }
  return Reply(req.request_id, net::FrameType::kSyncReply,
               EncodeSyncReply(reply));
}

net::Frame ShardServer::HandleEpochQuery(const net::Frame& req) {
  std::string name;
  if (!DecodeName(req.payload, &name)) return BadPayload(req);
  EpochReply reply;
  reply.has_dataset = engine_.HasDataset(name);
  reply.epoch = AppliedEpoch(name);
  if (const video::SyntheticDataset* ds = engine_.dataset(name)) {
    reply.stream_length = static_cast<uint64_t>(ds->stream_length());
  }
  return Reply(req.request_id, net::FrameType::kEpochReply,
               EncodeEpochReply(reply));
}

net::Frame ShardServer::HandleAppendFrames(const net::Frame& req) {
  AppendFramesRequest append;
  if (!DecodeAppendFrames(req.payload, &append)) return BadPayload(req);
  // Shards take only the absolute form: by the time an append reaches a
  // replica it must be replayable as-is (protocol.h). The relative
  // convenience form is the router's to resolve.
  if (append.target_frames == 0) {
    return MakeErrorFrame(
        req.request_id,
        common::Status::InvalidArgument(
            "shard requires the absolute append form (target_frames > 0)"));
  }
  auto outcome = engine_.GrowDataset(
      append.name, static_cast<long>(append.target_frames), append.epoch);
  if (!outcome.ok()) return MakeErrorFrame(req.request_id, outcome.status());
  {
    // The append commits a group epoch like a registration does: monotone,
    // so replays and out-of-order deliveries can only hold it.
    std::lock_guard<std::mutex> lock(epochs_mu_);
    uint64_t& applied = epochs_[append.name];
    applied = std::max(applied, append.epoch);
  }
  AppendReply reply;
  reply.frame_epoch = outcome.value().frame_epoch;
  reply.stream_length = static_cast<uint64_t>(outcome.value().stream_length);
  reply.appended = static_cast<uint64_t>(outcome.value().appended);
  return Reply(req.request_id, net::FrameType::kAppendReply,
               EncodeAppendReply(reply));
}

net::Frame ShardServer::HandleSubscribe(const net::Frame& req) {
  SubscribeRequest sub;
  if (!DecodeSubscribeRequest(req.payload, &sub)) return BadPayload(req);
  if (sub.sub_id == 0) {
    // Ids are always the caller's here (the router's routed id, or a direct
    // client's own): a server-assigned id could not survive a re-attach.
    return MakeErrorFrame(
        req.request_id,
        common::Status::InvalidArgument("shard subscribe needs a caller-"
                                        "chosen sub_id (> 0)"));
  }
  SubscribeReply reply;
  reply.sub_id = sub.sub_id;
  {
    // Replay / failover re-attach: the id already names a live
    // subscription here — join it instead of stacking a second one.
    std::lock_guard<std::mutex> lock(subs_mu_);
    auto it = subs_.find(sub.sub_id);
    if (it != subs_.end() && !it->second.ticket.cancelled()) {
      const video::SyntheticDataset* ds = engine_.dataset(it->second.dataset);
      reply.frame_epoch = ds != nullptr ? ds->frame_epoch() : 0;
      reply.attached_existing = true;
      return Reply(req.request_id, net::FrameType::kSubscribeReply,
                   EncodeSubscribeReply(reply));
    }
  }
  engine::SubscribeOptions opts;
  opts.exec = engine_.options().exec;
  opts.exec.tier = sub.tier;
  opts.exec.min_accuracy = sub.min_accuracy;
  opts.exec.max_latency_budget = sub.max_latency_budget;
  opts.window_frames = sub.window_frames;
  if (sub.max_buffered > 0) opts.max_buffered = sub.max_buffered;
  auto ticket = engine_.Subscribe(sub.dataset, sub.sql, opts);
  if (!ticket.ok()) return MakeErrorFrame(req.request_id, ticket.status());
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    // A cancelled husk under this id (the replay check above skipped it)
    // is replaced — same id, fresh subscription, deterministic results.
    subs_.erase(sub.sub_id);
    subs_.emplace(sub.sub_id,
                  PendingSub{std::move(ticket).value(), sub.dataset});
  }
  const video::SyntheticDataset* ds = engine_.dataset(sub.dataset);
  reply.frame_epoch = ds != nullptr ? ds->frame_epoch() : 0;
  return Reply(req.request_id, net::FrameType::kSubscribeReply,
               EncodeSubscribeReply(reply));
}

net::Frame ShardServer::HandleStreamPoll(const net::Frame& req) {
  StreamPollRequest poll;
  if (!DecodeStreamPoll(req.payload, &poll)) return BadPayload(req);
  std::optional<engine::SubscriptionTicket> ticket;
  std::string dataset;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    auto it = subs_.find(poll.sub_id);
    if (it != subs_.end()) {
      ticket = it->second.ticket;  // copy: shared state
      dataset = it->second.dataset;
    }
  }
  if (!ticket.has_value()) {
    // This shard does not know the subscription — restarted, or never its
    // home. NotFound is the router's cue to re-attach (re-subscribe) on
    // the current primary and retry.
    return MakeErrorFrame(req.request_id,
                          common::Status::NotFound("unknown subscription"));
  }
  // Long-poll outside the lock; timeouts surface as kUnavailable
  // (retryable, nothing consumed — the cursor is the client's).
  auto update =
      ticket->Next(poll.after_seq, static_cast<int>(poll.timeout_ms));
  if (!update.ok()) return MakeErrorFrame(req.request_id, update.status());
  StreamResultMsg msg;
  msg.seq = update.value().seq;
  msg.dropped = static_cast<uint64_t>(ticket->dropped());
  msg.result = std::move(update).value().result;
  msg.result.epoch = AppliedEpoch(dataset);
  return Reply(req.request_id, net::FrameType::kStreamResult,
               EncodeStreamResult(msg));
}

net::Frame ShardServer::HandleUnsubscribe(const net::Frame& req) {
  uint64_t id = 0;
  if (!DecodeTicketId(req.payload, &id)) return BadPayload(req);
  std::lock_guard<std::mutex> lock(subs_mu_);
  auto it = subs_.find(id);
  // Unknown id (already unsubscribed, or a shard that restarted) is a
  // clean no-op — kUnsubscribe is idempotent and retry-safe.
  if (it != subs_.end()) {
    it->second.ticket.Cancel();
    subs_.erase(it);
  }
  return OkFrame(req.request_id);
}

uint64_t ShardServer::AppliedEpoch(const std::string& name) {
  std::lock_guard<std::mutex> lock(epochs_mu_);
  auto it = epochs_.find(name);
  return it != epochs_.end() ? it->second : 0;
}

}  // namespace zeus::cluster
