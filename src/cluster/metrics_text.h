#ifndef ZEUS_CLUSTER_METRICS_TEXT_H_
#define ZEUS_CLUSTER_METRICS_TEXT_H_

#include <cstdint>
#include <string>

#include "engine/metrics.h"

namespace zeus::cluster {

// Cluster-level health counters the router maintains alongside the
// engine-level GroupStats it aggregates from its shards.
struct ClusterHealth {
  int64_t failovers = 0;
  int64_t rehomed_datasets = 0;
  int64_t dead_shards = 0;
};

// Renders GroupStats (+ cluster health) in the Prometheus text exposition
// format (version 0.0.4): `# HELP` / `# TYPE` preambles, counters suffixed
// _total, histograms as cumulative `le` buckets with +Inf, per-shard
// breakdowns as `shard="<id>"` labels. This is what the router serves on
// GET /metrics; tests/metrics_text_test.cc pins the format.
std::string PrometheusText(const engine::GroupStats& stats,
                           const ClusterHealth& health);

}  // namespace zeus::cluster

#endif  // ZEUS_CLUSTER_METRICS_TEXT_H_
