#ifndef ZEUS_CLUSTER_METRICS_TEXT_H_
#define ZEUS_CLUSTER_METRICS_TEXT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/metrics.h"

namespace zeus::cluster {

// Cluster-level health counters the router maintains alongside the
// engine-level GroupStats it aggregates from its shards.
struct ClusterHealth {
  int64_t failovers = 0;
  int64_t rehomed_datasets = 0;
  int64_t dead_shards = 0;

  // Replication / certain-answer contract.
  int64_t replication = 1;       // configured replicas per dataset
  int64_t replicas_behind = 0;   // live target replicas below committed
  int64_t read_failovers = 0;    // reads served by a non-primary replica
  int64_t certain_answers = 0;
  int64_t degraded_answers = 0;
  int64_t plan_resyncs = 0;      // kSyncPlans fan-outs that landed

  // Per-dataset placement, for the `dataset="..."` labelled gauges (and
  // for operators / CI to find the primary worth killing in a drill).
  struct DatasetPlacement {
    std::string dataset;
    int primary = -1;            // current ring owner (-1: no alive shard)
    int replicas = 0;            // live holders
    uint64_t committed_epoch = 0;
  };
  std::vector<DatasetPlacement> placements;
};

// Renders GroupStats (+ cluster health) in the Prometheus text exposition
// format (version 0.0.4): `# HELP` / `# TYPE` preambles, counters suffixed
// _total, histograms as cumulative `le` buckets with +Inf, per-shard
// breakdowns as `shard="<id>"` labels. This is what the router serves on
// GET /metrics; tests/metrics_text_test.cc pins the format.
std::string PrometheusText(const engine::GroupStats& stats,
                           const ClusterHealth& health);

}  // namespace zeus::cluster

#endif  // ZEUS_CLUSTER_METRICS_TEXT_H_
