#include "cluster/remote_shard.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"

namespace zeus::cluster {

namespace {

// Deterministic jitter: a Weyl-ish hash of the attempt's request id spread
// over the upper half of the backoff window. No RNG — the fault harness
// replays byte-identical schedules.
int BackoffMs(int attempt, uint64_t request_id, int base_ms, int max_ms) {
  int64_t delay = base_ms;
  for (int i = 1; i < attempt && delay < max_ms; ++i) delay *= 2;
  delay = std::min<int64_t>(delay, max_ms);
  const int64_t half = delay / 2;
  const uint64_t hash = request_id * 0x9E3779B97F4A7C15ull;
  return static_cast<int>(half + (hash >> 33) % (delay - half + 1));
}

}  // namespace

// ---- RemoteTicket ----------------------------------------------------------

common::Result<TicketStateReply> RemoteTicket::State() {
  if (shard_ == nullptr) {
    return common::Status::FailedPrecondition("empty ticket");
  }
  return shard_->TicketState(id_);
}

common::Status RemoteTicket::Cancel() {
  if (shard_ == nullptr) {
    return common::Status::FailedPrecondition("empty ticket");
  }
  return shard_->Cancel(id_);
}

common::Result<engine::QueryResult> RemoteTicket::Wait() {
  if (shard_ == nullptr) {
    return common::Status::FailedPrecondition("empty ticket");
  }
  return shard_->TicketWait(id_);
}

// ---- RemoteShard -----------------------------------------------------------

RemoteShard::RemoteShard(Options options) : opts_(std::move(options)) {}

RemoteShard::~RemoteShard() { CloseConnections(); }

void RemoteShard::CloseConnections() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  pool_.clear();  // FrameConn dtor closes the socket
}

common::Result<net::FrameConn> RemoteShard::Acquire() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!pool_.empty()) {
      net::FrameConn conn = std::move(pool_.back());
      pool_.pop_back();
      return conn;
    }
  }
  net::TcpSocket socket;
  ZEUS_RETURN_IF_ERROR(
      socket.Connect(opts_.host, opts_.port, opts_.connect_timeout_ms));
  return net::FrameConn(std::move(socket), "client:" + opts_.name);
}

void RemoteShard::Release(net::FrameConn conn) {
  if (!conn.valid()) return;
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_.size() < 8) pool_.push_back(std::move(conn));
}

common::Result<net::Frame> RemoteShard::Call(net::FrameType type,
                                             std::string payload,
                                             net::FrameType expect,
                                             int deadline_ms) {
  common::Status last = common::Status::Unavailable("no attempt made");
  const int attempts = std::max(1, opts_.max_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    uint64_t request_id = 0;
    {
      std::lock_guard<std::mutex> lock(seq_mu_);
      request_id = next_request_id_++;
    }
    if (attempt > 1) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMs(attempt, request_id,
                                              opts_.backoff_base_ms,
                                              opts_.backoff_max_ms)));
    }

    auto acquired = Acquire();
    if (!acquired.ok()) {
      // Nothing was sent: always retryable regardless of frame type.
      last = acquired.status();
      continue;
    }
    net::FrameConn conn = std::move(acquired).value();

    net::Frame req;
    req.type = type;
    req.request_id = request_id;
    req.payload = payload;  // copy: a retry resends the same bytes
    common::Status st = conn.WriteFrame(req, deadline_ms);
    if (!st.ok()) {
      // A failed write cannot have executed: the frame the server saw (if
      // any) fails its crc. Safe to retry even kExecute. The pooled
      // connection may simply have gone stale while idle, so this path is
      // also the reconnect path.
      last = st;
      continue;
    }

    net::Frame resp;
    st = conn.ReadFrame(&resp, deadline_ms);
    if (!st.ok()) {
      // The full request reached the wire but the answer is gone. Only
      // idempotent types may re-send; the rest surface kUnavailable and
      // let the caller apply its own policy (the explicit retryable-error
      // contract).
      last = common::Status::Unavailable(
          std::string(net::FrameTypeName(type)) + " to " + opts_.name +
          " lost its response: " + st.message());
      if (!net::IsIdempotent(type)) return last;
      continue;
    }

    if (resp.request_id != req.request_id) {
      // Desynchronized stream (a previous deadline abandoned a response
      // mid-flight). The connection is poisoned; same rules as a lost
      // response.
      last = common::Status::Unavailable("response for wrong request");
      if (!net::IsIdempotent(type)) return last;
      continue;
    }
    if (resp.type == net::FrameType::kError) {
      // The server answered: this is an application status, not a
      // transport fault. Never retried here.
      Release(std::move(conn));
      return DecodeErrorFrame(resp);
    }
    if (resp.type != expect) {
      last = common::Status::Unavailable(
          std::string("unexpected ") + net::FrameTypeName(resp.type) +
          " in reply to " + net::FrameTypeName(type));
      if (!net::IsIdempotent(type)) return last;
      continue;
    }
    Release(std::move(conn));
    return resp;
  }
  return last;
}

common::Status RemoteShard::Ping(int deadline_ms) {
  auto resp = Call(net::FrameType::kPing, {}, net::FrameType::kPong,
                   Deadline(deadline_ms));
  return resp.ok() ? common::Status::Ok() : resp.status();
}

common::Result<engine::QueryResult> RemoteShard::Execute(
    const ExecRequest& req, int deadline_ms) {
  auto resp = Call(net::FrameType::kExecute, EncodeExecRequest(req),
                   net::FrameType::kResult, Deadline(deadline_ms));
  if (!resp.ok()) return resp.status();
  engine::QueryResult result;
  if (!DecodeQueryResult(resp.value().payload, &result)) {
    return common::Status::Unavailable("malformed result payload");
  }
  return result;
}

common::Result<RemoteTicket> RemoteShard::Submit(const ExecRequest& req,
                                                 int deadline_ms) {
  auto resp = Call(net::FrameType::kSubmit, EncodeExecRequest(req),
                   net::FrameType::kSubmitReply, Deadline(deadline_ms));
  if (!resp.ok()) return resp.status();
  uint64_t id = 0;
  if (!DecodeTicketId(resp.value().payload, &id)) {
    return common::Status::Unavailable("malformed submit reply");
  }
  return RemoteTicket(this, id);
}

common::Status RemoteShard::Cancel(uint64_t ticket_id, int deadline_ms) {
  auto resp = Call(net::FrameType::kCancel, EncodeTicketId(ticket_id),
                   net::FrameType::kOk, Deadline(deadline_ms));
  return resp.ok() ? common::Status::Ok() : resp.status();
}

common::Result<TicketStateReply> RemoteShard::TicketState(uint64_t ticket_id,
                                                          int deadline_ms) {
  auto resp = Call(net::FrameType::kTicketState, EncodeTicketId(ticket_id),
                   net::FrameType::kTicketStateReply, Deadline(deadline_ms));
  if (!resp.ok()) return resp.status();
  TicketStateReply reply;
  if (!DecodeTicketState(resp.value().payload, &reply)) {
    return common::Status::Unavailable("malformed ticket state");
  }
  return reply;
}

common::Result<engine::QueryResult> RemoteShard::TicketWait(
    uint64_t ticket_id, int deadline_ms) {
  auto resp = Call(net::FrameType::kTicketWait, EncodeTicketId(ticket_id),
                   net::FrameType::kResult, Deadline(deadline_ms));
  if (!resp.ok()) return resp.status();
  engine::QueryResult result;
  if (!DecodeQueryResult(resp.value().payload, &result)) {
    return common::Status::Unavailable("malformed result payload");
  }
  return result;
}

common::Result<StatsReply> RemoteShard::Stats(int deadline_ms) {
  auto resp = Call(net::FrameType::kStats, {}, net::FrameType::kStatsReply,
                   Deadline(deadline_ms));
  if (!resp.ok()) return resp.status();
  StatsReply reply;
  if (!DecodeStatsReply(resp.value().payload, &reply)) {
    return common::Status::Unavailable("malformed stats reply");
  }
  return reply;
}

common::Result<uint64_t> RemoteShard::RegisterDataset(const DatasetSpec& spec,
                                                      int deadline_ms) {
  auto resp = Call(net::FrameType::kRegisterDataset, EncodeDatasetSpec(spec),
                   net::FrameType::kRegisterReply, Deadline(deadline_ms));
  if (!resp.ok()) return resp.status();
  uint64_t warmed = 0;
  if (!DecodeRegisterReply(resp.value().payload, &warmed)) {
    return common::Status::Unavailable("malformed register reply");
  }
  return warmed;
}

common::Result<SyncReply> RemoteShard::SyncPlans(const std::string& name,
                                                 uint64_t epoch,
                                                 int deadline_ms) {
  SyncPlansRequest req{name, epoch};
  auto resp = Call(net::FrameType::kSyncPlans, EncodeSyncPlans(req),
                   net::FrameType::kSyncReply, Deadline(deadline_ms));
  if (!resp.ok()) return resp.status();
  SyncReply reply;
  if (!DecodeSyncReply(resp.value().payload, &reply)) {
    return common::Status::Unavailable("malformed sync reply");
  }
  return reply;
}

common::Result<EpochReply> RemoteShard::EpochOf(const std::string& name,
                                                int deadline_ms) {
  auto resp = Call(net::FrameType::kEpochQuery, EncodeName(name),
                   net::FrameType::kEpochReply, Deadline(deadline_ms));
  if (!resp.ok()) return resp.status();
  EpochReply reply;
  if (!DecodeEpochReply(resp.value().payload, &reply)) {
    return common::Status::Unavailable("malformed epoch reply");
  }
  return reply;
}

common::Status RemoteShard::RemoveDataset(const std::string& name,
                                          int deadline_ms) {
  auto resp = Call(net::FrameType::kRemoveDataset, EncodeName(name),
                   net::FrameType::kOk, Deadline(deadline_ms));
  return resp.ok() ? common::Status::Ok() : resp.status();
}

common::Result<AppendReply> RemoteShard::AppendFrames(
    const AppendFramesRequest& req, int deadline_ms) {
  auto resp = Call(net::FrameType::kAppendFrames, EncodeAppendFrames(req),
                   net::FrameType::kAppendReply, Deadline(deadline_ms));
  if (!resp.ok()) return resp.status();
  AppendReply reply;
  if (!DecodeAppendReply(resp.value().payload, &reply)) {
    return common::Status::Unavailable("malformed append reply");
  }
  return reply;
}

common::Result<SubscribeReply> RemoteShard::Subscribe(
    const SubscribeRequest& req, int deadline_ms) {
  auto resp = Call(net::FrameType::kSubscribe, EncodeSubscribeRequest(req),
                   net::FrameType::kSubscribeReply, Deadline(deadline_ms));
  if (!resp.ok()) return resp.status();
  SubscribeReply reply;
  if (!DecodeSubscribeReply(resp.value().payload, &reply)) {
    return common::Status::Unavailable("malformed subscribe reply");
  }
  return reply;
}

common::Result<StreamResultMsg> RemoteShard::StreamPoll(
    const StreamPollRequest& req, int deadline_ms) {
  // The poll's own long-poll window must fit inside the transport
  // deadline, or a quiet stream would be misread as a dead shard.
  const int deadline = Deadline(deadline_ms);
  auto resp = Call(net::FrameType::kStreamPoll, EncodeStreamPoll(req),
                   net::FrameType::kStreamResult,
                   std::max(deadline, static_cast<int>(req.timeout_ms) + 2'000));
  if (!resp.ok()) return resp.status();
  StreamResultMsg msg;
  if (!DecodeStreamResult(resp.value().payload, &msg)) {
    return common::Status::Unavailable("malformed stream result");
  }
  return msg;
}

common::Status RemoteShard::Unsubscribe(uint64_t sub_id, int deadline_ms) {
  auto resp = Call(net::FrameType::kUnsubscribe, EncodeTicketId(sub_id),
                   net::FrameType::kOk, Deadline(deadline_ms));
  return resp.ok() ? common::Status::Ok() : resp.status();
}

}  // namespace zeus::cluster
