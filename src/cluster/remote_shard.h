#ifndef ZEUS_CLUSTER_REMOTE_SHARD_H_
#define ZEUS_CLUSTER_REMOTE_SHARD_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/protocol.h"
#include "net/frame_conn.h"

namespace zeus::cluster {

class RemoteShard;

// Handle to a query submitted on a remote shard — the wire-side mirror of
// engine::QueryTicket. Non-owning: the RemoteShard must outlive it (the
// router and the tests both own their shards for the cluster's lifetime).
class RemoteTicket {
 public:
  RemoteTicket() = default;
  RemoteTicket(RemoteShard* shard, uint64_t id) : shard_(shard), id_(id) {}

  bool valid() const { return shard_ != nullptr; }
  uint64_t id() const { return id_; }

  common::Result<TicketStateReply> State();
  common::Status Cancel();
  // Blocks until the remote query is terminal. Terminal on the server too:
  // the shard reaps the ticket when the wait resolves.
  common::Result<engine::QueryResult> Wait();

 private:
  RemoteShard* shard_ = nullptr;
  uint64_t id_ = 0;
};

// Client for one ShardServer, with the same Submit / Execute / Cancel
// surface as the in-process engine. Thread-safe; concurrency comes from a
// connection pool (the server runs one request per connection).
//
// Retry contract (the heart of the cluster's failure model):
//   - connect and WRITE failures always retry: the crc trailer makes a
//     partial frame self-invalidating, so a failed write proves the server
//     never executed the request;
//   - a lost RESPONSE retries only for IsIdempotent frame types. For
//     kExecute / kSubmit / kTicketWait the request may have executed, so
//     re-sending could run a query twice — the call surfaces
//     kUnavailable and the CALLER decides (IsRetryable() is true for it).
// Backoff between attempts is exponential with deterministic jitter
// (derived from the request counter, no RNG): reproducible under the
// fault-injection harness, still spread out across callers.
class RemoteShard {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;
    int connect_timeout_ms = 2'000;
    // Default per-call deadline (methods take an override; <= 0 = forever).
    int call_deadline_ms = 120'000;
    int max_attempts = 3;
    int backoff_base_ms = 25;
    int backoff_max_ms = 1'000;
    // Fault-injection tag: connections are tagged "client:<name>".
    std::string name = "shard";
  };

  explicit RemoteShard(Options options);
  ~RemoteShard();

  RemoteShard(const RemoteShard&) = delete;
  RemoteShard& operator=(const RemoteShard&) = delete;

  const Options& options() const { return opts_; }

  // Health probe (also what the router's checker sends as kStats; Ping is
  // the cheaper form for liveness-only checks).
  common::Status Ping(int deadline_ms = 0);

  common::Result<engine::QueryResult> Execute(const ExecRequest& req,
                                              int deadline_ms = 0);
  common::Result<RemoteTicket> Submit(const ExecRequest& req,
                                      int deadline_ms = 0);
  common::Status Cancel(uint64_t ticket_id, int deadline_ms = 0);
  common::Result<TicketStateReply> TicketState(uint64_t ticket_id,
                                               int deadline_ms = 0);
  common::Result<engine::QueryResult> TicketWait(uint64_t ticket_id,
                                                 int deadline_ms = 0);
  common::Result<StatsReply> Stats(int deadline_ms = 0);
  // Returns the number of plans the shard warmed from the shared catalog.
  common::Result<uint64_t> RegisterDataset(const DatasetSpec& spec,
                                           int deadline_ms = 0);
  common::Status RemoveDataset(const std::string& name, int deadline_ms = 0);

  // Replication maintenance. SyncPlans asks the shard to re-warm `name`'s
  // plans from the shared catalog and advance its applied epoch to at least
  // `epoch` (NotFound if the shard holds no replica — the router falls back
  // to a full RegisterDataset). EpochOf probes the shard's applied epoch.
  // Both are idempotent on the wire.
  common::Result<SyncReply> SyncPlans(const std::string& name, uint64_t epoch,
                                      int deadline_ms = 0);
  common::Result<EpochReply> EpochOf(const std::string& name,
                                     int deadline_ms = 0);

  // Live streams (all idempotent on the wire — see net/wire.h). The shard
  // side takes only the absolute append form; Subscribe's sub_id is the
  // caller's, which is what makes re-attach after failover possible; Poll
  // long-polls for the next update with seq > after_seq (kUnavailable on
  // timeout, kNotFound when the shard does not know the subscription —
  // the re-attach cue).
  common::Result<AppendReply> AppendFrames(const AppendFramesRequest& req,
                                           int deadline_ms = 0);
  common::Result<SubscribeReply> Subscribe(const SubscribeRequest& req,
                                           int deadline_ms = 0);
  common::Result<StreamResultMsg> StreamPoll(const StreamPollRequest& req,
                                             int deadline_ms = 0);
  common::Status Unsubscribe(uint64_t sub_id, int deadline_ms = 0);

  // Drops every pooled connection; the next call redials. The router uses
  // this when a shard comes back suspect — stale sockets to a dead peer
  // must not linger under fresh attempts.
  void CloseConnections();

 private:
  // One request/response exchange with retry per the contract above.
  // `expect` is the success response type; kError frames become their
  // carried Status (never retried here — the server DID answer).
  common::Result<net::Frame> Call(net::FrameType type, std::string payload,
                                  net::FrameType expect, int deadline_ms);

  // Pool: pop an idle connection or dial a fresh one.
  common::Result<net::FrameConn> Acquire();
  void Release(net::FrameConn conn);

  int Deadline(int deadline_ms) const {
    return deadline_ms != 0 ? deadline_ms : opts_.call_deadline_ms;
  }

  Options opts_;

  std::mutex pool_mu_;
  std::vector<net::FrameConn> pool_;
  bool closed_ = false;

  std::mutex seq_mu_;
  uint64_t next_request_id_ = 1;
};

}  // namespace zeus::cluster

#endif  // ZEUS_CLUSTER_REMOTE_SHARD_H_
