#ifndef ZEUS_CLUSTER_PROTOCOL_H_
#define ZEUS_CLUSTER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "engine/metrics.h"
#include "engine/query_engine.h"
#include "net/wire.h"
#include "video/dataset.h"

namespace zeus::cluster {

// Payload formats for every cluster frame (the framing itself — length
// prefix, version, type, request id, crc trailer — is net/wire.h). Each
// message has an Encode returning payload bytes and a Decode returning
// false on any malformed input (Decoders are total: they never crash on
// garbage, a property tests/net_test.cc fuzzes).

// ---- Dataset registration --------------------------------------------------

// Datasets are synthetic and deterministic given (profile, seed), so the
// wire carries the recipe, not the frames: a shard regenerates the dataset
// locally, bit-identical to every other process using the same spec. Zero
// fields mean "use the family default". `warm_plans` asks the receiving
// shard to preload the dataset's persisted plans from the shared plan
// catalog (QueryEngine::WarmUpDataset) — the plan-catalog handoff that
// makes a post-failover home answer with planner_runs == 0.
struct DatasetSpec {
  std::string name;
  video::DatasetFamily family = video::DatasetFamily::kBdd100kLike;
  uint64_t seed = 17;
  uint32_t num_videos = 0;
  uint32_t frames_per_video = 0;
  uint32_t native_resolution = 0;
  bool warm_plans = true;
  // Replica-group epoch this registration brings the shard up to (the
  // certain-answer contract below). 0 from clients that don't replicate;
  // the router stamps the group's epoch when fanning to replicas.
  uint64_t epoch = 0;
};

// The profile a spec resolves to (family defaults + overrides).
video::DatasetProfile ProfileFor(const DatasetSpec& spec);

std::string EncodeDatasetSpec(const DatasetSpec& spec);
bool DecodeDatasetSpec(const std::string& payload, DatasetSpec* out);

// ---- Query submission ------------------------------------------------------

// The accuracy/latency budget (docs/ACCURACY.md) travels with the query:
// tier selects the degradation contract (strict answers never degrade),
// min_accuracy floors how far best-effort shedding may drop the band, and
// max_latency_budget (GPU-seconds, 0 = unlimited) lets non-strict queries
// early-exit localization rounds.
struct ExecRequest {
  std::string dataset;
  std::string sql;
  int32_t priority = 0;
  core::QueryTier tier = core::QueryTier::kStrict;
  double min_accuracy = 0.0;
  double max_latency_budget = 0.0;
};

std::string EncodeExecRequest(const ExecRequest& req);
bool DecodeExecRequest(const std::string& payload, ExecRequest* out);

// QueryResult travels whole except the parsed ActionQuery (the client
// already knows what it asked; re-encoding the parse tree buys nothing).
// Segments and metric counts are integers, latencies doubles carried
// bit-exactly — the bit-identity tests compare through this round trip.
//
// The certain-answer contract rides along: every result carries a
// `consistency` annotation plus the serving shard's applied epoch. The
// router compares that epoch against the replica group's committed epoch
// and marks the answer kCertain on match or kDegraded (with `divergence`
// naming the lagging shard and epochs) while a re-home or replica
// catch-up is mid-flight. A result is NEVER silently stale: either every
// live replica would have produced the same bytes (kCertain) or the
// divergence window is declared on the result itself.
//
// The accuracy annotation rides along too: tier, effective accuracy band,
// the cost model's achieved-confidence estimate, and whether a latency
// budget cut the run short (docs/ACCURACY.md).
std::string EncodeQueryResult(const engine::QueryResult& result);
bool DecodeQueryResult(const std::string& payload, engine::QueryResult* out);

// ---- Replication maintenance ----------------------------------------------

// kSyncPlans: router -> replica after a plan trains anywhere in the group
// (or when repair finds a replica behind). The shard re-reads the dataset's
// persisted plans from the shared catalog and advances its applied epoch to
// max(current, epoch) — idempotent, so it retries safely and converges.
struct SyncPlansRequest {
  std::string name;
  uint64_t epoch = 0;
};
std::string EncodeSyncPlans(const SyncPlansRequest& req);
bool DecodeSyncPlans(const std::string& payload, SyncPlansRequest* out);

// kSyncReply: how many plans the sync warmed and the shard's applied epoch
// after the bump.
struct SyncReply {
  uint64_t plans_warmed = 0;
  uint64_t epoch = 0;
};
std::string EncodeSyncReply(const SyncReply& reply);
bool DecodeSyncReply(const std::string& payload, SyncReply* out);

// kEpochReply: a shard's applied epoch for one dataset (kEpochQuery carries
// just the name, via EncodeName). has_dataset false => epoch is 0 and the
// shard holds no replica — the probe is total, never an error.
// `stream_length` is the replica's committed stream length — the repair
// pass compares it against the group's committed frames so a replica that
// missed an append but caught a later plan sync can never masquerade as
// current (epoch alone would).
struct EpochReply {
  uint64_t epoch = 0;
  bool has_dataset = false;
  uint64_t stream_length = 0;
};
std::string EncodeEpochReply(const EpochReply& reply);
bool DecodeEpochReply(const std::string& payload, EpochReply* out);

// ---- Live streams ----------------------------------------------------------

// kAppendFrames: grow a streamable dataset. The wire form is ABSOLUTE —
// `target_frames` is the stream length after the append and `epoch` the
// frame epoch it commits — which is what makes the frame idempotent: a
// replay (or a fan-out to a replica that already applied it) grows nothing
// and reports `appended = 0`. `relative_frames` is the client convenience
// form accepted only by the ROUTER (target_frames == 0): the router
// resolves it to an absolute (target, epoch) under its dataset lock and
// fans that to every replica. Shards reject the relative form — by the
// time a frame reaches a shard it must be replayable.
struct AppendFramesRequest {
  std::string name;
  uint64_t target_frames = 0;  // absolute stream length (0 = relative form)
  uint64_t relative_frames = 0;  // router-only convenience
  uint64_t epoch = 0;            // frame epoch this append commits
};
std::string EncodeAppendFrames(const AppendFramesRequest& req);
bool DecodeAppendFrames(const std::string& payload, AppendFramesRequest* out);

// kAppendReply: the dataset's stream state after the (possibly replayed)
// append — engine::AppendOutcome on the wire.
struct AppendReply {
  uint64_t frame_epoch = 0;
  uint64_t stream_length = 0;
  uint64_t appended = 0;
};
std::string EncodeAppendReply(const AppendReply& reply);
bool DecodeAppendReply(const std::string& payload, AppendReply* out);

// kSubscribe: open a standing query. `sub_id` is CLIENT-chosen (the router
// uses its own routed-subscription id), which is what makes the frame
// idempotent and re-attachable: re-sending the same id to the same or a
// failed-over shard joins the existing subscription or recreates it
// deterministically instead of stacking a second one. window_frames == 0
// = full prefix; the accuracy budget travels like ExecRequest's.
struct SubscribeRequest {
  std::string dataset;
  std::string sql;
  uint64_t sub_id = 0;
  int64_t window_frames = 0;
  uint32_t max_buffered = 16;
  core::QueryTier tier = core::QueryTier::kStrict;
  double min_accuracy = 0.0;
  double max_latency_budget = 0.0;
};
std::string EncodeSubscribeRequest(const SubscribeRequest& req);
bool DecodeSubscribeRequest(const std::string& payload, SubscribeRequest* out);

// kSubscribeReply: echoes the subscription id plus the dataset's frame
// epoch at attach time (the first incremental result covers the window as
// of at least this epoch).
struct SubscribeReply {
  uint64_t sub_id = 0;
  uint64_t frame_epoch = 0;
  bool attached_existing = false;  // replay joined a live subscription
};
std::string EncodeSubscribeReply(const SubscribeReply& reply);
bool DecodeSubscribeReply(const std::string& payload, SubscribeReply* out);

// kStreamPoll: long-poll for the next incremental result with seq >
// after_seq. The cursor lives with the CLIENT, so a poll is a pure read —
// a lost response re-reads the same update instead of consuming it.
// Times out as kError(kUnavailable) with nothing new (retryable by
// contract); a cancelled subscription answers kError(kCancelled).
struct StreamPollRequest {
  uint64_t sub_id = 0;
  uint64_t after_seq = 0;
  uint32_t timeout_ms = 0;
};
std::string EncodeStreamPoll(const StreamPollRequest& req);
bool DecodeStreamPoll(const std::string& payload, StreamPollRequest* out);

// kStreamResult: one incremental update — the subscription-side mirror of
// kResult with the publish sequence number and the consumer-drop counter
// riding along.
struct StreamResultMsg {
  uint64_t seq = 0;
  uint64_t dropped = 0;  // updates conflated away so far (slow consumer)
  engine::QueryResult result;
};
std::string EncodeStreamResult(const StreamResultMsg& msg);
bool DecodeStreamResult(const std::string& payload, StreamResultMsg* out);

// ---- Stats / health --------------------------------------------------------

// A shard's Stats() snapshot plus the cluster-level fields only a router
// fills (a plain shardd reports num_shards = 1 and zeros). Doubles as the
// health-check heartbeat: the router pings each shard with kStats and
// counts misses.
struct StatsReply {
  engine::ShardStats stats;
  int32_t num_shards = 1;
  int64_t failovers = 0;
  int64_t rehomed_datasets = 0;
  int64_t dead_shards = 0;
  // Replication / certain-answer fields (router only; shardd leaves the
  // defaults: replication 1, everything else 0).
  int32_t replication = 1;
  int64_t replicas_behind = 0;   // (dataset, shard) pairs below committed
  int64_t read_failovers = 0;    // reads served by a non-primary replica
  int64_t certain_answers = 0;
  int64_t degraded_answers = 0;
  int64_t plan_resyncs = 0;      // kSyncPlans fan-outs that landed
};

std::string EncodeStatsReply(const StatsReply& reply);
bool DecodeStatsReply(const std::string& payload, StatsReply* out);

// ---- Small fixed payloads --------------------------------------------------

std::string EncodeTicketId(uint64_t id);
bool DecodeTicketId(const std::string& payload, uint64_t* id);

struct TicketStateReply {
  engine::QueryState state = engine::QueryState::kQueued;
  double progress = 0.0;
};
std::string EncodeTicketState(const TicketStateReply& reply);
bool DecodeTicketState(const std::string& payload, TicketStateReply* out);

std::string EncodeRegisterReply(uint64_t plans_warmed);
bool DecodeRegisterReply(const std::string& payload, uint64_t* plans_warmed);

std::string EncodeName(const std::string& name);
bool DecodeName(const std::string& payload, std::string* name);

// ---- Errors ----------------------------------------------------------------

// kError frames carry (StatusCode, message) so a server-side failure
// arrives as the same Status the in-process call would have returned.
net::Frame MakeErrorFrame(uint64_t request_id, const common::Status& status);
common::Status DecodeErrorFrame(const net::Frame& frame);

}  // namespace zeus::cluster

#endif  // ZEUS_CLUSTER_PROTOCOL_H_
