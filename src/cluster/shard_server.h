#ifndef ZEUS_CLUSTER_SHARD_SERVER_H_
#define ZEUS_CLUSTER_SHARD_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/protocol.h"
#include "engine/query_engine.h"
#include "net/frame_conn.h"
#include "net/socket.h"

namespace zeus::cluster {

// One shard of the multi-process cluster: a TCP server wrapping exactly one
// QueryEngine. This is the library form of the `shardd` binary
// (tools/shardd.cc) — tests run it in-process against RemoteShard clients
// so every fault-injection scenario is single-process and deterministic.
//
// Connection model: one thread per connection, one request in flight per
// connection (strict request/response — concurrency comes from clients
// opening more connections, see RemoteShard's pool). A connection thread
// blocked in a long Execute keeps only its own connection busy.
//
// The engine's plan cache should point at the cluster's shared persist
// dir: RegisterDataset frames with `warm_plans` then pull the dataset's
// persisted plans via QueryEngine::WarmUpDataset — the plan-catalog
// handoff that lets a re-homed dataset answer with planner_runs == 0.
class ShardServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  // 0 = pick an ephemeral port (readable via port())
    // Response-write deadline; a client that stops reading cannot wedge a
    // connection thread forever.
    int write_deadline_ms = 30'000;
    engine::QueryEngine::Options engine;
    // Tag baked into the transport's fault-injection matching ("server"
    // plus this name).
    std::string name = "shardd";
  };

  explicit ShardServer(Options options);
  // Stops (gracefully) if still running.
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  common::Status Start();

  // Graceful stop: close the listener, kick live connections, drain the
  // engine's queued + running work (QueryEngine::DrainAll), join threads.
  void Stop();

  // Abrupt stop: everything closes NOW, nothing drains — the in-process
  // stand-in for kill -9 that the failover tests use. The engine object
  // survives (it is this object's member) but no response in flight is
  // completed.
  void Kill();

  int port() const { return port_; }
  bool running() const { return running_.load(); }
  engine::QueryEngine& engine() { return engine_; }

 private:
  void AcceptLoop();
  void ConnLoop(std::shared_ptr<net::FrameConn> conn);
  // Builds the response for one request frame. Never throws; malformed
  // payloads come back as kError(kInvalidArgument).
  net::Frame Dispatch(const net::Frame& req);

  net::Frame HandleExecute(const net::Frame& req);
  net::Frame HandleSubmit(const net::Frame& req);
  net::Frame HandleCancel(const net::Frame& req);
  net::Frame HandleTicketState(const net::Frame& req);
  net::Frame HandleTicketWait(const net::Frame& req);
  net::Frame HandleStats(const net::Frame& req);
  net::Frame HandleRegisterDataset(const net::Frame& req);
  net::Frame HandleRemoveDataset(const net::Frame& req);
  net::Frame HandleSyncPlans(const net::Frame& req);
  net::Frame HandleEpochQuery(const net::Frame& req);
  net::Frame HandleAppendFrames(const net::Frame& req);
  net::Frame HandleSubscribe(const net::Frame& req);
  net::Frame HandleStreamPoll(const net::Frame& req);
  net::Frame HandleUnsubscribe(const net::Frame& req);

  // The shard's applied epoch for `name` (0 if never registered).
  uint64_t AppliedEpoch(const std::string& name);

  void CloseAllConns();

  Options opts_;
  engine::QueryEngine engine_;

  net::TcpListener listener_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;
  std::map<int, std::weak_ptr<net::FrameConn>> conns_;  // keyed by fd
  int next_conn_id_ = 0;

  // Async surface: tickets live here between kSubmit and the terminal
  // kTicketWait (which erases them). Tickets a client abandons stay until
  // the server stops — acceptable for the cluster's internal use where
  // the router always waits or cancels. The dataset name rides along so
  // the eventual kResult can be stamped with the replica's applied epoch.
  struct PendingTicket {
    engine::QueryTicket ticket;
    std::string dataset;
  };
  std::mutex tickets_mu_;
  std::map<uint64_t, PendingTicket> tickets_;
  uint64_t next_ticket_id_ = 1;

  // Applied plan/dataset epoch per dataset — the shard's half of the
  // certain-answer contract. Advanced (monotonically) by kRegisterDataset,
  // kSyncPlans and kAppendFrames, stamped into every kResult and
  // kStreamResult this shard serves; the router compares it against the
  // group's committed epoch.
  std::mutex epochs_mu_;
  std::map<std::string, uint64_t> epochs_;

  // Standing queries, keyed by the CLIENT-chosen subscription id
  // (protocol.h kSubscribe): a replayed subscribe re-attaches here instead
  // of stacking a second subscription, and a poll for an unknown id is
  // NotFound — the router's re-attach trigger after this shard restarts.
  struct PendingSub {
    engine::SubscriptionTicket ticket;
    std::string dataset;
  };
  std::mutex subs_mu_;
  std::map<uint64_t, PendingSub> subs_;
};

}  // namespace zeus::cluster

#endif  // ZEUS_CLUSTER_SHARD_SERVER_H_
