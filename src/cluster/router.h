#ifndef ZEUS_CLUSTER_ROUTER_H_
#define ZEUS_CLUSTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/metrics_text.h"
#include "cluster/protocol.h"
#include "cluster/remote_shard.h"
#include "engine/shard_ring.h"
#include "net/frame_conn.h"
#include "net/socket.h"

namespace zeus::cluster {

// The cluster front door (library form of tools/zeus_router.cc): owns a
// RemoteShard client per shard endpoint, places each dataset on its ring
// owner plus replication-1 ring successors over a consistent ShardRing of
// the ALIVE shards, health-checks every shard, and fails over when one
// dies. Writes (registration, trained-plan propagation) fan to every
// replica; reads are served primary-first with in-call failover to the
// next live replica — no health-check round-trip stands between a dead
// primary and the answer.
//
// Failure model (the certain-answer contract, cluster/protocol.h): a query
// either completes bit-identically to a single-process run — annotated
// kCertain when the serving replica's applied epoch matches the group's
// committed epoch, kDegraded (with the divergence reason) while a re-home
// or replica catch-up is mid-flight — or fails with an explicitly
// retryable status (kUnavailable / kResourceExhausted, see
// common::IsRetryable). The router never silently degrades a result.
// Failing over a read mid-call is safe because datasets are immutable and
// deterministic from their spec: re-executing a read on another replica is
// at-least-once execution of a pure function.
//
// Failover walkthrough (shard S dies, replication >= 2):
//   1. a query to a dataset whose primary was S fails its connect/write —
//      the router retries the NEXT live replica inside the same call.
//      Zero-unavailability: no client-visible error, no planner run (the
//      replica warmed its plans at registration / last sync);
//   2. the health checker misses `misses_to_dead` consecutive kStats
//      probes to S and declares it dead: S leaves the ring (only S's
//      vnodes vanish), its last Stats snapshot folds into the stats carry
//      (group counters stay monotone), its pooled connections close, and
//      its replica bookkeeping is dropped;
//   3. the repair pass re-registers each affected dataset on enough ring
//      successors to restore the replication factor (warm_plans pulls the
//      persisted plans) and kSyncPlans-catches-up any replica whose epoch
//      lags committed. Queries keep flowing to surviving replicas the
//      whole time; only a dataset with ZERO live replicas (replication 1,
//      or total loss) fails retryably until repair lands.
//
// With replication 1 this degrades exactly to the PR 6 behavior: a dead
// shard's datasets are unavailable (retryable) from kill to re-home.
class Router {
 public:
  struct Endpoint {
    std::string host = "127.0.0.1";
    int port = 0;
  };

  struct Options {
    // Client-facing listen address.
    std::string host = "127.0.0.1";
    int port = 0;  // 0 = ephemeral
    std::vector<Endpoint> shards;
    // Background health-check cadence; <= 0 disables the thread and tests
    // drive the checker deterministically via CheckNow().
    int health_interval_ms = 250;
    int health_deadline_ms = 1'000;  // per-probe deadline (single attempt)
    int misses_to_dead = 3;
    // Deadline for routed query traffic (Execute / ticket waits can
    // legitimately take minutes on cold plans).
    int call_deadline_ms = 300'000;
    int write_deadline_ms = 30'000;  // client-facing response writes
    // Replicas per dataset (ring owner + replication-1 successors),
    // clamped to the shard count. 1 = no replication (PR 6 behavior).
    int replication = 1;
    std::string name = "router";
  };

  explicit Router(Options options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  common::Status Start();
  void Stop();
  int port() const { return port_; }

  // ---- ZeusDb-style API (also reachable over the wire) ---------------------

  // Registers `spec` on the dataset's home shard and records it in the
  // catalog for failover. Returns the number of plans the home warmed.
  common::Result<uint64_t> RegisterDataset(const DatasetSpec& spec);
  common::Result<engine::QueryResult> Execute(const std::string& dataset,
                                              const std::string& sql,
                                              int priority = 0);
  // Full form: the request carries the accuracy/latency budget (tier,
  // min_accuracy, max_latency_budget) alongside priority, so routed
  // queries keep their budget across failover retries.
  common::Result<engine::QueryResult> Execute(const ExecRequest& req);
  common::Status RemoveDataset(const std::string& name);

  // ---- Live streams ---------------------------------------------------------
  //
  // Appends fan to EVERY live replica with an absolute (target, epoch)
  // stamped under the dataset lock, so replays and repair retries converge
  // (protocol.h kAppendFrames). The primary must land; a secondary that
  // misses the fan-out is left at its old epoch and the repair pass
  // catches its frames up with the same absolute form. `frames` is the
  // relative client form (> 0).
  common::Result<AppendReply> AppendFrames(const std::string& name,
                                           uint64_t frames);
  // Opens a standing query on the dataset's primary. `req.sub_id` == 0
  // lets the router assign the id (returned in the reply); a non-zero id
  // re-attaches to an existing routed subscription (idempotent retry).
  common::Result<SubscribeReply> Subscribe(SubscribeRequest req);
  // Long-polls the next update with ROUTER seq > after_seq. On a dead or
  // amnesiac primary this re-attaches the subscription to the current
  // primary (kSubscribe with the same id is idempotent) and dedupes
  // replayed windows by frame epoch, so a consumer polling with its last
  // delivered seq sees each epoch's result exactly once across failovers.
  common::Result<StreamResultMsg> StreamPoll(uint64_t sub_id,
                                             uint64_t after_seq,
                                             uint32_t timeout_ms);
  common::Status Unsubscribe(uint64_t sub_id);

  // Aggregated stats: every alive shard's snapshot plus the dead-shard
  // carry, so the totals never move backwards across a failover.
  StatsReply Stats();
  engine::GroupStats GroupStatsNow();
  ClusterHealth Health() const;

  // ---- Failover observability / deterministic test control -----------------

  // Runs one synchronous health pass over all alive shards (exactly what
  // the background thread does each tick), then a replica-repair pass
  // (restore replication factor, catch up lagging epochs). Returns how
  // many shards were newly declared dead.
  int CheckNow();
  bool ShardAlive(int id) const;
  int num_alive() const;
  // Current home (primary) shard id of `dataset` (-1 when no shard is
  // alive).
  int HomeOf(const std::string& dataset) const;
  // Shard ids currently holding a replica of `dataset` (dead shards
  // excluded; empty when unregistered or all replicas are lost).
  std::vector<int> ReplicasOf(const std::string& dataset) const;

 private:
  struct ShardState {
    Endpoint endpoint;
    std::unique_ptr<RemoteShard> client;  // routed traffic (with retries)
    std::unique_ptr<RemoteShard> probe;   // health checks (single attempt)
    bool alive = true;
    int misses = 0;
    engine::ShardStats last_stats;  // last good snapshot (failover carry)
    bool have_stats = false;
  };

  // Ordered read candidates for `dataset` under the lock: live replicas in
  // ring order (primary first), then any other live holder. Empty when the
  // dataset has no live replica (re-home in flight) or no shard is alive.
  // For an UNREGISTERED dataset: just the ring owner, so the shard's own
  // NotFound comes back unchanged (pre-replication behavior).
  std::vector<int> CandidatesLocked(const std::string& dataset) const;

  // Applies the certain-answer annotation: kCertain iff the serving
  // shard's applied epoch (stamped into the result) matches the dataset's
  // committed epoch, kDegraded with the divergence reason otherwise.
  engine::QueryResult AnnotateResult(const std::string& dataset,
                                     int served_by, engine::QueryResult r);

  // After a plan trains anywhere in the group (result.plan_seconds > 0):
  // bump the committed epoch and fan kSyncPlans to every live replica so
  // they pull the new plan from the shared catalog. Synchronous — by the
  // time the triggering result returns, replicas are caught up (or counted
  // behind, for the repair pass).
  void PropagatePlans(const std::string& dataset);

  // Drives placement to target: registers datasets on ring successors that
  // should hold a replica but don't (warm_plans — the catalog handoff) and
  // kSyncPlans-catches-up replicas whose epoch lags committed. No-op when
  // everything matches; takes and releases state_mu_ itself.
  void RepairReplicas();

  // Attaches (or re-attaches) a routed subscription to the dataset's
  // first live replica, primary-first. Returns the hosting shard id and
  // the shard's reply.
  common::Result<std::pair<int, SubscribeReply>> AttachSubscription(
      const SubscribeRequest& req);

  void RebuildRingLocked();
  // Declares shard `id` dead: drops it from the ring and from every
  // dataset's replica bookkeeping, then runs RepairReplicas. Called with
  // state_mu_ HELD; temporarily releases it for the repair RPCs.
  void FailOverLocked(std::unique_lock<std::mutex>& lock, int id);
  void HealthLoop();

  // Client-facing frame/HTTP server.
  void AcceptLoop();
  void ConnLoop(std::shared_ptr<net::FrameConn> conn);
  void CloseAllConns();
  net::Frame Dispatch(const net::Frame& req);
  net::Frame HandleExecute(const net::Frame& req);
  net::Frame HandleSubmit(const net::Frame& req);
  net::Frame HandleTicketOp(const net::Frame& req);
  net::Frame HandleRegisterDataset(const net::Frame& req);
  net::Frame HandleRemoveDataset(const net::Frame& req);
  net::Frame HandleAppendFrames(const net::Frame& req);
  net::Frame HandleSubscribe(const net::Frame& req);
  net::Frame HandleStreamPoll(const net::Frame& req);
  net::Frame HandleUnsubscribe(const net::Frame& req);
  // GET <path> already sniffed; serves /metrics and closes.
  void ServeHttp(net::FrameConn& conn);

  Options opts_;

  // Serializes whole health passes (the background thread vs. CheckNow
  // from tests): one failover runs at a time, start to finish.
  std::mutex check_mu_;

  // Serializes append fan-outs per router: two concurrent appends must not
  // stamp the same (target, epoch). Taken before state_mu_, never after.
  std::mutex append_mu_;

  // Everything the router knows about one dataset's replica group: the
  // spec (to re-create it elsewhere), the committed epoch (advanced by
  // registration and plan propagation), and each holder's applied epoch.
  // A query is kCertain iff served at applied == committed; a holder with
  // applied < committed is "behind" and the repair pass catches it up.
  struct DatasetState {
    DatasetSpec spec;
    uint64_t committed_epoch = 0;
    std::map<int, uint64_t> replica_epochs;  // shard id -> applied epoch
    // Committed stream length (test-video frames). Initialized to the
    // spec's base length at registration; advanced only by appends. The
    // repair pass replays `GrowTo(committed_frames, committed_epoch)` on
    // any replica it touches — epoch alone cannot prove frames, because a
    // plan sync also advances epochs.
    uint64_t committed_frames = 0;
  };

  mutable std::mutex state_mu_;
  std::vector<ShardState> shards_;
  std::unique_ptr<engine::ShardRing> ring_;  // over alive shard ids
  int alive_count_ = 0;
  std::map<std::string, DatasetState> datasets_;
  // Dead shards' final snapshots, folded (keeps group stats monotone).
  engine::ShardStats carry_;
  bool have_carry_ = false;
  int64_t failovers_ = 0;
  int64_t rehomed_ = 0;
  int64_t read_failovers_ = 0;
  int64_t certain_answers_ = 0;
  int64_t degraded_answers_ = 0;
  int64_t resyncs_ = 0;

  // Router-side ticket surface: router ticket id -> where the query
  // actually runs (plus the dataset, for the certain-answer annotation on
  // the eventual wait).
  struct RoutedTicket {
    int shard = -1;
    uint64_t remote_id = 0;
    std::string dataset;
  };
  std::mutex tickets_mu_;
  std::map<uint64_t, RoutedTicket> tickets_;
  uint64_t next_ticket_id_ = 1;

  // Router-side subscription surface: the routed id doubles as the
  // client-chosen id on whichever shard currently hosts the subscription,
  // so a re-attach after failover is the SAME kSubscribe frame aimed at
  // the new primary. `last_epoch_delivered` is the failover dedupe line:
  // a re-attached subscription's first window replays the current epoch,
  // and the poll path skips anything at or below the line.
  struct RoutedSub {
    SubscribeRequest req;       // req.sub_id == routed id
    int shard = -1;             // current host (-1 = needs attach)
    uint64_t remote_last_seq = 0;
    uint64_t next_out_seq = 1;  // router-facing seq counter
    uint64_t last_epoch_delivered = 0;
    uint64_t dropped = 0;       // host-side conflation, accumulated
    bool delivered_any = false;
    // Last update handed to the client, replayed when a poll arrives with
    // after_seq below it (lost response) — kStreamPoll stays idempotent
    // end-to-end through the router.
    StreamResultMsg last_out;
  };
  std::mutex subs_mu_;
  std::map<uint64_t, RoutedSub> subs_;
  uint64_t next_sub_id_ = 1;

  net::TcpListener listener_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread health_thread_;
  std::mutex health_mu_;
  std::condition_variable health_cv_;

  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;
  std::map<int, std::weak_ptr<net::FrameConn>> conns_;
};

}  // namespace zeus::cluster

#endif  // ZEUS_CLUSTER_ROUTER_H_
