#ifndef ZEUS_CLUSTER_ROUTER_H_
#define ZEUS_CLUSTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/metrics_text.h"
#include "cluster/protocol.h"
#include "cluster/remote_shard.h"
#include "engine/shard_ring.h"
#include "net/frame_conn.h"
#include "net/socket.h"

namespace zeus::cluster {

// The cluster front door (library form of tools/zeus_router.cc): owns a
// RemoteShard client per shard endpoint, routes datasets over a consistent
// ShardRing of the ALIVE shards, health-checks every shard, and fails over
// when one dies — datasets re-home to their ring successor and rewarm
// their plans from the shared catalog (planner_runs stays flat).
//
// Failure model ("certain answers"): a query either completes on the
// dataset's healthy home — bit-identical to a single-process run, the
// transport carries results losslessly — or fails with an explicitly
// retryable status (kUnavailable / kResourceExhausted, see
// common::IsRetryable). The router never silently degrades a result.
//
// Failover walkthrough (shard S dies):
//   1. the health checker misses `misses_to_dead` consecutive kStats
//      probes to S;
//   2. S is marked dead: removed from the ring (only S's vnodes vanish, so
//      only S's datasets move), its last Stats snapshot folds into the
//      stats carry (group counters stay monotone), its pooled connections
//      close;
//   3. every dataset whose home was S is marked "moving" (queries for it
//      fail kUnavailable rather than racing the handoff) and re-registered
//      on its ring successor with warm_plans — the new home regenerates
//      the dataset from its spec and pulls the persisted plans;
//   4. moving clears; queries flow to the new home, answering from warmed
//      plans with zero planner runs.
class Router {
 public:
  struct Endpoint {
    std::string host = "127.0.0.1";
    int port = 0;
  };

  struct Options {
    // Client-facing listen address.
    std::string host = "127.0.0.1";
    int port = 0;  // 0 = ephemeral
    std::vector<Endpoint> shards;
    // Background health-check cadence; <= 0 disables the thread and tests
    // drive the checker deterministically via CheckNow().
    int health_interval_ms = 250;
    int health_deadline_ms = 1'000;  // per-probe deadline (single attempt)
    int misses_to_dead = 3;
    // Deadline for routed query traffic (Execute / ticket waits can
    // legitimately take minutes on cold plans).
    int call_deadline_ms = 300'000;
    int write_deadline_ms = 30'000;  // client-facing response writes
    std::string name = "router";
  };

  explicit Router(Options options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  common::Status Start();
  void Stop();
  int port() const { return port_; }

  // ---- ZeusDb-style API (also reachable over the wire) ---------------------

  // Registers `spec` on the dataset's home shard and records it in the
  // catalog for failover. Returns the number of plans the home warmed.
  common::Result<uint64_t> RegisterDataset(const DatasetSpec& spec);
  common::Result<engine::QueryResult> Execute(const std::string& dataset,
                                              const std::string& sql,
                                              int priority = 0);
  common::Status RemoveDataset(const std::string& name);

  // Aggregated stats: every alive shard's snapshot plus the dead-shard
  // carry, so the totals never move backwards across a failover.
  StatsReply Stats();
  engine::GroupStats GroupStatsNow();
  ClusterHealth Health() const;

  // ---- Failover observability / deterministic test control -----------------

  // Runs one synchronous health pass over all alive shards (exactly what
  // the background thread does each tick). Returns how many shards were
  // newly declared dead.
  int CheckNow();
  bool ShardAlive(int id) const;
  int num_alive() const;
  // Current home shard id of `dataset` (-1 when no shard is alive).
  int HomeOf(const std::string& dataset) const;

 private:
  struct ShardState {
    Endpoint endpoint;
    std::unique_ptr<RemoteShard> client;  // routed traffic (with retries)
    std::unique_ptr<RemoteShard> probe;   // health checks (single attempt)
    bool alive = true;
    int misses = 0;
    engine::ShardStats last_stats;  // last good snapshot (failover carry)
    bool have_stats = false;
  };

  // Routing decision under the lock; the RemoteShard call happens outside
  // (clients are thread-safe, and routed queries can run for minutes).
  common::Result<int> RouteLocked(const std::string& dataset) const;
  common::Result<int> Route(const std::string& dataset) const;

  void RebuildRingLocked();
  // Declares shard `id` dead and performs the re-home. Called with
  // state_mu_ HELD; temporarily releases it for the re-registration RPCs.
  void FailOverLocked(std::unique_lock<std::mutex>& lock, int id);
  void HealthLoop();

  // Client-facing frame/HTTP server.
  void AcceptLoop();
  void ConnLoop(std::shared_ptr<net::FrameConn> conn);
  void CloseAllConns();
  net::Frame Dispatch(const net::Frame& req);
  net::Frame HandleExecute(const net::Frame& req);
  net::Frame HandleSubmit(const net::Frame& req);
  net::Frame HandleTicketOp(const net::Frame& req);
  net::Frame HandleRegisterDataset(const net::Frame& req);
  net::Frame HandleRemoveDataset(const net::Frame& req);
  // GET <path> already sniffed; serves /metrics and closes.
  void ServeHttp(net::FrameConn& conn);

  Options opts_;

  // Serializes whole health passes (the background thread vs. CheckNow
  // from tests): one failover runs at a time, start to finish.
  std::mutex check_mu_;

  mutable std::mutex state_mu_;
  std::vector<ShardState> shards_;
  std::unique_ptr<engine::ShardRing> ring_;  // over alive shard ids
  int alive_count_ = 0;
  // name -> spec: everything needed to re-create a dataset elsewhere.
  std::map<std::string, DatasetSpec> datasets_;
  // Datasets mid-re-home; queries for them fail kUnavailable (retryable)
  // instead of racing the handoff.
  std::set<std::string> moving_;
  // Dead shards' final snapshots, folded (keeps group stats monotone).
  engine::ShardStats carry_;
  bool have_carry_ = false;
  int64_t failovers_ = 0;
  int64_t rehomed_ = 0;

  // Router-side ticket surface: router ticket id -> (shard id, remote id).
  std::mutex tickets_mu_;
  std::map<uint64_t, std::pair<int, uint64_t>> tickets_;
  uint64_t next_ticket_id_ = 1;

  net::TcpListener listener_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread health_thread_;
  std::mutex health_mu_;
  std::condition_variable health_cv_;

  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;
  std::map<int, std::weak_ptr<net::FrameConn>> conns_;
};

}  // namespace zeus::cluster

#endif  // ZEUS_CLUSTER_ROUTER_H_
