#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "common/stringutil.h"

namespace zeus::cluster {

namespace {

net::Frame Reply(uint64_t request_id, net::FrameType type,
                 std::string payload) {
  net::Frame f;
  f.type = type;
  f.request_id = request_id;
  f.payload = std::move(payload);
  return f;
}

net::Frame BadPayload(const net::Frame& req) {
  return MakeErrorFrame(
      req.request_id,
      common::Status::InvalidArgument(
          std::string("malformed ") + net::FrameTypeName(req.type) +
          " payload"));
}

// Merge per-dataset rows from many shard snapshots by name (counters add,
// histograms merge, queue depth sums — a dataset only ever lives on one
// shard at a time, but across a failover its history spans two).
void MergeDatasetRows(std::vector<engine::DatasetStats>* into,
                      const std::vector<engine::DatasetStats>& rows) {
  for (const auto& row : rows) {
    auto it = std::find_if(
        into->begin(), into->end(),
        [&](const engine::DatasetStats& d) { return d.dataset == row.dataset; });
    if (it == into->end()) {
      into->push_back(row);
      continue;
    }
    it->queue_depth += row.queue_depth;
    it->weight = std::max(it->weight, row.weight);
    it->submitted += row.submitted;
    it->completed += row.completed;
    it->failed += row.failed;
    it->cancelled += row.cancelled;
    it->rejected += row.rejected;
    it->queue_wait.Merge(row.queue_wait);
    it->exec.Merge(row.exec);
  }
}

}  // namespace

Router::Router(Options options) : opts_(std::move(options)) {}

Router::~Router() { Stop(); }

common::Status Router::Start() {
  if (opts_.shards.empty()) {
    return common::Status::InvalidArgument("router needs at least one shard");
  }
  if (running_.load()) return common::Status::FailedPrecondition("running");

  shards_.clear();
  shards_.reserve(opts_.shards.size());
  for (size_t i = 0; i < opts_.shards.size(); ++i) {
    ShardState state;
    state.endpoint = opts_.shards[i];

    RemoteShard::Options c;
    c.host = state.endpoint.host;
    c.port = state.endpoint.port;
    c.call_deadline_ms = opts_.call_deadline_ms;
    c.name = opts_.name + "->s" + std::to_string(i);
    state.client = std::make_unique<RemoteShard>(c);

    // The health probe never retries: a miss must be a miss, not three
    // stacked attempts that stretch the detection window.
    RemoteShard::Options p = c;
    p.max_attempts = 1;
    p.call_deadline_ms = opts_.health_deadline_ms;
    p.connect_timeout_ms = opts_.health_deadline_ms;
    p.name = c.name + ":probe";
    state.probe = std::make_unique<RemoteShard>(p);

    shards_.push_back(std::move(state));
  }
  alive_count_ = static_cast<int>(shards_.size());
  opts_.replication = std::max(
      1, std::min(opts_.replication, static_cast<int>(shards_.size())));
  RebuildRingLocked();  // no threads yet; the "Locked" contract is vacuous

  ZEUS_RETURN_IF_ERROR(listener_.Listen(opts_.host, opts_.port));
  port_ = listener_.port();
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (opts_.health_interval_ms > 0) {
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
  ZEUS_LOG(Info) << opts_.name << " listening on " << opts_.host << ":"
                 << port_ << " with " << shards_.size() << " shard(s)";
  return common::Status::Ok();
}

void Router::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    health_cv_.notify_all();
  }
  if (health_thread_.joinable()) health_thread_.join();
  listener_.Close();
  CloseAllConns();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
}

// ---- Routing ---------------------------------------------------------------

void Router::RebuildRingLocked() {
  std::vector<int> alive_ids;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].alive) alive_ids.push_back(static_cast<int>(i));
  }
  ring_ = alive_ids.empty()
              ? nullptr
              : std::make_unique<engine::ShardRing>(alive_ids);
}

std::vector<int> Router::CandidatesLocked(const std::string& dataset) const {
  std::vector<int> out;
  if (alive_count_ == 0 || ring_ == nullptr) return out;
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    out.push_back(ring_->ShardFor(dataset));
    return out;
  }
  const auto& holders = it->second.replica_epochs;
  // Ring order: primary first, then successors — the stable preference
  // that keeps each dataset's plan cache hot on one shard.
  for (int id : ring_->ShardsFor(dataset, opts_.replication)) {
    if (holders.count(id) > 0 && shards_[id].alive) out.push_back(id);
  }
  // Holders outside the current target set (placement drifted after a
  // membership change, repair not landed yet) still serve correct reads.
  for (const auto& [id, epoch] : holders) {
    (void)epoch;
    if (shards_[id].alive &&
        std::find(out.begin(), out.end(), id) == out.end()) {
      out.push_back(id);
    }
  }
  return out;
}

common::Result<uint64_t> Router::RegisterDataset(const DatasetSpec& spec) {
  struct Target {
    int id;
    RemoteShard* client;
  };
  std::vector<Target> targets;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (alive_count_ == 0 || ring_ == nullptr) {
      return common::Status::Unavailable("no alive shards");
    }
    auto it = datasets_.find(spec.name);
    epoch = (it != datasets_.end() ? it->second.committed_epoch : 0) + 1;
    for (int id : ring_->ShardsFor(spec.name, opts_.replication)) {
      targets.push_back({id, shards_[id].client.get()});
    }
  }

  // Fan the write to the whole replica set, primary first. The primary
  // must land (otherwise the registration failed); a secondary that
  // doesn't respond is left behind and the repair pass catches it up.
  DatasetSpec stamped = spec;
  stamped.epoch = epoch;
  uint64_t warmed = 0;
  std::vector<int> applied;
  for (size_t i = 0; i < targets.size(); ++i) {
    auto reg = targets[i].client->RegisterDataset(stamped);
    if (reg.ok()) {
      if (i == 0) warmed = reg.value();
      applied.push_back(targets[i].id);
    } else if (i == 0) {
      return reg.status();
    } else {
      ZEUS_LOG(Warning) << opts_.name << " replica registration of '"
                        << spec.name << "' on shard " << targets[i].id
                        << " failed (repair will retry): "
                        << reg.status().ToString();
    }
  }

  std::lock_guard<std::mutex> lock(state_mu_);
  DatasetState& state = datasets_[spec.name];
  state.spec = stamped;
  state.committed_epoch = std::max(state.committed_epoch, epoch);
  if (state.committed_frames == 0) {
    // Base stream length from the spec's profile; only appends move it.
    state.committed_frames =
        static_cast<uint64_t>(ProfileFor(stamped).frames_per_video);
  }
  for (int id : applied) {
    uint64_t& e = state.replica_epochs[id];
    e = std::max(e, epoch);
  }
  return warmed;
}

common::Result<engine::QueryResult> Router::Execute(const std::string& dataset,
                                                    const std::string& sql,
                                                    int priority) {
  ExecRequest req;
  req.dataset = dataset;
  req.sql = sql;
  req.priority = priority;
  return Execute(req);
}

common::Result<engine::QueryResult> Router::Execute(const ExecRequest& req) {
  const std::string& dataset = req.dataset;
  std::vector<int> candidates;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    candidates = CandidatesLocked(dataset);
  }
  if (candidates.empty()) {
    return common::Status::Unavailable("no live replica of '" + dataset +
                                       "'; re-homing, retry");
  }

  // Primary-first with in-call failover: a retryable failure (dead shard,
  // lost response) moves to the next replica inside this call — no
  // health-check round-trip, no client-visible error window. Re-running
  // the query on another replica is safe: datasets are immutable and
  // deterministic from their spec, so a read is a pure function and
  // at-least-once execution returns the same bytes.
  common::Status last = common::Status::Unavailable("no candidate tried");
  for (size_t i = 0; i < candidates.size(); ++i) {
    RemoteShard* client = nullptr;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (!shards_[candidates[i]].alive) continue;  // died since snapshot
      client = shards_[candidates[i]].client.get();
    }
    auto result = client->Execute(req);
    if (result.ok()) {
      if (i > 0) {
        std::lock_guard<std::mutex> lock(state_mu_);
        ++read_failovers_;
      }
      engine::QueryResult r =
          AnnotateResult(dataset, candidates[i], std::move(result).value());
      if (r.plan_seconds > 0) PropagatePlans(dataset);
      return r;
    }
    if (!common::IsRetryable(result.status().code())) return result.status();
    last = result.status();
  }
  return last;
}

common::Status Router::RemoveDataset(const std::string& name) {
  struct Target {
    int id;
    RemoteShard* client;
  };
  std::vector<Target> targets;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (alive_count_ == 0 || ring_ == nullptr) {
      return common::Status::Unavailable("no alive shards");
    }
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      // Unknown to the catalog: forward to the ring owner, whose remove of
      // a dataset it never held is a no-op.
      const int home = ring_->ShardFor(name);
      targets.push_back({home, shards_[home].client.get()});
    } else {
      for (const auto& [id, epoch] : it->second.replica_epochs) {
        (void)epoch;
        if (shards_[id].alive) {
          targets.push_back({id, shards_[id].client.get()});
        }
      }
    }
  }
  // Remove from every live replica; kRemoveDataset is idempotent, so a
  // partial failure is safe to retry wholesale.
  common::Status result = common::Status::Ok();
  for (const Target& t : targets) {
    common::Status st = t.client->RemoveDataset(name);
    if (!st.ok()) result = st;
  }
  if (result.ok()) {
    std::lock_guard<std::mutex> lock(state_mu_);
    datasets_.erase(name);
  }
  return result;
}

// ---- Live streams ----------------------------------------------------------

common::Result<AppendReply> Router::AppendFrames(const std::string& name,
                                                 uint64_t frames) {
  if (frames == 0) {
    return common::Status::InvalidArgument("append needs frames > 0");
  }
  // One append fan-out at a time: the (target, epoch) pair must be stamped
  // against the state the previous append committed.
  std::lock_guard<std::mutex> append_lock(append_mu_);

  struct Target {
    int id;
    RemoteShard* client;
  };
  std::vector<Target> targets;
  AppendFramesRequest wire;
  wire.name = name;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (alive_count_ == 0 || ring_ == nullptr) {
      return common::Status::Unavailable("no alive shards");
    }
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      return common::Status::NotFound("dataset '" + name +
                                      "' is not registered with the router");
    }
    wire.target_frames = it->second.committed_frames + frames;
    wire.epoch = it->second.committed_epoch + 1;
    for (int id : CandidatesLocked(name)) {
      targets.push_back({id, shards_[id].client.get()});
    }
  }
  if (targets.empty()) {
    return common::Status::Unavailable("no live replica of '" + name +
                                       "'; re-homing, retry");
  }

  // Fan the absolute form to every live replica, primary first. The
  // primary must land (otherwise the append failed); a secondary that
  // misses stays at its old length and the repair pass replays the SAME
  // absolute (target, epoch) — convergent by construction.
  AppendReply primary;
  std::vector<int> applied;
  for (size_t i = 0; i < targets.size(); ++i) {
    auto reply = targets[i].client->AppendFrames(wire);
    if (reply.ok()) {
      if (i == 0) primary = reply.value();
      applied.push_back(targets[i].id);
    } else if (i == 0) {
      return reply.status();
    } else {
      ZEUS_LOG(Warning) << opts_.name << " append of '" << name
                        << "' to replica shard " << targets[i].id
                        << " failed (repair will replay): "
                        << reply.status().ToString();
    }
  }

  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = datasets_.find(name);
  if (it != datasets_.end()) {
    DatasetState& state = it->second;
    state.committed_frames =
        std::max(state.committed_frames, wire.target_frames);
    state.committed_epoch = std::max(state.committed_epoch, wire.epoch);
    for (int id : applied) {
      uint64_t& e = state.replica_epochs[id];
      e = std::max(e, wire.epoch);
    }
  }
  return primary;
}

common::Result<std::pair<int, SubscribeReply>> Router::AttachSubscription(
    const SubscribeRequest& req) {
  std::vector<int> candidates;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    candidates = CandidatesLocked(req.dataset);
  }
  if (candidates.empty()) {
    return common::Status::Unavailable("no live replica of '" + req.dataset +
                                       "'; re-homing, retry");
  }
  common::Status last = common::Status::Unavailable("no candidate tried");
  for (size_t i = 0; i < candidates.size(); ++i) {
    RemoteShard* client = nullptr;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (!shards_[candidates[i]].alive) continue;
      client = shards_[candidates[i]].client.get();
    }
    auto reply = client->Subscribe(req);
    if (reply.ok()) {
      if (i > 0) {
        std::lock_guard<std::mutex> lock(state_mu_);
        ++read_failovers_;
      }
      return std::make_pair(candidates[i], reply.value());
    }
    if (!common::IsRetryable(reply.status().code())) return reply.status();
    last = reply.status();
  }
  return last;
}

common::Result<SubscribeReply> Router::Subscribe(SubscribeRequest req) {
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    if (req.sub_id == 0) {
      req.sub_id = next_sub_id_++;
    } else {
      next_sub_id_ = std::max(next_sub_id_, req.sub_id + 1);
      auto it = subs_.find(req.sub_id);
      if (it != subs_.end()) {
        // Replay of a subscribe that already landed: the routed
        // subscription exists; report the attach without touching its
        // cursor state (the poll path re-attaches the shard side lazily).
        SubscribeReply reply;
        reply.sub_id = req.sub_id;
        reply.attached_existing = true;
        return reply;
      }
    }
  }
  auto attach = AttachSubscription(req);
  if (!attach.ok()) return attach.status();
  std::lock_guard<std::mutex> lock(subs_mu_);
  RoutedSub& sub = subs_[req.sub_id];
  sub.req = req;
  sub.shard = attach.value().first;
  SubscribeReply reply = attach.value().second;
  reply.sub_id = req.sub_id;
  return reply;
}

common::Result<StreamResultMsg> Router::StreamPoll(uint64_t sub_id,
                                                   uint64_t after_seq,
                                                   uint32_t timeout_ms) {
  {
    // Lost-response replay: the client polls with the cursor of the last
    // update it SAW; if that lags what we already delivered, hand the
    // stored copy back instead of advancing past it.
    std::lock_guard<std::mutex> lock(subs_mu_);
    auto it = subs_.find(sub_id);
    if (it == subs_.end()) {
      return common::Status::NotFound("unknown subscription");
    }
    const RoutedSub& sub = it->second;
    if (sub.delivered_any && after_seq + 1 < sub.next_out_seq) {
      return sub.last_out;
    }
  }

  // Bounded passes: each one either delivers, re-attaches after a failover
  // (and retries), or swallows a window the consumer already has (and
  // retries).
  for (int attempt = 0; attempt < 8; ++attempt) {
    SubscribeRequest req;
    int shard = -1;
    uint64_t remote_after = 0;
    {
      std::lock_guard<std::mutex> lock(subs_mu_);
      auto it = subs_.find(sub_id);
      if (it == subs_.end()) {
        return common::Status::NotFound("unknown subscription");
      }
      req = it->second.req;
      shard = it->second.shard;
      remote_after = it->second.remote_last_seq;
    }

    RemoteShard* client = nullptr;
    if (shard >= 0) {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (shards_[shard].alive) client = shards_[shard].client.get();
    }
    if (client == nullptr) {
      // Host gone: re-attach to the current primary. Same id = same
      // kSubscribe frame; the new host replays its current window, which
      // the epoch dedupe below swallows if it was already delivered.
      auto attach = AttachSubscription(req);
      if (!attach.ok()) return attach.status();
      std::lock_guard<std::mutex> lock(subs_mu_);
      auto it = subs_.find(sub_id);
      if (it == subs_.end()) {
        return common::Status::NotFound("unknown subscription");
      }
      it->second.shard = attach.value().first;
      it->second.remote_last_seq = 0;
      continue;
    }

    StreamPollRequest poll;
    poll.sub_id = sub_id;
    poll.after_seq = remote_after;
    poll.timeout_ms = timeout_ms;
    auto msg = client->StreamPoll(poll);
    if (!msg.ok()) {
      const common::StatusCode code = msg.status().code();
      if (code == common::StatusCode::kNotFound) {
        // Amnesiac host (restarted under the same endpoint): force a
        // re-attach on the next pass.
        std::lock_guard<std::mutex> lock(subs_mu_);
        auto it = subs_.find(sub_id);
        if (it != subs_.end()) {
          it->second.shard = -1;
          it->second.remote_last_seq = 0;
        }
        continue;
      }
      if (code == common::StatusCode::kUnavailable) {
        bool still_alive = false;
        {
          std::lock_guard<std::mutex> lock(state_mu_);
          still_alive = shard >= 0 &&
                        shard < static_cast<int>(shards_.size()) &&
                        shards_[shard].alive;
        }
        // Still alive = a plain long-poll timeout (nothing new in the
        // window) — surface it, the client re-polls. Dead = the host
        // failed mid-poll; the next pass re-attaches.
        if (still_alive) return msg.status();
        continue;
      }
      return msg.status();
    }

    StreamResultMsg out = std::move(msg).value();
    bool duplicate = false;
    {
      std::lock_guard<std::mutex> lock(subs_mu_);
      auto it = subs_.find(sub_id);
      if (it == subs_.end()) {
        return common::Status::NotFound("unknown subscription");
      }
      RoutedSub& sub = it->second;
      sub.shard = shard;
      sub.remote_last_seq = std::max(sub.remote_last_seq, out.seq);
      if (sub.delivered_any &&
          out.result.frame_epoch <= sub.last_epoch_delivered) {
        // Replay of a window the consumer already has (the re-attached
        // host's initial window): swallow it and poll again.
        duplicate = true;
      } else {
        sub.delivered_any = true;
        sub.last_epoch_delivered = out.result.frame_epoch;
        sub.dropped += out.dropped;
        out.dropped = sub.dropped;  // cumulative across failovers
        out.seq = sub.next_out_seq++;
      }
    }
    if (duplicate) continue;
    out.result = AnnotateResult(req.dataset, shard, std::move(out.result));
    {
      std::lock_guard<std::mutex> lock(subs_mu_);
      auto it = subs_.find(sub_id);
      if (it != subs_.end()) it->second.last_out = out;
    }
    return out;
  }
  return common::Status::Unavailable(
      "subscription catch-up still converging; retry");
}

common::Status Router::Unsubscribe(uint64_t sub_id) {
  int shard = -1;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    auto it = subs_.find(sub_id);
    if (it == subs_.end()) return common::Status::Ok();  // idempotent
    shard = it->second.shard;
    subs_.erase(it);
  }
  RemoteShard* client = nullptr;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (shard >= 0 && shard < static_cast<int>(shards_.size()) &&
        shards_[shard].alive) {
      client = shards_[shard].client.get();
    }
  }
  // Routed state is gone either way; a host we cannot reach reaps the
  // orphan when it stops (and an unsubscribe replay there is kOk).
  if (client != nullptr) return client->Unsubscribe(sub_id);
  return common::Status::Ok();
}

engine::QueryResult Router::AnnotateResult(const std::string& dataset,
                                           int served_by,
                                           engine::QueryResult r) {
  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = datasets_.find(dataset);
  const uint64_t committed =
      it != datasets_.end() ? it->second.committed_epoch : 0;
  if (r.epoch == committed) {
    r.consistency = engine::Consistency::kCertain;
    r.divergence.clear();
    ++certain_answers_;
  } else {
    r.consistency = engine::Consistency::kDegraded;
    r.divergence = common::Format(
        "shard %d served epoch %llu, committed epoch is %llu "
        "(replica catch-up in flight)",
        served_by, static_cast<unsigned long long>(r.epoch),
        static_cast<unsigned long long>(committed));
    ++degraded_answers_;
  }
  return r;
}

void Router::PropagatePlans(const std::string& dataset) {
  struct Target {
    int id;
    RemoteShard* client;
  };
  std::vector<Target> targets;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto it = datasets_.find(dataset);
    if (it == datasets_.end()) return;
    epoch = it->second.committed_epoch + 1;
    for (const auto& [id, applied] : it->second.replica_epochs) {
      (void)applied;
      if (shards_[id].alive) {
        targets.push_back({id, shards_[id].client.get()});
      }
    }
  }
  if (targets.empty()) return;

  std::vector<std::pair<int, uint64_t>> applied;
  for (const Target& t : targets) {
    auto sync = t.client->SyncPlans(dataset, epoch);
    if (sync.ok()) {
      applied.emplace_back(t.id, sync.value().epoch);
    } else {
      ZEUS_LOG(Warning) << opts_.name << " plan sync of '" << dataset
                        << "' to shard " << t.id
                        << " failed (repair will retry): "
                        << sync.status().ToString();
    }
  }

  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) return;  // removed while we were syncing
  it->second.committed_epoch = std::max(it->second.committed_epoch, epoch);
  for (const auto& [id, e] : applied) {
    uint64_t& cur = it->second.replica_epochs[id];
    cur = std::max(cur, e);
    ++resyncs_;
  }
}

void Router::RepairReplicas() {
  struct Fix {
    std::string name;
    DatasetSpec spec;
    uint64_t committed = 0;
    uint64_t frames = 0;  // committed stream length to replay
    int id = -1;
    RemoteShard* client = nullptr;
    bool full_register = false;  // missing replica vs. lagging epoch
  };
  std::vector<Fix> fixes;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (alive_count_ == 0 || ring_ == nullptr) return;
    for (const auto& [name, state] : datasets_) {
      for (int id : ring_->ShardsFor(name, opts_.replication)) {
        if (!shards_[id].alive) continue;
        auto rit = state.replica_epochs.find(id);
        if (rit == state.replica_epochs.end()) {
          fixes.push_back({name, state.spec, state.committed_epoch,
                           state.committed_frames, id,
                           shards_[id].client.get(), true});
        } else if (rit->second < state.committed_epoch) {
          fixes.push_back({name, state.spec, state.committed_epoch,
                           state.committed_frames, id,
                           shards_[id].client.get(), false});
        }
      }
    }
  }

  for (const Fix& fix : fixes) {
    // Frame catch-up (kAppendFrames, absolute form = idempotent no-op on a
    // replica that already has them) runs BEFORE the replica may claim the
    // committed epoch: a plan sync also advances epochs, so an epoch that
    // runs ahead of the replica's stream length would hide a missed append
    // forever (the silent-stale hole the certain-answer contract closes).
    const uint64_t base =
        static_cast<uint64_t>(ProfileFor(fix.spec).frames_per_video);
    const bool replay_frames = fix.frames > base;
    if (fix.full_register) {
      // New replica: full registration with the catalog handoff. Epoch =
      // committed (it is catching up to existing state, not creating new
      // state), so its first answer is already kCertain — unless frames
      // must be replayed too, in which case the APPEND carries the epoch
      // and the registration claims none.
      DatasetSpec spec = fix.spec;
      spec.warm_plans = true;
      spec.epoch = replay_frames ? 0 : fix.committed;
      auto reg = fix.client->RegisterDataset(spec);
      if (!reg.ok()) {
        ZEUS_LOG(Warning) << opts_.name << " repair: registering '"
                          << fix.name << "' on shard " << fix.id
                          << " failed: " << reg.status().ToString();
        continue;
      }
      if (replay_frames) {
        AppendFramesRequest grow;
        grow.name = fix.name;
        grow.target_frames = fix.frames;
        grow.epoch = fix.committed;
        auto grown = fix.client->AppendFrames(grow);
        if (!grown.ok()) {
          // Registered but behind: no epoch recorded, so the next pass
          // comes back through this branch and retries the replay.
          ZEUS_LOG(Warning) << opts_.name << " repair: frame replay of '"
                            << fix.name << "' (" << fix.frames
                            << " frames) to shard " << fix.id
                            << " failed: " << grown.status().ToString();
          continue;
        }
      }
      ZEUS_LOG(Info) << opts_.name << " repair: dataset '" << fix.name
                     << "' replicated to shard " << fix.id << " ("
                     << reg.value() << " plan(s) warmed"
                     << (replay_frames ? ", frames replayed" : "") << ")";
      std::lock_guard<std::mutex> lock(state_mu_);
      auto it = datasets_.find(fix.name);
      if (it == datasets_.end()) continue;
      uint64_t& e = it->second.replica_epochs[fix.id];
      e = std::max(e, fix.committed);
      ++rehomed_;
    } else {
      if (replay_frames) {
        // Epoch 0 on purpose: grow the frames without advancing the
        // applied epoch — the SyncPlans below advances it only once the
        // plans are current too.
        AppendFramesRequest grow;
        grow.name = fix.name;
        grow.target_frames = fix.frames;
        grow.epoch = 0;
        auto grown = fix.client->AppendFrames(grow);
        if (!grown.ok() &&
            grown.status().code() == common::StatusCode::kNotFound) {
          // The shard lost the dataset (e.g. restarted under the same
          // endpoint): forget its epoch so the next pass re-registers it.
          std::lock_guard<std::mutex> lock(state_mu_);
          auto it = datasets_.find(fix.name);
          if (it != datasets_.end()) it->second.replica_epochs.erase(fix.id);
          continue;
        }
        if (!grown.ok()) {
          ZEUS_LOG(Warning) << opts_.name << " repair: frame replay of '"
                            << fix.name << "' to shard " << fix.id
                            << " failed: " << grown.status().ToString();
          continue;  // do NOT sync plans — the epoch would outrun the frames
        }
      }
      auto sync = fix.client->SyncPlans(fix.name, fix.committed);
      if (!sync.ok() &&
          sync.status().code() == common::StatusCode::kNotFound) {
        // The shard lost the dataset (e.g. restarted under the same
        // endpoint): forget its epoch so the next pass re-registers it.
        std::lock_guard<std::mutex> lock(state_mu_);
        auto it = datasets_.find(fix.name);
        if (it != datasets_.end()) it->second.replica_epochs.erase(fix.id);
        continue;
      }
      if (!sync.ok()) {
        ZEUS_LOG(Warning) << opts_.name << " repair: plan sync of '"
                          << fix.name << "' to shard " << fix.id
                          << " failed: " << sync.status().ToString();
        continue;
      }
      std::lock_guard<std::mutex> lock(state_mu_);
      auto it = datasets_.find(fix.name);
      if (it == datasets_.end()) continue;
      uint64_t& e = it->second.replica_epochs[fix.id];
      e = std::max(e, sync.value().epoch);
      ++resyncs_;
    }
  }
}

// ---- Stats -----------------------------------------------------------------

engine::GroupStats Router::GroupStatsNow() {
  struct Target {
    int id;
    RemoteShard* probe;
  };
  std::vector<Target> targets;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i].alive) {
        targets.push_back({static_cast<int>(i), shards_[i].probe.get()});
      }
    }
  }

  // Collect outside the lock (each probe is one bounded attempt; a slow
  // shard delays the scrape, never routing).
  std::vector<std::pair<int, StatsReply>> fresh;
  for (const Target& t : targets) {
    auto reply = t.probe->Stats();
    if (reply.ok()) fresh.emplace_back(t.id, std::move(reply).value());
  }

  engine::GroupStats group;
  std::lock_guard<std::mutex> lock(state_mu_);
  for (auto& [id, reply] : fresh) {
    shards_[id].last_stats = reply.stats;
    shards_[id].last_stats.shard = id;
    shards_[id].have_stats = true;
  }
  group.num_shards = alive_count_;
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Alive shards contribute their latest snapshot (the just-fetched one
    // when the probe answered, the previous one when it was slow).
    if (shards_[i].alive && shards_[i].have_stats) {
      group.Absorb(shards_[i].last_stats);
    }
  }
  if (have_carry_) group.AbsorbTotals(carry_);
  return group;
}

ClusterHealth Router::Health() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  ClusterHealth health;
  health.failovers = failovers_;
  health.rehomed_datasets = rehomed_;
  health.dead_shards =
      static_cast<int64_t>(shards_.size()) - alive_count_;
  health.replication = opts_.replication;
  health.read_failovers = read_failovers_;
  health.certain_answers = certain_answers_;
  health.degraded_answers = degraded_answers_;
  health.plan_resyncs = resyncs_;
  for (const auto& [name, state] : datasets_) {
    ClusterHealth::DatasetPlacement placement;
    placement.dataset = name;
    placement.primary =
        (alive_count_ > 0 && ring_ != nullptr) ? ring_->ShardFor(name) : -1;
    placement.committed_epoch = state.committed_epoch;
    for (const auto& [id, applied] : state.replica_epochs) {
      (void)applied;
      if (shards_[id].alive) ++placement.replicas;
    }
    if (alive_count_ > 0 && ring_ != nullptr) {
      for (int id : ring_->ShardsFor(name, opts_.replication)) {
        if (!shards_[id].alive) continue;
        auto rit = state.replica_epochs.find(id);
        if (rit == state.replica_epochs.end() ||
            rit->second < state.committed_epoch) {
          ++health.replicas_behind;
        }
      }
    }
    health.placements.push_back(std::move(placement));
  }
  return health;
}

StatsReply Router::Stats() {
  engine::GroupStats group = GroupStatsNow();
  ClusterHealth health = Health();
  StatsReply reply;
  // Exact aggregate (alive shards + dead-shard carry), plus the merged
  // per-dataset rows so `.stats`-style clients keep their breakdown.
  static_cast<engine::ServingCounters&>(reply.stats) =
      static_cast<const engine::ServingCounters&>(group);
  for (const auto& shard : group.shards) {
    MergeDatasetRows(&reply.stats.datasets, shard.datasets);
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (have_carry_) MergeDatasetRows(&reply.stats.datasets, carry_.datasets);
  }
  reply.num_shards = group.num_shards;
  reply.failovers = health.failovers;
  reply.rehomed_datasets = health.rehomed_datasets;
  reply.dead_shards = health.dead_shards;
  reply.replication = health.replication;
  reply.replicas_behind = health.replicas_behind;
  reply.read_failovers = health.read_failovers;
  reply.certain_answers = health.certain_answers;
  reply.degraded_answers = health.degraded_answers;
  reply.plan_resyncs = health.plan_resyncs;
  return reply;
}

// ---- Health checking / failover --------------------------------------------

int Router::CheckNow() {
  std::lock_guard<std::mutex> pass(check_mu_);
  struct Target {
    int id;
    RemoteShard* probe;
  };
  std::vector<Target> targets;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i].alive) {
        targets.push_back({static_cast<int>(i), shards_[i].probe.get()});
      }
    }
  }

  int newly_dead = 0;
  for (const Target& t : targets) {
    auto reply = t.probe->Stats();
    std::unique_lock<std::mutex> lock(state_mu_);
    ShardState& s = shards_[t.id];
    if (!s.alive) continue;
    if (reply.ok()) {
      s.misses = 0;
      s.last_stats = reply.value().stats;
      s.last_stats.shard = t.id;
      s.have_stats = true;
    } else {
      ++s.misses;
      ZEUS_LOG(Warning) << opts_.name << " shard " << t.id << " missed probe "
                        << s.misses << "/" << opts_.misses_to_dead << ": "
                        << reply.status().ToString();
      if (s.misses >= opts_.misses_to_dead) {
        FailOverLocked(lock, t.id);
        ++newly_dead;
      }
    }
  }
  // Converge placement every pass: replicas that missed a registration or
  // plan sync earlier catch up here. No-op when nothing is behind.
  RepairReplicas();
  return newly_dead;
}

void Router::FailOverLocked(std::unique_lock<std::mutex>& lock, int id) {
  ShardState& s = shards_[id];
  if (!s.alive) return;

  // Declare dead. Only this shard's vnodes leave the ring, so only the
  // datasets it owned change primary — and with replication >= 2 the new
  // primary is a successor that ALREADY holds a replica, so their queries
  // never stop flowing. Dropping the dead shard from every replica set is
  // what makes the repair pass see the deficit.
  s.alive = false;
  s.misses = 0;
  --alive_count_;
  ++failovers_;
  if (s.have_stats) {
    carry_.Merge(s.last_stats);
    have_carry_ = true;
  }
  RebuildRingLocked();
  int lost = 0;
  for (auto& [name, state] : datasets_) {
    (void)name;
    lost += state.replica_epochs.erase(id) > 0 ? 1 : 0;
  }
  s.client->CloseConnections();
  s.probe->CloseConnections();
  ZEUS_LOG(Warning) << opts_.name << " declared shard " << id << " ("
                    << s.endpoint.host << ":" << s.endpoint.port
                    << ") dead; lost " << lost
                    << " replica(s), repairing placement";

  // Restore the replication factor without the lock (dataset regeneration
  // and plan warm-up take real time). A dataset that kept a live replica
  // keeps answering during the whole repair; one that lost its only
  // replica fails retryably (CandidatesLocked returns empty) until its
  // re-registration lands — exactly the replication-1 window.
  lock.unlock();
  RepairReplicas();
  lock.lock();
}

void Router::HealthLoop() {
  std::unique_lock<std::mutex> lk(health_mu_);
  while (!stopping_.load()) {
    health_cv_.wait_for(lk, std::chrono::milliseconds(opts_.health_interval_ms),
                        [&] { return stopping_.load(); });
    if (stopping_.load()) return;
    lk.unlock();
    CheckNow();
    lk.lock();
  }
}

bool Router::ShardAlive(int id) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (id < 0 || id >= static_cast<int>(shards_.size())) return false;
  return shards_[id].alive;
}

int Router::num_alive() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return alive_count_;
}

int Router::HomeOf(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (alive_count_ == 0 || ring_ == nullptr) return -1;
  return ring_->ShardFor(dataset);
}

std::vector<int> Router::ReplicasOf(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  std::vector<int> out;
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) return out;
  for (const auto& [id, epoch] : it->second.replica_epochs) {
    (void)epoch;
    if (shards_[id].alive) out.push_back(id);
  }
  return out;
}

// ---- Client-facing server --------------------------------------------------

void Router::CloseAllConns() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& [fd, weak] : conns_) {
    if (auto conn = weak.lock()) conn->Shutdown();
  }
}

void Router::AcceptLoop() {
  while (!stopping_.load()) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      ZEUS_LOG(Warning) << opts_.name
                        << " accept failed: " << accepted.status().ToString();
      return;
    }
    auto conn = std::make_shared<net::FrameConn>(
        std::move(accepted).value(), "server:" + opts_.name);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load()) return;
    conns_[conn->socket().fd()] = conn;
    conn_threads_.emplace_back([this, conn] { ConnLoop(conn); });
  }
}

void Router::ConnLoop(std::shared_ptr<net::FrameConn> conn) {
  bool first = true;
  while (!stopping_.load()) {
    net::Frame req;
    common::Status st;
    if (first) {
      first = false;
      // Sniff the first 4 bytes: "GET " means the connection speaks HTTP
      // (a /metrics scrape); anything else is a frame length prefix. No
      // ambiguity — "GET " read as a little-endian u32 is ~542M, far past
      // kMaxFrameBytes, so a real frame can never alias it.
      uint8_t head[4];
      st = conn->socket().ReadAll(head, 4, /*deadline_ms=*/-1);
      if (!st.ok()) break;
      if (std::memcmp(head, "GET ", 4) == 0) {
        ServeHttp(*conn);
        break;
      }
      uint32_t body_len = 0;
      for (int i = 0; i < 4; ++i) {
        body_len |= static_cast<uint32_t>(head[i]) << (8 * i);
      }
      st = conn->ReadFrameBody(body_len, &req, opts_.write_deadline_ms);
    } else {
      st = conn->ReadFrame(&req, /*deadline_ms=*/-1);
    }
    if (!st.ok()) break;
    net::Frame resp = Dispatch(req);
    st = conn->WriteFrame(resp, opts_.write_deadline_ms);
    if (!st.ok()) break;
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn->socket().fd());
}

void Router::ServeHttp(net::FrameConn& conn) {
  // "GET " is already consumed; read the rest of the request (capped, with
  // a deadline — scrapers are line-speed, anything else is garbage).
  std::string request;
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    char c = 0;
    if (!conn.socket().ReadAll(&c, 1, /*deadline_ms=*/5'000).ok()) break;
    request.push_back(c);
  }
  const std::string path = request.substr(0, request.find(' '));

  std::string status = "404 Not Found";
  std::string body = "not found\n";
  if (path == "/metrics") {
    status = "200 OK";
    body = PrometheusText(GroupStatsNow(), Health());
  }
  const std::string response = common::Format(
      "HTTP/1.1 %s\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      status.c_str(), body.size()) + body;
  conn.socket().WriteAll(response.data(), response.size(),
                         opts_.write_deadline_ms);
  conn.Shutdown();
  conn.Close();
}

net::Frame Router::Dispatch(const net::Frame& req) {
  switch (req.type) {
    case net::FrameType::kPing:
      return Reply(req.request_id, net::FrameType::kPong, {});
    case net::FrameType::kExecute:
      return HandleExecute(req);
    case net::FrameType::kSubmit:
      return HandleSubmit(req);
    case net::FrameType::kCancel:
    case net::FrameType::kTicketState:
    case net::FrameType::kTicketWait:
      return HandleTicketOp(req);
    case net::FrameType::kStats:
      return Reply(req.request_id, net::FrameType::kStatsReply,
                   EncodeStatsReply(Stats()));
    case net::FrameType::kRegisterDataset:
      return HandleRegisterDataset(req);
    case net::FrameType::kRemoveDataset:
      return HandleRemoveDataset(req);
    case net::FrameType::kAppendFrames:
      return HandleAppendFrames(req);
    case net::FrameType::kSubscribe:
      return HandleSubscribe(req);
    case net::FrameType::kStreamPoll:
      return HandleStreamPoll(req);
    case net::FrameType::kUnsubscribe:
      return HandleUnsubscribe(req);
    default:
      return MakeErrorFrame(
          req.request_id,
          common::Status::InvalidArgument(
              std::string("unexpected frame ") +
              net::FrameTypeName(req.type)));
  }
}

net::Frame Router::HandleExecute(const net::Frame& req) {
  ExecRequest exec;
  if (!DecodeExecRequest(req.payload, &exec)) return BadPayload(req);
  auto result = Execute(exec);
  if (!result.ok()) return MakeErrorFrame(req.request_id, result.status());
  return Reply(req.request_id, net::FrameType::kResult,
               EncodeQueryResult(result.value()));
}

net::Frame Router::HandleSubmit(const net::Frame& req) {
  ExecRequest exec;
  if (!DecodeExecRequest(req.payload, &exec)) return BadPayload(req);
  std::vector<int> candidates;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    candidates = CandidatesLocked(exec.dataset);
  }
  if (candidates.empty()) {
    return MakeErrorFrame(
        req.request_id,
        common::Status::Unavailable("no live replica of '" + exec.dataset +
                                    "'; re-homing, retry"));
  }
  // Same replica order as Execute. The ticket pins the shard the query
  // actually landed on; a submission the primary never saw (retryable
  // transport failure) moves to the next replica.
  common::Status last = common::Status::Unavailable("no candidate tried");
  for (size_t i = 0; i < candidates.size(); ++i) {
    RemoteShard* client = nullptr;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (!shards_[candidates[i]].alive) continue;
      client = shards_[candidates[i]].client.get();
    }
    auto ticket = client->Submit(exec);
    if (ticket.ok()) {
      if (i > 0) {
        std::lock_guard<std::mutex> lock(state_mu_);
        ++read_failovers_;
      }
      uint64_t id = 0;
      {
        std::lock_guard<std::mutex> lock(tickets_mu_);
        id = next_ticket_id_++;
        tickets_[id] = {candidates[i], ticket.value().id(), exec.dataset};
      }
      return Reply(req.request_id, net::FrameType::kSubmitReply,
                   EncodeTicketId(id));
    }
    if (!common::IsRetryable(ticket.status().code())) {
      return MakeErrorFrame(req.request_id, ticket.status());
    }
    last = ticket.status();
  }
  return MakeErrorFrame(req.request_id, last);
}

net::Frame Router::HandleTicketOp(const net::Frame& req) {
  uint64_t id = 0;
  if (!DecodeTicketId(req.payload, &id)) return BadPayload(req);
  int shard_id = -1;
  uint64_t remote_id = 0;
  std::string dataset;
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    auto it = tickets_.find(id);
    if (it == tickets_.end()) {
      return MakeErrorFrame(req.request_id,
                            common::Status::NotFound("unknown ticket"));
    }
    shard_id = it->second.shard;
    remote_id = it->second.remote_id;
    dataset = it->second.dataset;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!shards_[shard_id].alive) {
      // The query died with its shard; the submission must be replayed by
      // the client (the router cannot know how far it got).
      return MakeErrorFrame(
          req.request_id,
          common::Status::Unavailable("home shard failed over; resubmit"));
    }
  }
  RemoteShard* client = shards_[shard_id].client.get();
  switch (req.type) {
    case net::FrameType::kCancel: {
      common::Status st = client->Cancel(remote_id);
      if (!st.ok()) return MakeErrorFrame(req.request_id, st);
      return Reply(req.request_id, net::FrameType::kOk, {});
    }
    case net::FrameType::kTicketState: {
      auto state = client->TicketState(remote_id);
      if (!state.ok()) return MakeErrorFrame(req.request_id, state.status());
      return Reply(req.request_id, net::FrameType::kTicketStateReply,
                   EncodeTicketState(state.value()));
    }
    default: {  // kTicketWait
      auto result = client->TicketWait(remote_id);
      // The shard reaps its ticket once a wait resolves (success or a
      // terminal query error); only a transport loss leaves it live.
      if (result.ok() || !common::IsRetryable(result.status().code())) {
        std::lock_guard<std::mutex> lock(tickets_mu_);
        tickets_.erase(id);
      }
      if (!result.ok()) return MakeErrorFrame(req.request_id, result.status());
      engine::QueryResult r =
          AnnotateResult(dataset, shard_id, std::move(result).value());
      if (r.plan_seconds > 0) PropagatePlans(dataset);
      return Reply(req.request_id, net::FrameType::kResult,
                   EncodeQueryResult(r));
    }
  }
}

net::Frame Router::HandleRegisterDataset(const net::Frame& req) {
  DatasetSpec spec;
  if (!DecodeDatasetSpec(req.payload, &spec)) return BadPayload(req);
  auto reg = RegisterDataset(spec);
  if (!reg.ok()) return MakeErrorFrame(req.request_id, reg.status());
  return Reply(req.request_id, net::FrameType::kRegisterReply,
               EncodeRegisterReply(reg.value()));
}

net::Frame Router::HandleRemoveDataset(const net::Frame& req) {
  std::string name;
  if (!DecodeName(req.payload, &name)) return BadPayload(req);
  common::Status st = RemoveDataset(name);
  if (!st.ok()) return MakeErrorFrame(req.request_id, st);
  return Reply(req.request_id, net::FrameType::kOk, {});
}

net::Frame Router::HandleAppendFrames(const net::Frame& req) {
  AppendFramesRequest append;
  if (!DecodeAppendFrames(req.payload, &append)) return BadPayload(req);
  if (append.relative_frames == 0) {
    return MakeErrorFrame(
        req.request_id,
        common::Status::InvalidArgument(
            "the router takes the relative append form (relative_frames > 0);"
            " the absolute form is the router->shard direction"));
  }
  auto reply = AppendFrames(append.name, append.relative_frames);
  if (!reply.ok()) return MakeErrorFrame(req.request_id, reply.status());
  return Reply(req.request_id, net::FrameType::kAppendReply,
               EncodeAppendReply(reply.value()));
}

net::Frame Router::HandleSubscribe(const net::Frame& req) {
  SubscribeRequest sub;
  if (!DecodeSubscribeRequest(req.payload, &sub)) return BadPayload(req);
  auto reply = Subscribe(sub);
  if (!reply.ok()) return MakeErrorFrame(req.request_id, reply.status());
  return Reply(req.request_id, net::FrameType::kSubscribeReply,
               EncodeSubscribeReply(reply.value()));
}

net::Frame Router::HandleStreamPoll(const net::Frame& req) {
  StreamPollRequest poll;
  if (!DecodeStreamPoll(req.payload, &poll)) return BadPayload(req);
  auto msg = StreamPoll(poll.sub_id, poll.after_seq, poll.timeout_ms);
  if (!msg.ok()) return MakeErrorFrame(req.request_id, msg.status());
  return Reply(req.request_id, net::FrameType::kStreamResult,
               EncodeStreamResult(msg.value()));
}

net::Frame Router::HandleUnsubscribe(const net::Frame& req) {
  uint64_t id = 0;
  if (!DecodeTicketId(req.payload, &id)) return BadPayload(req);
  common::Status st = Unsubscribe(id);
  if (!st.ok()) return MakeErrorFrame(req.request_id, st);
  return Reply(req.request_id, net::FrameType::kOk, {});
}

}  // namespace zeus::cluster
