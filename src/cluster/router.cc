#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "common/stringutil.h"

namespace zeus::cluster {

namespace {

net::Frame Reply(uint64_t request_id, net::FrameType type,
                 std::string payload) {
  net::Frame f;
  f.type = type;
  f.request_id = request_id;
  f.payload = std::move(payload);
  return f;
}

net::Frame BadPayload(const net::Frame& req) {
  return MakeErrorFrame(
      req.request_id,
      common::Status::InvalidArgument(
          std::string("malformed ") + net::FrameTypeName(req.type) +
          " payload"));
}

// Merge per-dataset rows from many shard snapshots by name (counters add,
// histograms merge, queue depth sums — a dataset only ever lives on one
// shard at a time, but across a failover its history spans two).
void MergeDatasetRows(std::vector<engine::DatasetStats>* into,
                      const std::vector<engine::DatasetStats>& rows) {
  for (const auto& row : rows) {
    auto it = std::find_if(
        into->begin(), into->end(),
        [&](const engine::DatasetStats& d) { return d.dataset == row.dataset; });
    if (it == into->end()) {
      into->push_back(row);
      continue;
    }
    it->queue_depth += row.queue_depth;
    it->weight = std::max(it->weight, row.weight);
    it->submitted += row.submitted;
    it->completed += row.completed;
    it->failed += row.failed;
    it->cancelled += row.cancelled;
    it->rejected += row.rejected;
    it->queue_wait.Merge(row.queue_wait);
    it->exec.Merge(row.exec);
  }
}

}  // namespace

Router::Router(Options options) : opts_(std::move(options)) {}

Router::~Router() { Stop(); }

common::Status Router::Start() {
  if (opts_.shards.empty()) {
    return common::Status::InvalidArgument("router needs at least one shard");
  }
  if (running_.load()) return common::Status::FailedPrecondition("running");

  shards_.clear();
  shards_.reserve(opts_.shards.size());
  for (size_t i = 0; i < opts_.shards.size(); ++i) {
    ShardState state;
    state.endpoint = opts_.shards[i];

    RemoteShard::Options c;
    c.host = state.endpoint.host;
    c.port = state.endpoint.port;
    c.call_deadline_ms = opts_.call_deadline_ms;
    c.name = opts_.name + "->s" + std::to_string(i);
    state.client = std::make_unique<RemoteShard>(c);

    // The health probe never retries: a miss must be a miss, not three
    // stacked attempts that stretch the detection window.
    RemoteShard::Options p = c;
    p.max_attempts = 1;
    p.call_deadline_ms = opts_.health_deadline_ms;
    p.connect_timeout_ms = opts_.health_deadline_ms;
    p.name = c.name + ":probe";
    state.probe = std::make_unique<RemoteShard>(p);

    shards_.push_back(std::move(state));
  }
  alive_count_ = static_cast<int>(shards_.size());
  RebuildRingLocked();  // no threads yet; the "Locked" contract is vacuous

  ZEUS_RETURN_IF_ERROR(listener_.Listen(opts_.host, opts_.port));
  port_ = listener_.port();
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (opts_.health_interval_ms > 0) {
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
  ZEUS_LOG(Info) << opts_.name << " listening on " << opts_.host << ":"
                 << port_ << " with " << shards_.size() << " shard(s)";
  return common::Status::Ok();
}

void Router::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    health_cv_.notify_all();
  }
  if (health_thread_.joinable()) health_thread_.join();
  listener_.Close();
  CloseAllConns();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
}

// ---- Routing ---------------------------------------------------------------

void Router::RebuildRingLocked() {
  std::vector<int> alive_ids;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].alive) alive_ids.push_back(static_cast<int>(i));
  }
  ring_ = alive_ids.empty()
              ? nullptr
              : std::make_unique<engine::ShardRing>(alive_ids);
}

common::Result<int> Router::RouteLocked(const std::string& dataset) const {
  if (alive_count_ == 0 || ring_ == nullptr) {
    return common::Status::Unavailable("no alive shards");
  }
  if (moving_.count(dataset) > 0) {
    return common::Status::Unavailable("dataset '" + dataset +
                                       "' is re-homing; retry");
  }
  return ring_->ShardFor(dataset);
}

common::Result<int> Router::Route(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return RouteLocked(dataset);
}

common::Result<uint64_t> Router::RegisterDataset(const DatasetSpec& spec) {
  auto home = Route(spec.name);
  if (!home.ok()) return home.status();
  auto reg = shards_[home.value()].client->RegisterDataset(spec);
  if (!reg.ok()) return reg.status();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    datasets_[spec.name] = spec;
  }
  return reg;
}

common::Result<engine::QueryResult> Router::Execute(const std::string& dataset,
                                                    const std::string& sql,
                                                    int priority) {
  auto home = Route(dataset);
  if (!home.ok()) return home.status();
  ExecRequest req;
  req.dataset = dataset;
  req.sql = sql;
  req.priority = priority;
  return shards_[home.value()].client->Execute(req);
}

common::Status Router::RemoveDataset(const std::string& name) {
  auto home = Route(name);
  if (!home.ok()) return home.status();
  common::Status st = shards_[home.value()].client->RemoveDataset(name);
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(state_mu_);
    datasets_.erase(name);
  }
  return st;
}

// ---- Stats -----------------------------------------------------------------

engine::GroupStats Router::GroupStatsNow() {
  struct Target {
    int id;
    RemoteShard* probe;
  };
  std::vector<Target> targets;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i].alive) {
        targets.push_back({static_cast<int>(i), shards_[i].probe.get()});
      }
    }
  }

  // Collect outside the lock (each probe is one bounded attempt; a slow
  // shard delays the scrape, never routing).
  std::vector<std::pair<int, StatsReply>> fresh;
  for (const Target& t : targets) {
    auto reply = t.probe->Stats();
    if (reply.ok()) fresh.emplace_back(t.id, std::move(reply).value());
  }

  engine::GroupStats group;
  std::lock_guard<std::mutex> lock(state_mu_);
  for (auto& [id, reply] : fresh) {
    shards_[id].last_stats = reply.stats;
    shards_[id].last_stats.shard = id;
    shards_[id].have_stats = true;
  }
  group.num_shards = alive_count_;
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Alive shards contribute their latest snapshot (the just-fetched one
    // when the probe answered, the previous one when it was slow).
    if (shards_[i].alive && shards_[i].have_stats) {
      group.Absorb(shards_[i].last_stats);
    }
  }
  if (have_carry_) group.AbsorbTotals(carry_);
  return group;
}

ClusterHealth Router::Health() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  ClusterHealth health;
  health.failovers = failovers_;
  health.rehomed_datasets = rehomed_;
  health.dead_shards =
      static_cast<int64_t>(shards_.size()) - alive_count_;
  return health;
}

StatsReply Router::Stats() {
  engine::GroupStats group = GroupStatsNow();
  ClusterHealth health = Health();
  StatsReply reply;
  // Exact aggregate (alive shards + dead-shard carry), plus the merged
  // per-dataset rows so `.stats`-style clients keep their breakdown.
  static_cast<engine::ServingCounters&>(reply.stats) =
      static_cast<const engine::ServingCounters&>(group);
  for (const auto& shard : group.shards) {
    MergeDatasetRows(&reply.stats.datasets, shard.datasets);
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (have_carry_) MergeDatasetRows(&reply.stats.datasets, carry_.datasets);
  }
  reply.num_shards = group.num_shards;
  reply.failovers = health.failovers;
  reply.rehomed_datasets = health.rehomed_datasets;
  reply.dead_shards = health.dead_shards;
  return reply;
}

// ---- Health checking / failover --------------------------------------------

int Router::CheckNow() {
  std::lock_guard<std::mutex> pass(check_mu_);
  struct Target {
    int id;
    RemoteShard* probe;
  };
  std::vector<Target> targets;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i].alive) {
        targets.push_back({static_cast<int>(i), shards_[i].probe.get()});
      }
    }
  }

  int newly_dead = 0;
  for (const Target& t : targets) {
    auto reply = t.probe->Stats();
    std::unique_lock<std::mutex> lock(state_mu_);
    ShardState& s = shards_[t.id];
    if (!s.alive) continue;
    if (reply.ok()) {
      s.misses = 0;
      s.last_stats = reply.value().stats;
      s.last_stats.shard = t.id;
      s.have_stats = true;
    } else {
      ++s.misses;
      ZEUS_LOG(Warning) << opts_.name << " shard " << t.id << " missed probe "
                        << s.misses << "/" << opts_.misses_to_dead << ": "
                        << reply.status().ToString();
      if (s.misses >= opts_.misses_to_dead) {
        FailOverLocked(lock, t.id);
        ++newly_dead;
      }
    }
  }
  return newly_dead;
}

void Router::FailOverLocked(std::unique_lock<std::mutex>& lock, int id) {
  ShardState& s = shards_[id];
  if (!s.alive) return;

  // Step 1+2: declare dead. Only this shard's vnodes leave the ring, so
  // only its datasets change owner.
  std::vector<DatasetSpec> moved;
  for (const auto& [name, spec] : datasets_) {
    if (ring_ != nullptr && ring_->ShardFor(name) == id) {
      moved.push_back(spec);
    }
  }
  s.alive = false;
  s.misses = 0;
  --alive_count_;
  ++failovers_;
  if (s.have_stats) {
    carry_.Merge(s.last_stats);
    have_carry_ = true;
  }
  RebuildRingLocked();
  for (const DatasetSpec& spec : moved) moving_.insert(spec.name);
  s.client->CloseConnections();
  s.probe->CloseConnections();
  ZEUS_LOG(Warning) << opts_.name << " declared shard " << id << " ("
                    << s.endpoint.host << ":" << s.endpoint.port
                    << ") dead; re-homing " << moved.size() << " dataset(s)";

  // Step 3: re-home on the ring successors. The registration RPCs run
  // without the lock (dataset regeneration + plan warmup take real time);
  // `moving_` keeps queries for these datasets failing retryably until
  // their new home is ready.
  lock.unlock();
  for (DatasetSpec spec : moved) {
    RemoteShard* client = nullptr;
    int home = -1;
    {
      std::lock_guard<std::mutex> relock(state_mu_);
      if (alive_count_ > 0 && ring_ != nullptr) {
        home = ring_->ShardFor(spec.name);
        client = shards_[home].client.get();
      }
    }
    common::Status st = common::Status::Unavailable("no alive shards");
    if (client != nullptr) {
      spec.warm_plans = true;  // the plan-catalog handoff
      auto reg = client->RegisterDataset(spec);
      st = reg.ok() ? common::Status::Ok() : reg.status();
      if (reg.ok()) {
        ZEUS_LOG(Info) << opts_.name << " re-homed dataset '" << spec.name
                       << "' to shard " << home << " (" << reg.value()
                       << " plan(s) warmed)";
      }
    }
    std::lock_guard<std::mutex> relock(state_mu_);
    moving_.erase(spec.name);
    if (st.ok()) {
      ++rehomed_;
    } else {
      // The successor is unreachable too; its own failover will re-run
      // this re-home (the ring will have moved the dataset again).
      ZEUS_LOG(Warning) << opts_.name << " re-home of '" << spec.name
                        << "' failed: " << st.ToString();
    }
  }
  lock.lock();
}

void Router::HealthLoop() {
  std::unique_lock<std::mutex> lk(health_mu_);
  while (!stopping_.load()) {
    health_cv_.wait_for(lk, std::chrono::milliseconds(opts_.health_interval_ms),
                        [&] { return stopping_.load(); });
    if (stopping_.load()) return;
    lk.unlock();
    CheckNow();
    lk.lock();
  }
}

bool Router::ShardAlive(int id) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (id < 0 || id >= static_cast<int>(shards_.size())) return false;
  return shards_[id].alive;
}

int Router::num_alive() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return alive_count_;
}

int Router::HomeOf(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (alive_count_ == 0 || ring_ == nullptr) return -1;
  return ring_->ShardFor(dataset);
}

// ---- Client-facing server --------------------------------------------------

void Router::CloseAllConns() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& [fd, weak] : conns_) {
    if (auto conn = weak.lock()) conn->Shutdown();
  }
}

void Router::AcceptLoop() {
  while (!stopping_.load()) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      ZEUS_LOG(Warning) << opts_.name
                        << " accept failed: " << accepted.status().ToString();
      return;
    }
    auto conn = std::make_shared<net::FrameConn>(
        std::move(accepted).value(), "server:" + opts_.name);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load()) return;
    conns_[conn->socket().fd()] = conn;
    conn_threads_.emplace_back([this, conn] { ConnLoop(conn); });
  }
}

void Router::ConnLoop(std::shared_ptr<net::FrameConn> conn) {
  bool first = true;
  while (!stopping_.load()) {
    net::Frame req;
    common::Status st;
    if (first) {
      first = false;
      // Sniff the first 4 bytes: "GET " means the connection speaks HTTP
      // (a /metrics scrape); anything else is a frame length prefix. No
      // ambiguity — "GET " read as a little-endian u32 is ~542M, far past
      // kMaxFrameBytes, so a real frame can never alias it.
      uint8_t head[4];
      st = conn->socket().ReadAll(head, 4, /*deadline_ms=*/-1);
      if (!st.ok()) break;
      if (std::memcmp(head, "GET ", 4) == 0) {
        ServeHttp(*conn);
        break;
      }
      uint32_t body_len = 0;
      for (int i = 0; i < 4; ++i) {
        body_len |= static_cast<uint32_t>(head[i]) << (8 * i);
      }
      st = conn->ReadFrameBody(body_len, &req, opts_.write_deadline_ms);
    } else {
      st = conn->ReadFrame(&req, /*deadline_ms=*/-1);
    }
    if (!st.ok()) break;
    net::Frame resp = Dispatch(req);
    st = conn->WriteFrame(resp, opts_.write_deadline_ms);
    if (!st.ok()) break;
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn->socket().fd());
}

void Router::ServeHttp(net::FrameConn& conn) {
  // "GET " is already consumed; read the rest of the request (capped, with
  // a deadline — scrapers are line-speed, anything else is garbage).
  std::string request;
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    char c = 0;
    if (!conn.socket().ReadAll(&c, 1, /*deadline_ms=*/5'000).ok()) break;
    request.push_back(c);
  }
  const std::string path = request.substr(0, request.find(' '));

  std::string status = "404 Not Found";
  std::string body = "not found\n";
  if (path == "/metrics") {
    status = "200 OK";
    body = PrometheusText(GroupStatsNow(), Health());
  }
  const std::string response = common::Format(
      "HTTP/1.1 %s\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      status.c_str(), body.size()) + body;
  conn.socket().WriteAll(response.data(), response.size(),
                         opts_.write_deadline_ms);
  conn.Shutdown();
  conn.Close();
}

net::Frame Router::Dispatch(const net::Frame& req) {
  switch (req.type) {
    case net::FrameType::kPing:
      return Reply(req.request_id, net::FrameType::kPong, {});
    case net::FrameType::kExecute:
      return HandleExecute(req);
    case net::FrameType::kSubmit:
      return HandleSubmit(req);
    case net::FrameType::kCancel:
    case net::FrameType::kTicketState:
    case net::FrameType::kTicketWait:
      return HandleTicketOp(req);
    case net::FrameType::kStats:
      return Reply(req.request_id, net::FrameType::kStatsReply,
                   EncodeStatsReply(Stats()));
    case net::FrameType::kRegisterDataset:
      return HandleRegisterDataset(req);
    case net::FrameType::kRemoveDataset:
      return HandleRemoveDataset(req);
    default:
      return MakeErrorFrame(
          req.request_id,
          common::Status::InvalidArgument(
              std::string("unexpected frame ") +
              net::FrameTypeName(req.type)));
  }
}

net::Frame Router::HandleExecute(const net::Frame& req) {
  ExecRequest exec;
  if (!DecodeExecRequest(req.payload, &exec)) return BadPayload(req);
  auto home = Route(exec.dataset);
  if (!home.ok()) return MakeErrorFrame(req.request_id, home.status());
  auto result = shards_[home.value()].client->Execute(exec);
  if (!result.ok()) return MakeErrorFrame(req.request_id, result.status());
  return Reply(req.request_id, net::FrameType::kResult,
               EncodeQueryResult(result.value()));
}

net::Frame Router::HandleSubmit(const net::Frame& req) {
  ExecRequest exec;
  if (!DecodeExecRequest(req.payload, &exec)) return BadPayload(req);
  auto home = Route(exec.dataset);
  if (!home.ok()) return MakeErrorFrame(req.request_id, home.status());
  auto ticket = shards_[home.value()].client->Submit(exec);
  if (!ticket.ok()) return MakeErrorFrame(req.request_id, ticket.status());
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    id = next_ticket_id_++;
    tickets_[id] = {home.value(), ticket.value().id()};
  }
  return Reply(req.request_id, net::FrameType::kSubmitReply,
               EncodeTicketId(id));
}

net::Frame Router::HandleTicketOp(const net::Frame& req) {
  uint64_t id = 0;
  if (!DecodeTicketId(req.payload, &id)) return BadPayload(req);
  int shard_id = -1;
  uint64_t remote_id = 0;
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    auto it = tickets_.find(id);
    if (it == tickets_.end()) {
      return MakeErrorFrame(req.request_id,
                            common::Status::NotFound("unknown ticket"));
    }
    shard_id = it->second.first;
    remote_id = it->second.second;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!shards_[shard_id].alive) {
      // The query died with its shard; the submission must be replayed by
      // the client (the router cannot know how far it got).
      return MakeErrorFrame(
          req.request_id,
          common::Status::Unavailable("home shard failed over; resubmit"));
    }
  }
  RemoteShard* client = shards_[shard_id].client.get();
  switch (req.type) {
    case net::FrameType::kCancel: {
      common::Status st = client->Cancel(remote_id);
      if (!st.ok()) return MakeErrorFrame(req.request_id, st);
      return Reply(req.request_id, net::FrameType::kOk, {});
    }
    case net::FrameType::kTicketState: {
      auto state = client->TicketState(remote_id);
      if (!state.ok()) return MakeErrorFrame(req.request_id, state.status());
      return Reply(req.request_id, net::FrameType::kTicketStateReply,
                   EncodeTicketState(state.value()));
    }
    default: {  // kTicketWait
      auto result = client->TicketWait(remote_id);
      // The shard reaps its ticket once a wait resolves (success or a
      // terminal query error); only a transport loss leaves it live.
      if (result.ok() || !common::IsRetryable(result.status().code())) {
        std::lock_guard<std::mutex> lock(tickets_mu_);
        tickets_.erase(id);
      }
      if (!result.ok()) return MakeErrorFrame(req.request_id, result.status());
      return Reply(req.request_id, net::FrameType::kResult,
                   EncodeQueryResult(result.value()));
    }
  }
}

net::Frame Router::HandleRegisterDataset(const net::Frame& req) {
  DatasetSpec spec;
  if (!DecodeDatasetSpec(req.payload, &spec)) return BadPayload(req);
  auto reg = RegisterDataset(spec);
  if (!reg.ok()) return MakeErrorFrame(req.request_id, reg.status());
  return Reply(req.request_id, net::FrameType::kRegisterReply,
               EncodeRegisterReply(reg.value()));
}

net::Frame Router::HandleRemoveDataset(const net::Frame& req) {
  std::string name;
  if (!DecodeName(req.payload, &name)) return BadPayload(req);
  common::Status st = RemoveDataset(name);
  if (!st.ok()) return MakeErrorFrame(req.request_id, st);
  return Reply(req.request_id, net::FrameType::kOk, {});
}

}  // namespace zeus::cluster
