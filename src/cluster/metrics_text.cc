#include "cluster/metrics_text.h"

#include "common/stringutil.h"

namespace zeus::cluster {

namespace {

void Preamble(std::string* out, const char* name, const char* type,
              const char* help) {
  out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void Counter(std::string* out, const char* name, const char* help,
             long value) {
  Preamble(out, name, "counter", help);
  out->append(common::Format("%s %ld\n", name, value));
}

void Gauge(std::string* out, const char* name, const char* help, long value) {
  Preamble(out, name, "gauge", help);
  out->append(common::Format("%s %ld\n", name, value));
}

void Histogram(std::string* out, const char* name, const char* help,
               const engine::HistogramStats& h) {
  Preamble(out, name, "histogram", help);
  long cumulative = 0;
  for (size_t i = 0; i < engine::HistogramStats::kNumBuckets; ++i) {
    cumulative += h.buckets[i];
    out->append(common::Format("%s_bucket{le=\"%.9g\"} %ld\n", name,
                               engine::HistogramStats::BucketBound(i),
                               cumulative));
  }
  out->append(common::Format("%s_bucket{le=\"+Inf\"} %ld\n", name, h.count));
  out->append(common::Format("%s_sum %.9g\n", name, h.sum_seconds));
  out->append(common::Format("%s_count %ld\n", name, h.count));
}

}  // namespace

std::string PrometheusText(const engine::GroupStats& stats,
                           const ClusterHealth& health) {
  std::string out;
  out.reserve(8192);

  // Group-level counters (monotone across failovers: dead shards' history
  // is folded into the aggregate by the router's carry).
  Counter(&out, "zeus_queries_submitted_total",
          "Queries admitted across all shards.", stats.submitted);
  Counter(&out, "zeus_queries_completed_total",
          "Queries completed successfully.", stats.completed);
  Counter(&out, "zeus_queries_failed_total", "Queries that failed.",
          stats.failed);
  Counter(&out, "zeus_queries_cancelled_total", "Queries cancelled.",
          stats.cancelled);
  Counter(&out, "zeus_queries_rejected_total",
          "Submissions rejected at admission (queue full).", stats.rejected);
  Counter(&out, "zeus_planner_runs_total",
          "Cold plans trained by the query planner.", stats.planner_runs);
  Counter(&out, "zeus_plan_cache_hits_total",
          "Plans served from the in-memory plan cache.", stats.cache_hits);
  Counter(&out, "zeus_plan_disk_loads_total",
          "Plans loaded from the persisted plan catalog.", stats.disk_loads);
  Counter(&out, "zeus_drains_total", "Dataset drain waits completed.",
          stats.drains);

  // Group-level gauges.
  Gauge(&out, "zeus_queue_depth", "Queries currently queued.",
        stats.queue_depth);
  Gauge(&out, "zeus_active_queries", "Queries currently executing.",
        stats.active);
  Gauge(&out, "zeus_peak_queue_depth", "High-water mark of the queue depth.",
        stats.peak_queue_depth);
  Gauge(&out, "zeus_shards_alive", "Shards currently serving.",
        static_cast<long>(stats.num_shards));

  // Cluster health (router-maintained).
  Counter(&out, "zeus_cluster_failovers_total",
          "Shards declared dead and failed over.", health.failovers);
  Counter(&out, "zeus_cluster_rehomed_datasets_total",
          "Datasets re-homed to a ring successor after a failover.",
          health.rehomed_datasets);
  Gauge(&out, "zeus_cluster_dead_shards", "Shards currently marked dead.",
        health.dead_shards);

  // Replication / certain-answer contract.
  Counter(&out, "zeus_certain_answers_total",
          "Answers served kCertain (replica epoch matched committed).",
          health.certain_answers);
  Counter(&out, "zeus_degraded_answers_total",
          "Answers served kDegraded (inside a divergence window).",
          health.degraded_answers);
  Counter(&out, "zeus_cluster_read_failovers_total",
          "Reads served by a non-primary replica.", health.read_failovers);
  Counter(&out, "zeus_cluster_plan_resyncs_total",
          "Plan-catalog syncs (kSyncPlans) applied to replicas.",
          health.plan_resyncs);
  Gauge(&out, "zeus_cluster_replication_factor",
        "Configured replicas per dataset.", health.replication);
  Gauge(&out, "zeus_cluster_replicas_behind",
        "Live target replicas below their group's committed epoch.",
        health.replicas_behind);
  Preamble(&out, "zeus_dataset_primary_shard", "gauge",
           "Current primary (ring owner) shard id, by dataset.");
  for (const auto& p : health.placements) {
    out.append(common::Format("zeus_dataset_primary_shard{dataset=\"%s\"} %d\n",
                              p.dataset.c_str(), p.primary));
  }
  Preamble(&out, "zeus_dataset_live_replicas", "gauge",
           "Live replicas currently holding the dataset.");
  for (const auto& p : health.placements) {
    out.append(common::Format("zeus_dataset_live_replicas{dataset=\"%s\"} %d\n",
                              p.dataset.c_str(), p.replicas));
  }
  Preamble(&out, "zeus_dataset_committed_epoch", "gauge",
           "Replica group's committed plan/dataset epoch, by dataset.");
  for (const auto& p : health.placements) {
    out.append(common::Format(
        "zeus_dataset_committed_epoch{dataset=\"%s\"} %llu\n",
        p.dataset.c_str(),
        static_cast<unsigned long long>(p.committed_epoch)));
  }

  // Accuracy-budget serving (docs/ACCURACY.md).
  Counter(&out, "zeus_band_degraded_answers_total",
          "Answers served below their requested accuracy band.",
          stats.band_degraded);
  Preamble(&out, "zeus_degraded_band_seconds_total", "counter",
           "Execution wall time spent serving degraded-band answers.");
  out.append(common::Format("zeus_degraded_band_seconds_total %.9g\n",
                            stats.degraded_band_seconds));
  Gauge(&out, "zeus_degrade_level",
        "Current accuracy-shed level (0 = full accuracy).",
        static_cast<long>(stats.degrade_level));
  Preamble(&out, "zeus_plan_cache_band_hits_total", "counter",
           "Plans served from cache (memory or disk), by accuracy band.");
  for (const auto& [band, hits] : stats.band_plan_hits) {
    out.append(common::Format(
        "zeus_plan_cache_band_hits_total{band=\"%.3f\"} %ld\n",
        static_cast<double>(band) / 1000.0, hits));
  }
  Preamble(&out, "zeus_achieved_confidence", "histogram",
           "Cost-model accuracy estimate annotated on every answer.");
  {
    long cumulative = 0;
    for (size_t i = 0; i < engine::ConfidenceStats::kNumBuckets; ++i) {
      cumulative += stats.confidence.buckets[i];
      out.append(common::Format("zeus_achieved_confidence_bucket{le=\"%.9g\"} %ld\n",
                                engine::ConfidenceStats::BucketBound(i),
                                cumulative));
    }
    out.append(common::Format("zeus_achieved_confidence_bucket{le=\"+Inf\"} %ld\n",
                              stats.confidence.count));
    out.append(common::Format("zeus_achieved_confidence_sum %.9g\n",
                              stats.confidence.sum));
    out.append(common::Format("zeus_achieved_confidence_count %ld\n",
                              stats.confidence.count));
  }

  // Live streams (docs/ARCHITECTURE.md "Live streams").
  Counter(&out, "zeus_appends_total",
          "Dataset append transactions applied (idempotent replays excluded).",
          stats.appends);
  Counter(&out, "zeus_appended_frames_total",
          "Frames appended across all datasets.", stats.appended_frames);
  Counter(&out, "zeus_subscriptions_total",
          "Standing queries opened (SubscribeQuery).", stats.subscribes);
  Counter(&out, "zeus_unsubscribes_total",
          "Subscriptions closed, cancelled or reaped.", stats.unsubscribes);
  Counter(&out, "zeus_stream_results_total",
          "Incremental window results published to subscribers.",
          stats.stream_results);
  Counter(&out, "zeus_stream_dropped_total",
          "Buffered stream results discarded by slow consumers' bounds.",
          stats.stream_dropped);
  Counter(&out, "zeus_feature_cache_hits_total",
          "APFG feature-cache hits sampled around localizations.",
          stats.feature_hits);
  Counter(&out, "zeus_feature_cache_misses_total",
          "APFG feature-cache misses sampled around localizations.",
          stats.feature_misses);
  Counter(&out, "zeus_feature_cache_evictions_total",
          "APFG feature-cache LRU evictions sampled around localizations.",
          stats.feature_evictions);

  // Latency histograms (seconds; bucket bounds are the registry's fixed
  // 1µs * 2^i grid, so scrapes from different shards always merge).
  Histogram(&out, "zeus_queue_wait_seconds",
            "Time from admission to a worker claiming the query.",
            stats.queue_wait);
  Histogram(&out, "zeus_exec_seconds", "Query execution wall time.",
            stats.exec);

  // Per-shard breakdown for the signals that localize a problem.
  Preamble(&out, "zeus_shard_completed_total", "counter",
           "Queries completed, by shard.");
  for (const auto& shard : stats.shards) {
    out.append(common::Format("zeus_shard_completed_total{shard=\"%d\"} %ld\n",
                              shard.shard, shard.completed));
  }
  Preamble(&out, "zeus_shard_failed_total", "counter",
           "Queries failed, by shard.");
  for (const auto& shard : stats.shards) {
    out.append(common::Format("zeus_shard_failed_total{shard=\"%d\"} %ld\n",
                              shard.shard, shard.failed));
  }
  Preamble(&out, "zeus_shard_queue_depth", "gauge",
           "Queries currently queued, by shard.");
  for (const auto& shard : stats.shards) {
    out.append(common::Format("zeus_shard_queue_depth{shard=\"%d\"} %ld\n",
                              shard.shard, shard.queue_depth));
  }
  return out;
}

}  // namespace zeus::cluster
