#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace zeus::tensor {

namespace {
constexpr char kMagic[4] = {'Z', 'T', 'E', 'N'};
}  // namespace

common::Status WriteTensor(std::ostream& os, const Tensor& t) {
  os.write(kMagic, 4);
  uint32_t ndim = static_cast<uint32_t>(t.ndim());
  os.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
  for (int i = 0; i < t.ndim(); ++i) {
    int32_t d = t.dim(i);
    os.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!os.good()) return common::Status::IoError("tensor write failed");
  return common::Status::Ok();
}

common::Result<Tensor> ReadTensor(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is.good() || std::memcmp(magic, kMagic, 4) != 0) {
    return common::Status::IoError("bad tensor magic");
  }
  uint32_t ndim = 0;
  is.read(reinterpret_cast<char*>(&ndim), sizeof(ndim));
  if (!is.good() || ndim > 8) return common::Status::IoError("bad tensor ndim");
  std::vector<int> shape(ndim);
  for (uint32_t i = 0; i < ndim; ++i) {
    int32_t d = 0;
    is.read(reinterpret_cast<char*>(&d), sizeof(d));
    if (!is.good() || d < 0) return common::Status::IoError("bad tensor dim");
    shape[i] = d;
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!is.good()) return common::Status::IoError("tensor data truncated");
  return t;
}

common::Status SaveTensors(const std::string& path,
                           const std::vector<Tensor>& tensors) {
  std::ofstream os(path, std::ios::binary);
  if (!os.is_open()) return common::Status::IoError("cannot open " + path);
  uint32_t count = static_cast<uint32_t>(tensors.size());
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& t : tensors) {
    ZEUS_RETURN_IF_ERROR(WriteTensor(os, t));
  }
  return common::Status::Ok();
}

common::Result<std::vector<Tensor>> LoadTensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return common::Status::IoError("cannot open " + path);
  uint32_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is.good()) return common::Status::IoError("truncated tensor file");
  std::vector<Tensor> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    auto r = ReadTensor(is);
    if (!r.ok()) return r.status();
    out.push_back(std::move(r).value());
  }
  return out;
}

}  // namespace zeus::tensor
