#ifndef ZEUS_TENSOR_GEMM_KERNELS_COMMON_H_
#define ZEUS_TENSOR_GEMM_KERNELS_COMMON_H_

// Shared implementation for the per-ISA kernel translation units. Only the
// gemm_kernels_*.cc files include this header: everything here is a
// template or force-inlined, so each TU instantiates its own copy under
// its own -m flags and the codegen specializes to that tier (the scalar
// and AVX2 tiers share the generic-vector 4x16 micro-kernel and differ
// only in how the compiler lowers it; the AVX-512 tier supplies its own
// 6x32 kernel).
//
// Accumulation-order contract (what makes parallel chunking bit-exact
// within a tier): each C element is accumulated kc-panel by kc-panel, and
// within a panel in ascending k, regardless of the [i, j) range.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/gemm_kernels.h"

#define ZEUS_ALWAYS_INLINE inline __attribute__((always_inline))

namespace zeus::tensor::internal {

ZEUS_ALWAYS_INLINE float AElem(const float* a, int lda, bool trans, int i,
                               int p) {
  return trans ? a[static_cast<size_t>(p) * lda + i]
               : a[static_cast<size_t>(i) * lda + p];
}

ZEUS_ALWAYS_INLINE float BElem(const float* b, int ldb, bool trans, int p,
                               int j) {
  return trans ? b[static_cast<size_t>(j) * ldb + p]
               : b[static_cast<size_t>(p) * ldb + j];
}

// Packs A[i0 : i0+mb, p0 : p0+kb] (logical, transpose absorbed) into
// MR-row micro-panels laid out k-major: panel pr holds rows i0 + pr*MR ..,
// element (p, r) at out[pr*kb*MR + p*MR + r]. Rows past the edge are
// zero-filled so the micro-kernel never branches.
template <int MR>
ZEUS_ALWAYS_INLINE void PackA(const float* a, int lda, bool trans, int i0,
                              int mb, int p0, int kb, float* out) {
  const int panels = (mb + MR - 1) / MR;
  for (int pr = 0; pr < panels; ++pr) {
    const int rbase = i0 + pr * MR;
    const int rows = std::min(MR, i0 + mb - rbase);
    float* dst = out + static_cast<size_t>(pr) * kb * MR;
    for (int p = 0; p < kb; ++p) {
      for (int r = 0; r < MR; ++r) {
        dst[static_cast<size_t>(p) * MR + r] =
            r < rows ? AElem(a, lda, trans, rbase + r, p0 + p) : 0.0f;
      }
    }
  }
}

// Packs B[p0 : p0+kb, j0 : j0+nb] into NR-column micro-panels laid out
// k-major: element (p, c) of panel jp at out[jp*kb*NR + p*NR + c].
template <int NR>
ZEUS_ALWAYS_INLINE void PackB(const float* b, int ldb, bool trans, int p0,
                              int kb, int j0, int nb, float* out) {
  const int panels = (nb + NR - 1) / NR;
  for (int jp = 0; jp < panels; ++jp) {
    const int cbase = j0 + jp * NR;
    const int cols = std::min(NR, j0 + nb - cbase);
    float* dst = out + static_cast<size_t>(jp) * kb * NR;
    for (int p = 0; p < kb; ++p) {
      float* row = dst + static_cast<size_t>(p) * NR;
      if (!trans) {
        const float* src = b + static_cast<size_t>(p0 + p) * ldb + cbase;
        for (int c = 0; c < cols; ++c) row[c] = src[c];
      } else {
        for (int c = 0; c < cols; ++c) {
          row[c] = b[static_cast<size_t>(cbase + c) * ldb + (p0 + p)];
        }
      }
      for (int c = cols; c < NR; ++c) row[c] = 0.0f;
    }
  }
}

// C[0:rows, 0:cols] += alpha * sum_p ap[p] (outer) bp[p]. Accumulates the
// whole kb depth into registers, then writes back once.
// 8-lane float vector, alignment relaxed to allow unaligned loads from the
// packed panels. Maps to one ymm under -mavx2 and a pair of xmm at
// baseline. -Wpsabi warns that passing V8 by value differs between those
// ABIs; irrelevant here because every V8 helper is inlined.
#pragma GCC diagnostic ignored "-Wpsabi"
typedef float V8 __attribute__((vector_size(32), aligned(4)));

ZEUS_ALWAYS_INLINE V8 LoadV8(const float* p) {
  return *reinterpret_cast<const V8*>(p);
}

// The 4x16 micro-kernel shared by the scalar and AVX2 tiers.
ZEUS_ALWAYS_INLINE void MicroKernel4x16(int kb, float alpha, const float* ap,
                                        const float* bp, float* c, int ldc,
                                        int rows, int cols) {
  constexpr int MR = 4;
  constexpr int NR = 16;
  // 4 rows x 2 vectors of named accumulators: a fixed-shape register block
  // (arrays here spill to the stack; named variables do not).
  V8 c00 = {}, c01 = {}, c10 = {}, c11 = {};
  V8 c20 = {}, c21 = {}, c30 = {}, c31 = {};
  for (int p = 0; p < kb; ++p) {
    const float* av = ap + static_cast<size_t>(p) * MR;
    const float* bv = bp + static_cast<size_t>(p) * NR;
    const V8 b0 = LoadV8(bv);
    const V8 b1 = LoadV8(bv + 8);
    V8 a = av[0] + (V8){};  // vbroadcastss
    c00 += a * b0;
    c01 += a * b1;
    a = av[1] + (V8){};
    c10 += a * b0;
    c11 += a * b1;
    a = av[2] + (V8){};
    c20 += a * b0;
    c21 += a * b1;
    a = av[3] + (V8){};
    c30 += a * b0;
    c31 += a * b1;
  }
  const V8 va = alpha + (V8){};
  if (rows == MR && cols == NR) {
    float* r0 = c;
    float* r1 = c + ldc;
    float* r2 = c + 2 * static_cast<size_t>(ldc);
    float* r3 = c + 3 * static_cast<size_t>(ldc);
    *reinterpret_cast<V8*>(r0) += va * c00;
    *reinterpret_cast<V8*>(r0 + 8) += va * c01;
    *reinterpret_cast<V8*>(r1) += va * c10;
    *reinterpret_cast<V8*>(r1 + 8) += va * c11;
    *reinterpret_cast<V8*>(r2) += va * c20;
    *reinterpret_cast<V8*>(r2 + 8) += va * c21;
    *reinterpret_cast<V8*>(r3) += va * c30;
    *reinterpret_cast<V8*>(r3 + 8) += va * c31;
    return;
  }
  // Edge tile: stage through a dense buffer, copy the valid region.
  float tmp[MR][NR];
  *reinterpret_cast<V8*>(&tmp[0][0]) = c00;
  *reinterpret_cast<V8*>(&tmp[0][8]) = c01;
  *reinterpret_cast<V8*>(&tmp[1][0]) = c10;
  *reinterpret_cast<V8*>(&tmp[1][8]) = c11;
  *reinterpret_cast<V8*>(&tmp[2][0]) = c20;
  *reinterpret_cast<V8*>(&tmp[2][8]) = c21;
  *reinterpret_cast<V8*>(&tmp[3][0]) = c30;
  *reinterpret_cast<V8*>(&tmp[3][8]) = c31;
  for (int r = 0; r < rows; ++r) {
    float* crow = c + static_cast<size_t>(r) * ldc;
    for (int j = 0; j < cols; ++j) crow[j] += alpha * tmp[r][j];
  }
}

// Blocked accumulation C[i_begin:i_end, j_begin:j_end] += alpha*op(A)op(B)
// (beta already applied by the driver), register-tiled MR x NR with
// micro-kernel Kern.
template <int MR, int NR,
          void (*Kern)(int, float, const float*, const float*, float*, int,
                       int, int)>
void SgemmRangeT(bool trans_a, bool trans_b, int i_begin, int i_end,
                 int j_begin, int j_end, int k, float alpha, const float* a,
                 int lda, const float* b, int ldb, float* c, int ldc,
                 const GemmBlocking& blk) {
  const int mc = std::max((blk.mc + MR - 1) / MR * MR, MR);
  const int kc = std::max(blk.kc, 1);
  const int nc = std::max((blk.nc + NR - 1) / NR * NR, NR);
  // Buffers sized to the work actually packed (a small-k conv GEMM needs a
  // few KB, not the full kc*nc block budget).
  const int kb_max = std::min(kc, k);
  const int mb_max = std::min(mc, i_end - i_begin);
  const int nb_max = std::min(nc, j_end - j_begin);
  std::vector<float> packa(static_cast<size_t>((mb_max + MR - 1) / MR) * MR *
                           kb_max);
  std::vector<float> packb(static_cast<size_t>((nb_max + NR - 1) / NR) * NR *
                           kb_max);
  for (int j0 = j_begin; j0 < j_end; j0 += nc) {
    const int nb = std::min(nc, j_end - j0);
    for (int p0 = 0; p0 < k; p0 += kc) {
      const int kb = std::min(kc, k - p0);
      PackB<NR>(b, ldb, trans_b, p0, kb, j0, nb, packb.data());
      for (int i0 = i_begin; i0 < i_end; i0 += mc) {
        const int mb = std::min(mc, i_end - i0);
        PackA<MR>(a, lda, trans_a, i0, mb, p0, kb, packa.data());
        const int rpanels = (mb + MR - 1) / MR;
        const int cpanels = (nb + NR - 1) / NR;
        for (int jp = 0; jp < cpanels; ++jp) {
          const int cols = std::min(NR, nb - jp * NR);
          const float* bp = packb.data() + static_cast<size_t>(jp) * kb * NR;
          for (int pr = 0; pr < rpanels; ++pr) {
            const int rows = std::min(MR, mb - pr * MR);
            Kern(kb, alpha, packa.data() + static_cast<size_t>(pr) * kb * MR,
                 bp,
                 c + static_cast<size_t>(i0 + pr * MR) * ldc + j0 + jp * NR,
                 ldc, rows, cols);
          }
        }
      }
    }
  }
}

// Portable int8 range kernel (the scalar tier; also documents the exact
// arithmetic the SIMD tiers must reproduce). Packed layouts, per
// gemm_kernels.h: A panel pr, pair p2, row r => pa[((pr*k_pairs + p2) *
// kI8RowTile + r) * 2 + {0,1}]; B panel jp, pair p2, column c =>
// pb[((jp*k_pairs + p2) * kI8ColTile + c) * 2 + {0,1}]. All products and
// pair sums are exact in int32, so any accumulation order gives the same
// bits; C is overwritten with scale * acc.
inline void I8GemmRangeScalar(int m, int n, int k_pairs, int jp_begin,
                              int jp_end, float scale, const int16_t* pa,
                              const int16_t* pb, float* c, int ldc) {
  const int rpanels = (m + kI8RowTile - 1) / kI8RowTile;
  for (int jp = jp_begin; jp < jp_end; ++jp) {
    const int cols = std::min(kI8ColTile, n - jp * kI8ColTile);
    const int16_t* bpanel =
        pb + static_cast<size_t>(jp) * k_pairs * kI8ColTile * 2;
    for (int pr = 0; pr < rpanels; ++pr) {
      const int rows = std::min(kI8RowTile, m - pr * kI8RowTile);
      const int16_t* apanel =
          pa + static_cast<size_t>(pr) * k_pairs * kI8RowTile * 2;
      int32_t acc[kI8RowTile][kI8ColTile] = {};
      for (int p2 = 0; p2 < k_pairs; ++p2) {
        const int16_t* arow =
            apanel + static_cast<size_t>(p2) * kI8RowTile * 2;
        const int16_t* brow =
            bpanel + static_cast<size_t>(p2) * kI8ColTile * 2;
        for (int r = 0; r < kI8RowTile; ++r) {
          const int32_t a0 = arow[r * 2];
          const int32_t a1 = arow[r * 2 + 1];
          for (int col = 0; col < kI8ColTile; ++col) {
            acc[r][col] += a0 * brow[col * 2] + a1 * brow[col * 2 + 1];
          }
        }
      }
      for (int r = 0; r < rows; ++r) {
        float* crow =
            c + static_cast<size_t>(pr * kI8RowTile + r) * ldc +
            static_cast<size_t>(jp) * kI8ColTile;
        for (int col = 0; col < cols; ++col) {
          crow[col] = scale * static_cast<float>(acc[r][col]);
        }
      }
    }
  }
}

// Scalar quantize primitives: the value contract every SIMD override must
// hit exactly. Under -mavx2/-mavx512f the compiler auto-vectorizes these
// loops, but the AVX tiers still supply intrinsic versions — gcc keeps
// lrintf as a libm call at -O2/-O3 (math-errno), which is what makes the
// scalar path slow.
inline float MaxAbsScalar(const float* p, int count) {
  float mx = 0.0f;
  for (int i = 0; i < count; ++i) mx = std::max(mx, std::abs(p[i]));
  return mx;
}

ZEUS_ALWAYS_INLINE int16_t QuantizeOne(float x, float inv) {
  const long q = std::lrintf(x * inv);
  return static_cast<int16_t>(std::min(127L, std::max(-127L, q)));
}

inline void QuantizeScalar(const float* p, int count, float inv,
                           int16_t* dst) {
  for (int i = 0; i < count; ++i) dst[i] = QuantizeOne(p[i], inv);
}

inline void I8PackPanelScalar(const float* b, size_t ldb, int k, int cols,
                              float inv, int16_t* dst) {
  const int k_pairs = (k + 1) / 2;
  for (int p2 = 0; p2 < k_pairs; ++p2) {
    const float* r0 = b + static_cast<size_t>(2 * p2) * ldb;
    const float* r1 = 2 * p2 + 1 < k ? r0 + ldb : nullptr;
    int16_t* out = dst + static_cast<size_t>(p2) * kI8ColTile * 2;
    for (int c = 0; c < kI8ColTile; ++c) {
      out[2 * c] = c < cols ? QuantizeOne(r0[c], inv) : static_cast<int16_t>(0);
      out[2 * c + 1] = (r1 != nullptr && c < cols) ? QuantizeOne(r1[c], inv)
                                                   : static_cast<int16_t>(0);
    }
  }
}

}  // namespace zeus::tensor::internal

#endif  // ZEUS_TENSOR_GEMM_KERNELS_COMMON_H_
