#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

namespace zeus::tensor {

namespace {

// Naive kReference product: plain float-accumulating dot products, one
// fixed k-ascending order for all three transpose variants. (The seed mixed
// policies — double accumulation in the B-transposed variant, skip-zero
// fast paths elsewhere — which made the variants disagree with each other;
// see the tolerance note in the header.)
void ReferenceGemm(bool trans_a, bool trans_b, int m, int n, int k,
                   const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      float s = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        const float av = trans_a ? a[static_cast<size_t>(kk) * m + i]
                                 : a[static_cast<size_t>(i) * k + kk];
        const float bv = trans_b ? b[static_cast<size_t>(j) * k + kk]
                                 : b[static_cast<size_t>(kk) * n + j];
        s += av * bv;
      }
      crow[j] = s;
    }
  }
}

Tensor MatMulDispatch(bool trans_a, bool trans_b, int m, int n, int k,
                      const Tensor& a, const Tensor& b,
                      const ComputeContext* ctx) {
  Tensor out({m, n});
  const ComputeContext& cc = EffectiveContext(ctx);
  if (cc.path == ComputePath::kReference) {
    ReferenceGemm(trans_a, trans_b, m, n, k, a.data(), b.data(), out.data());
  } else if (cc.path == ComputePath::kInt8 && !trans_a) {
    // Quantize both operands per call (per-tensor symmetric), accumulate in
    // int32, dequantize at write-back. See the error-bound note in
    // tensor_ops.h. trans_a (backward-only shape) falls through to fp32.
    Int8Panels pa, pb;
    QuantizePackA(a.data(), k, m, k, &pa, &cc);
    QuantizePackB(b.data(), trans_b ? k : n, trans_b, k, n, &pb, &cc);
    QuantizedGemm(m, n, k, pa, pb, out.data(), n, &cc);
  } else {
    Sgemm(trans_a, trans_b, m, n, k, 1.0f, a.data(),
          trans_a ? m : k, b.data(), trans_b ? k : n, 0.0f, out.data(), n,
          &cc);
  }
  return out;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b, const ComputeContext* ctx) {
  ZEUS_CHECK(a.ndim() == 2 && b.ndim() == 2);
  int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  ZEUS_CHECK(b.dim(0) == k);
  return MatMulDispatch(false, false, m, n, k, a, b, ctx);
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b,
                         const ComputeContext* ctx) {
  ZEUS_CHECK(a.ndim() == 2 && b.ndim() == 2);
  int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  ZEUS_CHECK(b.dim(1) == k);
  return MatMulDispatch(false, true, m, n, k, a, b, ctx);
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b,
                         const ComputeContext* ctx) {
  ZEUS_CHECK(a.ndim() == 2 && b.ndim() == 2);
  int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  ZEUS_CHECK(b.dim(0) == k);
  return MatMulDispatch(true, false, m, n, k, a, b, ctx);
}

float QuantScale(const Tensor& t) {
  float mx = 0.0f;
  for (size_t i = 0; i < t.size(); ++i) mx = std::max(mx, std::abs(t[i]));
  return mx / 127.0f;
}

Tensor QuantizeDequantize(const Tensor& t) {
  Tensor out = t;
  const float scale = QuantScale(t);
  if (scale == 0.0f) return out;
  const float inv = 1.0f / scale;
  for (size_t i = 0; i < out.size(); ++i) {
    const long q = std::lrintf(out[i] * inv);
    out[i] = scale * static_cast<float>(std::min(127L, std::max(-127L, q)));
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  ZEUS_CHECK(SameShape(a, b));
  Tensor out = a;
  out.Add(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  ZEUS_CHECK(SameShape(a, b));
  Tensor out = a;
  out.AddScaled(b, -1.0f);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  ZEUS_CHECK(SameShape(a, b));
  Tensor out = a;
  float* po = out.data();
  const float* pb = b.data();
  for (size_t i = 0; i < out.size(); ++i) po[i] *= pb[i];
  return out;
}

Tensor Transpose2d(const Tensor& a) {
  ZEUS_CHECK(a.ndim() == 2);
  int m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j)
      out[static_cast<size_t>(j) * m + i] = a[static_cast<size_t>(i) * n + j];
  return out;
}

void FillUniform(Tensor* t, common::Rng* rng, float bound) {
  for (size_t i = 0; i < t->size(); ++i)
    (*t)[i] = static_cast<float>(rng->NextUniform(-bound, bound));
}

void FillGaussian(Tensor* t, common::Rng* rng, float stddev) {
  for (size_t i = 0; i < t->size(); ++i)
    (*t)[i] = static_cast<float>(rng->NextGaussian(0.0, stddev));
}

Tensor SoftmaxRows(const Tensor& logits) {
  ZEUS_CHECK(logits.ndim() == 2);
  int n = logits.dim(0), c = logits.dim(1);
  Tensor out({n, c});
  for (int i = 0; i < n; ++i) {
    const float* row = logits.data() + static_cast<size_t>(i) * c;
    float* orow = out.data() + static_cast<size_t>(i) * c;
    float mx = row[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    for (int j = 0; j < c; ++j) orow[j] = static_cast<float>(orow[j] / denom);
  }
  return out;
}

Tensor Concat1d(const std::vector<Tensor>& parts) {
  size_t total = 0;
  for (const Tensor& p : parts) total += p.size();
  Tensor out({static_cast<int>(total)});
  size_t off = 0;
  for (const Tensor& p : parts) {
    std::copy(p.data(), p.data() + p.size(), out.data() + off);
    off += p.size();
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& parts) {
  ZEUS_CHECK(!parts.empty());
  std::vector<int> shape = parts[0].shape();
  for (const Tensor& p : parts) ZEUS_CHECK(p.shape() == shape);
  std::vector<int> out_shape;
  out_shape.push_back(static_cast<int>(parts.size()));
  out_shape.insert(out_shape.end(), shape.begin(), shape.end());
  Tensor out(out_shape);
  size_t stride = parts[0].size();
  for (size_t i = 0; i < parts.size(); ++i) {
    std::copy(parts[i].data(), parts[i].data() + stride,
              out.data() + i * stride);
  }
  return out;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  ZEUS_CHECK(SameShape(a, b));
  float mx = 0.0f;
  for (size_t i = 0; i < a.size(); ++i)
    mx = std::max(mx, std::abs(a[i] - b[i]));
  return mx;
}

}  // namespace zeus::tensor
