#ifndef ZEUS_TENSOR_GEMM_KERNELS_H_
#define ZEUS_TENSOR_GEMM_KERNELS_H_

// Internal interface between the Sgemm/QuantizedGemm drivers (gemm.cc) and
// the per-ISA micro-kernel translation units. Each tier lives in its own
// .cc file compiled with exactly that tier's -m flags (set per-source in
// CMakeLists.txt, overriding any global -march, including
// ZEUS_MARCH_NATIVE), so the binary always contains all tiers and the
// driver picks one via CPUID at runtime:
//
//   gemm_kernels_scalar.cc   -march=x86-64            4x16 tile, SSE2 codegen
//   gemm_kernels_avx2.cc     -march=x86-64 -mavx2 -mfma   4x16 tile, ymm FMA
//   gemm_kernels_avx512.cc   ... -mavx512f/bw/dq/vl   6x32 tile, zmm FMA
//
// The fp32 kernels share one templated implementation
// (gemm_kernels_common.h); the int8 kernels consume the k-pair-interleaved
// int16 packing produced by gemm.cc and differ only in the widening
// multiply-add (scalar loop / vpmaddwd ymm / vpmaddwd zmm). Integer
// accumulation is exact, so all three int8 tiers are bit-identical. The
// quantize primitives (max-abs scan, round+clamp of a contiguous run) also
// live in the table: they dominate int8 end-to-end cost for thin GEMMs, and
// every tier implements the identical value mapping (round-to-nearest-even
// times clamp is exact), so packed operands are tier-independent too.

#include <cstddef>
#include <cstdint>

#include "tensor/gemm.h"

namespace zeus::tensor::internal {

// Int8 packing tile shape, shared by the packer (gemm.cc) and every tier's
// kernel: A panels hold kI8RowTile rows, B panels kI8ColTile columns, both
// k-pair interleaved (pair p2 of row r / column c stores elements 2*p2 and
// 2*p2+1 adjacently). A B-panel pair row is 16 columns x 2 int16 = one
// 64-byte cache line = one zmm load (or two ymm loads).
inline constexpr int kI8RowTile = 4;
inline constexpr int kI8ColTile = 16;

struct GemmKernels {
  // Blocked fp32 accumulation of C[i_begin:i_end, j_begin:j_end] +=
  // alpha*op(A)op(B); beta already applied by the driver. Same contract as
  // the pre-dispatch SgemmRange.
  using SgemmRangeFn = void (*)(bool trans_a, bool trans_b, int i_begin,
                                int i_end, int j_begin, int j_end, int k,
                                float alpha, const float* a, int lda,
                                const float* b, int ldb, float* c, int ldc,
                                const GemmBlocking& blk);
  // Int8 kernel over column-panel range [jp_begin, jp_end): for every
  // kI8RowTile-row panel of packed A and each B panel in range, accumulate
  // k_pairs widening multiply-adds in int32 and write C = scale * acc
  // (overwrite). Edge rows/columns are zero-padded in the packing and
  // clipped at write-back.
  using I8GemmRangeFn = void (*)(int m, int n, int k_pairs, int jp_begin,
                                 int jp_end, float scale, const int16_t* pa,
                                 const int16_t* pb, float* c, int ldc);

  // max(|p[i]|) over a contiguous run. fp max is exact, so any lane order
  // gives the scalar answer.
  using MaxAbsFn = float (*)(const float* p, int count);
  // dst[i] = clamp(round-to-nearest-even(p[i] * inv), -127, 127) over a
  // contiguous run. Matches scalar lrintf under the default FP environment.
  using QuantizeFn = void (*)(const float* p, int count, float inv,
                              int16_t* dst);
  // Fused quantize + pack of one kI8ColTile-column B panel: reads columns
  // [0, cols) of the k x ldb row-major block starting at `b`, quantizes with
  // the same mapping as QuantizeFn, and writes ceil(k/2) consecutive
  // pair-interleaved rows of kI8ColTile*2 int16 at dst (contiguous — one
  // 64-byte line per pair row, so packing streams through dst while each
  // source line is read exactly once). Slots for columns >= cols and the
  // odd-k tail are zero-filled. This is the hot loop of QuantizePackB for
  // lowered convs.
  using I8PackPanelFn = void (*)(const float* b, size_t ldb, int k, int cols,
                                 float inv, int16_t* dst);

  SgemmRangeFn sgemm_range;
  I8GemmRangeFn i8gemm_range;
  MaxAbsFn maxabs;
  QuantizeFn quantize;
  I8PackPanelFn i8pack_panel;
  int mr;  // fp32 register-tile rows (parallel row chunks align to this)
  int nr;  // fp32 register-tile columns
  const char* name;
};

const GemmKernels& GemmKernelsScalar();
#if defined(__x86_64__)
const GemmKernels& GemmKernelsAvx2();
const GemmKernels& GemmKernelsAvx512();
#endif

// Kernel table for a concrete (already resolved, never kAuto) tier.
const GemmKernels& KernelsFor(GemmIsa isa);

}  // namespace zeus::tensor::internal

#endif  // ZEUS_TENSOR_GEMM_KERNELS_H_
