#ifndef ZEUS_TENSOR_SERIALIZE_H_
#define ZEUS_TENSOR_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace zeus::tensor {

// Binary tensor (de)serialization. Format per tensor:
//   magic "ZTEN" | u32 ndim | i32 dims[ndim] | f32 data[volume]
// A file holds a u32 tensor count followed by that many tensors. Used for
// model checkpointing (APFG weights, DQN weights).

common::Status WriteTensor(std::ostream& os, const Tensor& t);
common::Result<Tensor> ReadTensor(std::istream& is);

common::Status SaveTensors(const std::string& path,
                           const std::vector<Tensor>& tensors);
common::Result<std::vector<Tensor>> LoadTensors(const std::string& path);

}  // namespace zeus::tensor

#endif  // ZEUS_TENSOR_SERIALIZE_H_
