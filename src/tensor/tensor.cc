#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace zeus::tensor {

size_t ShapeVolume(const std::vector<int>& shape) {
  size_t v = 1;
  for (int d : shape) {
    ZEUS_CHECK(d >= 0);
    v *= static_cast<size_t>(d);
  }
  return v;
}

bool SameShape(const Tensor& a, const Tensor& b) { return a.shape() == b.shape(); }

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(ShapeVolume(shape_), 0.0f) {
  ComputeStrides();
}

Tensor::Tensor(std::vector<int> shape, float fill)
    : shape_(std::move(shape)), data_(ShapeVolume(shape_), fill) {
  ComputeStrides();
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  Tensor t({static_cast<int>(values.size())});
  t.data_ = values;
  return t;
}

Tensor Tensor::FromData(std::vector<int> shape, std::vector<float> values) {
  ZEUS_CHECK(ShapeVolume(shape) == values.size());
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  t.ComputeStrides();
  return t;
}

void Tensor::ComputeStrides() {
  strides_.assign(shape_.size(), 1);
  for (int i = static_cast<int>(shape_.size()) - 2; i >= 0; --i) {
    strides_[i] = strides_[i + 1] * static_cast<size_t>(shape_[i + 1]);
  }
}

int Tensor::dim(int i) const {
  ZEUS_CHECK(i >= 0 && i < ndim());
  return shape_[static_cast<size_t>(i)];
}

size_t Tensor::Offset(std::initializer_list<int> idx) const {
  ZEUS_CHECK(idx.size() == shape_.size());
  size_t off = 0;
  size_t k = 0;
  for (int i : idx) {
    ZEUS_CHECK(i >= 0 && i < shape_[k]);
    off += strides_[k] * static_cast<size_t>(i);
    ++k;
  }
  return off;
}

Tensor Tensor::Reshape(std::vector<int> new_shape) const {
  ZEUS_CHECK(ShapeVolume(new_shape) == data_.size());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  t.ComputeStrides();
  return t;
}

void Tensor::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::Scale(float v) {
  for (float& x : data_) x *= v;
}

void Tensor::Add(const Tensor& other) {
  ZEUS_CHECK(SameShape(*this, other));
  const float* o = other.data();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o[i];
}

void Tensor::AddScaled(const Tensor& other, float alpha) {
  ZEUS_CHECK(SameShape(*this, other));
  const float* o = other.data();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * o[i];
}

float Tensor::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::Mean() const {
  if (data_.empty()) return 0.0f;
  return Sum() / static_cast<float>(data_.size());
}

float Tensor::Min() const {
  ZEUS_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::Max() const {
  ZEUS_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

int Tensor::Argmax() const {
  ZEUS_CHECK(!data_.empty());
  return static_cast<int>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float Tensor::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

std::string Tensor::ToString() const {
  std::ostringstream os;
  os << "Tensor[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << "x";
    os << shape_[i];
  }
  os << "](";
  size_t n = std::min<size_t>(data_.size(), 8);
  for (size_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (data_.size() > n) os << ", ...";
  os << ")";
  return os.str();
}

}  // namespace zeus::tensor
