// AVX2 + FMA kernel tier. Compiled with -march=x86-64 -mavx2 -mfma
// (per-source flags in CMakeLists.txt), so the shared generic-vector 4x16
// micro-kernel lowers to broadcast-FMA chains on ymm and the int8 kernel
// uses vpmaddwd on ymm. Selected at runtime when the CPU reports AVX2+FMA
// but not the AVX-512 subset.

#if defined(__x86_64__)

#include <immintrin.h>

#include "tensor/gemm_kernels.h"
#include "tensor/gemm_kernels_common.h"

namespace zeus::tensor::internal {
namespace {

void SgemmRangeAvx2(bool trans_a, bool trans_b, int i_begin, int i_end,
                    int j_begin, int j_end, int k, float alpha, const float* a,
                    int lda, const float* b, int ldb, float* c, int ldc,
                    const GemmBlocking& blk) {
  SgemmRangeT<4, 16, MicroKernel4x16>(trans_a, trans_b, i_begin, i_end,
                                      j_begin, j_end, k, alpha, a, lda, b,
                                      ldb, c, ldc, blk);
}

// Int8 4x16 micro-tile: one B pair-row is 16 columns x 2 int16 = two ymm
// loads; each A row's k-pair broadcasts as a 32-bit lane and vpmaddwd
// accumulates both products of the pair into int32 — exactly the scalar
// reference arithmetic, so the result is bit-identical to it.
void I8GemmRangeAvx2(int m, int n, int k_pairs, int jp_begin, int jp_end,
                     float scale, const int16_t* pa, const int16_t* pb,
                     float* c, int ldc) {
  const int rpanels = (m + kI8RowTile - 1) / kI8RowTile;
  const __m256 vscale = _mm256_set1_ps(scale);
  for (int jp = jp_begin; jp < jp_end; ++jp) {
    const int cols = std::min(kI8ColTile, n - jp * kI8ColTile);
    const int16_t* bpanel =
        pb + static_cast<size_t>(jp) * k_pairs * kI8ColTile * 2;
    for (int pr = 0; pr < rpanels; ++pr) {
      const int rows = std::min(kI8RowTile, m - pr * kI8RowTile);
      const int32_t* apanel = reinterpret_cast<const int32_t*>(
          pa + static_cast<size_t>(pr) * k_pairs * kI8RowTile * 2);
      __m256i acc00 = _mm256_setzero_si256(), acc01 = acc00;
      __m256i acc10 = acc00, acc11 = acc00;
      __m256i acc20 = acc00, acc21 = acc00;
      __m256i acc30 = acc00, acc31 = acc00;
      for (int p2 = 0; p2 < k_pairs; ++p2) {
        const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            bpanel + static_cast<size_t>(p2) * kI8ColTile * 2));
        const __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            bpanel + static_cast<size_t>(p2) * kI8ColTile * 2 + 16));
        const int32_t* arow = apanel + static_cast<size_t>(p2) * kI8RowTile;
        __m256i va = _mm256_set1_epi32(arow[0]);
        acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(va, b0));
        acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(va, b1));
        va = _mm256_set1_epi32(arow[1]);
        acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(va, b0));
        acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(va, b1));
        va = _mm256_set1_epi32(arow[2]);
        acc20 = _mm256_add_epi32(acc20, _mm256_madd_epi16(va, b0));
        acc21 = _mm256_add_epi32(acc21, _mm256_madd_epi16(va, b1));
        va = _mm256_set1_epi32(arow[3]);
        acc30 = _mm256_add_epi32(acc30, _mm256_madd_epi16(va, b0));
        acc31 = _mm256_add_epi32(acc31, _mm256_madd_epi16(va, b1));
      }
      // Dequantize to a dense staging tile, then copy the valid region
      // (full tiles store straight through).
      alignas(32) float tmp[kI8RowTile][kI8ColTile];
      const __m256i* accs[kI8RowTile][2] = {{&acc00, &acc01},
                                            {&acc10, &acc11},
                                            {&acc20, &acc21},
                                            {&acc30, &acc31}};
      for (int r = 0; r < kI8RowTile; ++r) {
        _mm256_store_ps(&tmp[r][0],
                        _mm256_mul_ps(vscale, _mm256_cvtepi32_ps(*accs[r][0])));
        _mm256_store_ps(&tmp[r][8],
                        _mm256_mul_ps(vscale, _mm256_cvtepi32_ps(*accs[r][1])));
      }
      for (int r = 0; r < rows; ++r) {
        float* crow = c + static_cast<size_t>(pr * kI8RowTile + r) * ldc +
                      static_cast<size_t>(jp) * kI8ColTile;
        if (cols == kI8ColTile) {
          _mm256_storeu_ps(crow, _mm256_load_ps(&tmp[r][0]));
          _mm256_storeu_ps(crow + 8, _mm256_load_ps(&tmp[r][8]));
        } else {
          for (int col = 0; col < cols; ++col) crow[col] = tmp[r][col];
        }
      }
    }
  }
}

float MaxAbsAvx2(const float* p, int count) {
  const __m256 absmask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 acc = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= count; i += 8) {
    acc = _mm256_max_ps(acc, _mm256_and_ps(absmask, _mm256_loadu_ps(p + i)));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float mx = 0.0f;
  for (float v : lanes) mx = std::max(mx, v);
  for (; i < count; ++i) mx = std::max(mx, std::abs(p[i]));
  return mx;
}

// vcvtps2dq rounds to nearest-even under the default MXCSR — the same
// mapping as scalar lrintf. |p[i] * inv| <= 127.5 by construction (inv =
// 127 / maxabs), so vpackssdw saturation never binds; the final ±127 clamp
// mirrors the scalar clamp exactly.
void QuantizeAvx2(const float* p, int count, float inv, int16_t* dst) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i lo = _mm256_set1_epi16(-127);
  const __m256i hi = _mm256_set1_epi16(127);
  int i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m256i a =
        _mm256_cvtps_epi32(_mm256_mul_ps(vinv, _mm256_loadu_ps(p + i)));
    const __m256i b =
        _mm256_cvtps_epi32(_mm256_mul_ps(vinv, _mm256_loadu_ps(p + i + 8)));
    // packs interleaves 128-bit halves; restore element order.
    __m256i packed = _mm256_permute4x64_epi64(_mm256_packs_epi32(a, b), 0xd8);
    packed = _mm256_min_epi16(hi, _mm256_max_epi16(lo, packed));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), packed);
  }
  if (i < count) QuantizeScalar(p + i, count - i, inv, dst + i);
}

// Full-width panel packer: for each k-pair, quantizes both source rows in
// int32 lanes and fuses the int16 interleave for free — each int32 lane
// becomes the little-endian (r0, r1) pair via (q0 & 0xffff) | (q1 << 16) —
// writing the panel's 64-byte pair rows back to back. Edge panels
// (cols < 16) take the scalar path; there is at most one per matrix. Same
// value mapping as QuantizeAvx2.
void I8PackPanelAvx2(const float* b, size_t ldb, int k, int cols, float inv,
                     int16_t* dst) {
  if (cols != kI8ColTile) {
    I8PackPanelScalar(b, ldb, k, cols, inv, dst);
    return;
  }
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i lo = _mm256_set1_epi32(-127);
  const __m256i hi = _mm256_set1_epi32(127);
  const __m256i lomask = _mm256_set1_epi32(0xffff);
  const int k_pairs = (k + 1) / 2;
  for (int p2 = 0; p2 < k_pairs; ++p2) {
    const float* r0 = b + static_cast<size_t>(2 * p2) * ldb;
    const bool has_r1 = 2 * p2 + 1 < k;
    int16_t* out = dst + static_cast<size_t>(p2) * kI8ColTile * 2;
    for (int g = 0; g < 2; ++g) {
      const __m256i q0 = _mm256_min_epi32(
          hi, _mm256_max_epi32(lo, _mm256_cvtps_epi32(_mm256_mul_ps(
                                       vinv, _mm256_loadu_ps(r0 + 8 * g)))));
      __m256i pair = _mm256_and_si256(q0, lomask);
      if (has_r1) {
        const __m256i q1 = _mm256_min_epi32(
            hi, _mm256_max_epi32(lo, _mm256_cvtps_epi32(_mm256_mul_ps(
                                         vinv, _mm256_loadu_ps(r0 + ldb + 8 * g)))));
        pair = _mm256_or_si256(pair, _mm256_slli_epi32(q1, 16));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 16 * g), pair);
    }
  }
}

}  // namespace

const GemmKernels& GemmKernelsAvx2() {
  static const GemmKernels kKernels = {&SgemmRangeAvx2,  &I8GemmRangeAvx2,
                                       &MaxAbsAvx2,      &QuantizeAvx2,
                                       &I8PackPanelAvx2, 4,
                                       16,               "avx2"};
  return kKernels;
}

}  // namespace zeus::tensor::internal

#endif  // defined(__x86_64__)
