// AVX-512 kernel tier. Compiled with -march=x86-64 -mavx512f -mavx512bw
// -mavx512dq -mavx512vl -mfma (per-source flags in CMakeLists.txt).
// Selected at runtime when the CPU reports AVX512F+BW+VL.
//
// fp32 register tile: 6x32 — 12 zmm accumulators (6 rows x 2 vectors of 16
// lanes) plus one broadcast and two B-row registers, comfortably inside
// the 32-register zmm file, with 50% more rows amortizing each B load than
// the AVX2 4x16 tile. The int8 kernel keeps the shared 4x16 packing tile
// (one B pair-row = one 64-byte zmm load) so all tiers consume identical
// packed operands and stay bit-identical.

#if defined(__x86_64__)

#include <immintrin.h>

#include "tensor/gemm_kernels.h"
#include "tensor/gemm_kernels_common.h"

namespace zeus::tensor::internal {
namespace {

typedef float V16 __attribute__((vector_size(64), aligned(4)));

ZEUS_ALWAYS_INLINE V16 LoadV16(const float* p) {
  return *reinterpret_cast<const V16*>(p);
}

void MicroKernel6x32(int kb, float alpha, const float* ap, const float* bp,
                     float* c, int ldc, int rows, int cols) {
  constexpr int MR = 6;
  constexpr int NR = 32;
  V16 c00 = {}, c01 = {}, c10 = {}, c11 = {}, c20 = {}, c21 = {};
  V16 c30 = {}, c31 = {}, c40 = {}, c41 = {}, c50 = {}, c51 = {};
  for (int p = 0; p < kb; ++p) {
    const float* av = ap + static_cast<size_t>(p) * MR;
    const float* bv = bp + static_cast<size_t>(p) * NR;
    const V16 b0 = LoadV16(bv);
    const V16 b1 = LoadV16(bv + 16);
    V16 a = av[0] + (V16){};  // vbroadcastss zmm
    c00 += a * b0;
    c01 += a * b1;
    a = av[1] + (V16){};
    c10 += a * b0;
    c11 += a * b1;
    a = av[2] + (V16){};
    c20 += a * b0;
    c21 += a * b1;
    a = av[3] + (V16){};
    c30 += a * b0;
    c31 += a * b1;
    a = av[4] + (V16){};
    c40 += a * b0;
    c41 += a * b1;
    a = av[5] + (V16){};
    c50 += a * b0;
    c51 += a * b1;
  }
  const V16 va = alpha + (V16){};
  if (rows == MR && cols == NR) {
    float* r0 = c;
    float* r1 = c + ldc;
    float* r2 = c + 2 * static_cast<size_t>(ldc);
    float* r3 = c + 3 * static_cast<size_t>(ldc);
    float* r4 = c + 4 * static_cast<size_t>(ldc);
    float* r5 = c + 5 * static_cast<size_t>(ldc);
    *reinterpret_cast<V16*>(r0) += va * c00;
    *reinterpret_cast<V16*>(r0 + 16) += va * c01;
    *reinterpret_cast<V16*>(r1) += va * c10;
    *reinterpret_cast<V16*>(r1 + 16) += va * c11;
    *reinterpret_cast<V16*>(r2) += va * c20;
    *reinterpret_cast<V16*>(r2 + 16) += va * c21;
    *reinterpret_cast<V16*>(r3) += va * c30;
    *reinterpret_cast<V16*>(r3 + 16) += va * c31;
    *reinterpret_cast<V16*>(r4) += va * c40;
    *reinterpret_cast<V16*>(r4 + 16) += va * c41;
    *reinterpret_cast<V16*>(r5) += va * c50;
    *reinterpret_cast<V16*>(r5 + 16) += va * c51;
    return;
  }
  // Edge tile: stage through a dense buffer, copy the valid region.
  float tmp[MR][NR];
  *reinterpret_cast<V16*>(&tmp[0][0]) = c00;
  *reinterpret_cast<V16*>(&tmp[0][16]) = c01;
  *reinterpret_cast<V16*>(&tmp[1][0]) = c10;
  *reinterpret_cast<V16*>(&tmp[1][16]) = c11;
  *reinterpret_cast<V16*>(&tmp[2][0]) = c20;
  *reinterpret_cast<V16*>(&tmp[2][16]) = c21;
  *reinterpret_cast<V16*>(&tmp[3][0]) = c30;
  *reinterpret_cast<V16*>(&tmp[3][16]) = c31;
  *reinterpret_cast<V16*>(&tmp[4][0]) = c40;
  *reinterpret_cast<V16*>(&tmp[4][16]) = c41;
  *reinterpret_cast<V16*>(&tmp[5][0]) = c50;
  *reinterpret_cast<V16*>(&tmp[5][16]) = c51;
  for (int r = 0; r < rows; ++r) {
    float* crow = c + static_cast<size_t>(r) * ldc;
    for (int j = 0; j < cols; ++j) crow[j] += alpha * tmp[r][j];
  }
}

void SgemmRangeAvx512(bool trans_a, bool trans_b, int i_begin, int i_end,
                      int j_begin, int j_end, int k, float alpha,
                      const float* a, int lda, const float* b, int ldb,
                      float* c, int ldc, const GemmBlocking& blk) {
  SgemmRangeT<6, 32, MicroKernel6x32>(trans_a, trans_b, i_begin, i_end,
                                      j_begin, j_end, k, alpha, a, lda, b,
                                      ldb, c, ldc, blk);
}

// Int8 4x16 micro-tile on zmm: one B pair-row is exactly one 64-byte zmm
// load; vpmaddwd accumulates each A row's broadcast k-pair — the same
// exact integer arithmetic as the scalar reference, so bit-identical.
void I8GemmRangeAvx512(int m, int n, int k_pairs, int jp_begin, int jp_end,
                       float scale, const int16_t* pa, const int16_t* pb,
                       float* c, int ldc) {
  const int rpanels = (m + kI8RowTile - 1) / kI8RowTile;
  const __m512 vscale = _mm512_set1_ps(scale);
  for (int jp = jp_begin; jp < jp_end; ++jp) {
    const int cols = std::min(kI8ColTile, n - jp * kI8ColTile);
    const int16_t* bpanel =
        pb + static_cast<size_t>(jp) * k_pairs * kI8ColTile * 2;
    const __mmask16 mask =
        cols == kI8ColTile ? static_cast<__mmask16>(0xffff)
                           : static_cast<__mmask16>((1u << cols) - 1);
    for (int pr = 0; pr < rpanels; ++pr) {
      const int rows = std::min(kI8RowTile, m - pr * kI8RowTile);
      const int32_t* apanel = reinterpret_cast<const int32_t*>(
          pa + static_cast<size_t>(pr) * k_pairs * kI8RowTile * 2);
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = acc0, acc2 = acc0, acc3 = acc0;
      for (int p2 = 0; p2 < k_pairs; ++p2) {
        const __m512i bvec = _mm512_loadu_si512(
            bpanel + static_cast<size_t>(p2) * kI8ColTile * 2);
        const int32_t* arow = apanel + static_cast<size_t>(p2) * kI8RowTile;
        acc0 = _mm512_add_epi32(
            acc0, _mm512_madd_epi16(_mm512_set1_epi32(arow[0]), bvec));
        acc1 = _mm512_add_epi32(
            acc1, _mm512_madd_epi16(_mm512_set1_epi32(arow[1]), bvec));
        acc2 = _mm512_add_epi32(
            acc2, _mm512_madd_epi16(_mm512_set1_epi32(arow[2]), bvec));
        acc3 = _mm512_add_epi32(
            acc3, _mm512_madd_epi16(_mm512_set1_epi32(arow[3]), bvec));
      }
      const __m512i* accs[kI8RowTile] = {&acc0, &acc1, &acc2, &acc3};
      for (int r = 0; r < rows; ++r) {
        float* crow = c + static_cast<size_t>(pr * kI8RowTile + r) * ldc +
                      static_cast<size_t>(jp) * kI8ColTile;
        _mm512_mask_storeu_ps(
            crow, mask,
            _mm512_mul_ps(vscale, _mm512_cvtepi32_ps(*accs[r])));
      }
    }
  }
}

float MaxAbsAvx512(const float* p, int count) {
  __m512 acc = _mm512_setzero_ps();
  int i = 0;
  for (; i + 16 <= count; i += 16) {
    acc = _mm512_max_ps(acc, _mm512_abs_ps(_mm512_loadu_ps(p + i)));
  }
  float mx = _mm512_reduce_max_ps(acc);
  for (; i < count; ++i) mx = std::max(mx, std::abs(p[i]));
  return mx;
}

// vcvtps2dq rounds to nearest-even under the default MXCSR — the same
// mapping as scalar lrintf. vpmovsdw saturates int32 -> int16, which never
// binds (|p[i] * inv| <= 127.5 by construction); the final ±127 clamp
// mirrors the scalar clamp exactly.
void QuantizeAvx512(const float* p, int count, float inv, int16_t* dst) {
  const __m512 vinv = _mm512_set1_ps(inv);
  const __m256i lo = _mm256_set1_epi16(-127);
  const __m256i hi = _mm256_set1_epi16(127);
  int i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m512i q =
        _mm512_cvtps_epi32(_mm512_mul_ps(vinv, _mm512_loadu_ps(p + i)));
    __m256i packed = _mm512_cvtsepi32_epi16(q);
    packed = _mm256_min_epi16(hi, _mm256_max_epi16(lo, packed));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), packed);
  }
  if (i < count) QuantizeScalar(p + i, count - i, inv, dst + i);
}

// Full-width panel packer: for each k-pair, quantizes both source rows in
// int32 lanes and fuses the int16 interleave for free — each int32 lane
// becomes the little-endian (r0, r1) pair via (q0 & 0xffff) | (q1 << 16) —
// so one pair row is exactly one zmm store, and the panel's pair rows land
// back to back (the packer streams through dst while each source line is
// read once). Masked-zero loads cover the cols < 16 edge panel: invalid
// lanes quantize to the required zero fill. Same value mapping as
// QuantizeAvx512.
void I8PackPanelAvx512(const float* b, size_t ldb, int k, int cols, float inv,
                       int16_t* dst) {
  const __m512 vinv = _mm512_set1_ps(inv);
  const __m512i lo = _mm512_set1_epi32(-127);
  const __m512i hi = _mm512_set1_epi32(127);
  const __m512i lomask = _mm512_set1_epi32(0xffff);
  const __mmask16 mask =
      cols == kI8ColTile ? static_cast<__mmask16>(0xffff)
                         : static_cast<__mmask16>((1u << cols) - 1);
  const int k_pairs = (k + 1) / 2;
  for (int p2 = 0; p2 < k_pairs; ++p2) {
    const float* r0 = b + static_cast<size_t>(2 * p2) * ldb;
    const __m512i q0 = _mm512_min_epi32(
        hi, _mm512_max_epi32(lo, _mm512_cvtps_epi32(_mm512_mul_ps(
                                     vinv, _mm512_maskz_loadu_ps(mask, r0)))));
    __m512i pair = _mm512_and_si512(q0, lomask);
    if (2 * p2 + 1 < k) {
      const __m512i q1 = _mm512_min_epi32(
          hi,
          _mm512_max_epi32(lo, _mm512_cvtps_epi32(_mm512_mul_ps(
                                   vinv, _mm512_maskz_loadu_ps(mask, r0 + ldb)))));
      pair = _mm512_or_si512(pair, _mm512_slli_epi32(q1, 16));
    }
    _mm512_storeu_si512(dst + static_cast<size_t>(p2) * kI8ColTile * 2, pair);
  }
}

}  // namespace

const GemmKernels& GemmKernelsAvx512() {
  static const GemmKernels kKernels = {&SgemmRangeAvx512,   &I8GemmRangeAvx512,
                                       &MaxAbsAvx512,       &QuantizeAvx512,
                                       &I8PackPanelAvx512,  6,
                                       32,                  "avx512"};
  return kKernels;
}

}  // namespace zeus::tensor::internal

#endif  // defined(__x86_64__)
