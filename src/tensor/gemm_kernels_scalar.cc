// Baseline kernel tier. Compiled with plain -march=x86-64 (forced
// per-source in CMakeLists.txt, even under ZEUS_MARCH_NATIVE), so this TU
// is the portable fallback every CPU can run: the generic-vector 4x16
// micro-kernel lowers to paired SSE2 xmm ops and the int8 kernel to the
// scalar reference loop. On non-x86 hosts this is the only tier.

#include "tensor/gemm_kernels.h"
#include "tensor/gemm_kernels_common.h"

namespace zeus::tensor::internal {
namespace {

void SgemmRangeScalar(bool trans_a, bool trans_b, int i_begin, int i_end,
                      int j_begin, int j_end, int k, float alpha,
                      const float* a, int lda, const float* b, int ldb,
                      float* c, int ldc, const GemmBlocking& blk) {
  SgemmRangeT<4, 16, MicroKernel4x16>(trans_a, trans_b, i_begin, i_end,
                                      j_begin, j_end, k, alpha, a, lda, b,
                                      ldb, c, ldc, blk);
}

}  // namespace

const GemmKernels& GemmKernelsScalar() {
  static const GemmKernels kKernels = {&SgemmRangeScalar,  &I8GemmRangeScalar,
                                       &MaxAbsScalar,      &QuantizeScalar,
                                       &I8PackPanelScalar, 4,
                                       16,                 "scalar"};
  return kKernels;
}

}  // namespace zeus::tensor::internal
