#ifndef ZEUS_TENSOR_GEMM_H_
#define ZEUS_TENSOR_GEMM_H_

// High-performance single-precision GEMM substrate. Every matmul and (via
// im2col/vol2col lowering) every convolution in the NN stack bottoms out in
// Sgemm() below, so this one kernel sets the throughput ceiling for the APFG
// extractors and the DQN Q-network.
//
// Design: classic three-level cache blocking (Goto/BLIS style). The k
// dimension is split into kc-deep panels; within a panel, A is packed into
// column-major micro-panels of MR rows and B into row-major micro-panels of
// NR columns, and a register-tiled MR x NR micro-kernel accumulates into
// local registers before a single write-back per tile. Optional parallelism
// partitions the *larger* of the two C dimensions into contiguous chunks run
// on a common::ThreadPool.
//
// ISA dispatch: the micro-kernels are compiled three times into separate
// translation units with per-file -m flags (see gemm_kernels.h) — a
// baseline x86-64 (SSE2) tier, an AVX2+FMA 4x16 tier, and an AVX-512 6x32
// tier — and the driver picks the best tier the running CPU supports via
// CPUID at runtime, independent of how the rest of the tree was compiled
// (ZEUS_MARCH_NATIVE no longer changes which kernel runs). A concrete tier
// can be forced per-context (ComputeContext::isa) or process-wide via the
// ZEUS_COMPUTE_PATH environment variable, for triage and parity testing.
//
// Determinism: within one ISA tier, each C element is accumulated in a
// fixed order — kc-panel by kc-panel, and within a panel in ascending k —
// that does not depend on the chunking, so results are bit-identical for
// any thread count (including serial execution). Tests assert this exactly.
// Different tiers round differently (FMA contraction, tile shape), so a
// reproducible run across machines should pin the tier.
//
// Numerics: fp32 accumulation (see tensor_ops.h for the documented
// tolerance vs. the naive reference loops). The int8 path (QuantizedGemm)
// is exact integer arithmetic dequantized once at write-back, so it is
// bit-identical across tiers *and* thread counts; its quantization error
// bound is documented in tensor_ops.h next to the fp32 tolerance.

#include <cstdint>
#include <vector>

namespace zeus::common {
class ThreadPool;
}  // namespace zeus::common

namespace zeus::tensor {

// Which implementation the lowered ops use. kReference is the seed's naive
// scalar loop nest, kept for parity testing; kGemm is the blocked fp32
// kernel (parallel when the context carries a pool); kInt8 is the
// symmetric-quantized integer kernel — inference only: layers silently run
// kGemm instead for training forwards and all backwards.
enum class ComputePath {
  kReference,
  kGemm,
  kInt8,
};

// Which fp32 micro-kernel tier Sgemm runs. kAuto resolves to the best tier
// the CPU supports (CPUID, cached); forcing a tier the CPU lacks clamps
// down to the best supported one with a one-time warning.
enum class GemmIsa {
  kAuto,
  kScalar,  // baseline x86-64 (SSE2) — the portable fallback tier
  kAvx2,    // AVX2 + FMA, 4x16 register tile
  kAvx512,  // AVX-512 F/BW/VL, 6x32 register tile
};

// Best tier supported by the running CPU (never kAuto).
GemmIsa DetectGemmIsa();

// req, clamped to the best supported tier (kAuto => DetectGemmIsa()).
// Logs once when a forced tier is unavailable.
GemmIsa ResolveGemmIsa(GemmIsa req);

// "scalar" / "avx2" / "avx512" / "auto".
const char* GemmIsaName(GemmIsa isa);

// Parses a ZEUS_COMPUTE_PATH value: "reference" => kReference;
// "avx2"/"avx512"/"scalar" => kGemm with the forced tier; "int8" => kInt8
// (tier stays kAuto). Returns false (outputs untouched) on anything else.
bool ParseComputePath(const char* s, ComputePath* path, GemmIsa* isa);

// Cache-blocking knobs. Defaults target a ~32KB L1 / ~512KB L2 budget:
// packed A panel = mc*kc floats (64KB), packed B panel = kc*nc floats
// (512KB). The register tile is fixed per ISA tier (gemm_kernels.h).
struct GemmBlocking {
  int mc = 64;
  int kc = 256;
  int nc = 512;
};

// Process-wide compute configuration, threaded through nn::Layer, the APFG
// extractors and core::BatchedExecutor. Callers configure the global
// instance once (thread count, path) and every model picks it up; individual
// layers/models can be pointed at a non-global context for A/B testing.
struct ComputeContext {
  // Pool used for intra-op (GEMM row/col partition), inter-op
  // (BatchedExecutor lockstep stepping) and batch-level (Conv2d/Conv3d
  // minibatch split) parallelism. nullptr => serial.
  common::ThreadPool* pool = nullptr;
  ComputePath path = ComputePath::kGemm;
  // fp32 micro-kernel tier; kAuto picks the best supported at runtime.
  GemmIsa isa = GemmIsa::kAuto;
  // When false, Conv2d/Conv3d never split the minibatch across the pool
  // (intra-GEMM parallelism only) — benchmarking/debugging knob; results
  // are bit-identical either way.
  bool batch_split = true;
  GemmBlocking blocking;
};

// Lazily-created process-wide default pool, sized to hardware concurrency.
// Honors ZEUS_NUM_THREADS: unset or > 1 => that many workers, "0"/"1" =>
// nullptr (serial). Created on first call and intentionally never
// destroyed (workers must outlive static objects that may run compute in
// their destructors; the OS reclaims the threads at exit).
common::ThreadPool* DefaultComputePool();

// The mutable process-wide default context. Not synchronized: configure it
// before launching compute, not concurrently with it. On first access the
// context's pool defaults to DefaultComputePool(), so every caller that
// does not override it (benches, trainer hot loops, BatchedExecutor
// lockstep stepping) is thread-parallel out of the box; set
// `GlobalComputeContext().pool = nullptr` to force serial execution for
// parity tests. First access also applies ZEUS_COMPUTE_PATH (see
// ParseComputePath) so the whole process can be forced onto one
// path/tier for triage — unparseable values are ignored with a warning.
// The GEMM path is bit-identical across thread counts, so flipping the
// default pool changes wall time only, never results.
ComputeContext& GlobalComputeContext();

// ctx if non-null, else the global context.
const ComputeContext& EffectiveContext(const ComputeContext* ctx);

// C = alpha * op(A) @ op(B) + beta * C, all row-major.
//   op(A) is m x k: A is m x k (lda >= k) when !trans_a, else k x m (lda >= m).
//   op(B) is k x n: B is k x n (ldb >= n) when !trans_b, else n x k (ldb >= k).
//   C is m x n (ldc >= n); with beta == 0, C may be uninitialized.
// Runs on ctx->pool when set (or the global context's pool when ctx is
// null); pass a context with pool == nullptr to force serial execution.
void Sgemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
           const float* a, int lda, const float* b, int ldb, float beta,
           float* c, int ldc, const ComputeContext* ctx = nullptr);

// ---- Int8 quantized GEMM ---------------------------------------------------
//
// Per-tensor symmetric quantization: q = round(x * 127 / maxabs(x)), one
// fp32 scale per operand, no zero point. The packed operands interleave
// adjacent k-pairs as int16 so the micro-kernel is a single widening
// multiply-add (pmaddwd) per pair: products and pair-sums fit int32
// exactly, the k-loop accumulates in int32 (exact up to k <= 2^17 — far
// above any lowered conv/linear depth here), and the one inexact step is
// the final c = scale_a * scale_b * acc write-back. Integer accumulation
// is associative, so results are bit-identical across ISA tiers and
// thread counts, unlike the fp32 path.

// One quantized + packed GEMM operand, produced by QuantizePack{A,B}.
struct Int8Panels {
  std::vector<int16_t> data;  // k-pair-interleaved micro-panels
  float scale = 0.0f;         // maxabs / 127 (0 for an all-zero tensor)
  int rows = 0;               // logical op-shape rows (m for A, k for B)
  int cols = 0;               // logical op-shape cols (k for A, n for B)
  int k_pairs = 0;            // ceil(k / 2), zero-padded for odd k
};

// Quantizes and packs A (m x k row-major, lda >= k) into kI8RowTile-row
// micro-panels for QuantizedGemm. ctx selects the (SIMD) quantize
// primitives; the packed bytes are identical for every tier.
void QuantizePackA(const float* a, int lda, int m, int k, Int8Panels* out,
                   const ComputeContext* ctx = nullptr);

// Quantizes and packs op(B) (k x n; B is k x n when !trans_b, else n x k
// with ldb its row stride) into kI8ColTile-column micro-panels.
void QuantizePackB(const float* b, int ldb, bool trans_b, int k, int n,
                   Int8Panels* out, const ComputeContext* ctx = nullptr);

// C = dequant(packed-A @ packed-B): C is m x n fp32 (ldc >= n),
// overwritten (beta == 0 semantics). Parallel over column panels on
// ctx->pool, with the same nested-ParallelFor inline guard as Sgemm.
void QuantizedGemm(int m, int n, int k, const Int8Panels& a,
                   const Int8Panels& b, float* c, int ldc,
                   const ComputeContext* ctx = nullptr);

}  // namespace zeus::tensor

#endif  // ZEUS_TENSOR_GEMM_H_
