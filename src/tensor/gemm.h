#ifndef ZEUS_TENSOR_GEMM_H_
#define ZEUS_TENSOR_GEMM_H_

// High-performance single-precision GEMM substrate. Every matmul and (via
// im2col/vol2col lowering) every convolution in the NN stack bottoms out in
// Sgemm() below, so this one kernel sets the throughput ceiling for the APFG
// extractors and the DQN Q-network.
//
// Design: classic three-level cache blocking (Goto/BLIS style). The k
// dimension is split into kc-deep panels; within a panel, A is packed into
// column-major micro-panels of kMr rows and B into row-major micro-panels of
// kNr columns, and a register-tiled kMr x kNr micro-kernel accumulates into
// local registers before a single write-back per tile. Optional parallelism
// partitions the *larger* of the two C dimensions into contiguous chunks run
// on a common::ThreadPool.
//
// Determinism: each C element is accumulated in a fixed order — kc-panel by
// kc-panel, and within a panel in ascending k — that does not depend on the
// chunking, so results are bit-identical for any thread count (including
// serial execution). Tests assert this exactly.
//
// Numerics: accumulation is in float (see tensor_ops.h for the documented
// tolerance vs. the naive reference loops).

namespace zeus::common {
class ThreadPool;
}  // namespace zeus::common

namespace zeus::tensor {

// Which implementation the lowered ops use. kReference is the seed's naive
// scalar loop nest, kept for parity testing; kGemm is the blocked kernel
// (parallel when the context carries a pool).
enum class ComputePath {
  kReference,
  kGemm,
};

// Cache-blocking knobs. Defaults target a ~32KB L1 / ~512KB L2 budget:
// packed A panel = mc*kc floats (64KB), packed B panel = kc*nc floats
// (512KB). The register tile is fixed at compile time (kMr x kNr in
// gemm.cc) — changing it requires recompiling the micro-kernel.
struct GemmBlocking {
  int mc = 64;
  int kc = 256;
  int nc = 512;
};

// Process-wide compute configuration, threaded through nn::Layer, the APFG
// extractors and core::BatchedExecutor. Callers configure the global
// instance once (thread count, path) and every model picks it up; individual
// layers/models can be pointed at a non-global context for A/B testing.
struct ComputeContext {
  // Pool used for intra-op (GEMM row/col partition) and inter-op
  // (BatchedExecutor lockstep stepping) parallelism. nullptr => serial.
  common::ThreadPool* pool = nullptr;
  ComputePath path = ComputePath::kGemm;
  GemmBlocking blocking;
};

// Lazily-created process-wide default pool, sized to hardware concurrency.
// Honors ZEUS_NUM_THREADS: unset or > 1 => that many workers, "0"/"1" =>
// nullptr (serial). Created on first call and intentionally never
// destroyed (workers must outlive static objects that may run compute in
// their destructors; the OS reclaims the threads at exit).
common::ThreadPool* DefaultComputePool();

// The mutable process-wide default context. Not synchronized: configure it
// before launching compute, not concurrently with it. On first access the
// context's pool defaults to DefaultComputePool(), so every caller that
// does not override it (benches, trainer hot loops, BatchedExecutor
// lockstep stepping) is thread-parallel out of the box; set
// `GlobalComputeContext().pool = nullptr` to force serial execution for
// parity tests. The GEMM path is bit-identical across thread counts, so
// flipping the default changes wall time only, never results.
ComputeContext& GlobalComputeContext();

// ctx if non-null, else the global context.
const ComputeContext& EffectiveContext(const ComputeContext* ctx);

// C = alpha * op(A) @ op(B) + beta * C, all row-major.
//   op(A) is m x k: A is m x k (lda >= k) when !trans_a, else k x m (lda >= m).
//   op(B) is k x n: B is k x n (ldb >= n) when !trans_b, else n x k (ldb >= k).
//   C is m x n (ldc >= n); with beta == 0, C may be uninitialized.
// Runs on ctx->pool when set (or the global context's pool when ctx is
// null); pass a context with pool == nullptr to force serial execution.
void Sgemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
           const float* a, int lda, const float* b, int ldb, float beta,
           float* c, int ldc, const ComputeContext* ctx = nullptr);

}  // namespace zeus::tensor

#endif  // ZEUS_TENSOR_GEMM_H_
