#ifndef ZEUS_TENSOR_TENSOR_OPS_H_
#define ZEUS_TENSOR_TENSOR_OPS_H_

#include "common/rng.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace zeus::tensor {

// Matrix products. All three variants dispatch on the compute context
// (ctx, or GlobalComputeContext() when null): ComputePath::kGemm runs the
// blocked parallel kernel in tensor/gemm.h, kReference a naive triple loop,
// kInt8 the symmetric per-tensor quantized kernel (below).
//
// Accumulation policy (unified across variants and paths): partial sums are
// kept in float. The fp32 paths sum in different orders (the GEMM path by
// kc-deep panels), so they agree only to rounding: for k <= 512 and
// unit-scale operands the observed max-abs-diff is < 1e-5; tests budget
// 1e-4. Each path on its own is deterministic — the GEMM path bit-exactly
// so across thread counts.
//
// kInt8 error bound: each operand is quantized symmetrically per tensor
// (scale = maxabs / 127, round-to-nearest), so each element carries at most
// half a quantization step of error. For C = A @ B this bounds each output
// element by roughly
//   k * Amax * Bmax * (0.5/127 + 0.5/127 + 0.25/127^2) ~= 0.0079 * k * Amax * Bmax
// where Amax/Bmax are the per-tensor max-abs values. The int32 accumulation
// itself is exact (vpmaddwd pair products <= 2*127^2; no overflow up to
// k ~ 2^17), so the int8 path is bit-identical across ISA tiers AND thread
// counts — all rounding happens at quantize and the final dequant multiply.
// kInt8 applies to MatMul and MatMulTransposedB (inference shapes);
// MatMulTransposedA — only used by backward passes — silently runs the fp32
// kGemm path so training gradients are never quantized.

// out = a @ b for 2-D tensors {m,k} x {k,n} -> {m,n}.
Tensor MatMul(const Tensor& a, const Tensor& b,
              const ComputeContext* ctx = nullptr);

// out = a @ b^T for 2-D tensors {m,k} x {n,k} -> {m,n}. Avoids an explicit
// transpose in the Linear backward pass.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b,
                         const ComputeContext* ctx = nullptr);

// out = a^T @ b for 2-D tensors {k,m} x {k,n} -> {m,n}.
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b,
                         const ComputeContext* ctx = nullptr);

// Per-tensor symmetric quantization scale: maxabs / 127 (0 for an all-zero
// tensor). The same scale rule QuantizePackA/B use internally.
float QuantScale(const Tensor& t);

// Round-trips t through int8 quantization (quantize with QuantScale, then
// dequantize). Used by tests and accuracy validation to observe exactly the
// representation error the kInt8 path introduces per operand.
Tensor QuantizeDequantize(const Tensor& t);

// Elementwise c = a + b / a - b / a * b (same shapes).
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

// Transpose of a 2-D tensor.
Tensor Transpose2d(const Tensor& a);

// Fills with U(-bound, bound); used for Kaiming-uniform init.
void FillUniform(Tensor* t, common::Rng* rng, float bound);

// Fills with N(0, stddev).
void FillGaussian(Tensor* t, common::Rng* rng, float stddev);

// Row-wise softmax of a 2-D tensor {n, c}.
Tensor SoftmaxRows(const Tensor& logits);

// Concatenates 1-D tensors.
Tensor Concat1d(const std::vector<Tensor>& parts);

// Stacks equal-shaped tensors along a new leading axis: k x {s...} -> {k, s...}.
Tensor Stack(const std::vector<Tensor>& parts);

// Maximum absolute elementwise difference (for tests).
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace zeus::tensor

#endif  // ZEUS_TENSOR_TENSOR_OPS_H_
