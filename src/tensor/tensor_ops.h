#ifndef ZEUS_TENSOR_TENSOR_OPS_H_
#define ZEUS_TENSOR_TENSOR_OPS_H_

#include "common/rng.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace zeus::tensor {

// Matrix products. All three variants dispatch on the compute context
// (ctx, or GlobalComputeContext() when null): ComputePath::kGemm runs the
// blocked parallel kernel in tensor/gemm.h, kReference a naive triple loop.
//
// Accumulation policy (unified across variants and paths): partial sums are
// kept in float. The two paths sum in different orders (the GEMM path by
// kc-deep panels), so they agree only to rounding: for k <= 512 and
// unit-scale operands the observed max-abs-diff is < 1e-5; tests budget
// 1e-4. Each path on its own is deterministic — the GEMM path bit-exactly
// so across thread counts.

// out = a @ b for 2-D tensors {m,k} x {k,n} -> {m,n}.
Tensor MatMul(const Tensor& a, const Tensor& b,
              const ComputeContext* ctx = nullptr);

// out = a @ b^T for 2-D tensors {m,k} x {n,k} -> {m,n}. Avoids an explicit
// transpose in the Linear backward pass.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b,
                         const ComputeContext* ctx = nullptr);

// out = a^T @ b for 2-D tensors {k,m} x {k,n} -> {m,n}.
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b,
                         const ComputeContext* ctx = nullptr);

// Elementwise c = a + b / a - b / a * b (same shapes).
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

// Transpose of a 2-D tensor.
Tensor Transpose2d(const Tensor& a);

// Fills with U(-bound, bound); used for Kaiming-uniform init.
void FillUniform(Tensor* t, common::Rng* rng, float bound);

// Fills with N(0, stddev).
void FillGaussian(Tensor* t, common::Rng* rng, float stddev);

// Row-wise softmax of a 2-D tensor {n, c}.
Tensor SoftmaxRows(const Tensor& logits);

// Concatenates 1-D tensors.
Tensor Concat1d(const std::vector<Tensor>& parts);

// Stacks equal-shaped tensors along a new leading axis: k x {s...} -> {k, s...}.
Tensor Stack(const std::vector<Tensor>& parts);

// Maximum absolute elementwise difference (for tests).
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace zeus::tensor

#endif  // ZEUS_TENSOR_TENSOR_OPS_H_
