#ifndef ZEUS_TENSOR_TENSOR_H_
#define ZEUS_TENSOR_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"

namespace zeus::tensor {

// Dense row-major float32 N-dimensional array (N <= 5). This is the single
// numeric container shared by the NN library, the video decoder, and the RL
// agent. Copy is deep (std::vector semantics); move is cheap.
//
// Dimension conventions used across the project:
//   video segment: {C, L, H, W}
//   conv3d batch:  {N, C, L, H, W}
//   conv2d batch:  {N, C, H, W}
//   matrix:        {rows, cols}
class Tensor {
 public:
  Tensor() = default;

  // Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int> shape);

  // Allocates with explicit fill value.
  Tensor(std::vector<int> shape, float fill);

  // 1-D tensor from values.
  static Tensor FromVector(const std::vector<float>& values);

  // Tensor with the given shape whose flat data is `values` (size must
  // match the shape volume).
  static Tensor FromData(std::vector<int> shape, std::vector<float> values);

  static Tensor Zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor Full(std::vector<int> shape, float v) {
    return Tensor(std::move(shape), v);
  }

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const;
  int ndim() const { return static_cast<int>(shape_.size()); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  // Flat element access.
  float operator[](size_t i) const { return data_[i]; }
  float& operator[](size_t i) { return data_[i]; }

  // Multi-dimensional access with bounds checks in debug spirit (always on;
  // the hot loops below use raw pointers instead).
  float At(std::initializer_list<int> idx) const { return data_[Offset(idx)]; }
  float& At(std::initializer_list<int> idx) { return data_[Offset(idx)]; }

  // Returns a new tensor with the same data reinterpreted under a new shape
  // of identical volume.
  Tensor Reshape(std::vector<int> new_shape) const;

  // Fill / scale in place.
  void Fill(float v);
  void Scale(float v);
  void Add(const Tensor& other);        // this += other (same shape)
  void AddScaled(const Tensor& other, float alpha);  // this += alpha * other

  // Reductions.
  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;
  // Index of the maximum element (first occurrence).
  int Argmax() const;
  // L2 norm of all elements.
  float Norm() const;

  // Debug string: shape plus first few values.
  std::string ToString() const;

 private:
  size_t Offset(std::initializer_list<int> idx) const;

  std::vector<int> shape_;
  std::vector<size_t> strides_;
  std::vector<float> data_;

  void ComputeStrides();
};

// Volume (product of dims) of a shape.
size_t ShapeVolume(const std::vector<int>& shape);

// True iff shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace zeus::tensor

#endif  // ZEUS_TENSOR_TENSOR_H_
