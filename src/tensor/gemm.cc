#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tensor/gemm_kernels.h"

// This TU is the ISA-independent driver: runtime tier detection, the
// ZEUS_COMPUTE_PATH override, beta pre-pass, thread partitioning, and the
// int8 quantize+pack. The micro-kernels live in gemm_kernels_*.cc, one
// translation unit per tier with per-source -m flags (see gemm_kernels.h);
// nothing here may depend on how *this* file was compiled.

namespace zeus::tensor {
namespace {

using internal::GemmKernels;
using internal::kI8ColTile;
using internal::kI8RowTile;
using internal::KernelsFor;

// Below this many multiply-adds the pool dispatch overhead dominates; run
// serial. Path choice depends only on the problem shape, never on the
// thread count, so results stay bit-identical across pool sizes.
constexpr size_t kMinParallelMacs = 1 << 15;

}  // namespace

namespace internal {

const GemmKernels& KernelsFor(GemmIsa isa) {
#if defined(__x86_64__)
  switch (isa) {
    case GemmIsa::kAvx512:
      return GemmKernelsAvx512();
    case GemmIsa::kAvx2:
      return GemmKernelsAvx2();
    default:
      return GemmKernelsScalar();
  }
#else
  (void)isa;
  return GemmKernelsScalar();
#endif
}

}  // namespace internal

GemmIsa DetectGemmIsa() {
#if defined(__x86_64__) && defined(__GNUC__)
  static const GemmIsa detected = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl")) {
      return GemmIsa::kAvx512;
    }
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return GemmIsa::kAvx2;
    }
    return GemmIsa::kScalar;
  }();
  return detected;
#else
  return GemmIsa::kScalar;
#endif
}

GemmIsa ResolveGemmIsa(GemmIsa req) {
  const GemmIsa best = DetectGemmIsa();
  if (req == GemmIsa::kAuto || req == best || req == GemmIsa::kScalar) {
    return req == GemmIsa::kAuto ? best : req;
  }
  if (req == GemmIsa::kAvx2 && best == GemmIsa::kAvx512) return req;
  // Forced tier above what the CPU supports: clamp down, warn once.
  static const bool warned = [&] {
    ZEUS_LOG(Warning) << "gemm: requested ISA tier " << GemmIsaName(req)
                      << " unsupported on this CPU, using "
                      << GemmIsaName(best);
    return true;
  }();
  (void)warned;
  return best;
}

const char* GemmIsaName(GemmIsa isa) {
  switch (isa) {
    case GemmIsa::kAuto:
      return "auto";
    case GemmIsa::kScalar:
      return "scalar";
    case GemmIsa::kAvx2:
      return "avx2";
    case GemmIsa::kAvx512:
      return "avx512";
  }
  return "?";
}

bool ParseComputePath(const char* s, ComputePath* path, GemmIsa* isa) {
  if (s == nullptr) return false;
  const std::string v(s);
  if (v == "reference") {
    *path = ComputePath::kReference;
    *isa = GemmIsa::kAuto;
  } else if (v == "int8") {
    *path = ComputePath::kInt8;
    *isa = GemmIsa::kAuto;
  } else if (v == "scalar") {
    *path = ComputePath::kGemm;
    *isa = GemmIsa::kScalar;
  } else if (v == "avx2") {
    *path = ComputePath::kGemm;
    *isa = GemmIsa::kAvx2;
  } else if (v == "avx512") {
    *path = ComputePath::kGemm;
    *isa = GemmIsa::kAvx512;
  } else {
    return false;
  }
  return true;
}

common::ThreadPool* DefaultComputePool() {
  static common::ThreadPool* pool = []() -> common::ThreadPool* {
    int threads = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* env = std::getenv("ZEUS_NUM_THREADS")) {
      threads = std::atoi(env);
    }
    if (threads <= 1) return nullptr;
    // Leaked intentionally: workers must outlive every static object that
    // might run compute during its destructor; the OS reclaims the threads.
    return new common::ThreadPool(threads);
  }();
  return pool;
}

ComputeContext& GlobalComputeContext() {
  static ComputeContext ctx = [] {
    ComputeContext c;
    c.pool = DefaultComputePool();
    if (const char* env = std::getenv("ZEUS_COMPUTE_PATH")) {
      if (!ParseComputePath(env, &c.path, &c.isa)) {
        ZEUS_LOG(Warning) << "ZEUS_COMPUTE_PATH=" << env
                          << " not understood (want reference|scalar|avx2|"
                             "avx512|int8), ignoring";
      } else {
        ZEUS_LOG(Info) << "compute path forced by ZEUS_COMPUTE_PATH: path="
                       << (c.path == ComputePath::kReference ? "reference"
                           : c.path == ComputePath::kInt8    ? "int8"
                                                             : "gemm")
                       << " isa=" << GemmIsaName(c.isa);
      }
    }
    return c;
  }();
  return ctx;
}

const ComputeContext& EffectiveContext(const ComputeContext* ctx) {
  return ctx != nullptr ? *ctx : GlobalComputeContext();
}

void Sgemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
           const float* a, int lda, const float* b, int ldb, float beta,
           float* c, int ldc, const ComputeContext* ctx) {
  if (m <= 0 || n <= 0) return;
  ZEUS_CHECK(c != nullptr && ldc >= n);
  const ComputeContext& cc = EffectiveContext(ctx);

  // beta pass first, exactly once, so the blocked accumulation below is a
  // pure +=.
  if (beta == 0.0f) {
    for (int i = 0; i < m; ++i) {
      std::memset(c + static_cast<size_t>(i) * ldc, 0, sizeof(float) * n);
    }
  } else if (beta != 1.0f) {
    for (int i = 0; i < m; ++i) {
      float* row = c + static_cast<size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  if (k <= 0 || alpha == 0.0f) return;
  ZEUS_CHECK(a != nullptr && b != nullptr);
  ZEUS_CHECK(lda >= (trans_a ? m : k) && ldb >= (trans_b ? k : n));

  const GemmKernels& kern = KernelsFor(ResolveGemmIsa(cc.isa));
  common::ThreadPool* pool = cc.pool;
  const size_t macs = static_cast<size_t>(m) * n * k;
  const int threads = pool != nullptr ? pool->num_threads() : 1;
  if (threads <= 1 || macs < kMinParallelMacs ||
      common::ThreadPool::InWorkerThread()) {
    kern.sgemm_range(trans_a, trans_b, 0, m, 0, n, k, alpha, a, lda, b, ldb,
                     c, ldc, cc.blocking);
    return;
  }

  // Partition the larger C dimension into one contiguous chunk per thread,
  // aligned to the tier's register tile. Each chunk owns a disjoint region
  // of C and runs the identical accumulation order, so the split is
  // bit-exact.
  const bool split_rows = m >= n;
  const int dim = split_rows ? m : n;
  const int tile = split_rows ? kern.mr : kern.nr;
  int chunks = std::min(threads, (dim + tile - 1) / tile);
  const int per = ((dim + chunks - 1) / chunks + tile - 1) / tile * tile;
  chunks = (dim + per - 1) / per;
  common::ParallelFor(pool, chunks, [&](int idx) {
    const int lo = idx * per;
    const int hi = std::min(dim, lo + per);
    if (split_rows) {
      kern.sgemm_range(trans_a, trans_b, lo, hi, 0, n, k, alpha, a, lda, b,
                       ldb, c, ldc, cc.blocking);
    } else {
      kern.sgemm_range(trans_a, trans_b, 0, m, lo, hi, k, alpha, a, lda, b,
                       ldb, c, ldc, cc.blocking);
    }
  });
}

// ---- Int8 quantize + pack --------------------------------------------------

// Both packers run in two passes over contiguous runs — a max-abs scan,
// then round+clamp into a dense int16 row — through the resolved tier's
// SIMD primitives, with a cheap int16 shuffle into the pair-interleaved
// panel layout. The quantize step is the dominant cost of the int8 path
// for thin GEMMs (m of a lowered conv is just the channel count), so it
// must not run one libm lrintf per element.

void QuantizePackA(const float* a, int lda, int m, int k, Int8Panels* out,
                   const ComputeContext* ctx) {
  ZEUS_CHECK(a != nullptr && m >= 0 && k >= 0 && lda >= k);
  const GemmKernels& kern =
      KernelsFor(ResolveGemmIsa(EffectiveContext(ctx).isa));
  float maxabs = 0.0f;
  for (int r = 0; r < m; ++r) {
    maxabs = std::max(maxabs,
                      kern.maxabs(a + static_cast<size_t>(r) * lda, k));
  }
  out->scale = maxabs / 127.0f;
  const float inv = maxabs > 0.0f ? 127.0f / maxabs : 0.0f;
  out->rows = m;
  out->cols = k;
  out->k_pairs = (k + 1) / 2;
  const int rpanels = (m + kI8RowTile - 1) / kI8RowTile;
  out->data.assign(static_cast<size_t>(rpanels) * out->k_pairs * kI8RowTile *
                       2,
                   0);
  std::vector<int16_t> qrow(k);
  int16_t* dst = out->data.data();
  for (int row = 0; row < m; ++row) {
    kern.quantize(a + static_cast<size_t>(row) * lda, k, inv, qrow.data());
    const int pr = row / kI8RowTile;
    const int r = row % kI8RowTile;
    int16_t* panel =
        dst + (static_cast<size_t>(pr) * out->k_pairs * kI8RowTile + r) * 2;
    for (int p2 = 0; p2 < out->k_pairs; ++p2) {
      panel[static_cast<size_t>(p2) * kI8RowTile * 2] = qrow[2 * p2];
      if (2 * p2 + 1 < k) {
        panel[static_cast<size_t>(p2) * kI8RowTile * 2 + 1] = qrow[2 * p2 + 1];
      }
    }
  }
}

void QuantizePackB(const float* b, int ldb, bool trans_b, int k, int n,
                   Int8Panels* out, const ComputeContext* ctx) {
  ZEUS_CHECK(b != nullptr && k >= 0 && n >= 0);
  ZEUS_CHECK(ldb >= (trans_b ? k : n));
  const GemmKernels& kern =
      KernelsFor(ResolveGemmIsa(EffectiveContext(ctx).isa));
  // op(B) rows are length-n strided when !trans_b; op(B) columns are
  // length-k contiguous rows of the stored matrix when trans_b. Either way
  // the scan and quantize run over contiguous memory.
  const int nruns = trans_b ? n : k;
  const int runlen = trans_b ? k : n;
  float maxabs = 0.0f;
  for (int r = 0; r < nruns; ++r) {
    maxabs = std::max(maxabs,
                      kern.maxabs(b + static_cast<size_t>(r) * ldb, runlen));
  }
  out->scale = maxabs / 127.0f;
  const float inv = maxabs > 0.0f ? 127.0f / maxabs : 0.0f;
  out->rows = k;
  out->cols = n;
  out->k_pairs = (k + 1) / 2;
  const int jpanels = (n + kI8ColTile - 1) / kI8ColTile;
  const size_t total =
      static_cast<size_t>(jpanels) * out->k_pairs * kI8ColTile * 2;
  if (trans_b) {
    out->data.assign(total, 0);
  } else {
    // The panel packer writes every slot (including padding), so a reused
    // buffer only needs the right size — skip the O(total) zero fill.
    out->data.resize(total);
  }
  int16_t* dst = out->data.data();
  if (trans_b) {
    // One stored row = one op(B) column: quantize it, then spread its
    // k-pairs down the column's slot in each pair row.
    std::vector<int16_t> qcol(k);
    for (int col = 0; col < n; ++col) {
      kern.quantize(b + static_cast<size_t>(col) * ldb, k, inv, qcol.data());
      const int jp = col / kI8ColTile;
      const int c = col % kI8ColTile;
      int16_t* panel =
          dst +
          (static_cast<size_t>(jp) * out->k_pairs * kI8ColTile + c) * 2;
      for (int p2 = 0; p2 < out->k_pairs; ++p2) {
        panel[static_cast<size_t>(p2) * kI8ColTile * 2] = qcol[2 * p2];
        if (2 * p2 + 1 < k) {
          panel[static_cast<size_t>(p2) * kI8ColTile * 2 + 1] =
              qcol[2 * p2 + 1];
        }
      }
    }
  } else {
    // Fused quantize + pair interleave, one 16-column panel at a time:
    // writes stream through dst and each source cache line is read exactly
    // once (a k-pair-outer loop would re-touch the whole panel buffer per
    // pair and thrash for lowered-conv sizes).
    for (int jp = 0; jp < jpanels; ++jp) {
      const int cols = std::min(kI8ColTile, n - jp * kI8ColTile);
      kern.i8pack_panel(b + static_cast<size_t>(jp) * kI8ColTile, ldb, k, cols,
                        inv,
                        dst + static_cast<size_t>(jp) * out->k_pairs *
                                  kI8ColTile * 2);
    }
  }
}

void QuantizedGemm(int m, int n, int k, const Int8Panels& a,
                   const Int8Panels& b, float* c, int ldc,
                   const ComputeContext* ctx) {
  if (m <= 0 || n <= 0) return;
  ZEUS_CHECK(c != nullptr && ldc >= n);
  ZEUS_CHECK(a.rows == m && a.cols == k && b.rows == k && b.cols == n);
  ZEUS_CHECK(a.k_pairs == b.k_pairs);
  const ComputeContext& cc = EffectiveContext(ctx);
  const GemmKernels& kern = KernelsFor(ResolveGemmIsa(cc.isa));
  const float scale = a.scale * b.scale;
  const int jpanels = (n + kI8ColTile - 1) / kI8ColTile;

  common::ThreadPool* pool = cc.pool;
  const size_t macs = static_cast<size_t>(m) * n * k;
  const int threads = pool != nullptr ? pool->num_threads() : 1;
  if (threads <= 1 || macs < kMinParallelMacs ||
      common::ThreadPool::InWorkerThread()) {
    kern.i8gemm_range(m, n, a.k_pairs, 0, jpanels, scale, a.data.data(),
                      b.data.data(), c, ldc);
    return;
  }
  // Contiguous column-panel chunks; integer accumulation is exact, so any
  // chunking is trivially bit-identical (and identical across tiers).
  int chunks = std::min(threads, jpanels);
  const int per = (jpanels + chunks - 1) / chunks;
  chunks = (jpanels + per - 1) / per;
  common::ParallelFor(pool, chunks, [&](int idx) {
    const int lo = idx * per;
    const int hi = std::min(jpanels, lo + per);
    kern.i8gemm_range(m, n, a.k_pairs, lo, hi, scale, a.data.data(),
                      b.data.data(), c, ldc);
  });
}

}  // namespace zeus::tensor
