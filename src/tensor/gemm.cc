#include "tensor/gemm.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"

// The build stays portable (no -march flags), so the hot kernel is
// multi-versioned: GCC emits baseline and x86-64-v3 (AVX2+FMA) clones of
// SgemmRange and the dynamic loader picks the best one for the running CPU.
// Everything the kernel calls is force-inlined below so the clones actually
// specialize the packing loops and micro-kernel.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define ZEUS_GEMM_CLONES \
  __attribute__((target_clones("arch=x86-64-v3", "default")))
#else
#define ZEUS_GEMM_CLONES
#endif
#define ZEUS_ALWAYS_INLINE inline __attribute__((always_inline))

namespace zeus::tensor {
namespace {

// Register tile. kMr * kNr accumulators = 8 ymm registers in the AVX2
// clone (4 rows x 2 vectors), leaving half the register file for the A
// broadcast and B row; the inner loops below are written so -O3 turns them
// into broadcast-FMA chains.
constexpr int kMr = 4;
constexpr int kNr = 16;

// Below this many multiply-adds the pool dispatch overhead dominates; run
// serial. Path choice depends only on the problem shape, never on the
// thread count, so results stay bit-identical across pool sizes.
constexpr size_t kMinParallelMacs = 1 << 15;

ZEUS_ALWAYS_INLINE float AElem(const float* a, int lda, bool trans, int i,
                               int p) {
  return trans ? a[static_cast<size_t>(p) * lda + i]
               : a[static_cast<size_t>(i) * lda + p];
}

ZEUS_ALWAYS_INLINE float BElem(const float* b, int ldb, bool trans, int p,
                               int j) {
  return trans ? b[static_cast<size_t>(j) * ldb + p]
               : b[static_cast<size_t>(p) * ldb + j];
}

// Packs A[i0 : i0+mb, p0 : p0+kb] (logical, transpose absorbed) into
// kMr-row micro-panels laid out k-major: panel pr holds rows
// i0 + pr*kMr .., element (p, r) at out[pr*kb*kMr + p*kMr + r]. Rows past
// the edge are zero-filled so the micro-kernel never branches.
ZEUS_ALWAYS_INLINE void PackA(const float* a, int lda, bool trans, int i0,
                              int mb, int p0, int kb, float* out) {
  const int panels = (mb + kMr - 1) / kMr;
  for (int pr = 0; pr < panels; ++pr) {
    const int rbase = i0 + pr * kMr;
    const int rows = std::min(kMr, i0 + mb - rbase);
    float* dst = out + static_cast<size_t>(pr) * kb * kMr;
    for (int p = 0; p < kb; ++p) {
      for (int r = 0; r < kMr; ++r) {
        dst[static_cast<size_t>(p) * kMr + r] =
            r < rows ? AElem(a, lda, trans, rbase + r, p0 + p) : 0.0f;
      }
    }
  }
}

// Packs B[p0 : p0+kb, j0 : j0+nb] into kNr-column micro-panels laid out
// k-major: element (p, c) of panel jp at out[jp*kb*kNr + p*kNr + c].
ZEUS_ALWAYS_INLINE void PackB(const float* b, int ldb, bool trans, int p0,
                              int kb, int j0, int nb, float* out) {
  const int panels = (nb + kNr - 1) / kNr;
  for (int jp = 0; jp < panels; ++jp) {
    const int cbase = j0 + jp * kNr;
    const int cols = std::min(kNr, j0 + nb - cbase);
    float* dst = out + static_cast<size_t>(jp) * kb * kNr;
    for (int p = 0; p < kb; ++p) {
      float* row = dst + static_cast<size_t>(p) * kNr;
      if (!trans) {
        const float* src = b + static_cast<size_t>(p0 + p) * ldb + cbase;
        for (int c = 0; c < cols; ++c) row[c] = src[c];
      } else {
        for (int c = 0; c < cols; ++c) {
          row[c] = b[static_cast<size_t>(cbase + c) * ldb + (p0 + p)];
        }
      }
      for (int c = cols; c < kNr; ++c) row[c] = 0.0f;
    }
  }
}

// C[0:rows, 0:cols] += alpha * sum_p ap[p] (outer) bp[p]. Accumulates the
// whole kb depth into registers, then writes back once.
// 8-lane float vector, alignment relaxed to allow unaligned loads from the
// packed panels. Maps to one ymm in the x86-64-v3 clone and a pair of xmm
// in the baseline clone. -Wpsabi warns that passing V8 by value differs
// between those ABIs; irrelevant here because every V8 helper is inlined.
#pragma GCC diagnostic ignored "-Wpsabi"
typedef float V8 __attribute__((vector_size(32), aligned(4)));

ZEUS_ALWAYS_INLINE V8 LoadV8(const float* p) {
  return *reinterpret_cast<const V8*>(p);
}

ZEUS_ALWAYS_INLINE void MicroKernel(int kb, float alpha, const float* ap,
                                    const float* bp, float* c, int ldc,
                                    int rows, int cols) {
  // 4 rows x 2 vectors of named accumulators: a fixed-shape register block
  // (arrays here spill to the stack; named variables do not).
  V8 c00 = {}, c01 = {}, c10 = {}, c11 = {};
  V8 c20 = {}, c21 = {}, c30 = {}, c31 = {};
  for (int p = 0; p < kb; ++p) {
    const float* av = ap + static_cast<size_t>(p) * kMr;
    const float* bv = bp + static_cast<size_t>(p) * kNr;
    const V8 b0 = LoadV8(bv);
    const V8 b1 = LoadV8(bv + 8);
    V8 a = av[0] + (V8){};  // vbroadcastss
    c00 += a * b0;
    c01 += a * b1;
    a = av[1] + (V8){};
    c10 += a * b0;
    c11 += a * b1;
    a = av[2] + (V8){};
    c20 += a * b0;
    c21 += a * b1;
    a = av[3] + (V8){};
    c30 += a * b0;
    c31 += a * b1;
  }
  const V8 va = alpha + (V8){};
  if (rows == kMr && cols == kNr) {
    float* r0 = c;
    float* r1 = c + ldc;
    float* r2 = c + 2 * static_cast<size_t>(ldc);
    float* r3 = c + 3 * static_cast<size_t>(ldc);
    *reinterpret_cast<V8*>(r0) += va * c00;
    *reinterpret_cast<V8*>(r0 + 8) += va * c01;
    *reinterpret_cast<V8*>(r1) += va * c10;
    *reinterpret_cast<V8*>(r1 + 8) += va * c11;
    *reinterpret_cast<V8*>(r2) += va * c20;
    *reinterpret_cast<V8*>(r2 + 8) += va * c21;
    *reinterpret_cast<V8*>(r3) += va * c30;
    *reinterpret_cast<V8*>(r3 + 8) += va * c31;
    return;
  }
  // Edge tile: stage through a dense buffer, copy the valid region.
  float tmp[kMr][kNr];
  *reinterpret_cast<V8*>(&tmp[0][0]) = c00;
  *reinterpret_cast<V8*>(&tmp[0][8]) = c01;
  *reinterpret_cast<V8*>(&tmp[1][0]) = c10;
  *reinterpret_cast<V8*>(&tmp[1][8]) = c11;
  *reinterpret_cast<V8*>(&tmp[2][0]) = c20;
  *reinterpret_cast<V8*>(&tmp[2][8]) = c21;
  *reinterpret_cast<V8*>(&tmp[3][0]) = c30;
  *reinterpret_cast<V8*>(&tmp[3][8]) = c31;
  for (int r = 0; r < rows; ++r) {
    float* crow = c + static_cast<size_t>(r) * ldc;
    for (int j = 0; j < cols; ++j) crow[j] += alpha * tmp[r][j];
  }
}

// Blocked accumulation C[i_begin:i_end, j_begin:j_end] += alpha*op(A)op(B)
// (beta already applied by the driver). Per-element k order is fixed — kc
// panels ascending, then ascending within the micro-kernel — independent of
// the [i, j) range, which is what makes the parallel partition bit-exact.
ZEUS_GEMM_CLONES
void SgemmRange(bool trans_a, bool trans_b, int i_begin, int i_end,
                int j_begin, int j_end, int k, float alpha, const float* a,
                int lda, const float* b, int ldb, float* c, int ldc,
                const GemmBlocking& blk) {
  const int mc = std::max(blk.mc, kMr);
  const int kc = std::max(blk.kc, 1);
  const int nc = std::max(blk.nc, kNr);
  // Buffers sized to the work actually packed (a small-k conv GEMM needs a
  // few KB, not the full kc*nc block budget).
  const int kb_max = std::min(kc, k);
  const int mb_max = std::min(mc, i_end - i_begin);
  const int nb_max = std::min(nc, j_end - j_begin);
  std::vector<float> packa(static_cast<size_t>((mb_max + kMr - 1) / kMr) *
                           kMr * kb_max);
  std::vector<float> packb(static_cast<size_t>((nb_max + kNr - 1) / kNr) *
                           kNr * kb_max);
  for (int j0 = j_begin; j0 < j_end; j0 += nc) {
    const int nb = std::min(nc, j_end - j0);
    for (int p0 = 0; p0 < k; p0 += kc) {
      const int kb = std::min(kc, k - p0);
      PackB(b, ldb, trans_b, p0, kb, j0, nb, packb.data());
      for (int i0 = i_begin; i0 < i_end; i0 += mc) {
        const int mb = std::min(mc, i_end - i0);
        PackA(a, lda, trans_a, i0, mb, p0, kb, packa.data());
        const int rpanels = (mb + kMr - 1) / kMr;
        const int cpanels = (nb + kNr - 1) / kNr;
        for (int jp = 0; jp < cpanels; ++jp) {
          const int cols = std::min(kNr, nb - jp * kNr);
          const float* bp = packb.data() + static_cast<size_t>(jp) * kb * kNr;
          for (int pr = 0; pr < rpanels; ++pr) {
            const int rows = std::min(kMr, mb - pr * kMr);
            MicroKernel(kb, alpha,
                        packa.data() + static_cast<size_t>(pr) * kb * kMr, bp,
                        c + static_cast<size_t>(i0 + pr * kMr) * ldc + j0 +
                            jp * kNr,
                        ldc, rows, cols);
          }
        }
      }
    }
  }
}

}  // namespace

common::ThreadPool* DefaultComputePool() {
  static common::ThreadPool* pool = []() -> common::ThreadPool* {
    int threads = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* env = std::getenv("ZEUS_NUM_THREADS")) {
      threads = std::atoi(env);
    }
    if (threads <= 1) return nullptr;
    // Leaked intentionally: workers must outlive every static object that
    // might run compute during its destructor; the OS reclaims the threads.
    return new common::ThreadPool(threads);
  }();
  return pool;
}

ComputeContext& GlobalComputeContext() {
  static ComputeContext ctx = [] {
    ComputeContext c;
    c.pool = DefaultComputePool();
    return c;
  }();
  return ctx;
}

const ComputeContext& EffectiveContext(const ComputeContext* ctx) {
  return ctx != nullptr ? *ctx : GlobalComputeContext();
}

void Sgemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
           const float* a, int lda, const float* b, int ldb, float beta,
           float* c, int ldc, const ComputeContext* ctx) {
  if (m <= 0 || n <= 0) return;
  ZEUS_CHECK(c != nullptr && ldc >= n);
  const ComputeContext& cc = EffectiveContext(ctx);

  // beta pass first, exactly once, so the blocked accumulation below is a
  // pure +=.
  if (beta == 0.0f) {
    for (int i = 0; i < m; ++i) {
      std::memset(c + static_cast<size_t>(i) * ldc, 0, sizeof(float) * n);
    }
  } else if (beta != 1.0f) {
    for (int i = 0; i < m; ++i) {
      float* row = c + static_cast<size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  if (k <= 0 || alpha == 0.0f) return;
  ZEUS_CHECK(a != nullptr && b != nullptr);
  ZEUS_CHECK(lda >= (trans_a ? m : k) && ldb >= (trans_b ? k : n));

  common::ThreadPool* pool = cc.pool;
  const size_t macs = static_cast<size_t>(m) * n * k;
  const int threads = pool != nullptr ? pool->num_threads() : 1;
  if (threads <= 1 || macs < kMinParallelMacs ||
      common::ThreadPool::InWorkerThread()) {
    SgemmRange(trans_a, trans_b, 0, m, 0, n, k, alpha, a, lda, b, ldb, c, ldc,
               cc.blocking);
    return;
  }

  // Partition the larger C dimension into one contiguous chunk per thread,
  // aligned to the register tile. Each chunk owns a disjoint region of C and
  // runs the identical accumulation order, so the split is bit-exact.
  const bool split_rows = m >= n;
  const int dim = split_rows ? m : n;
  const int tile = split_rows ? kMr : kNr;
  int chunks = std::min(threads, (dim + tile - 1) / tile);
  const int per = ((dim + chunks - 1) / chunks + tile - 1) / tile * tile;
  chunks = (dim + per - 1) / per;
  common::ParallelFor(pool, chunks, [&](int idx) {
    const int lo = idx * per;
    const int hi = std::min(dim, lo + per);
    if (split_rows) {
      SgemmRange(trans_a, trans_b, lo, hi, 0, n, k, alpha, a, lda, b, ldb, c,
                 ldc, cc.blocking);
    } else {
      SgemmRange(trans_a, trans_b, 0, m, lo, hi, k, alpha, a, lda, b, ldb, c,
                 ldc, cc.blocking);
    }
  });
}

}  // namespace zeus::tensor
