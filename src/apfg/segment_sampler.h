#ifndef ZEUS_APFG_SEGMENT_SAMPLER_H_
#define ZEUS_APFG_SEGMENT_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"
#include "video/dataset.h"
#include "video/decoder.h"

namespace zeus::apfg {

// One supervised training example: a decoded segment (or frame) and its
// binary action label.
struct LabeledSegment {
  int video_idx = 0;
  int start_frame = 0;
  int label = 0;  // 1 = action (IoU > 0.5 against the target classes)
};

// Ground-truth labeling rule of §2.1: a window is positive when the target
// action covers more than `iou_threshold` of it.
int SegmentLabel(const video::Video& video, int start_frame, int num_frames,
                 const std::vector<video::ActionClass>& targets,
                 double iou_threshold = 0.5);

// Builds a class-balanced list of segment positions for supervised APFG
// training: slides over each video with stride = covered/2, keeps all
// positives, and subsamples negatives to `neg_per_pos` per positive.
std::vector<LabeledSegment> SampleSegments(
    const std::vector<const video::Video*>& videos,
    const std::vector<video::ActionClass>& targets,
    const video::DecodeSpec& spec, common::Rng* rng, double neg_per_pos = 1.5);

// Builds a balanced list of single-frame examples for Frame-PP training.
std::vector<LabeledSegment> SampleFrames(
    const std::vector<const video::Video*>& videos,
    const std::vector<video::ActionClass>& targets, int stride,
    common::Rng* rng, double neg_per_pos = 1.5);

}  // namespace zeus::apfg

#endif  // ZEUS_APFG_SEGMENT_SAMPLER_H_
