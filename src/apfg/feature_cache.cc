#include "apfg/feature_cache.h"

namespace zeus::apfg {

uint64_t FeatureCache::Key(const video::Video& video, int start_frame,
                           const video::DecodeSpec& spec) {
  // Pack: video id (16b) | start (24b) | res (10b) | len (8b) | rate (6b).
  uint64_t k = static_cast<uint64_t>(video.id() & 0xffff);
  k = (k << 24) | static_cast<uint64_t>(start_frame & 0xffffff);
  k = (k << 10) | static_cast<uint64_t>(spec.resolution_px & 0x3ff);
  k = (k << 8) | static_cast<uint64_t>(spec.segment_length & 0xff);
  k = (k << 6) | static_cast<uint64_t>(spec.sampling_rate & 0x3f);
  return k;
}

const Apfg::Output& FeatureCache::Get(const video::Video& video,
                                      int start_frame,
                                      const video::DecodeSpec& spec) {
  uint64_t key = Key(video, start_frame, spec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Miss: run the (read-only, deterministic) APFG inference outside the
  // lock so concurrent callers don't serialize on each other's compute.
  Apfg::Output out = apfg_->Process(video, start_frame, spec);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;  // lost a concurrent race; the first insert wins
    return it->second;
  }
  ++misses_;
  auto [ins, _] = cache_.emplace(key, std::move(out));
  return ins->second;
}

void FeatureCache::Precompute(const video::Video& video,
                              const video::DecodeSpec& spec, int alignment,
                              size_t max_entries) {
  for (int start = 0; start < video.num_frames(); start += alignment) {
    if (cache_.size() >= max_entries) return;
    Get(video, start, spec);
  }
}

void FeatureCache::PrecomputeParallel(
    const std::vector<const video::Video*>& videos,
    const video::DecodeSpec& spec, int alignment, common::ThreadPool* pool) {
  // Enumerate the (video, start) work items not yet cached.
  struct Item {
    const video::Video* video;
    int start;
  };
  std::vector<Item> items;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const video::Video* v : videos) {
      for (int start = 0; start < v->num_frames(); start += alignment) {
        if (cache_.find(Key(*v, start, spec)) == cache_.end()) {
          items.push_back({v, start});
        }
      }
    }
  }
  std::vector<Apfg::Output> outputs(items.size());
  common::ParallelFor(pool, static_cast<int>(items.size()),
                      [&](int i) {
                        const Item& it = items[static_cast<size_t>(i)];
                        outputs[static_cast<size_t>(i)] =
                            apfg_->Process(*it.video, it.start, spec);
                      });
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < items.size(); ++i) {
    cache_.emplace(Key(*items[i].video, items[i].start, spec),
                   std::move(outputs[i]));
    ++misses_;
  }
}

}  // namespace zeus::apfg
