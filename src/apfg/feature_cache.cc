#include "apfg/feature_cache.h"

#include <algorithm>

#include "video/decoder.h"

namespace zeus::apfg {

size_t FeatureCache::KeyHash::operator()(const Key& k) const {
  // SplitMix64-style mix over the packed fields.
  uint64_t h = static_cast<uint64_t>(static_cast<uint32_t>(k.video_id));
  h = h * 0x9E3779B97F4A7C15ull + static_cast<uint32_t>(k.start);
  h = h * 0x9E3779B97F4A7C15ull + static_cast<uint32_t>(k.avail);
  h = h * 0x9E3779B97F4A7C15ull + static_cast<uint32_t>(k.res);
  h = h * 0x9E3779B97F4A7C15ull +
      (static_cast<uint64_t>(static_cast<uint32_t>(k.len)) << 8 |
       static_cast<uint32_t>(k.rate));
  h ^= h >> 31;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 29;
  return static_cast<size_t>(h);
}

FeatureCache::Key FeatureCache::MakeKey(const video::Video& video,
                                        int start_frame,
                                        const video::DecodeSpec& spec) {
  Key k;
  k.video_id = video.id();
  k.start = start_frame;
  // Clamp-awareness: how many real source frames the decode can see. Once
  // the video has grown past start + covered, this saturates at covered
  // and the key becomes stable forever.
  k.avail = std::min(video::SegmentDecoder::CoveredFrames(spec),
                     video.num_frames() - start_frame);
  k.res = spec.resolution_px;
  k.len = spec.segment_length;
  k.rate = spec.sampling_rate;
  return k;
}

std::shared_ptr<const Apfg::Output> FeatureCache::InsertLocked(
    const Key& key, std::shared_ptr<const Apfg::Output> out) {
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second.out;  // first insert won a race
  lru_.push_front(key);
  cache_.emplace(key, Entry{out, lru_.begin()});
  EvictOverCapacityLocked();
  return out;
}

void FeatureCache::EvictOverCapacityLocked() {
  if (max_entries_ == 0) return;
  while (cache_.size() > max_entries_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const Apfg::Output> FeatureCache::Get(
    const video::Video& video, int start_frame,
    const video::DecodeSpec& spec) {
  const Key key = MakeKey(video, start_frame, spec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.pos);  // refresh LRU
      return it->second.out;
    }
  }
  // Miss: run the (read-only, deterministic) APFG inference outside the
  // lock so concurrent callers don't serialize on each other's compute.
  auto out =
      std::make_shared<Apfg::Output>(apfg_->Process(video, start_frame, spec));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;  // lost a concurrent race; the first insert wins
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return it->second.out;
  }
  ++misses_;
  return InsertLocked(key, std::move(out));
}

void FeatureCache::Precompute(const video::Video& video,
                              const video::DecodeSpec& spec, int alignment,
                              size_t max_entries) {
  for (int start = 0; start < video.num_frames(); start += alignment) {
    if (size() >= max_entries) return;
    Get(video, start, spec);
  }
}

void FeatureCache::PrecomputeParallel(
    const std::vector<const video::Video*>& videos,
    const video::DecodeSpec& spec, int alignment, common::ThreadPool* pool) {
  // Enumerate the (video, start) work items not yet cached.
  struct Item {
    const video::Video* video;
    int start;
  };
  std::vector<Item> items;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const video::Video* v : videos) {
      for (int start = 0; start < v->num_frames(); start += alignment) {
        if (cache_.find(MakeKey(*v, start, spec)) == cache_.end()) {
          items.push_back({v, start});
        }
      }
    }
  }
  std::vector<std::shared_ptr<const Apfg::Output>> outputs(items.size());
  common::ParallelFor(pool, static_cast<int>(items.size()), [&](int i) {
    const Item& it = items[static_cast<size_t>(i)];
    outputs[static_cast<size_t>(i)] = std::make_shared<Apfg::Output>(
        apfg_->Process(*it.video, it.start, spec));
  });
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < items.size(); ++i) {
    ++misses_;
    InsertLocked(MakeKey(*items[i].video, items[i].start, spec),
                 std::move(outputs[i]));
  }
}

size_t FeatureCache::InvalidateBefore(int frame) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->start + it->avail <= frame) {
      cache_.erase(*it);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  evictions_ += dropped;
  return dropped;
}

void FeatureCache::set_max_entries(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_ = n;
  EvictOverCapacityLocked();
}

}  // namespace zeus::apfg
