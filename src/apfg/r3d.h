#ifndef ZEUS_APFG_R3D_H_
#define ZEUS_APFG_R3D_H_

#include <memory>

#include "common/rng.h"
#include "nn/sequential.h"

namespace zeus::apfg {

// Scaled-down analogue of the R3D-18 action recognition network (Fig. 3 of
// the paper): a stack of spatio-temporal 3-D convolutions, adaptive average
// pooling, a fully-connected feature head (the ProxyFeature tap) and a
// binary classification head. Accepts segments of any (L, H, W) — global
// average pooling absorbs the spatial/temporal extent, which is what lets a
// single trained model process every configuration (the "model reuse"
// optimization of §5).
class R3dLite {
 public:
  struct Options {
    int in_channels = 1;
    int base_channels = 8;   // channels of the first conv block
    int feature_dim = 32;    // ProxyFeature width (paper: 512)
    int num_classes = 2;     // binary: action / no-action
  };

  R3dLite(const Options& opts, common::Rng* rng);

  // Full forward pass to logits {N, num_classes}.
  tensor::Tensor Logits(const tensor::Tensor& segment_batch, bool train);

  // ProxyFeature {N, feature_dim}: forward through the convolutional trunk
  // and the feature head only.
  tensor::Tensor Features(const tensor::Tensor& segment_batch);

  // Both at once, sharing the trunk computation (inference only).
  struct Output {
    tensor::Tensor features;  // {N, feature_dim}
    tensor::Tensor logits;    // {N, num_classes}
  };
  Output FeaturesAndLogits(const tensor::Tensor& segment_batch);

  // Backward for a full Logits(.., train=true) pass.
  void Backward(const tensor::Tensor& grad_logits);

  std::vector<nn::Parameter*> Parameters() { return net_.Parameters(); }
  nn::Sequential& net() { return net_; }

  // Routes every conv/linear kernel in the trunk through `ctx` (thread
  // pool, GEMM/reference path); nullptr follows the process-wide context.
  void SetComputeContext(const tensor::ComputeContext* ctx) {
    net_.SetComputeContext(ctx);
  }

  const Options& options() const { return opts_; }
  size_t ParameterCount() { return nn::ParameterCount(net_.Parameters()); }

  common::Status Save(const std::string& path) { return net_.SaveWeights(path); }
  common::Status Load(const std::string& path) { return net_.LoadWeights(path); }

 private:
  Options opts_;
  nn::Sequential net_;
  size_t feature_tap_ = 0;  // layer count producing the ProxyFeature
};

}  // namespace zeus::apfg

#endif  // ZEUS_APFG_R3D_H_
