#include "apfg/r3d.h"

#include "nn/activations.h"
#include "nn/conv3d.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace zeus::apfg {

R3dLite::R3dLite(const Options& opts, common::Rng* rng) : opts_(opts) {
  const int c = opts.base_channels;
  // Stem: spatial downsample only, preserving temporal length (the R3D stem
  // uses a {3x7x7} kernel with spatial stride 2).
  nn::Conv3d::Options stem;
  stem.kernel = {3, 3, 3};
  stem.stride = {1, 2, 2};
  stem.padding = {1, 1, 1};
  net_.Emplace<nn::Conv3d>(opts.in_channels, c, stem, rng);
  net_.Emplace<nn::ReLU>();
  // Two spatio-temporal blocks with stride-2 in all dims.
  nn::Conv3d::Options block;
  block.kernel = {3, 3, 3};
  block.stride = {2, 2, 2};
  block.padding = {1, 1, 1};
  net_.Emplace<nn::Conv3d>(c, 2 * c, block, rng);
  net_.Emplace<nn::ReLU>();
  net_.Emplace<nn::Conv3d>(2 * c, 4 * c, block, rng);
  net_.Emplace<nn::ReLU>();
  // Adaptive average pool to {N, 4c}.
  net_.Emplace<nn::GlobalAvgPool>();
  // Feature head (the three added FC layers of §5, condensed to one hidden
  // layer at this scale). ProxyFeature taps the output of the ReLU below.
  net_.Emplace<nn::Linear>(4 * c, opts.feature_dim, rng);
  net_.Emplace<nn::ReLU>();
  feature_tap_ = net_.NumLayers();
  // Classifier head.
  net_.Emplace<nn::Linear>(opts.feature_dim, opts.num_classes, rng);
}

tensor::Tensor R3dLite::Logits(const tensor::Tensor& segment_batch,
                               bool train) {
  return net_.Forward(segment_batch, train);
}

tensor::Tensor R3dLite::Features(const tensor::Tensor& segment_batch) {
  return net_.ForwardPrefix(segment_batch, feature_tap_, /*train=*/false);
}

R3dLite::Output R3dLite::FeaturesAndLogits(const tensor::Tensor& segment_batch) {
  Output out;
  out.features = net_.ForwardPrefix(segment_batch, feature_tap_, false);
  out.logits = net_.ForwardSuffix(out.features, feature_tap_, false);
  return out;
}

void R3dLite::Backward(const tensor::Tensor& grad_logits) {
  net_.Backward(grad_logits);
}

}  // namespace zeus::apfg
