#ifndef ZEUS_APFG_APFG_H_
#define ZEUS_APFG_APFG_H_

#include <map>
#include <memory>
#include <vector>

#include "apfg/r3d.h"
#include "common/rng.h"
#include "common/status.h"
#include "video/dataset.h"
#include "video/decoder.h"

namespace zeus::apfg {

// Training knobs for the APFG's supervised fine-tuning stage.
struct ApfgTrainOptions {
  int epochs = 16;
  int batch_size = 16;
  float learning_rate = 3e-3f;
  double neg_per_pos = 1.5;
  // Stddev of train-time Gaussian pixel noise, in standardized input units.
  // Regularizes against the per-video background statistics that a small
  // training corpus would otherwise let the classifier memorize.
  float augment_noise = 0.15f;
  // Cap on examples contributed by each non-primary decode spec in the
  // training mixture (the primary spec is uncapped).
  int max_aux_examples = 256;
  R3dLite::Options model;
};

struct ApfgTrainStats {
  float final_loss = 0.0f;
  float train_accuracy = 0.0f;
  int num_examples = 0;
  double train_seconds = 0.0;
};

// Adaptive Proxy Feature Generator (§3). A collection of action recognition
// models that generate ProxyFeatures for segments decoded under any
// configuration. Two operating modes mirror §5 "Model reuse":
//   - reuse (default): one R3dLite trained on the most accurate
//     configuration processes every configuration;
//   - ensemble: one model per segment-length bucket, each trained on
//     segments of that shape.
class Apfg {
 public:
  Apfg(const ApfgTrainOptions& opts, bool model_reuse, common::Rng* rng);

  // Trains on the given videos for the target action classes. `best_spec`
  // is the most accurate configuration's decode parameters (highest
  // resolution, densest sampling). In ensemble mode, `all_specs` supplies
  // one spec per model bucket.
  common::Status Train(const std::vector<const video::Video*>& videos,
                       const std::vector<video::ActionClass>& targets,
                       const video::DecodeSpec& best_spec,
                       const std::vector<video::DecodeSpec>& all_specs,
                       ApfgTrainStats* stats);

  // Output of one APFG invocation on one segment.
  struct Output {
    tensor::Tensor feature;  // {feature_dim}
    int prediction = 0;      // 1 = ACTION
    float action_prob = 0.5f;
  };

  // Decodes + processes the segment at `start_frame` of `video` under
  // `spec`. This is the unit the cost model charges for.
  Output Process(const video::Video& video, int start_frame,
                 const video::DecodeSpec& spec);

  // Processes an already-decoded segment batch {N,1,L,H,W}; returns one
  // Output per row (used by tests and batch pre-extraction).
  std::vector<Output> ProcessBatch(const tensor::Tensor& batch,
                                   const video::DecodeSpec& spec);

  int feature_dim() const { return opts_.model.feature_dim; }
  bool model_reuse() const { return model_reuse_; }
  bool trained() const { return trained_; }

  // Marks the APFG as trained after loading checkpointed weights.
  void MarkTrained() { trained_ = true; }

  // Decision threshold on the classifier's action probability. Default 0.5;
  // the query planner calibrates it on the validation split to maximize F1
  // (recall-starved thresholds are the main failure mode when actions are
  // rare).
  float decision_threshold() const { return decision_threshold_; }
  void set_decision_threshold(float t) { decision_threshold_ = t; }

  // Per-configuration threshold override, calibrated by the configuration
  // planner while profiling (§4.2): a single reused model is systematically
  // over-confident on out-of-distribution fast configurations, so each
  // decode shape gets its own operating point.
  void SetSpecThreshold(const video::DecodeSpec& spec, float threshold);
  float ThresholdFor(const video::DecodeSpec& spec) const;

  // The model that serves `spec` (reuse mode: always the shared model).
  R3dLite* ModelFor(const video::DecodeSpec& spec);

  // Routes every model (shared + per-length ensemble members) through `ctx`;
  // nullptr follows the process-wide tensor::GlobalComputeContext(). Models
  // trained after this call inherit the same context.
  void SetComputeContext(const tensor::ComputeContext* ctx);

 private:
  common::Status TrainOne(R3dLite* model,
                          const std::vector<const video::Video*>& videos,
                          const std::vector<video::ActionClass>& targets,
                          const std::vector<video::DecodeSpec>& specs,
                          ApfgTrainStats* stats);

  static uint32_t SpecKey(const video::DecodeSpec& spec) {
    return (static_cast<uint32_t>(spec.resolution_px) << 16) |
           (static_cast<uint32_t>(spec.segment_length) << 8) |
           static_cast<uint32_t>(spec.sampling_rate);
  }

  ApfgTrainOptions opts_;
  const tensor::ComputeContext* compute_ctx_ = nullptr;
  bool model_reuse_;
  bool trained_ = false;
  float decision_threshold_ = 0.5f;
  std::map<uint32_t, float> spec_thresholds_;
  common::Rng rng_;
  std::unique_ptr<R3dLite> shared_model_;
  std::map<int, std::unique_ptr<R3dLite>> per_length_models_;
};

}  // namespace zeus::apfg

#endif  // ZEUS_APFG_APFG_H_
