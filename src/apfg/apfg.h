#ifndef ZEUS_APFG_APFG_H_
#define ZEUS_APFG_APFG_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "apfg/r3d.h"
#include "common/rng.h"
#include "common/status.h"
#include "tensor/gemm.h"
#include "video/dataset.h"
#include "video/decoder.h"

namespace zeus::apfg {

// Training knobs for the APFG's supervised fine-tuning stage.
struct ApfgTrainOptions {
  int epochs = 16;
  int batch_size = 16;
  float learning_rate = 3e-3f;
  double neg_per_pos = 1.5;
  // Stddev of train-time Gaussian pixel noise, in standardized input units.
  // Regularizes against the per-video background statistics that a small
  // training corpus would otherwise let the classifier memorize.
  float augment_noise = 0.15f;
  // Cap on examples contributed by each non-primary decode spec in the
  // training mixture (the primary spec is uncapped).
  int max_aux_examples = 256;
  R3dLite::Options model;
};

struct ApfgTrainStats {
  float final_loss = 0.0f;
  float train_accuracy = 0.0f;
  int num_examples = 0;
  double train_seconds = 0.0;
};

// Adaptive Proxy Feature Generator (§3). A collection of action recognition
// models that generate ProxyFeatures for segments decoded under any
// configuration. Two operating modes mirror §5 "Model reuse":
//   - reuse (default): one R3dLite trained on the most accurate
//     configuration processes every configuration;
//   - ensemble: one model per segment-length bucket, each trained on
//     segments of that shape.
class Apfg {
 public:
  Apfg(const ApfgTrainOptions& opts, bool model_reuse, common::Rng* rng);

  // Trains on the given videos for the target action classes. `best_spec`
  // is the most accurate configuration's decode parameters (highest
  // resolution, densest sampling). In ensemble mode, `all_specs` supplies
  // one spec per model bucket.
  common::Status Train(const std::vector<const video::Video*>& videos,
                       const std::vector<video::ActionClass>& targets,
                       const video::DecodeSpec& best_spec,
                       const std::vector<video::DecodeSpec>& all_specs,
                       ApfgTrainStats* stats);

  // Output of one APFG invocation on one segment.
  struct Output {
    tensor::Tensor feature;  // {feature_dim}
    int prediction = 0;      // 1 = ACTION
    float action_prob = 0.5f;
  };

  // Decodes + processes the segment at `start_frame` of `video` under
  // `spec`. This is the unit the cost model charges for.
  Output Process(const video::Video& video, int start_frame,
                 const video::DecodeSpec& spec);

  // Processes an already-decoded segment batch {N,1,L,H,W}; returns one
  // Output per row (used by tests and batch pre-extraction).
  std::vector<Output> ProcessBatch(const tensor::Tensor& batch,
                                   const video::DecodeSpec& spec);

  int feature_dim() const { return opts_.model.feature_dim; }
  bool model_reuse() const { return model_reuse_; }
  bool trained() const { return trained_; }

  // Marks the APFG as trained after loading checkpointed weights.
  void MarkTrained() { trained_ = true; }

  // Decision threshold on the classifier's action probability. Default 0.5;
  // the query planner calibrates it on the validation split to maximize F1
  // (recall-starved thresholds are the main failure mode when actions are
  // rare).
  float decision_threshold() const { return decision_threshold_; }
  void set_decision_threshold(float t) { decision_threshold_ = t; }

  // Per-configuration threshold override, calibrated by the configuration
  // planner while profiling (§4.2): a single reused model is systematically
  // over-confident on out-of-distribution fast configurations, so each
  // decode shape gets its own operating point.
  void SetSpecThreshold(const video::DecodeSpec& spec, float threshold);
  float ThresholdFor(const video::DecodeSpec& spec) const;

  // The model that serves `spec` (reuse mode: always the shared model).
  R3dLite* ModelFor(const video::DecodeSpec& spec);

  // Routes every model (shared + per-length ensemble members) through `ctx`;
  // nullptr follows the process-wide tensor::GlobalComputeContext(). Models
  // trained after this call inherit the same context. Resets any int8
  // validation state (models revalidate against the new base context).
  void SetComputeContext(const tensor::ComputeContext* ctx);

  // Maximum action-probability drift a model may show on its first int8
  // batch (vs the same batch in fp32) and still be switched to int8
  // inference. The kernel-level error bound (see tensor_ops.h) keeps
  // pre-softmax drift well under this for the R3dLite depth; the check
  // guards against pathological weight/activation ranges per model.
  static constexpr float kInt8ScoreTolerance = 0.05f;

  // Opts inference into the int8 GEMM path (tensor::ComputePath::kInt8).
  // Validation is lazy and per model: the first ProcessBatch that reaches a
  // model runs the batch in both fp32 and int8 and compares action
  // probabilities; within kInt8ScoreTolerance the model switches to int8
  // permanently, otherwise it logs a warning and stays fp32. Training is
  // unaffected either way (layers run train-mode forward/backward in fp32).
  // Thread-safe against concurrent ProcessBatch calls. Disabling restores
  // every model to the base compute context.
  void EnableInt8Inference(bool enable = true);
  bool int8_inference_enabled() const { return int8_enabled_; }

 private:
  enum class Int8State { kActive, kFallback };
  common::Status TrainOne(R3dLite* model,
                          const std::vector<const video::Video*>& videos,
                          const std::vector<video::ActionClass>& targets,
                          const std::vector<video::DecodeSpec>& specs,
                          ApfgTrainStats* stats);

  // Builds per-row Outputs from a model forward pass.
  std::vector<Output> OutputsFrom(const R3dLite::Output& out,
                                  const video::DecodeSpec& spec) const;

  // First int8 use of `model`: validates int8 vs fp32 on `batch` under the
  // unique lock, switches the model or records the fallback, and returns
  // the batch's outputs (int8 if validation passed, fp32 otherwise).
  std::vector<Output> ValidateInt8AndProcess(R3dLite* model,
                                             const tensor::Tensor& batch,
                                             const video::DecodeSpec& spec);

  static uint32_t SpecKey(const video::DecodeSpec& spec) {
    return (static_cast<uint32_t>(spec.resolution_px) << 16) |
           (static_cast<uint32_t>(spec.segment_length) << 8) |
           static_cast<uint32_t>(spec.sampling_rate);
  }

  ApfgTrainOptions opts_;
  const tensor::ComputeContext* compute_ctx_ = nullptr;
  bool model_reuse_;
  bool trained_ = false;
  float decision_threshold_ = 0.5f;
  std::map<uint32_t, float> spec_thresholds_;
  common::Rng rng_;
  std::unique_ptr<R3dLite> shared_model_;
  std::map<int, std::unique_ptr<R3dLite>> per_length_models_;

  // Int8 opt-in state. int8_mu_ is held shared across any inference while
  // int8 mode is on (so a first-use validation, which flips a model's
  // compute context under the unique lock, can never race a concurrent
  // forward pass) and unique during validation / mode changes.
  bool int8_enabled_ = false;
  mutable std::shared_mutex int8_mu_;
  std::map<R3dLite*, Int8State> int8_states_;
  tensor::ComputeContext int8_ctx_;
};

}  // namespace zeus::apfg

#endif  // ZEUS_APFG_APFG_H_
