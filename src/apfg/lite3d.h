#ifndef ZEUS_APFG_LITE3D_H_
#define ZEUS_APFG_LITE3D_H_

#include "common/rng.h"
#include "nn/sequential.h"

namespace zeus::apfg {

// Deliberately lightweight 3-D filter used by the Segment-PP baseline: a
// single aggressive-stride conv block. It is cheap (the point of a
// probabilistic predicate) but has too little capacity to model complex
// action signatures, reproducing the paper's finding that Segment-PP
// collapses on hard classes (§6.2).
class LiteSegmentNet {
 public:
  struct Options {
    int in_channels = 1;
    int channels = 4;
    int num_classes = 2;
  };

  LiteSegmentNet(const Options& opts, common::Rng* rng);

  tensor::Tensor Logits(const tensor::Tensor& segment_batch, bool train);
  void Backward(const tensor::Tensor& grad_logits);
  std::vector<nn::Parameter*> Parameters() { return net_.Parameters(); }
  void SetComputeContext(const tensor::ComputeContext* ctx) {
    net_.SetComputeContext(ctx);
  }

 private:
  nn::Sequential net_;
};

}  // namespace zeus::apfg

#endif  // ZEUS_APFG_LITE3D_H_
