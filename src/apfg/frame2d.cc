#include "apfg/frame2d.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace zeus::apfg {

Frame2dNet::Frame2dNet(const Options& opts, common::Rng* rng) {
  const int c = opts.base_channels;
  nn::Conv2d::Options conv;
  conv.kernel = {3, 3};
  conv.stride = {2, 2};
  conv.padding = {1, 1};
  net_.Emplace<nn::Conv2d>(opts.in_channels, c, conv, rng);
  net_.Emplace<nn::ReLU>();
  net_.Emplace<nn::Conv2d>(c, 2 * c, conv, rng);
  net_.Emplace<nn::ReLU>();
  net_.Emplace<nn::GlobalAvgPool>();
  net_.Emplace<nn::Linear>(2 * c, 2 * c, rng);
  net_.Emplace<nn::ReLU>();
  net_.Emplace<nn::Linear>(2 * c, opts.num_classes, rng);
}

tensor::Tensor Frame2dNet::Logits(const tensor::Tensor& frame_batch,
                                  bool train) {
  return net_.Forward(frame_batch, train);
}

void Frame2dNet::Backward(const tensor::Tensor& grad_logits) {
  net_.Backward(grad_logits);
}

}  // namespace zeus::apfg
