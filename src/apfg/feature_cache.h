#ifndef ZEUS_APFG_FEATURE_CACHE_H_
#define ZEUS_APFG_FEATURE_CACHE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "apfg/apfg.h"
#include "common/thread_pool.h"

namespace zeus::apfg {

// Memoizes APFG outputs keyed by (video id, start frame, decode spec) — the
// "Pre-Processing" optimization of §5: during RL training the agent
// repeatedly revisits the same (segment, configuration) pairs across
// episodes, so features are computed once and replayed from the cache.
class FeatureCache {
 public:
  explicit FeatureCache(Apfg* apfg) : apfg_(apfg) {}

  FeatureCache(const FeatureCache&) = delete;
  FeatureCache& operator=(const FeatureCache&) = delete;

  // Returns the (possibly cached) APFG output for this invocation.
  //
  // Thread-safe: the map is mutex-guarded (references stay valid —
  // unordered_map never invalidates them on insert) while the miss-path
  // APFG inference runs outside the lock; concurrent misses on one key
  // compute redundantly and the first insert wins. APFG inference is
  // deterministic, so results are identical to serial access — this is what
  // lets BatchedExecutor step its environments in parallel.
  const Apfg::Output& Get(const video::Video& video, int start_frame,
                          const video::DecodeSpec& spec);

  // Eagerly computes features for every position a traversal could visit:
  // all starts that are multiples of `alignment`. Bounded by `max_entries`.
  void Precompute(const video::Video& video, const video::DecodeSpec& spec,
                  int alignment, size_t max_entries = 1 << 20);

  // Parallel batch pre-extraction (§5: the paper batches feature
  // extraction across GPUs to cut RL training time; here across CPU
  // threads). APFG inference is read-only, so workers share the model;
  // results are inserted under a single-threaded merge.
  void PrecomputeParallel(const std::vector<const video::Video*>& videos,
                          const video::DecodeSpec& spec, int alignment,
                          common::ThreadPool* pool);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  // NOT part of the concurrent contract: clearing destroys entries other
  // threads may still hold Get() references to. Callers must quiesce all
  // readers first.
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
  }

 private:
  static uint64_t Key(const video::Video& video, int start_frame,
                      const video::DecodeSpec& spec);

  Apfg* apfg_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Apfg::Output> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace zeus::apfg

#endif  // ZEUS_APFG_FEATURE_CACHE_H_
