#ifndef ZEUS_APFG_FEATURE_CACHE_H_
#define ZEUS_APFG_FEATURE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "apfg/apfg.h"
#include "common/thread_pool.h"

namespace zeus::apfg {

// Memoizes APFG outputs keyed by (video id, start frame, decode spec) — the
// "Pre-Processing" optimization of §5: during RL training the agent
// repeatedly revisits the same (segment, configuration) pairs across
// episodes, so features are computed once and replayed from the cache.
//
// Window awareness (live streams): the key also carries the number of
// source frames actually available to the decode — min(covered frames,
// video length - start). SegmentDecoder clamps reads past the video end to
// the last frame, so a tail segment's features CHANGE when the video grows
// past it; baking the clamp into the key makes such stale entries simply
// unreachable (the grown video hashes to a new key) with no invalidation
// protocol. Interior segments keep their keys, which is why an appended
// window only pays extraction past the previous high-water mark.
//
// Retention (streams run indefinitely): the cache is LRU-bounded by
// `max_entries`, and InvalidateBefore() drops every entry that lies
// entirely before a retention horizon. Values are handed out as
// shared_ptr<const Output>, so eviction never dangles a reader that is
// still stepping with an old entry.
class FeatureCache {
 public:
  // Default LRU bound. Generous enough that stored-video training and
  // serving never evict (a full training run touches ~10^4-10^5 keys);
  // what it bounds is the indefinite-stream case.
  static constexpr size_t kDefaultMaxEntries = size_t{1} << 20;

  explicit FeatureCache(Apfg* apfg, size_t max_entries = kDefaultMaxEntries)
      : apfg_(apfg), max_entries_(max_entries) {}

  FeatureCache(const FeatureCache&) = delete;
  FeatureCache& operator=(const FeatureCache&) = delete;

  // Returns the (possibly cached) APFG output for this invocation. Never
  // null.
  //
  // Thread-safe: the map is mutex-guarded while the miss-path APFG
  // inference runs outside the lock; concurrent misses on one key compute
  // redundantly and the first insert wins. APFG inference is
  // deterministic, so results are identical to serial access — this is
  // what lets BatchedExecutor step its environments in parallel.
  std::shared_ptr<const Apfg::Output> Get(const video::Video& video,
                                          int start_frame,
                                          const video::DecodeSpec& spec);

  // Eagerly computes features for every position a traversal could visit:
  // all starts that are multiples of `alignment`. Bounded by `max_entries`.
  void Precompute(const video::Video& video, const video::DecodeSpec& spec,
                  int alignment, size_t max_entries = 1 << 20);

  // Parallel batch pre-extraction (§5: the paper batches feature
  // extraction across GPUs to cut RL training time; here across CPU
  // threads). APFG inference is read-only, so workers share the model;
  // results are inserted under a single-threaded merge.
  void PrecomputeParallel(const std::vector<const video::Video*>& videos,
                          const video::DecodeSpec& spec, int alignment,
                          common::ThreadPool* pool);

  // Drops every entry whose segment lies entirely before source frame
  // `frame` (start + available <= frame), across all videos — the stream
  // retention bound: once subscribers' windows have moved past a frame,
  // features behind it will never be asked for again. Returns the number
  // of entries dropped (also counted as evictions).
  size_t InvalidateBefore(int frame);

  // Adjusts the LRU bound; evicts immediately if over. 0 = unbounded.
  void set_max_entries(size_t n);
  size_t max_entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_entries_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
    lru_.clear();
  }

 private:
  struct Key {
    int video_id = 0;
    int start = 0;
    int avail = 0;  // source frames available to the decode (clamp-aware)
    int res = 0;
    int len = 0;
    int rate = 0;
    bool operator==(const Key& o) const {
      return video_id == o.video_id && start == o.start && avail == o.avail &&
             res == o.res && len == o.len && rate == o.rate;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    std::shared_ptr<const Apfg::Output> out;
    std::list<Key>::iterator pos;  // position in lru_
  };

  static Key MakeKey(const video::Video& video, int start_frame,
                     const video::DecodeSpec& spec);

  // Inserts (or refreshes) under mu_; returns the resident value.
  std::shared_ptr<const Apfg::Output> InsertLocked(
      const Key& key, std::shared_ptr<const Apfg::Output> out);
  void EvictOverCapacityLocked();

  Apfg* apfg_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> cache_;
  std::list<Key> lru_;  // front = most recently used
  size_t max_entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace zeus::apfg

#endif  // ZEUS_APFG_FEATURE_CACHE_H_
