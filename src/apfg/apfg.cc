#include "apfg/apfg.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <shared_mutex>

#include "apfg/segment_sampler.h"
#include "common/logging.h"
#include "common/timer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"

namespace zeus::apfg {

Apfg::Apfg(const ApfgTrainOptions& opts, bool model_reuse, common::Rng* rng)
    : opts_(opts), model_reuse_(model_reuse), rng_(rng->Fork()) {
  shared_model_ = std::make_unique<R3dLite>(opts_.model, &rng_);
}

void Apfg::SetSpecThreshold(const video::DecodeSpec& spec, float threshold) {
  spec_thresholds_[SpecKey(spec)] = threshold;
}

float Apfg::ThresholdFor(const video::DecodeSpec& spec) const {
  auto it = spec_thresholds_.find(SpecKey(spec));
  return it == spec_thresholds_.end() ? decision_threshold_ : it->second;
}

void Apfg::SetComputeContext(const tensor::ComputeContext* ctx) {
  std::unique_lock<std::shared_mutex> lock(int8_mu_);
  compute_ctx_ = ctx;
  shared_model_->SetComputeContext(ctx);
  for (auto& [len, model] : per_length_models_) model->SetComputeContext(ctx);
  // Every model is back on the base context; int8-active ones revalidate on
  // their next batch.
  int8_states_.clear();
}

void Apfg::EnableInt8Inference(bool enable) {
  std::unique_lock<std::shared_mutex> lock(int8_mu_);
  if (int8_enabled_ == enable) return;
  int8_enabled_ = enable;
  if (!enable) {
    shared_model_->SetComputeContext(compute_ctx_);
    for (auto& [len, model] : per_length_models_) {
      model->SetComputeContext(compute_ctx_);
    }
    int8_states_.clear();
  }
}

R3dLite* Apfg::ModelFor(const video::DecodeSpec& spec) {
  if (model_reuse_ || per_length_models_.empty()) return shared_model_.get();
  auto it = per_length_models_.find(spec.segment_length);
  if (it != per_length_models_.end()) return it->second.get();
  return shared_model_.get();
}

common::Status Apfg::TrainOne(R3dLite* model,
                              const std::vector<const video::Video*>& videos,
                              const std::vector<video::ActionClass>& targets,
                              const std::vector<video::DecodeSpec>& specs,
                              ApfgTrainStats* stats) {
  // One example pool per spec; a single shared model is trained on the
  // mixture so that it serves every configuration of the space (the model
  // reuse strategy of §5: the most accurate configuration dominates the
  // mixture, faster ones appear enough to keep their inputs in
  // distribution).
  struct TaggedExample {
    LabeledSegment ex;
    size_t spec_idx;
  };
  std::vector<TaggedExample> examples;
  for (size_t si = 0; si < specs.size(); ++si) {
    auto pool = SampleSegments(videos, targets, specs[si], &rng_,
                               opts_.neg_per_pos);
    // The primary spec keeps its full pool; auxiliary specs are capped so
    // that widening the mixture (one spec per knob value) does not blow up
    // the epoch cost.
    if (si != 0 && static_cast<int>(pool.size()) > opts_.max_aux_examples) {
      pool.resize(static_cast<size_t>(opts_.max_aux_examples));
    }
    for (const LabeledSegment& ex : pool) examples.push_back({ex, si});
  }
  if (examples.empty()) {
    return common::Status::FailedPrecondition(
        "no training segments for APFG (videos too short?)");
  }
  nn::Adam optimizer(model->Parameters(), opts_.learning_rate);
  float last_loss = 0.0f;
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    rng_.Shuffle(&examples);
    // Batches must be shape-homogeneous: bucket the shuffled order by spec.
    for (size_t si = 0; si < specs.size(); ++si) {
      std::vector<const TaggedExample*> bucket;
      for (const TaggedExample& te : examples) {
        if (te.spec_idx == si) bucket.push_back(&te);
      }
      for (size_t off = 0; off < bucket.size();
           off += static_cast<size_t>(opts_.batch_size)) {
        size_t n = std::min(static_cast<size_t>(opts_.batch_size),
                            bucket.size() - off);
        std::vector<tensor::Tensor> segs;
        std::vector<int> labels;
        segs.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          const LabeledSegment& ex = bucket[off + i]->ex;
          segs.push_back(video::SegmentDecoder::Decode(
              *videos[static_cast<size_t>(ex.video_idx)], ex.start_frame,
              specs[si]));
          labels.push_back(ex.label);
        }
        tensor::Tensor batch = tensor::Stack(segs);
        if (opts_.augment_noise > 0.0f) {
          float* p = batch.data();
          for (size_t i = 0; i < batch.size(); ++i) {
            p[i] += opts_.augment_noise *
                    static_cast<float>(rng_.NextGaussian());
          }
        }
        tensor::Tensor logits = model->Logits(batch, /*train=*/true);
        nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
        model->Backward(loss.grad);
        optimizer.Step();
        last_loss = loss.loss;
      }
    }
  }
  // Final training accuracy on the primary spec (capped subset).
  size_t eval_n = 0;
  std::vector<tensor::Tensor> segs;
  std::vector<int> labels;
  for (const TaggedExample& te : examples) {
    if (te.spec_idx != 0 || eval_n >= 128) continue;
    segs.push_back(video::SegmentDecoder::Decode(
        *videos[static_cast<size_t>(te.ex.video_idx)], te.ex.start_frame,
        specs[0]));
    labels.push_back(te.ex.label);
    ++eval_n;
  }
  tensor::Tensor logits = model->Logits(tensor::Stack(segs), false);
  if (stats != nullptr) {
    stats->final_loss = last_loss;
    stats->train_accuracy = nn::Accuracy(logits, labels);
    stats->num_examples = static_cast<int>(examples.size());
  }
  return common::Status::Ok();
}

common::Status Apfg::Train(const std::vector<const video::Video*>& videos,
                           const std::vector<video::ActionClass>& targets,
                           const video::DecodeSpec& best_spec,
                           const std::vector<video::DecodeSpec>& all_specs,
                           ApfgTrainStats* stats) {
  if (videos.empty()) {
    return common::Status::InvalidArgument("no training videos");
  }
  common::WallTimer timer;
  // Training mixture for the shared model: the most accurate configuration
  // first (it anchors the reported train accuracy), plus one spec per
  // distinct resolution (at the best length/rate) and one per distinct
  // sampling rate (at the best resolution/length). A single reused model
  // must stay in-distribution across the whole knob grid; training only on
  // grid corners leaves intermediate resolutions systematically
  // mis-calibrated.
  std::vector<video::DecodeSpec> mixture{best_spec};
  auto differs = [&](const video::DecodeSpec& s) {
    for (const video::DecodeSpec& m : mixture) {
      if (m.resolution_px == s.resolution_px &&
          m.segment_length == s.segment_length &&
          m.sampling_rate == s.sampling_rate) {
        return false;
      }
    }
    return true;
  };
  for (const video::DecodeSpec& s : all_specs) {
    if (s.segment_length == best_spec.segment_length &&
        s.sampling_rate == best_spec.sampling_rate && differs(s)) {
      mixture.push_back(s);
    }
  }
  for (const video::DecodeSpec& s : all_specs) {
    if (s.segment_length == best_spec.segment_length &&
        s.resolution_px == best_spec.resolution_px && differs(s)) {
      mixture.push_back(s);
    }
  }
  ZEUS_RETURN_IF_ERROR(
      TrainOne(shared_model_.get(), videos, targets, mixture, stats));
  if (!model_reuse_) {
    // Ensemble mode: additionally train one model per distinct segment
    // length among the provided specs.
    for (const video::DecodeSpec& spec : all_specs) {
      if (spec.segment_length == best_spec.segment_length) continue;
      if (per_length_models_.count(spec.segment_length)) continue;
      auto model = std::make_unique<R3dLite>(opts_.model, &rng_);
      model->SetComputeContext(compute_ctx_);
      ApfgTrainStats ignored;
      ZEUS_RETURN_IF_ERROR(
          TrainOne(model.get(), videos, targets, {spec}, &ignored));
      per_length_models_[spec.segment_length] = std::move(model);
    }
  }
  if (stats != nullptr) stats->train_seconds = timer.ElapsedSeconds();
  trained_ = true;
  return common::Status::Ok();
}

Apfg::Output Apfg::Process(const video::Video& video, int start_frame,
                           const video::DecodeSpec& spec) {
  tensor::Tensor segment = video::SegmentDecoder::Decode(video, start_frame, spec);
  std::vector<int> dims = segment.shape();
  dims.insert(dims.begin(), 1);  // add batch dim
  tensor::Tensor batch = segment.Reshape(dims);
  return ProcessBatch(batch, spec)[0];
}

std::vector<Apfg::Output> Apfg::OutputsFrom(const R3dLite::Output& out,
                                            const video::DecodeSpec& spec) const {
  tensor::Tensor probs = tensor::SoftmaxRows(out.logits);
  const int n = out.logits.dim(0);
  const int fd = opts_.model.feature_dim;
  std::vector<Output> results(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Output& r = results[static_cast<size_t>(i)];
    r.feature = tensor::Tensor({fd});
    std::copy(out.features.data() + static_cast<size_t>(i) * fd,
              out.features.data() + static_cast<size_t>(i + 1) * fd,
              r.feature.data());
    r.action_prob = probs[static_cast<size_t>(i) * 2 + 1];
    r.prediction = r.action_prob > ThresholdFor(spec) ? 1 : 0;
  }
  return results;
}

std::vector<Apfg::Output> Apfg::ValidateInt8AndProcess(
    R3dLite* model, const tensor::Tensor& batch,
    const video::DecodeSpec& spec) {
  std::unique_lock<std::shared_mutex> lock(int8_mu_);
  if (int8_states_.count(model) != 0 || !int8_enabled_) {
    // Another thread validated (or the mode flipped) while we waited for
    // the lock; the model's context is already whatever it should be.
    return OutputsFrom(model->FeaturesAndLogits(batch), spec);
  }
  R3dLite::Output fp32 = model->FeaturesAndLogits(batch);
  int8_ctx_ = compute_ctx_ != nullptr ? *compute_ctx_
                                      : tensor::GlobalComputeContext();
  int8_ctx_.path = tensor::ComputePath::kInt8;
  model->SetComputeContext(&int8_ctx_);
  R3dLite::Output int8 = model->FeaturesAndLogits(batch);
  tensor::Tensor pf = tensor::SoftmaxRows(fp32.logits);
  tensor::Tensor pq = tensor::SoftmaxRows(int8.logits);
  float drift = 0.0f;
  for (int i = 0; i < fp32.logits.dim(0); ++i) {
    drift = std::max(drift, std::abs(pf[static_cast<size_t>(i) * 2 + 1] -
                                     pq[static_cast<size_t>(i) * 2 + 1]));
  }
  if (drift <= kInt8ScoreTolerance) {
    int8_states_[model] = Int8State::kActive;
    ZEUS_LOG(Info) << "APFG int8 inference validated (max action-prob drift "
                   << drift << " <= " << kInt8ScoreTolerance << ")";
    return OutputsFrom(int8, spec);
  }
  model->SetComputeContext(compute_ctx_);
  int8_states_[model] = Int8State::kFallback;
  ZEUS_LOG(Warning) << "APFG int8 validation failed: max action-prob drift "
                    << drift << " > " << kInt8ScoreTolerance
                    << "; model stays fp32";
  return OutputsFrom(fp32, spec);
}

std::vector<Apfg::Output> Apfg::ProcessBatch(const tensor::Tensor& batch,
                                             const video::DecodeSpec& spec) {
  R3dLite* model = ModelFor(spec);
  if (int8_enabled_) {
    // Shared lock across the forward pass: a concurrent first-use
    // validation takes the unique lock to flip a model's compute context,
    // so it can never do so mid-inference here.
    std::shared_lock<std::shared_mutex> lock(int8_mu_);
    if (int8_states_.count(model) == 0) {
      lock.unlock();
      return ValidateInt8AndProcess(model, batch, spec);
    }
    // kActive models already point at int8_ctx_; kFallback ones stayed on
    // the base context. Either way the plain forward is correct.
    return OutputsFrom(model->FeaturesAndLogits(batch), spec);
  }
  return OutputsFrom(model->FeaturesAndLogits(batch), spec);
}

}  // namespace zeus::apfg
