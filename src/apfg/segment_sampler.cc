#include "apfg/segment_sampler.h"

#include <algorithm>

namespace zeus::apfg {

int SegmentLabel(const video::Video& video, int start_frame, int num_frames,
                 const std::vector<video::ActionClass>& targets,
                 double iou_threshold) {
  int end = std::min(video.num_frames(), start_frame + num_frames);
  int begin = std::max(0, start_frame);
  if (end <= begin) return 0;
  int hits = 0;
  for (int f = begin; f < end; ++f) {
    if (video.IsActionAny(f, targets)) ++hits;
  }
  return (static_cast<double>(hits) / (end - begin)) > iou_threshold ? 1 : 0;
}

std::vector<LabeledSegment> SampleSegments(
    const std::vector<const video::Video*>& videos,
    const std::vector<video::ActionClass>& targets,
    const video::DecodeSpec& spec, common::Rng* rng, double neg_per_pos) {
  std::vector<LabeledSegment> positives, hard_negatives, negatives;
  const int covered = video::SegmentDecoder::CoveredFrames(spec);
  const int stride = std::max(1, covered / 2);
  for (size_t vi = 0; vi < videos.size(); ++vi) {
    const video::Video& v = *videos[vi];
    for (int start = 0; start + covered <= v.num_frames(); start += stride) {
      LabeledSegment ex;
      ex.video_idx = static_cast<int>(vi);
      ex.start_frame = start;
      ex.label = SegmentLabel(v, start, covered, targets);
      if (ex.label) {
        positives.push_back(ex);
        continue;
      }
      // Hard negatives: windows overlapping an action of a *different*
      // class. These are the decoys that cost precision at query time
      // (e.g. CrossLeft windows for a CrossRight query), so the sampler
      // always keeps them instead of leaving them to the random draw.
      bool other_action = false;
      int end = std::min(v.num_frames(), start + covered);
      for (int f = start; f < end && !other_action; ++f) {
        video::ActionClass cls = v.Label(f);
        other_action = cls != video::ActionClass::kNone &&
                       std::find(targets.begin(), targets.end(), cls) ==
                           targets.end();
      }
      (other_action ? hard_negatives : negatives).push_back(ex);
    }
  }
  rng->Shuffle(&negatives);
  size_t keep = std::min(
      negatives.size(),
      static_cast<size_t>(neg_per_pos * static_cast<double>(positives.size())) +
          8);
  negatives.resize(keep);
  positives.insert(positives.end(), hard_negatives.begin(),
                   hard_negatives.end());
  positives.insert(positives.end(), negatives.begin(), negatives.end());
  rng->Shuffle(&positives);
  return positives;
}

std::vector<LabeledSegment> SampleFrames(
    const std::vector<const video::Video*>& videos,
    const std::vector<video::ActionClass>& targets, int stride,
    common::Rng* rng, double neg_per_pos) {
  std::vector<LabeledSegment> positives, negatives;
  for (size_t vi = 0; vi < videos.size(); ++vi) {
    const video::Video& v = *videos[vi];
    for (int f = 0; f < v.num_frames(); f += stride) {
      LabeledSegment ex;
      ex.video_idx = static_cast<int>(vi);
      ex.start_frame = f;
      ex.label = v.IsActionAny(f, targets) ? 1 : 0;
      (ex.label ? positives : negatives).push_back(ex);
    }
  }
  rng->Shuffle(&negatives);
  size_t keep = std::min(
      negatives.size(),
      static_cast<size_t>(neg_per_pos * static_cast<double>(positives.size())) +
          8);
  negatives.resize(keep);
  positives.insert(positives.end(), negatives.begin(), negatives.end());
  rng->Shuffle(&positives);
  return positives;
}

}  // namespace zeus::apfg
