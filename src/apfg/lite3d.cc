#include "apfg/lite3d.h"

#include "nn/activations.h"
#include "nn/conv3d.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace zeus::apfg {

LiteSegmentNet::LiteSegmentNet(const Options& opts, common::Rng* rng) {
  nn::Conv3d::Options conv;
  conv.kernel = {3, 3, 3};
  conv.stride = {2, 4, 4};
  conv.padding = {1, 1, 1};
  net_.Emplace<nn::Conv3d>(opts.in_channels, opts.channels, conv, rng);
  net_.Emplace<nn::ReLU>();
  net_.Emplace<nn::GlobalAvgPool>();
  net_.Emplace<nn::Linear>(opts.channels, opts.num_classes, rng);
}

tensor::Tensor LiteSegmentNet::Logits(const tensor::Tensor& segment_batch,
                                      bool train) {
  return net_.Forward(segment_batch, train);
}

void LiteSegmentNet::Backward(const tensor::Tensor& grad_logits) {
  net_.Backward(grad_logits);
}

}  // namespace zeus::apfg
