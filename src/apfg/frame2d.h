#ifndef ZEUS_APFG_FRAME2D_H_
#define ZEUS_APFG_FRAME2D_H_

#include "common/rng.h"
#include "nn/sequential.h"

namespace zeus::apfg {

// Per-frame 2-D CNN classifier used by the Frame-PP baseline (the 2D
// ResNet-18 analogue). Input {N, 1, H, W}, output binary logits. Roughly
// 5.9x cheaper per invocation than R3dLite at the same resolution, matching
// the paper's measured 2D/3D cost ratio (§2, §6.2).
class Frame2dNet {
 public:
  struct Options {
    int in_channels = 1;
    int base_channels = 8;
    int num_classes = 2;
  };

  Frame2dNet(const Options& opts, common::Rng* rng);

  tensor::Tensor Logits(const tensor::Tensor& frame_batch, bool train);
  void Backward(const tensor::Tensor& grad_logits);
  std::vector<nn::Parameter*> Parameters() { return net_.Parameters(); }
  nn::Sequential& net() { return net_; }
  void SetComputeContext(const tensor::ComputeContext* ctx) {
    net_.SetComputeContext(ctx);
  }

 private:
  nn::Sequential net_;
};

}  // namespace zeus::apfg

#endif  // ZEUS_APFG_FRAME2D_H_
