#ifndef ZEUS_CORE_METRICS_H_
#define ZEUS_CORE_METRICS_H_

#include <cstdint>
#include <vector>

#include "video/video.h"

namespace zeus::core {

// A per-frame binary prediction mask for one video (1 = predicted action).
using FrameMask = std::vector<uint8_t>;

// Evaluation protocol of §2.1: the video is tiled into fixed-length
// evaluation segments; a segment is a ground-truth positive when the action
// covers more than `iou_threshold` of it (IoU of the frame-label run against
// the segment window), and likewise for predictions.
struct EvalOptions {
  int eval_segment_frames = 16;
  double iou_threshold = 0.5;
};

struct PrfMetrics {
  long tp = 0, fp = 0, fn = 0, tn = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;

  void Finalize();
};

// Segment-level precision/recall/F1 of a predicted mask against the oracle
// labels of one video.
PrfMetrics EvaluateVideo(const video::Video& video,
                         const std::vector<video::ActionClass>& targets,
                         const FrameMask& mask, const EvalOptions& opts);

// Pooled metrics over a set of videos (counts are summed before computing
// precision/recall, the standard micro-average).
PrfMetrics EvaluateVideos(const std::vector<const video::Video*>& videos,
                          const std::vector<video::ActionClass>& targets,
                          const std::vector<FrameMask>& masks,
                          const EvalOptions& opts);

// Frame-level F1 of a mask restricted to [begin, end) — the window accuracy
// alpha' used by the aggregate reward (Alg. 2). Convention: a window with
// no ground-truth positives and no predicted positives scores 1.0.
double WindowAccuracy(const video::Video& video,
                      const std::vector<video::ActionClass>& targets,
                      const FrameMask& mask, int begin, int end);

// Converts a predicted mask into merged [start, end) intervals — the
// `segment_ids` a query returns.
std::vector<video::ActionInstance> MaskToInstances(const FrameMask& mask);

// Mean temporal IoU between each ground-truth instance and its
// best-overlapping predicted instance (localization quality diagnostic).
double MeanInstanceIou(const video::Video& video,
                       const std::vector<video::ActionClass>& targets,
                       const FrameMask& mask);

}  // namespace zeus::core

#endif  // ZEUS_CORE_METRICS_H_
