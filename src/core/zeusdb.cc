#include "core/zeusdb.h"

namespace zeus::core {

namespace {

engine::QueryEngine::Options FromPlannerOptions(
    QueryPlanner::Options planner_options) {
  engine::QueryEngine::Options opts;
  opts.planner = std::move(planner_options);
  return opts;
}

}  // namespace

ZeusDb::ZeusDb(QueryPlanner::Options planner_options)
    : engine_(FromPlannerOptions(std::move(planner_options))) {}

ZeusDb::ZeusDb(engine::QueryEngine::Options options)
    : engine_(std::move(options)) {}

common::Status ZeusDb::RegisterDataset(const std::string& name,
                                       video::SyntheticDataset dataset) {
  return engine_.RegisterDataset(name, std::move(dataset));
}

common::Result<ZeusDb::QueryResult> ZeusDb::Execute(
    const std::string& dataset_name, const std::string& sql) {
  return engine_.Execute(dataset_name, sql);
}

common::Result<ZeusDb::QueryResult> ZeusDb::Execute(
    const std::string& dataset_name, const ActionQuery& query) {
  return engine_.Execute(dataset_name, query);
}

common::Result<engine::QueryTicket> ZeusDb::Submit(
    const std::string& dataset_name, const std::string& sql) {
  return engine_.Submit(dataset_name, sql);
}

common::Result<engine::QueryTicket> ZeusDb::Submit(
    const std::string& dataset_name, const ActionQuery& query) {
  return engine_.Submit(dataset_name, query);
}

std::shared_ptr<QueryPlan> ZeusDb::CachedPlan(const std::string& dataset_name,
                                              const ActionQuery& query) const {
  return engine_.CachedPlan(dataset_name, query);
}

std::string ZeusDb::ExplainPlan(const QueryPlan& plan) {
  return engine::QueryEngine::ExplainPlan(plan);
}

}  // namespace zeus::core
