#include "core/zeusdb.h"

namespace zeus::core {

namespace {

engine::EngineGroup::Options FromPlannerOptions(
    QueryPlanner::Options planner_options) {
  engine::EngineGroup::Options opts;
  opts.engine.planner = std::move(planner_options);
  return opts;
}

engine::EngineGroup::Options FromEngineOptions(
    engine::QueryEngine::Options engine_options) {
  engine::EngineGroup::Options opts;
  opts.engine = std::move(engine_options);
  return opts;
}

}  // namespace

ZeusDb::ZeusDb(QueryPlanner::Options planner_options)
    : group_(FromPlannerOptions(std::move(planner_options))) {}

ZeusDb::ZeusDb(engine::QueryEngine::Options options)
    : group_(FromEngineOptions(std::move(options))) {}

ZeusDb::ZeusDb(Options options) : group_(std::move(options)) {}

common::Status ZeusDb::RegisterDataset(const std::string& name,
                                       video::SyntheticDataset dataset) {
  return group_.RegisterDataset(name, std::move(dataset));
}

common::Result<engine::EngineGroup::ResizeReport> ZeusDb::ResizeShards(
    int new_num_shards) {
  return group_.Resize(new_num_shards);
}

common::Result<ZeusDb::QueryResult> ZeusDb::Execute(
    const std::string& dataset_name, const std::string& sql) {
  return group_.Execute(dataset_name, sql);
}

common::Result<ZeusDb::QueryResult> ZeusDb::Execute(
    const std::string& dataset_name, const ActionQuery& query) {
  return group_.Execute(dataset_name, query);
}

common::Result<engine::QueryTicket> ZeusDb::Submit(
    const std::string& dataset_name, const std::string& sql) {
  return group_.Submit(dataset_name, sql);
}

common::Result<engine::QueryTicket> ZeusDb::Submit(
    const std::string& dataset_name, const ActionQuery& query) {
  return group_.Submit(dataset_name, query);
}

std::shared_ptr<QueryPlan> ZeusDb::CachedPlan(const std::string& dataset_name,
                                              const ActionQuery& query) const {
  return group_.CachedPlan(dataset_name, query);
}

std::string ZeusDb::ExplainPlan(const QueryPlan& plan) {
  return engine::QueryEngine::ExplainPlan(plan);
}

}  // namespace zeus::core
