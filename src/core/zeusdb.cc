#include "core/zeusdb.h"

#include "common/stringutil.h"
#include "common/timer.h"

namespace zeus::core {

ZeusDb::ZeusDb(QueryPlanner::Options planner_options)
    : planner_options_(std::move(planner_options)) {}

common::Status ZeusDb::RegisterDataset(const std::string& name,
                                       video::SyntheticDataset dataset) {
  if (datasets_.count(name)) {
    return common::Status::AlreadyExists("dataset '" + name +
                                         "' already registered");
  }
  datasets_[name] =
      std::make_unique<video::SyntheticDataset>(std::move(dataset));
  return common::Status::Ok();
}

const video::SyntheticDataset* ZeusDb::dataset(const std::string& name) const {
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second.get();
}

std::string ZeusDb::PlanKey(const std::string& dataset_name,
                            const ActionQuery& query) const {
  std::string classes;
  for (video::ActionClass cls : query.action_classes) {
    classes += video::ActionClassName(cls);
    classes += ',';
  }
  return common::Format("%s|%s|%.3f", dataset_name.c_str(), classes.c_str(),
                        query.accuracy_target);
}

const QueryPlan* ZeusDb::CachedPlan(const std::string& dataset_name,
                                    const ActionQuery& query) const {
  auto it = plans_.find(PlanKey(dataset_name, query));
  return it == plans_.end() ? nullptr : it->second.get();
}

common::Result<ZeusDb::QueryResult> ZeusDb::Execute(
    const std::string& dataset_name, const std::string& sql) {
  auto parsed = QueryParser::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  return Execute(dataset_name, parsed.value());
}

common::Result<ZeusDb::QueryResult> ZeusDb::Execute(
    const std::string& dataset_name, const ActionQuery& query) {
  const video::SyntheticDataset* ds = dataset(dataset_name);
  if (ds == nullptr) {
    return common::Status::NotFound("dataset '" + dataset_name +
                                    "' is not registered");
  }
  QueryResult out;
  out.query = query;

  // Plan (train) on first use; reuse cached plans afterwards.
  const std::string key = PlanKey(dataset_name, query);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    common::WallTimer plan_timer;
    QueryPlanner planner(ds, planner_options_);
    auto plan = planner.Plan(query);
    if (!plan.ok()) return plan.status();
    it = plans_
             .emplace(key,
                      std::make_unique<QueryPlan>(std::move(plan).value()))
             .first;
    out.plan_seconds = plan_timer.ElapsedSeconds();
  }
  QueryPlan* plan = it->second.get();

  if (query.explain_only) {
    out.explanation = ExplainPlan(*plan);
    return out;
  }

  // Execute on the test split.
  std::vector<const video::Video*> test_videos;
  for (int i : ds->test_indices()) {
    test_videos.push_back(&ds->video(static_cast<size_t>(i)));
  }
  QueryExecutor executor(plan);
  RunResult run = executor.Localize(test_videos);

  out.metrics = EvaluateVideos(test_videos, plan->targets, run.masks,
                               EvalOptions{});
  out.throughput_fps = run.ThroughputFps();
  out.gpu_seconds = run.gpu_seconds;
  out.wall_seconds = run.wall_seconds;
  const int range_end = query.frame_end < 0 ? 1 << 30 : query.frame_end;
  for (size_t vi = 0; vi < test_videos.size(); ++vi) {
    for (const video::ActionInstance& inst : MaskToInstances(run.masks[vi])) {
      // Frame-range predicate: keep segments intersecting the range.
      if (inst.end <= query.frame_begin || inst.start >= range_end) continue;
      if (query.limit >= 0 &&
          static_cast<int>(out.segments.size()) >= query.limit) {
        return out;
      }
      out.segments.push_back(
          {test_videos[vi]->id(), inst.start, inst.end});
    }
  }
  return out;
}

std::string ZeusDb::ExplainPlan(const QueryPlan& plan) {
  std::string out = common::Format(
      "QueryPlan {\n  targets: %zu class(es), accuracy target %.2f\n"
      "  APFG: trained (train_acc %.3f, %d examples, %.1fs)\n"
      "  configuration grid: %zu candidates, RL frontier: %zu\n",
      plan.targets.size(), plan.accuracy_target,
      plan.apfg_stats.train_accuracy, plan.apfg_stats.num_examples,
      plan.apfg_train_seconds, plan.space.size(), plan.rl_space.size());
  for (const Configuration& c : plan.rl_space.configs()) {
    out += common::Format(
        "    config %s  throughput %.0f fps  validation F1 %.3f\n",
        c.ToString().c_str(), c.throughput_fps, c.validation_f1);
  }
  out += common::Format(
      "  DQN agent: %s (%.1fs training)\n}",
      plan.agent != nullptr ? "trained" : "absent", plan.rl_train_seconds);
  return out;
}

}  // namespace zeus::core
