#include "core/config_planner.h"

#include <algorithm>

#include "apfg/segment_sampler.h"
#include "common/rng.h"

namespace zeus::core {

namespace {

// One profiled window: classifier probability plus window ground truth.
struct WindowObs {
  float prob;
  int label;
};

// Importance-weighted F1 at a fixed threshold: sampled negatives stand in
// for the full negative population, so each false positive is counted
// `neg_weight` times. This makes the estimate match what a sliding
// deployment (with its much larger negative share) will deliver.
double F1At(const std::vector<WindowObs>& obs, float threshold,
            double neg_weight) {
  double tp = 0, fp = 0, fn = 0;
  for (const WindowObs& o : obs) {
    bool pred = o.prob > threshold;
    if (pred && o.label) tp += 1.0;
    else if (pred && !o.label) fp += neg_weight;
    else if (!pred && o.label) fn += 1.0;
  }
  double p = tp + fp > 0 ? tp / (tp + fp) : 0.0;
  double r = tp + fn > 0 ? tp / (tp + fn) : 0.0;
  return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
}

// Best (threshold, F1) over the observations.
std::pair<float, double> BestThreshold(const std::vector<WindowObs>& obs,
                                       double neg_weight) {
  // The scan stays near 0.5: the sampled-window estimates are noisy enough
  // that extreme thresholds win on the calibration half by luck and then
  // transfer badly to unseen videos.
  float best_t = 0.5f;
  double best_f1 = 0.0;
  for (float t = 0.35f; t <= 0.66f; t += 0.05f) {
    double f1 = F1At(obs, t, neg_weight);
    if (f1 > best_f1) {
      best_f1 = f1;
      best_t = t;
    }
  }
  return {best_t, best_f1};
}

}  // namespace

void ConfigPlanner::Profile(
    ConfigurationSpace* space, apfg::Apfg* apfg,
    const std::vector<const video::Video*>& validation_videos,
    const std::vector<video::ActionClass>& targets) const {
  space->AttachCosts(cost_model_);
  common::Rng rng(opts_.seed);
  for (Configuration& c : *space->mutable_configs()) {
    // Positives-dense window sample: every positive window on the
    // validation split plus `neg_per_pos` negatives per positive.
    auto sample = apfg::SampleSegments(validation_videos, targets, c.spec,
                                       &rng, opts_.neg_per_pos);
    if (static_cast<int>(sample.size()) > opts_.max_windows_per_config) {
      sample.resize(static_cast<size_t>(opts_.max_windows_per_config));
    }
    // Cheap label-only census of the full sliding population, to weight
    // the sampled negatives up to their true share.
    const int covered = c.CoveredFrames();
    long total_windows = 0, positive_windows = 0;
    for (const video::Video* vp : validation_videos) {
      for (int start = 0; start + covered <= vp->num_frames();
           start += covered) {
        ++total_windows;
        positive_windows +=
            apfg::SegmentLabel(*vp, start, covered, targets,
                               opts_.eval.iou_threshold);
      }
    }
    long sampled_neg = 0;
    for (const auto& ex : sample) sampled_neg += ex.label == 0 ? 1 : 0;
    double neg_weight =
        sampled_neg > 0
            ? static_cast<double>(total_windows - positive_windows) /
                  static_cast<double>(sampled_neg)
            : 1.0;
    neg_weight = std::max(1.0, neg_weight);
    // Split into a calibration half (picks the per-config threshold) and an
    // estimation half (reports the F1 the planner acts on). Calibrating and
    // scoring on the same windows would overstate accuracy.
    std::vector<WindowObs> calibration, estimation;
    for (size_t i = 0; i < sample.size(); ++i) {
      const apfg::LabeledSegment& ex = sample[i];
      const video::Video& v =
          *validation_videos[static_cast<size_t>(ex.video_idx)];
      apfg::Apfg::Output out = apfg->Process(v, ex.start_frame, c.spec);
      ((i % 2 == 0) ? calibration : estimation)
          .push_back({out.action_prob, ex.label});
    }
    auto [threshold, calibration_f1] = BestThreshold(calibration, neg_weight);
    (void)calibration_f1;
    apfg->SetSpecThreshold(c.spec, threshold);
    c.validation_f1 = F1At(estimation, threshold, neg_weight);
  }
}

double ConfigPlanner::MaxAccuracy(const ConfigurationSpace& space) {
  double best = 0.0;
  for (const Configuration& c : space.configs()) {
    best = std::max(best, c.validation_f1);
  }
  return best;
}

}  // namespace zeus::core
