#ifndef ZEUS_CORE_PLAN_IO_H_
#define ZEUS_CORE_PLAN_IO_H_

#include <string>

#include "core/query_planner.h"

namespace zeus::core {

// Query-plan checkpointing: persists everything a trained plan needs to be
// re-executed later (or on another machine) without replanning — APFG
// weights, per-configuration decision thresholds, profiled configuration
// metrics, the pruned RL action space, and the DQN weights.
//
// Layout (three files under one prefix):
//   <prefix>.meta  — text manifest (targets, accuracy, config metrics)
//   <prefix>.apfg  — APFG network weights (tensor container)
//   <prefix>.dqn   — Q-network weights (tensor container)
//
// Manifest format v2: a magic line ("zeus-plan"), a format_version field,
// the keyed body, and a crc32 trailer over the body bytes. Load verifies
// the version and checksum before parsing and rejects truncated tables,
// unparsable rows and out-of-range config/class ids — PlanCache leans on
// these checks to fall back to replanning instead of serving a corrupt
// checkpoint.
class PlanIo {
 public:
  // Writes the plan. The plan must have a trained APFG and agent.
  static common::Status Save(const std::string& prefix, const QueryPlan& plan);

  // Reconstructs a plan saved with Save(). `family` must match the dataset
  // family the plan was trained for (it determines the knob grid), and
  // `planner_options` must use the same APFG/agent architecture options.
  static common::Result<QueryPlan> Load(
      const std::string& prefix, video::DatasetFamily family,
      const QueryPlanner::Options& planner_options);
};

}  // namespace zeus::core

#endif  // ZEUS_CORE_PLAN_IO_H_
