#ifndef ZEUS_CORE_QUERY_H_
#define ZEUS_CORE_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "video/video.h"

namespace zeus::core {

// A parsed action query (§1):
//   SELECT segment_ids FROM UDF(video)
//   WHERE action_class = 'left-turn' AND accuracy >= 80%
//
// Extensions beyond the paper's single-class form:
//   - multi-class predicates (the §6.5 multi-class training setup):
//       WHERE action_class IN ('cross-right', 'cross-left')
//   - frame-range restriction:
//       AND frame BETWEEN 100 AND 2000
//   - result cap: LIMIT 10
//   - plan inspection: EXPLAIN SELECT ...
struct ActionQuery {
  // Target classes; a single-class query has exactly one entry.
  std::vector<video::ActionClass> action_classes;
  double accuracy_target = 0.8;  // in [0, 1]
  std::string source = "video";  // the FROM operand

  // Optional frame-range restriction: only segments intersecting
  // [frame_begin, frame_end) are returned. frame_end == -1 means unbounded.
  int frame_begin = 0;
  int frame_end = -1;

  // Maximum number of result segments; -1 means unlimited.
  int limit = -1;

  // EXPLAIN: plan (training if needed) and describe, but do not execute.
  bool explain_only = false;

  // Primary class (first target); kNone when the query is empty.
  video::ActionClass primary_class() const {
    return action_classes.empty() ? video::ActionClass::kNone
                                  : action_classes.front();
  }

  std::string ToString() const;
};

// SQL-flavoured parser for action queries. Accepts the grammar:
//   query      := ['EXPLAIN'] 'SELECT' projection 'FROM' source
//                 'WHERE' predicates ['LIMIT' number] [';']
//   projection := ident | '*'
//   source     := ident | ident '(' ident ')'
//   predicates := predicate ('AND' predicate)*
//   predicate  := 'action_class' '=' string
//               | 'action_class' 'IN' '(' string (',' string)* ')'
//               | 'accuracy' '>=' number ['%']
//               | 'frame' 'BETWEEN' number 'AND' number
// Keywords are case-insensitive; `accuracy` given as a percentage (>= 1.0)
// is normalized to [0, 1].
class QueryParser {
 public:
  static common::Result<ActionQuery> Parse(const std::string& sql);
};

}  // namespace zeus::core

#endif  // ZEUS_CORE_QUERY_H_
