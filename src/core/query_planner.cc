#include "core/query_planner.h"

#include "apfg/segment_sampler.h"
#include "common/logging.h"
#include "common/timer.h"

namespace zeus::core {

namespace {

// Calibrates the APFG decision threshold on validation data: slides the
// best configuration over a few validation videos, collects window
// probabilities and ground-truth labels, and picks the threshold that
// maximizes window-level F1.
void CalibrateThreshold(apfg::Apfg* apfg, const Configuration& best,
                        const std::vector<const video::Video*>& val_videos,
                        const std::vector<video::ActionClass>& targets) {
  struct Obs {
    float prob;
    int label;
  };
  std::vector<Obs> obs;
  const int covered = best.CoveredFrames();
  size_t max_videos = std::min<size_t>(val_videos.size(), 4);
  for (size_t vi = 0; vi < max_videos; ++vi) {
    const video::Video& v = *val_videos[vi];
    for (int start = 0; start + covered <= v.num_frames(); start += covered) {
      apfg::Apfg::Output out = apfg->Process(v, start, best.spec);
      int label = apfg::SegmentLabel(v, start, covered, targets);
      obs.push_back({out.action_prob, label});
    }
  }
  if (obs.empty()) return;
  float best_threshold = 0.5f;
  double best_f1 = -1.0;
  for (float t = 0.15f; t <= 0.86f; t += 0.05f) {
    long tp = 0, fp = 0, fn = 0;
    for (const Obs& o : obs) {
      bool pred = o.prob > t;
      if (pred && o.label) ++tp;
      else if (pred && !o.label) ++fp;
      else if (!pred && o.label) ++fn;
    }
    double p = tp + fp ? static_cast<double>(tp) / (tp + fp) : 0.0;
    double r = tp + fn ? static_cast<double>(tp) / (tp + fn) : 0.0;
    double f1 = p + r > 0 ? 2 * p * r / (p + r) : 0.0;
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = t;
    }
  }
  apfg->set_decision_threshold(best_threshold);
  ZEUS_LOG(Debug) << "calibrated threshold=" << best_threshold
                  << " window_f1=" << best_f1;
}

}  // namespace

std::vector<const video::Video*> QueryPlanner::SplitVideos(
    const std::vector<int>& indices) const {
  std::vector<const video::Video*> out;
  out.reserve(indices.size());
  for (int i : indices) {
    out.push_back(&dataset_->video(static_cast<size_t>(i)));
  }
  return out;
}

QueryPlanner::Options QueryPlanner::ReducedOptions() {
  Options opts;
  opts.apfg.epochs = 4;
  opts.profile.max_windows_per_config = 60;
  opts.trainer.episodes = 3;
  opts.trainer.min_buffer = 32;
  opts.trainer.agent.batch_size = 32;
  opts.max_rl_configs = 4;
  return opts;
}

common::Result<QueryPlan> QueryPlanner::Plan(const ActionQuery& query) {
  return PlanForClasses(query.action_classes, query.accuracy_target);
}

common::Result<QueryPlan> QueryPlanner::PlanForClasses(
    const std::vector<video::ActionClass>& targets, double accuracy_target) {
  if (targets.empty()) {
    return common::Status::InvalidArgument("no target classes");
  }
  common::Rng rng(opts_.seed);
  QueryPlan plan;
  plan.targets = targets;
  plan.accuracy_target = accuracy_target;
  plan.env_opts = opts_.env;

  // Configuration space for this dataset family (Table 4).
  if (!opts_.space_override.empty()) {
    plan.space = ConfigurationSpace();
    *plan.space.mutable_configs() = opts_.space_override;
  } else {
    plan.space = ConfigurationSpace::ForFamily(dataset_->profile().family);
  }
  plan.space.AttachCosts(plan.cost_model);

  auto train_videos = SplitVideos(dataset_->train_indices());
  auto val_videos = SplitVideos(dataset_->val_indices());
  if (train_videos.empty() || val_videos.empty()) {
    return common::Status::FailedPrecondition("dataset splits are empty");
  }

  // 1. APFG fine-tuning at the most accurate configuration (§5).
  plan.apfg = std::make_shared<apfg::Apfg>(opts_.apfg, opts_.model_reuse, &rng);
  const Configuration& best = plan.space.config(plan.space.SlowestId());
  std::vector<video::DecodeSpec> all_specs;
  for (const Configuration& c : plan.space.configs()) {
    all_specs.push_back(c.spec);
  }
  common::WallTimer apfg_timer;
  common::Status st = plan.apfg->Train(train_videos, targets, best.spec,
                                       all_specs, &plan.apfg_stats);
  if (!st.ok()) return st;
  plan.apfg_train_seconds = apfg_timer.ElapsedSeconds();
  plan.env_opts.feature_dim = plan.apfg->feature_dim();
  CalibrateThreshold(plan.apfg.get(), best, val_videos, targets);

  // 2. Configuration profiling on the validation split (§4.2).
  common::WallTimer profile_timer;
  ConfigPlanner profiler(opts_.profile, plan.cost_model);
  profiler.Profile(&plan.space, plan.apfg.get(), val_videos, targets);
  plan.profile_seconds = profile_timer.ElapsedSeconds();

  // 3. Prune to the accuracy-throughput Pareto frontier: dominated
  // configurations (slower and less accurate than some other) are never
  // worth an agent action.
  plan.rl_space = plan.space.PruneToFrontier(opts_.max_rl_configs);

  // 4. DQN training with accuracy-aware aggregate rewards (§4.3-4.6).
  plan.cache = std::make_shared<apfg::FeatureCache>(plan.apfg.get());
  if (opts_.train_rl) {
    rl::VideoEnv env(train_videos, &plan.rl_space, plan.cache.get(), targets,
                     plan.env_opts);
    rl::DqnTrainer::Options trainer_opts = opts_.trainer;
    trainer_opts.accuracy_target = accuracy_target;
    common::WallTimer rl_timer;
    rl::DqnTrainer trainer(&env, trainer_opts, &rng);
    plan.rl_stats = trainer.Train();
    plan.rl_train_seconds = rl_timer.ElapsedSeconds();
    plan.agent = trainer.ReleaseAgent();
  }

  ZEUS_LOG(Info) << "plan ready: target=" << accuracy_target
                 << " apfg_acc=" << plan.apfg_stats.train_accuracy
                 << " rl_steps=" << plan.rl_stats.steps
                 << " train_f1=" << plan.rl_stats.last_episode_accuracy;
  return plan;
}

}  // namespace zeus::core
