#ifndef ZEUS_CORE_ZEUSDB_H_
#define ZEUS_CORE_ZEUSDB_H_

#include <memory>
#include <string>

#include "core/query.h"
#include "core/query_planner.h"
#include "engine/engine_group.h"
#include "engine/query_engine.h"
#include "video/dataset.h"

namespace zeus::core {

// Top-level VDBMS facade — the public API a downstream user programs
// against. Register datasets, then execute SQL-ish action queries:
//
//   zeus::core::ZeusDb db;
//   db.RegisterDataset("bdd", std::move(dataset));
//   auto result = db.Execute("bdd",
//       "SELECT segment_ids FROM UDF(video) "
//       "WHERE action_class = 'cross-right' AND accuracy >= 85%");
//
// ZeusDb is a thin shell over engine::EngineGroup: datasets are sharded by
// consistent hashing across `Options::num_shards` QueryEngines (default 1 —
// exactly the classic single-engine behavior), plans are cached per shard
// in a thread-safe single-flight PlanCache (optionally persisted to disk),
// the executor is chosen by the ExecutorFactory (inter-video batched by
// default for multi-video test splits), and queries can be submitted
// asynchronously:
//
//   auto ticket = db.Submit("bdd", sql);       // non-blocking
//   ...                                        // poll state()/progress()
//   const auto& result = ticket.value().Wait();
//
// Execute() keeps the classic blocking semantics: plan (training the APFG
// and the RL agent) on first use, execute on the dataset's test split,
// return localized segments plus metrics.
class ZeusDb {
 public:
  using QueryResult = engine::QueryResult;
  // Top-level configuration: Options::num_shards engines behind one facade,
  // Options::engine for the per-shard knobs.
  using Options = engine::EngineGroup::Options;

  explicit ZeusDb(QueryPlanner::Options planner_options = {});
  // Full control over one engine shard (workers, cache bound, persistence
  // dir, default executor selection); num_shards stays 1.
  explicit ZeusDb(engine::QueryEngine::Options options);
  // Full control including sharding (Options::num_shards engines).
  explicit ZeusDb(Options options);

  // Takes ownership of the dataset under `name`.
  common::Status RegisterDataset(const std::string& name,
                                 video::SyntheticDataset dataset);

  // Live shard-count change (elastic serving). Only datasets whose
  // consistent-hash owner changes are drained and re-homed; their trained
  // plans follow through the shared plan-persistence directory instead of
  // being replanned. See engine::EngineGroup::Resize for the full
  // contract. Answers are unaffected — a resized database returns
  // bit-identical results.
  common::Result<engine::EngineGroup::ResizeReport> ResizeShards(
      int new_num_shards);
  int num_shards() const { return group_.num_shards(); }

  // Self-observation snapshot of the serving layer: per-shard and
  // per-dataset queue depth, queue-wait / execution latency histograms
  // (p50/p95/p99), outcome counters, plan-cache hits/loads and resize
  // counts. `Stats().ToJson()` is the machine-readable form (the SQL
  // console's `.stats` command prints it). With `Options::autoscale`
  // enabled, this is also the signal the autoscaler drives ResizeShards
  // from.
  engine::GroupStats Stats() const { return group_.Stats(); }

  bool HasDataset(const std::string& name) const {
    return group_.HasDataset(name);
  }
  const video::SyntheticDataset* dataset(const std::string& name) const {
    return group_.dataset(name);
  }

  // Parses and runs a query against a registered dataset's test split,
  // blocking until the result is ready.
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const std::string& sql);

  // Runs an already-parsed query.
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const ActionQuery& query);

  // Asynchronous submission — returns a ticket immediately; planning and
  // execution happen on the engine's worker pool.
  common::Result<engine::QueryTicket> Submit(const std::string& dataset_name,
                                             const std::string& sql);
  common::Result<engine::QueryTicket> Submit(const std::string& dataset_name,
                                             const ActionQuery& query);

  // Access to the cached plan for a query (nullptr if not planned yet).
  // Shared ownership: the plan stays valid even if later evicted.
  std::shared_ptr<QueryPlan> CachedPlan(const std::string& dataset_name,
                                        const ActionQuery& query) const;

  // Human-readable description of a plan (the EXPLAIN output body).
  static std::string ExplainPlan(const QueryPlan& plan);

  // The underlying shard group, for advanced control (per-query executor
  // overrides and priorities, routing introspection, per-shard caches).
  engine::EngineGroup& group() { return group_; }
  const engine::EngineGroup& group() const { return group_; }

  // The home-shard engine for a dataset (with the default num_shards == 1
  // every dataset maps to the one engine behind the facade). Engine-wide
  // aggregates live on group() — a single shard's counters are not the
  // whole story when num_shards > 1.
  engine::QueryEngine& engine(const std::string& dataset_name) {
    return group_.engine_for(dataset_name);
  }

 private:
  engine::EngineGroup group_;
};

}  // namespace zeus::core

#endif  // ZEUS_CORE_ZEUSDB_H_
