#ifndef ZEUS_CORE_ZEUSDB_H_
#define ZEUS_CORE_ZEUSDB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/executor.h"
#include "core/query.h"
#include "core/query_planner.h"
#include "video/dataset.h"

namespace zeus::core {

// Top-level VDBMS facade — the public API a downstream user programs
// against. Register datasets, then execute SQL-ish action queries:
//
//   zeus::core::ZeusDb db;
//   db.RegisterDataset("bdd", std::move(dataset));
//   auto result = db.Execute("bdd",
//       "SELECT segment_ids FROM UDF(video) "
//       "WHERE action_class = 'cross-right' AND accuracy >= 85%");
//
// Execute() plans the query (training the APFG and the RL agent) if no plan
// for (dataset, class, target) is cached, runs the Zeus-RL executor on the
// dataset's test split, and returns the localized segments plus metrics.
class ZeusDb {
 public:
  struct QueryResult {
    ActionQuery query;
    // Localized segments per test video: (video id, [start, end)).
    struct Segment {
      int video_id = 0;
      int start = 0;
      int end = 0;
    };
    std::vector<Segment> segments;
    PrfMetrics metrics;
    double throughput_fps = 0.0;
    double gpu_seconds = 0.0;
    double wall_seconds = 0.0;
    double plan_seconds = 0.0;  // 0 when the plan was cached

    // For EXPLAIN queries: a human-readable plan description. Empty for
    // normal execution.
    std::string explanation;
  };

  explicit ZeusDb(QueryPlanner::Options planner_options = {});

  // Takes ownership of the dataset under `name`.
  common::Status RegisterDataset(const std::string& name,
                                 video::SyntheticDataset dataset);

  bool HasDataset(const std::string& name) const {
    return datasets_.count(name) > 0;
  }
  const video::SyntheticDataset* dataset(const std::string& name) const;

  // Parses and runs a query against a registered dataset's test split.
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const std::string& sql);

  // Runs an already-parsed query.
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const ActionQuery& query);

  // Access to the cached plan for a query (nullptr if not planned yet).
  const QueryPlan* CachedPlan(const std::string& dataset_name,
                              const ActionQuery& query) const;

  // Human-readable description of a plan (the EXPLAIN output).
  static std::string ExplainPlan(const QueryPlan& plan);

 private:
  std::string PlanKey(const std::string& dataset_name,
                      const ActionQuery& query) const;

  QueryPlanner::Options planner_options_;
  std::map<std::string, std::unique_ptr<video::SyntheticDataset>> datasets_;
  std::map<std::string, std::unique_ptr<QueryPlan>> plans_;
};

}  // namespace zeus::core

#endif  // ZEUS_CORE_ZEUSDB_H_
