#ifndef ZEUS_CORE_COST_MODEL_H_
#define ZEUS_CORE_COST_MODEL_H_

namespace zeus::core {

// Analytic GPU-time model calibrated against the throughput figures the
// paper reports for its testbed (RTX 2080 Ti):
//   - R3D processes 27 fps at 480x480 (§2), so one segment frame at nominal
//     resolution r costs (r/480)^2 / 27 seconds;
//   - the 2D network is ~5.9x faster per invocation (§6.2);
//   - the Segment-PP lite filter is ~8x cheaper than R3D on the same input.
// Every localizer charges its invocations to this model, which is what the
// reported "throughput (fps)" numbers divide by. Wall-clock CPU seconds are
// reported alongside, but the cost model is the apples-to-apples number the
// paper's tables correspond to.
struct CostModel {
  double r3d_fps_at_480 = 27.0;
  double frame2d_speedup = 5.9;
  double lite3d_speedup = 8.0;
  double invocation_overhead_s = 0.0015;

  // One R3D (APFG) invocation on a segment of `nominal_len` frames at
  // `nominal_res` square resolution.
  double SegmentCost(int nominal_res, int nominal_len) const {
    double per_frame = Ratio(nominal_res) / r3d_fps_at_480;
    return invocation_overhead_s + nominal_len * per_frame;
  }

  // A batch of `batch` same-shaped segment invocations issued together
  // (inter-video batching, §6.4): the per-invocation launch overhead is
  // paid once for the whole batch, the per-frame compute still scales
  // linearly. This is the GPU-utilization win the paper's discussion
  // attributes to batching inputs across videos.
  double BatchedSegmentCost(int nominal_res, int nominal_len,
                            int batch) const {
    double per_frame = Ratio(nominal_res) / r3d_fps_at_480;
    return invocation_overhead_s + batch * nominal_len * per_frame;
  }

  // One 2D-CNN invocation on a single frame.
  double FrameCost(int nominal_res) const {
    return invocation_overhead_s / 4.0 +
           Ratio(nominal_res) / (r3d_fps_at_480 * frame2d_speedup);
  }

  // One lite 3D filter invocation on a segment.
  double LiteSegmentCost(int nominal_res, int nominal_len) const {
    return invocation_overhead_s +
           nominal_len * Ratio(nominal_res) / (r3d_fps_at_480 * lite3d_speedup);
  }

 private:
  static double Ratio(int nominal_res) {
    double r = static_cast<double>(nominal_res) / 480.0;
    return r * r;
  }
};

}  // namespace zeus::core

#endif  // ZEUS_CORE_COST_MODEL_H_
