#include "core/query.h"

#include <cctype>
#include <vector>

#include "common/stringutil.h"

namespace zeus::core {

std::string ActionQuery::ToString() const {
  std::string classes;
  for (size_t i = 0; i < action_classes.size(); ++i) {
    if (i) classes += ", ";
    classes += "'";
    classes += video::ActionClassName(action_classes[i]);
    classes += "'";
  }
  std::string out = explain_only ? "EXPLAIN " : "";
  out += "SELECT segment_ids FROM UDF(" + source + ") WHERE ";
  if (action_classes.size() == 1) {
    out += "action_class = " + classes;
  } else {
    out += "action_class IN (" + classes + ")";
  }
  out += common::Format(" AND accuracy >= %.0f%%", accuracy_target * 100.0);
  if (frame_begin > 0 || frame_end >= 0) {
    out += common::Format(" AND frame BETWEEN %d AND %d", frame_begin,
                          frame_end < 0 ? 1 << 30 : frame_end);
  }
  if (limit >= 0) out += common::Format(" LIMIT %d", limit);
  return out;
}

namespace {

enum class TokenKind { kIdent, kString, kNumber, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  common::Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const std::string& s = input_;
    while (i < s.size()) {
      char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < s.size() && (std::isalnum(static_cast<unsigned char>(s[j])) ||
                                s[j] == '_')) {
          ++j;
        }
        out.push_back({TokenKind::kIdent, common::ToLower(s.substr(i, j - i)), 0});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
        size_t j = i;
        while (j < s.size() && (std::isdigit(static_cast<unsigned char>(s[j])) ||
                                s[j] == '.')) {
          ++j;
        }
        Token t;
        t.kind = TokenKind::kNumber;
        t.text = s.substr(i, j - i);
        t.number = std::stod(t.text);
        out.push_back(t);
        i = j;
        continue;
      }
      if (c == '\'' || c == '"') {
        size_t j = i + 1;
        while (j < s.size() && s[j] != c) ++j;
        if (j >= s.size()) {
          return common::Status::InvalidArgument("unterminated string literal");
        }
        out.push_back({TokenKind::kString, s.substr(i + 1, j - i - 1), 0});
        i = j + 1;
        continue;
      }
      // Multi-char operators.
      if (c == '>' && i + 1 < s.size() && s[i + 1] == '=') {
        out.push_back({TokenKind::kSymbol, ">=", 0});
        i += 2;
        continue;
      }
      if (std::string("=()%,;*").find(c) != std::string::npos) {
        out.push_back({TokenKind::kSymbol, std::string(1, c), 0});
        ++i;
        continue;
      }
      return common::Status::InvalidArgument(
          common::Format("unexpected character '%c' in query", c));
    }
    out.push_back({TokenKind::kEnd, "", 0});
    return out;
  }

 private:
  const std::string& input_;
};

// Local helper: propagate a Status out of a Result-returning method.
#define ZEUS_RETURN_IF_ERROR_RESULT(expr)      \
  do {                                         \
    ::zeus::common::Status _st = (expr);       \
    if (!_st.ok()) return _st;                 \
  } while (0)

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  common::Result<ActionQuery> Parse() {
    ActionQuery q;
    q.explain_only = AcceptIdent("explain");
    ZEUS_RETURN_IF_ERROR_RESULT(ExpectIdent("select"));
    // Projection: one identifier or '*'.
    if (!AcceptSymbol("*")) {
      if (Cur().kind != TokenKind::kIdent) {
        return common::Status::InvalidArgument("expected projection column");
      }
      Advance();
    }
    ZEUS_RETURN_IF_ERROR_RESULT(ExpectIdent("from"));
    ZEUS_RETURN_IF_ERROR_RESULT(ParseSource(&q));
    ZEUS_RETURN_IF_ERROR_RESULT(ExpectIdent("where"));
    ZEUS_RETURN_IF_ERROR_RESULT(ParsePredicate(&q));
    while (AcceptIdent("and")) {
      ZEUS_RETURN_IF_ERROR_RESULT(ParsePredicate(&q));
    }
    if (AcceptIdent("limit")) {
      if (Cur().kind != TokenKind::kNumber) {
        return common::Status::InvalidArgument("LIMIT needs a number");
      }
      q.limit = static_cast<int>(Cur().number);
      if (q.limit < 0 ||
          static_cast<double>(q.limit) != Cur().number) {
        return common::Status::InvalidArgument(
            "LIMIT must be a non-negative integer");
      }
      Advance();
    }
    AcceptSymbol(";");
    if (Cur().kind != TokenKind::kEnd) {
      return common::Status::InvalidArgument("trailing tokens in query");
    }
    if (q.action_classes.empty()) {
      return common::Status::InvalidArgument(
          "query must constrain action_class");
    }
    if (q.frame_end >= 0 && q.frame_end <= q.frame_begin) {
      return common::Status::InvalidArgument("empty frame range");
    }
    return q;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool AcceptIdent(const std::string& kw) {
    if (Cur().kind == TokenKind::kIdent && Cur().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const std::string& sym) {
    if (Cur().kind == TokenKind::kSymbol && Cur().text == sym) {
      Advance();
      return true;
    }
    return false;
  }
  common::Status ExpectIdent(const std::string& kw) {
    if (!AcceptIdent(kw)) {
      return common::Status::InvalidArgument("expected keyword '" + kw + "'");
    }
    return common::Status::Ok();
  }
  common::Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) {
      return common::Status::InvalidArgument("expected '" + sym + "'");
    }
    return common::Status::Ok();
  }

  common::Status ParseSource(ActionQuery* q) {
    if (Cur().kind != TokenKind::kIdent) {
      return common::Status::InvalidArgument("expected source after FROM");
    }
    std::string first = Cur().text;
    Advance();
    if (AcceptSymbol("(")) {
      // UDF(video) form.
      if (Cur().kind != TokenKind::kIdent) {
        return common::Status::InvalidArgument("expected UDF argument");
      }
      q->source = Cur().text;
      Advance();
      return ExpectSymbol(")");
    }
    q->source = first;
    return common::Status::Ok();
  }

  // Parses one class string literal into `q`, rejecting unknown names and
  // duplicates.
  common::Status ParseClassLiteral(ActionQuery* q) {
    if (Cur().kind != TokenKind::kString) {
      return common::Status::InvalidArgument(
          "action_class must compare against a string literal");
    }
    video::ActionClass cls = video::ParseActionClass(Cur().text);
    if (cls == video::ActionClass::kNone) {
      return common::Status::InvalidArgument("unknown action class '" +
                                             Cur().text + "'");
    }
    for (video::ActionClass existing : q->action_classes) {
      if (existing == cls) {
        return common::Status::InvalidArgument(
            "duplicate action class in predicate");
      }
    }
    q->action_classes.push_back(cls);
    Advance();
    return common::Status::Ok();
  }

  common::Status ParsePredicate(ActionQuery* q) {
    if (Cur().kind != TokenKind::kIdent) {
      return common::Status::InvalidArgument("expected predicate column");
    }
    std::string column = Cur().text;
    Advance();
    if (column == "action_class") {
      if (!q->action_classes.empty()) {
        return common::Status::InvalidArgument(
            "action_class constrained twice");
      }
      if (AcceptIdent("in")) {
        ZEUS_RETURN_IF_ERROR_RESULT(ExpectSymbol("("));
        ZEUS_RETURN_IF_ERROR_RESULT(ParseClassLiteral(q));
        while (AcceptSymbol(",")) {
          ZEUS_RETURN_IF_ERROR_RESULT(ParseClassLiteral(q));
        }
        return ExpectSymbol(")");
      }
      ZEUS_RETURN_IF_ERROR_RESULT(ExpectSymbol("="));
      return ParseClassLiteral(q);
    }
    if (column == "accuracy") {
      ZEUS_RETURN_IF_ERROR_RESULT(ExpectSymbol(">="));
      if (Cur().kind != TokenKind::kNumber) {
        return common::Status::InvalidArgument("accuracy needs a number");
      }
      double v = Cur().number;
      Advance();
      if (AcceptSymbol("%") || v > 1.0) v /= 100.0;
      if (v <= 0.0 || v > 1.0) {
        return common::Status::InvalidArgument("accuracy out of range");
      }
      q->accuracy_target = v;
      return common::Status::Ok();
    }
    if (column == "frame") {
      ZEUS_RETURN_IF_ERROR_RESULT(ExpectIdent("between"));
      if (Cur().kind != TokenKind::kNumber) {
        return common::Status::InvalidArgument("BETWEEN needs a number");
      }
      q->frame_begin = static_cast<int>(Cur().number);
      Advance();
      ZEUS_RETURN_IF_ERROR_RESULT(ExpectIdent("and"));
      if (Cur().kind != TokenKind::kNumber) {
        return common::Status::InvalidArgument("BETWEEN needs two numbers");
      }
      q->frame_end = static_cast<int>(Cur().number);
      Advance();
      if (q->frame_begin < 0) {
        return common::Status::InvalidArgument("frame range must be >= 0");
      }
      return common::Status::Ok();
    }
    return common::Status::InvalidArgument("unknown predicate column '" +
                                           column + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;

#undef ZEUS_RETURN_IF_ERROR_RESULT
};

}  // namespace

common::Result<ActionQuery> QueryParser::Parse(const std::string& sql) {
  Lexer lexer(sql);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace zeus::core
