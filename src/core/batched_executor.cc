#include "core/batched_executor.h"

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "rl/env.h"
#include "tensor/gemm.h"

namespace zeus::core {

RunResult BatchedExecutor::Localize(
    const std::vector<const video::Video*>& videos) {
  common::WallTimer timer;
  RunResult result;

  // One single-video environment per input video, stepped in lockstep.
  std::vector<std::unique_ptr<rl::VideoEnv>> envs;
  envs.reserve(videos.size());
  for (const video::Video* v : videos) {
    envs.push_back(std::make_unique<rl::VideoEnv>(
        std::vector<const video::Video*>{v}, &plan_->rl_space,
        plan_->cache.get(), plan_->targets, plan_->env_opts));
  }

  // Charges a group of k same-configuration invocations as batched
  // launches of at most max_batch each.
  auto charge_group = [&](int config_id, int k) {
    const Configuration& c = plan_->rl_space.config(config_id);
    int remaining = k;
    while (remaining > 0) {
      int batch = std::min(remaining, opts_.max_batch);
      result.gpu_seconds += plan_->cost_model.BatchedSegmentCost(
          c.nominal_resolution, c.nominal_segment_length, batch);
      remaining -= batch;
    }
    result.invocations += k;
  };

  // Round 0: every video's forced initial invocation uses the slowest
  // configuration (§3), so they all batch together.
  if (cancel_.cancelled()) {
    result.cancelled = true;
    result.masks.resize(videos.size());
    result.wall_seconds = timer.ElapsedSeconds();
    return result;
  }
  int slowest = plan_->rl_space.SlowestId();
  for (auto& env : envs) env->ResetSequential();
  charge_group(slowest, static_cast<int>(envs.size()));

  // Lockstep rounds over the active environments.
  while (true) {
    // Cancellation point: a Cancel() lands before the next round starts, so
    // the abort latency is bounded by one lockstep round.
    if (cancel_.cancelled()) {
      result.cancelled = true;
      break;
    }
    std::map<int, std::vector<rl::VideoEnv*>> groups;
    for (auto& env : envs) {
      if (env->done()) continue;
      int action = plan_->agent->GreedyAction(env->state());
      groups[action].push_back(env.get());
    }
    if (groups.empty()) break;
    if (gpu_budget_ > 0.0) {
      // Budget point: the cost model prices the whole upcoming round; if
      // it cannot fit the remaining budget, stop here — the same round
      // boundary the cancellation check uses, so strict-tier runs (which
      // never set a budget) execute an identical schedule.
      double round_cost = 0.0;
      for (const auto& [config_id, members] : groups) {
        const Configuration& c = plan_->rl_space.config(config_id);
        int remaining = static_cast<int>(members.size());
        while (remaining > 0) {
          const int batch = std::min(remaining, opts_.max_batch);
          round_cost += plan_->cost_model.BatchedSegmentCost(
              c.nominal_resolution, c.nominal_segment_length, batch);
          remaining -= batch;
        }
      }
      if (result.gpu_seconds + round_cost > gpu_budget_) {
        result.budget_exhausted = true;
        break;
      }
    }
    // The environments are independent single-video traversals sharing only
    // the thread-safe feature cache, so the whole round — every (env,
    // config) pair across all groups, not per group, which would serialize
    // rounds of many small groups — steps in one parallel fan-out. Each env
    // mutates only its own state, so the result is byte-identical to
    // sequential stepping. Cost accounting stays sequential (and step-order
    // independent): it only needs the group sizes.
    common::ThreadPool* pool = opts_.step_pool != nullptr
                                   ? opts_.step_pool
                                   : tensor::GlobalComputeContext().pool;
    std::vector<std::pair<rl::VideoEnv*, int>> round;
    for (auto& [config_id, members] : groups) {
      charge_group(config_id, static_cast<int>(members.size()));
      for (rl::VideoEnv* env : members) round.emplace_back(env, config_id);
    }
    common::ParallelFor(pool, static_cast<int>(round.size()), [&round](int i) {
      round[static_cast<size_t>(i)].first->Step(
          round[static_cast<size_t>(i)].second);
    });
  }

  // Collect masks and per-config frame accounting from the environments.
  for (auto& env : envs) {
    result.masks.push_back(env->mask(0));
    result.total_frames += env->total_frames();
    for (const auto& [config_id, frames] : env->invocation_log()) {
      result.frames_per_config[config_id] += frames;
    }
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace zeus::core
