#ifndef ZEUS_CORE_CONFIGURATION_H_
#define ZEUS_CORE_CONFIGURATION_H_

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "video/dataset.h"
#include "video/decoder.h"

namespace zeus::core {

// The three input knobs of §1/§3. `nominal_*` carry the paper's knob values
// (Table 4) so printed tables read like the paper's; `spec` carries the
// physical decode parameters used at this reproduction's scale (DESIGN.md
// §4 documents the mapping).
struct Configuration {
  int id = -1;
  int nominal_resolution = 300;
  int nominal_segment_length = 8;
  int sampling_rate = 1;
  video::DecodeSpec spec;

  // Cost metrics attached by the planner (§4.2).
  double gpu_seconds_per_invocation = 0.0;  // from CostModel
  double alpha = 0.0;  // normalized fastness, sums to 1 over the space
  double validation_f1 = 0.0;  // filled by ConfigPlanner::Profile
  double throughput_fps = 0.0;  // frames covered per gpu second

  // Source frames consumed by one invocation.
  int CoveredFrames() const {
    return spec.segment_length * spec.sampling_rate;
  }

  std::string ToString() const;  // "(300, 8, 1)"
};

// Knob identifiers for the ablation study (Fig. 10).
enum class Knob { kResolution, kSegmentLength, kSamplingRate };

const char* KnobName(Knob knob);

// The grid of candidate configurations for one dataset family (Table 4),
// with helpers to freeze knobs (Fig. 10), take subsets (Fig. 14) and locate
// extreme configurations.
class ConfigurationSpace {
 public:
  // Builds the full knob grid for a dataset family: BDD-like uses
  // resolutions {150,200,250,300} x lengths {2,4,6,8} x rates {1,2,4,8}
  // (64 configs); Thumos/ActivityNet-like use {40,80,160} x {32,48,64} x
  // {2,4,8} (27 configs).
  static ConfigurationSpace ForFamily(video::DatasetFamily family);

  // Builds from explicit knob lists. `px_for_nominal` maps each nominal
  // resolution to rendered pixels.
  static ConfigurationSpace FromKnobs(
      const std::vector<int>& nominal_resolutions,
      const std::vector<int>& px,
      const std::vector<int>& nominal_lengths,
      const std::vector<int>& actual_lengths,
      const std::vector<int>& sampling_rates);

  const std::vector<Configuration>& configs() const { return configs_; }
  size_t size() const { return configs_.size(); }
  const Configuration& config(int id) const;

  // Distinct knob values present in the space.
  std::vector<int> NominalResolutions() const;
  std::vector<int> NominalLengths() const;
  std::vector<int> SamplingRates() const;

  // Returns a space with one knob frozen to its middle value (ablation).
  ConfigurationSpace WithFrozenKnob(Knob knob) const;

  // Returns a space containing only the given config ids (re-numbered).
  ConfigurationSpace Subset(const std::vector<int>& ids) const;

  // Returns the accuracy-throughput Pareto frontier (requires costs and
  // validation F1 to be attached): scanning configurations from fastest to
  // slowest, keeps those that strictly improve the best accuracy seen so
  // far. Capped at `max_configs` (frontier points with the highest F1 win).
  // This is the planner's configuration pruning: dominated configurations
  // (slower and less accurate than another) are never worth picking.
  ConfigurationSpace PruneToFrontier(int max_configs) const;

  // Slowest == most accurate (max cost); fastest == min cost. Requires
  // AttachCosts() to have been called.
  int SlowestId() const;
  int FastestId() const;

  // Fills gpu cost, throughput and alpha for every config. alpha_c is the
  // fastness (throughput share) normalized to sum to 1 (§4.4).
  void AttachCosts(const CostModel& cost_model);

  // Mutable access for the planner to attach validation accuracies.
  std::vector<Configuration>* mutable_configs() { return &configs_; }

 private:
  std::vector<Configuration> configs_;
};

}  // namespace zeus::core

#endif  // ZEUS_CORE_CONFIGURATION_H_
