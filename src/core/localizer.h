#ifndef ZEUS_CORE_LOCALIZER_H_
#define ZEUS_CORE_LOCALIZER_H_

#include <map>
#include <string>
#include <vector>

#include "core/cancellation.h"
#include "core/metrics.h"
#include "video/video.h"

namespace zeus::core {

// Everything one localization run produces: per-video prediction masks plus
// the accounting needed for the paper's throughput numbers.
struct RunResult {
  std::vector<FrameMask> masks;      // parallel to the input video list
  double gpu_seconds = 0.0;          // charged to the CostModel
  double wall_seconds = 0.0;         // actual CPU time of this run
  long total_frames = 0;             // source frames in the input videos
  long invocations = 0;              // model invocations issued
  // Frames processed per configuration id (Zeus methods only) — feeds the
  // configuration-distribution analysis (Fig. 14) and resolution split
  // (Fig. 12b).
  std::map<int, long> frames_per_config;

  // True when the run was cut short by a CancellationToken: masks and
  // accounting cover only the work done before the abort.
  bool cancelled = false;

  // True when a gpu-seconds budget stopped the run before the agent was
  // done: the cost model said the next round could not fit the budget,
  // so the answer covers only the frames localized so far. Only the
  // budget-aware Zeus-RL executors ever set this (see SetGpuBudget).
  bool budget_exhausted = false;

  // Paper-style throughput: video frames per modeled GPU second.
  double ThroughputFps() const {
    return gpu_seconds > 0.0 ? static_cast<double>(total_frames) / gpu_seconds
                             : 0.0;
  }
};

// Common interface implemented by Zeus-RL and all baselines. A localizer is
// already trained/configured when Localize is called.
class Localizer {
 public:
  virtual ~Localizer();

  // Produces a prediction mask for every input video.
  virtual RunResult Localize(const std::vector<const video::Video*>& videos) = 0;

  virtual std::string name() const = 0;

  // Installs a cooperative cancellation signal checked during Localize. The
  // Zeus-RL executors poll it every lockstep round / agent step and return
  // early with RunResult::cancelled set; the one-pass baselines ignore it
  // (the engine still cancels them at phase boundaries). Virtual so
  // wrapping localizers can forward the token to their inner executor.
  virtual void SetCancellation(CancellationToken token) {
    cancel_ = std::move(token);
  }

  // Installs a modeled gpu-seconds budget (<= 0 disables, the default).
  // The Zeus-RL executors check it at every round boundary and stop —
  // setting RunResult::budget_exhausted — before starting a round whose
  // cost-model estimate would overrun the budget. The one-pass baselines
  // ignore it. Virtual so wrapping localizers can forward the budget.
  virtual void SetGpuBudget(double gpu_seconds) { gpu_budget_ = gpu_seconds; }

 protected:
  CancellationToken cancel_;
  double gpu_budget_ = 0.0;
};

}  // namespace zeus::core

#endif  // ZEUS_CORE_LOCALIZER_H_
