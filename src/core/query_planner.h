#ifndef ZEUS_CORE_QUERY_PLANNER_H_
#define ZEUS_CORE_QUERY_PLANNER_H_

#include <memory>
#include <vector>

#include "apfg/apfg.h"
#include "apfg/feature_cache.h"
#include "core/config_planner.h"
#include "core/configuration.h"
#include "core/query.h"
#include "rl/dqn_agent.h"
#include "rl/env.h"
#include "rl/trainer.h"
#include "video/dataset.h"

namespace zeus::core {

// Everything the query planner produces for one (query, dataset, accuracy
// target): a trained APFG, the profiled configuration space, and the
// trained DQN agent, plus the timing breakdown reported in Table 6.
struct QueryPlan {
  std::vector<video::ActionClass> targets;
  double accuracy_target = 0.85;
  ConfigurationSpace space;     // full grid, costs + validation F1 attached
  ConfigurationSpace rl_space;  // pruned Pareto frontier the agent acts over
  CostModel cost_model;
  std::shared_ptr<apfg::Apfg> apfg;
  std::shared_ptr<apfg::FeatureCache> cache;
  std::shared_ptr<rl::DqnAgent> agent;
  rl::VideoEnv::Options env_opts;

  // Timing breakdown (Table 6).
  double apfg_train_seconds = 0.0;
  double profile_seconds = 0.0;
  double rl_train_seconds = 0.0;
  rl::DqnTrainer::Result rl_stats;
  apfg::ApfgTrainStats apfg_stats;
};

// Trains and assembles a QueryPlan (§4). The planner owns the schedule:
//   1. fine-tune the APFG on the train split at the most accurate
//      configuration (model reuse, §5);
//   2. profile every configuration on the validation split (§4.2);
//   3. train the DQN agent with accuracy-aware aggregate rewards (§4.5-4.6).
class QueryPlanner {
 public:
  struct Options {
    uint64_t seed = 17;
    bool model_reuse = true;
    apfg::ApfgTrainOptions apfg;
    ConfigPlanner::Options profile;
    rl::DqnTrainer::Options trainer;
    rl::VideoEnv::Options env;
    // Maximum size of the pruned action space handed to the agent (the
    // accuracy-throughput Pareto frontier of the profiled grid).
    int max_rl_configs = 10;
    // Skip DQN training (plan.agent stays null). Used when only the APFG
    // and the profiled configuration space are needed (e.g. Table 4).
    bool train_rl = true;
    // Optional override of the configuration space (ablations / subsets);
    // empty => ConfigurationSpace::ForFamily(dataset family).
    std::vector<Configuration> space_override;
  };

  // The canonical reduced training configuration for tests, CI smoke jobs
  // and `shardd --fast-planner`: plans train in seconds instead of
  // minutes. Defined once here so a cluster test comparing a shard
  // process's answers against a local engine can never drift out of sync
  // with the options the shard process trained with — bit-identity
  // requires identical planner knobs on both sides.
  static Options ReducedOptions();

  QueryPlanner(const video::SyntheticDataset* dataset, const Options& opts)
      : dataset_(dataset), opts_(opts) {}

  // Plans a single-class query parsed from SQL.
  common::Result<QueryPlan> Plan(const ActionQuery& query);

  // Plans for an explicit set of target classes (multi-class training,
  // §6.5) at the given accuracy target.
  common::Result<QueryPlan> PlanForClasses(
      const std::vector<video::ActionClass>& targets, double accuracy_target);

  const Options& options() const { return opts_; }

  // Videos of the dataset's split, as pointers (helper shared with benches).
  std::vector<const video::Video*> SplitVideos(
      const std::vector<int>& indices) const;

 private:
  const video::SyntheticDataset* dataset_;
  Options opts_;
};

}  // namespace zeus::core

#endif  // ZEUS_CORE_QUERY_PLANNER_H_
