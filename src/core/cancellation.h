#ifndef ZEUS_CORE_CANCELLATION_H_
#define ZEUS_CORE_CANCELLATION_H_

#include <atomic>
#include <memory>
#include <utility>

namespace zeus::core {

// Cooperative cancellation signal threaded from a QueryTicket down into the
// executors. Cheap to copy (shared flag); a default-constructed token never
// fires. Executors poll it at their internal round boundaries — one
// lockstep round for BatchedExecutor, one agent step for QueryExecutor —
// so a Cancel() lands within a single round instead of only between
// queries.
class CancellationToken {
 public:
  CancellationToken() = default;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const std::atomic<bool>> flag_;
};

}  // namespace zeus::core

#endif  // ZEUS_CORE_CANCELLATION_H_
