#include "core/plan_io.h"

#include <fstream>
#include <sstream>

#include "common/crc32.h"
#include "common/fileutil.h"
#include "common/stringutil.h"
#include "rl/env.h"

namespace zeus::core {

namespace {

// Manifest magic plus format version. v2 added the explicit format_version
// field and the crc32 trailer; v1 manifests (no trailer) are rejected with
// a clear error so a stale checkpoint can never be half-loaded.
constexpr char kMetaMagic[] = "zeus-plan";
constexpr int kMetaFormatVersion = 2;

common::Status Corrupt(const std::string& what) {
  return common::Status::InvalidArgument("corrupt plan manifest: " + what);
}

}  // namespace

common::Status PlanIo::Save(const std::string& prefix, const QueryPlan& plan) {
  if (!plan.apfg || !plan.apfg->trained()) {
    return common::Status::FailedPrecondition("plan has no trained APFG");
  }
  if (!plan.agent) {
    return common::Status::FailedPrecondition("plan has no trained agent");
  }
  ZEUS_RETURN_IF_ERROR(
      plan.apfg->ModelFor(plan.space.config(0).spec)->Save(prefix + ".apfg"));
  ZEUS_RETURN_IF_ERROR(plan.agent->Save(prefix + ".dqn"));

  // Body assembled in memory first so the crc32 trailer can cover it
  // byte-for-byte.
  std::ostringstream body;
  body << "format_version " << kMetaFormatVersion << "\n";
  body << "accuracy_target " << plan.accuracy_target << "\n";
  body << "targets";
  for (video::ActionClass cls : plan.targets) {
    body << " " << static_cast<int>(cls);
  }
  body << "\n";
  // Per-configuration profiled metrics + calibrated thresholds, keyed by
  // the full-grid config id.
  body << "configs " << plan.space.size() << "\n";
  for (const Configuration& c : plan.space.configs()) {
    body << c.id << " " << c.validation_f1 << " "
         << plan.apfg->ThresholdFor(c.spec) << "\n";
  }
  body << "rl_space";
  for (const Configuration& c : plan.rl_space.configs()) {
    // Find the matching full-grid id by knob values.
    for (const Configuration& full : plan.space.configs()) {
      if (full.nominal_resolution == c.nominal_resolution &&
          full.nominal_segment_length == c.nominal_segment_length &&
          full.sampling_rate == c.sampling_rate) {
        body << " " << full.id;
        break;
      }
    }
  }
  body << "\n";
  body << "env " << plan.env_opts.feature_dim << " "
       << plan.env_opts.append_action_prob << " "
       << plan.env_opts.append_config_onehot << " "
       << plan.env_opts.append_position << "\n";

  const std::string payload = body.str();
  const uint32_t crc =
      common::Crc32(0, payload.data(), payload.size());

  // Atomic manifest commit (temp file + rename): the manifest is written
  // LAST, after the weight files above, and lands all-or-nothing — so a
  // shard killed anywhere inside Save leaves either no manifest (entry
  // invisible, clean replan later) or a complete, crc-valid one. A torn
  // manifest for the next warm start to trip on is no longer possible.
  return common::AtomicWriteFile(
      prefix + ".meta",
      kMetaMagic + ("\n" + payload) + common::Format("crc32 %08x\n", crc));
}

common::Result<QueryPlan> PlanIo::Load(
    const std::string& prefix, video::DatasetFamily family,
    const QueryPlanner::Options& planner_options) {
  std::ifstream meta(prefix + ".meta");
  if (!meta.is_open()) {
    return common::Status::IoError("cannot open " + prefix + ".meta");
  }
  std::string magic;
  if (!std::getline(meta, magic) ||
      (magic != kMetaMagic && magic != "zeus-plan-v1")) {
    return Corrupt("bad magic line");
  }
  if (magic == "zeus-plan-v1") {
    return common::Status::InvalidArgument(
        "unsupported plan format v1 (no integrity trailer); re-save the plan");
  }

  // Slurp the body and verify the crc32 trailer before parsing anything: a
  // truncated or bit-flipped manifest must fail loudly here, not surface as
  // a half-initialized plan.
  std::string payload;
  std::string line;
  bool crc_seen = false;
  uint32_t stored_crc = 0;
  while (std::getline(meta, line)) {
    if (common::StartsWith(line, "crc32 ")) {
      std::istringstream is(line.substr(6));
      is >> std::hex >> stored_crc;
      if (is.fail()) return Corrupt("unparsable crc32 trailer");
      crc_seen = true;
      break;
    }
    payload += line;
    payload += '\n';
  }
  if (!crc_seen) return Corrupt("missing crc32 trailer (truncated file?)");
  if (common::Crc32(0, payload.data(), payload.size()) != stored_crc) {
    return Corrupt("crc32 mismatch");
  }

  QueryPlan plan;
  plan.env_opts = planner_options.env;
  plan.space = ConfigurationSpace::ForFamily(family);
  plan.space.AttachCosts(plan.cost_model);

  common::Rng rng(planner_options.seed);
  plan.apfg = std::make_shared<apfg::Apfg>(planner_options.apfg,
                                           planner_options.model_reuse, &rng);

  std::istringstream body(payload);
  std::vector<int> rl_ids;
  int format_version = -1;
  while (std::getline(body, line)) {
    std::istringstream is(line);
    std::string key;
    is >> key;
    if (key == "format_version") {
      if (!(is >> format_version) || format_version != kMetaFormatVersion) {
        return common::Status::InvalidArgument(common::Format(
            "unsupported plan format version %d (want %d)", format_version,
            kMetaFormatVersion));
      }
    } else if (key == "accuracy_target") {
      if (!(is >> plan.accuracy_target)) return Corrupt("accuracy_target");
    } else if (key == "targets") {
      int v = 0;
      while (is >> v) {
        if (v < 0 || v > video::kMaxActionClassId) {
          return Corrupt("action class id out of range");
        }
        plan.targets.push_back(static_cast<video::ActionClass>(v));
      }
      if (!is.eof()) return Corrupt("targets");
    } else if (key == "configs") {
      size_t n = 0;
      if (!(is >> n)) return Corrupt("configs count");
      if (n != plan.space.size()) {
        return common::Status::InvalidArgument(
            "plan was saved for a different configuration grid");
      }
      for (size_t i = 0; i < n; ++i) {
        if (!std::getline(body, line)) {
          return Corrupt("truncated config table");
        }
        std::istringstream row(line);
        int id = 0;
        double f1 = 0.0;
        float threshold = 0.5f;
        if (!(row >> id >> f1 >> threshold)) {
          return Corrupt("unparsable config table row");
        }
        if (id < 0 || id >= static_cast<int>(plan.space.size())) {
          return Corrupt("config id out of range");
        }
        (*plan.space.mutable_configs())[static_cast<size_t>(id)]
            .validation_f1 = f1;
        plan.apfg->SetSpecThreshold(plan.space.config(id).spec, threshold);
      }
    } else if (key == "rl_space") {
      int id = 0;
      while (is >> id) {
        if (id < 0 || id >= static_cast<int>(plan.space.size())) {
          return Corrupt("rl_space id out of range");
        }
        rl_ids.push_back(id);
      }
      if (!is.eof()) return Corrupt("rl_space");
    } else if (key == "env") {
      if (!(is >> plan.env_opts.feature_dim >>
            plan.env_opts.append_action_prob >>
            plan.env_opts.append_config_onehot >>
            plan.env_opts.append_position)) {
        return Corrupt("env options");
      }
    }
  }
  if (format_version < 0) return Corrupt("missing format_version");
  if (plan.targets.empty() || rl_ids.empty()) {
    return Corrupt("incomplete manifest (targets or rl_space missing)");
  }
  plan.rl_space = plan.space.Subset(rl_ids);

  // Weights.
  ZEUS_RETURN_IF_ERROR(
      plan.apfg->ModelFor(plan.space.config(0).spec)->Load(prefix + ".apfg"));
  plan.apfg->MarkTrained();

  rl::DqnAgent::Options agent_opts = planner_options.trainer.agent;
  agent_opts.num_actions = static_cast<int>(plan.rl_space.size());
  int state_dim = plan.env_opts.feature_dim;
  if (plan.env_opts.append_action_prob) state_dim += 1;
  if (plan.env_opts.append_config_onehot) state_dim += agent_opts.num_actions;
  if (plan.env_opts.append_position) state_dim += 1;
  agent_opts.state_dim = state_dim;
  plan.agent = std::make_shared<rl::DqnAgent>(agent_opts, &rng);
  ZEUS_RETURN_IF_ERROR(plan.agent->Load(prefix + ".dqn"));
  plan.agent->set_epsilon(0.0f);

  plan.cache = std::make_shared<apfg::FeatureCache>(plan.apfg.get());
  return plan;
}

}  // namespace zeus::core
