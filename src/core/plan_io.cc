#include "core/plan_io.h"

#include <fstream>
#include <sstream>

#include "common/stringutil.h"
#include "rl/env.h"

namespace zeus::core {

namespace {
constexpr char kMetaVersion[] = "zeus-plan-v1";
}  // namespace

common::Status PlanIo::Save(const std::string& prefix, const QueryPlan& plan) {
  if (!plan.apfg || !plan.apfg->trained()) {
    return common::Status::FailedPrecondition("plan has no trained APFG");
  }
  if (!plan.agent) {
    return common::Status::FailedPrecondition("plan has no trained agent");
  }
  ZEUS_RETURN_IF_ERROR(
      plan.apfg->ModelFor(plan.space.config(0).spec)->Save(prefix + ".apfg"));
  ZEUS_RETURN_IF_ERROR(plan.agent->Save(prefix + ".dqn"));

  std::ofstream meta(prefix + ".meta");
  if (!meta.is_open()) {
    return common::Status::IoError("cannot open " + prefix + ".meta");
  }
  meta << kMetaVersion << "\n";
  meta << "accuracy_target " << plan.accuracy_target << "\n";
  meta << "targets";
  for (video::ActionClass cls : plan.targets) {
    meta << " " << static_cast<int>(cls);
  }
  meta << "\n";
  // Per-configuration profiled metrics + calibrated thresholds, keyed by
  // the full-grid config id.
  meta << "configs " << plan.space.size() << "\n";
  for (const Configuration& c : plan.space.configs()) {
    meta << c.id << " " << c.validation_f1 << " "
         << plan.apfg->ThresholdFor(c.spec) << "\n";
  }
  meta << "rl_space";
  for (const Configuration& c : plan.rl_space.configs()) {
    // Find the matching full-grid id by knob values.
    for (const Configuration& full : plan.space.configs()) {
      if (full.nominal_resolution == c.nominal_resolution &&
          full.nominal_segment_length == c.nominal_segment_length &&
          full.sampling_rate == c.sampling_rate) {
        meta << " " << full.id;
        break;
      }
    }
  }
  meta << "\n";
  meta << "env " << plan.env_opts.feature_dim << " "
       << plan.env_opts.append_action_prob << " "
       << plan.env_opts.append_config_onehot << " "
       << plan.env_opts.append_position << "\n";
  if (!meta.good()) return common::Status::IoError("meta write failed");
  return common::Status::Ok();
}

common::Result<QueryPlan> PlanIo::Load(
    const std::string& prefix, video::DatasetFamily family,
    const QueryPlanner::Options& planner_options) {
  std::ifstream meta(prefix + ".meta");
  if (!meta.is_open()) {
    return common::Status::IoError("cannot open " + prefix + ".meta");
  }
  std::string version;
  if (!std::getline(meta, version) || version != kMetaVersion) {
    return common::Status::InvalidArgument("bad plan manifest version");
  }
  QueryPlan plan;
  plan.env_opts = planner_options.env;
  plan.space = ConfigurationSpace::ForFamily(family);
  plan.space.AttachCosts(plan.cost_model);

  common::Rng rng(planner_options.seed);
  plan.apfg = std::make_shared<apfg::Apfg>(planner_options.apfg,
                                           planner_options.model_reuse, &rng);

  std::string line;
  std::vector<int> rl_ids;
  while (std::getline(meta, line)) {
    std::istringstream is(line);
    std::string key;
    is >> key;
    if (key == "accuracy_target") {
      is >> plan.accuracy_target;
    } else if (key == "targets") {
      int v = 0;
      while (is >> v) {
        plan.targets.push_back(static_cast<video::ActionClass>(v));
      }
    } else if (key == "configs") {
      size_t n = 0;
      is >> n;
      if (n != plan.space.size()) {
        return common::Status::InvalidArgument(
            "plan was saved for a different configuration grid");
      }
      for (size_t i = 0; i < n; ++i) {
        if (!std::getline(meta, line)) {
          return common::Status::IoError("truncated config table");
        }
        std::istringstream row(line);
        int id = 0;
        double f1 = 0.0;
        float threshold = 0.5f;
        row >> id >> f1 >> threshold;
        if (id < 0 || id >= static_cast<int>(plan.space.size())) {
          return common::Status::InvalidArgument("bad config id in manifest");
        }
        (*plan.space.mutable_configs())[static_cast<size_t>(id)]
            .validation_f1 = f1;
        plan.apfg->SetSpecThreshold(plan.space.config(id).spec, threshold);
      }
    } else if (key == "rl_space") {
      int id = 0;
      while (is >> id) rl_ids.push_back(id);
    } else if (key == "env") {
      is >> plan.env_opts.feature_dim >> plan.env_opts.append_action_prob >>
          plan.env_opts.append_config_onehot >> plan.env_opts.append_position;
    }
  }
  if (plan.targets.empty() || rl_ids.empty()) {
    return common::Status::InvalidArgument("incomplete plan manifest");
  }
  plan.rl_space = plan.space.Subset(rl_ids);

  // Weights.
  ZEUS_RETURN_IF_ERROR(
      plan.apfg->ModelFor(plan.space.config(0).spec)->Load(prefix + ".apfg"));
  plan.apfg->MarkTrained();

  rl::DqnAgent::Options agent_opts = planner_options.trainer.agent;
  agent_opts.num_actions = static_cast<int>(plan.rl_space.size());
  int state_dim = plan.env_opts.feature_dim;
  if (plan.env_opts.append_action_prob) state_dim += 1;
  if (plan.env_opts.append_config_onehot) state_dim += agent_opts.num_actions;
  if (plan.env_opts.append_position) state_dim += 1;
  agent_opts.state_dim = state_dim;
  plan.agent = std::make_shared<rl::DqnAgent>(agent_opts, &rng);
  ZEUS_RETURN_IF_ERROR(plan.agent->Load(prefix + ".dqn"));
  plan.agent->set_epsilon(0.0f);

  plan.cache = std::make_shared<apfg::FeatureCache>(plan.apfg.get());
  return plan;
}

}  // namespace zeus::core
