#include "core/configuration.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/stringutil.h"

namespace zeus::core {

std::string Configuration::ToString() const {
  return common::Format("(%d, %d, %d)", nominal_resolution,
                        nominal_segment_length, sampling_rate);
}

const char* KnobName(Knob knob) {
  switch (knob) {
    case Knob::kResolution:
      return "Resolution";
    case Knob::kSegmentLength:
      return "SegmentLength";
    case Knob::kSamplingRate:
      return "SamplingRate";
  }
  return "Unknown";
}

ConfigurationSpace ConfigurationSpace::FromKnobs(
    const std::vector<int>& nominal_resolutions, const std::vector<int>& px,
    const std::vector<int>& nominal_lengths,
    const std::vector<int>& actual_lengths,
    const std::vector<int>& sampling_rates) {
  ZEUS_CHECK(nominal_resolutions.size() == px.size());
  ZEUS_CHECK(nominal_lengths.size() == actual_lengths.size());
  ConfigurationSpace space;
  int id = 0;
  for (size_t ri = 0; ri < nominal_resolutions.size(); ++ri) {
    for (size_t li = 0; li < nominal_lengths.size(); ++li) {
      for (int rate : sampling_rates) {
        Configuration c;
        c.id = id++;
        c.nominal_resolution = nominal_resolutions[ri];
        c.nominal_segment_length = nominal_lengths[li];
        c.sampling_rate = rate;
        c.spec.resolution_px = px[ri];
        c.spec.segment_length = actual_lengths[li];
        c.spec.sampling_rate = rate;
        space.configs_.push_back(c);
      }
    }
  }
  return space;
}

ConfigurationSpace ConfigurationSpace::ForFamily(video::DatasetFamily family) {
  switch (family) {
    case video::DatasetFamily::kBdd100kLike:
    case video::DatasetFamily::kCityscapesLike:
    case video::DatasetFamily::kKittiLike:
      // Table 4, BDD row: 4 x 4 x 4 = 64 configurations. Actual pixels are
      // nominal/10 at this reproduction's scale.
      return FromKnobs({150, 200, 250, 300}, {15, 20, 25, 30}, {2, 4, 6, 8},
                       {2, 4, 6, 8}, {1, 2, 4, 8});
    case video::DatasetFamily::kThumos14Like:
    case video::DatasetFamily::kActivityNetLike:
      // Table 4, Thumos/ActivityNet rows: 3 x 3 x 3 = 27 configurations.
      // Nominal lengths {32,48,64} map to {8,12,16} decoded frames.
      return FromKnobs({40, 80, 160}, {10, 16, 24}, {32, 48, 64}, {8, 12, 16},
                       {2, 4, 8});
  }
  ZEUS_CHECK(false);
  return ConfigurationSpace();
}

const Configuration& ConfigurationSpace::config(int id) const {
  ZEUS_CHECK(id >= 0 && id < static_cast<int>(configs_.size()));
  return configs_[static_cast<size_t>(id)];
}

namespace {
std::vector<int> DistinctSorted(const std::vector<Configuration>& configs,
                                int Configuration::*field) {
  std::set<int> values;
  for (const Configuration& c : configs) values.insert(c.*field);
  return std::vector<int>(values.begin(), values.end());
}
}  // namespace

std::vector<int> ConfigurationSpace::NominalResolutions() const {
  return DistinctSorted(configs_, &Configuration::nominal_resolution);
}
std::vector<int> ConfigurationSpace::NominalLengths() const {
  return DistinctSorted(configs_, &Configuration::nominal_segment_length);
}
std::vector<int> ConfigurationSpace::SamplingRates() const {
  return DistinctSorted(configs_, &Configuration::sampling_rate);
}

ConfigurationSpace ConfigurationSpace::WithFrozenKnob(Knob knob) const {
  // Freeze the knob to its middle value; keep all combinations of the rest.
  std::vector<int> values;
  switch (knob) {
    case Knob::kResolution:
      values = NominalResolutions();
      break;
    case Knob::kSegmentLength:
      values = NominalLengths();
      break;
    case Knob::kSamplingRate:
      values = SamplingRates();
      break;
  }
  ZEUS_CHECK(!values.empty());
  int fixed = values[values.size() / 2];
  ConfigurationSpace out;
  int id = 0;
  for (const Configuration& c : configs_) {
    int v = knob == Knob::kResolution        ? c.nominal_resolution
            : knob == Knob::kSegmentLength   ? c.nominal_segment_length
                                             : c.sampling_rate;
    if (v != fixed) continue;
    Configuration copy = c;
    copy.id = id++;
    out.configs_.push_back(copy);
  }
  return out;
}

ConfigurationSpace ConfigurationSpace::Subset(
    const std::vector<int>& ids) const {
  ConfigurationSpace out;
  int id = 0;
  for (int i : ids) {
    Configuration copy = config(i);
    copy.id = id++;
    out.configs_.push_back(copy);
  }
  return out;
}

ConfigurationSpace ConfigurationSpace::PruneToFrontier(int max_configs) const {
  std::vector<int> ids;
  for (const Configuration& c : configs_) ids.push_back(c.id);
  std::sort(ids.begin(), ids.end(), [&](int a, int b) {
    return config(a).throughput_fps > config(b).throughput_fps;
  });
  std::vector<int> frontier;
  double best_f1 = -1.0;
  for (int id : ids) {
    if (config(id).validation_f1 > best_f1) {
      best_f1 = config(id).validation_f1;
      frontier.push_back(id);
    }
  }
  // Degenerate profile (e.g. all-zero F1 on a tiny validation split): keep
  // at least the fastest and the slowest configuration so the agent always
  // has a speed range to act over.
  if (frontier.size() < 2 && configs_.size() >= 2) {
    int slow = SlowestId();
    if (std::find(frontier.begin(), frontier.end(), slow) == frontier.end()) {
      frontier.push_back(slow);
    }
    int fast = FastestId();
    if (std::find(frontier.begin(), frontier.end(), fast) == frontier.end()) {
      frontier.insert(frontier.begin(), fast);
    }
  }
  if (static_cast<int>(frontier.size()) > max_configs && max_configs >= 2) {
    // Evenly subsample, always keeping the fastest and the most accurate
    // endpoint: the agent needs the full speed range, not just the
    // accurate end.
    std::vector<int> kept;
    double step = static_cast<double>(frontier.size() - 1) / (max_configs - 1);
    for (int i = 0; i < max_configs; ++i) {
      kept.push_back(frontier[static_cast<size_t>(i * step + 0.5)]);
    }
    kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
    frontier = kept;
  }
  return Subset(frontier);
}

int ConfigurationSpace::SlowestId() const {
  ZEUS_CHECK(!configs_.empty());
  return static_cast<int>(
      std::max_element(configs_.begin(), configs_.end(),
                       [](const Configuration& a, const Configuration& b) {
                         return a.gpu_seconds_per_invocation <
                                b.gpu_seconds_per_invocation;
                       }) -
      configs_.begin());
}

int ConfigurationSpace::FastestId() const {
  ZEUS_CHECK(!configs_.empty());
  // Fastest by effective throughput: frames covered per gpu second.
  return static_cast<int>(
      std::max_element(configs_.begin(), configs_.end(),
                       [](const Configuration& a, const Configuration& b) {
                         return a.throughput_fps < b.throughput_fps;
                       }) -
      configs_.begin());
}

void ConfigurationSpace::AttachCosts(const CostModel& cost_model) {
  double total_tput = 0.0;
  for (Configuration& c : configs_) {
    c.gpu_seconds_per_invocation =
        cost_model.SegmentCost(c.nominal_resolution, c.nominal_segment_length);
    c.throughput_fps = c.CoveredFrames() / c.gpu_seconds_per_invocation;
    total_tput += c.throughput_fps;
  }
  for (Configuration& c : configs_) {
    c.alpha = c.throughput_fps / total_tput;
  }
}

}  // namespace zeus::core
