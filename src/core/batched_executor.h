#ifndef ZEUS_CORE_BATCHED_EXECUTOR_H_
#define ZEUS_CORE_BATCHED_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/executor.h"
#include "core/localizer.h"
#include "core/query_planner.h"

namespace zeus::core {

// Inter-video batched Zeus-RL executor — the extension the paper sketches
// in §6.4: the sequential executor cannot batch within one video (each
// decision depends on the previous segment's ProxyFeature), but across
// videos the per-video traversals are independent, so same-configuration
// invocations from different videos can share one GPU launch.
//
// The executor runs one traversal per video in lockstep rounds. Each round
// collects the agent's greedy configuration choice for every still-active
// video, groups the choices by configuration, and charges each group to the
// cost model as ceil(k / max_batch) batched launches instead of k
// singleton launches. Decisions, predictions and masks are bit-identical
// to running QueryExecutor on each video separately — batching changes the
// cost accounting, never the plan semantics.
class BatchedExecutor : public Localizer {
 public:
  struct Options {
    // Maximum invocations fused into one launch (GPU memory bound).
    int max_batch = 16;
    // Pool for stepping a round's same-configuration group members
    // concurrently (the environments are independent and the feature cache
    // is thread-safe, so results are identical to sequential stepping).
    // nullptr falls back to tensor::GlobalComputeContext().pool.
    common::ThreadPool* step_pool = nullptr;
  };

  BatchedExecutor(const QueryPlan* plan, const Options& opts)
      : plan_(plan), opts_(opts) {}
  explicit BatchedExecutor(const QueryPlan* plan)
      : BatchedExecutor(plan, Options()) {}

  RunResult Localize(const std::vector<const video::Video*>& videos) override;
  std::string name() const override { return "Zeus-RL-Batched"; }

  const Options& options() const { return opts_; }

 private:
  const QueryPlan* plan_;
  Options opts_;
};

}  // namespace zeus::core

#endif  // ZEUS_CORE_BATCHED_EXECUTOR_H_
