#ifndef ZEUS_CORE_EXECUTOR_H_
#define ZEUS_CORE_EXECUTOR_H_

#include <vector>

#include "core/localizer.h"
#include "core/query_planner.h"

namespace zeus::core {

// The Zeus-RL query executor (Fig. 5): traverses each video, letting the
// trained DQN agent pick the next configuration greedily from the
// ProxyFeature state, and charges every APFG invocation to the cost model.
class QueryExecutor : public Localizer {
 public:
  explicit QueryExecutor(const QueryPlan* plan) : plan_(plan) {}

  RunResult Localize(const std::vector<const video::Video*>& videos) override;
  std::string name() const override { return "Zeus-RL"; }

  const QueryPlan& plan() const { return *plan_; }

 private:
  const QueryPlan* plan_;
};

// Histogram utilities over RunResult::frames_per_config, used by the
// configuration-distribution analyses (Fig. 12b / Fig. 14).
struct ConfigHistogram {
  // Percentage of frames processed by the fast / mid / slow cost terciles.
  double fast_pct = 0.0;
  double mid_pct = 0.0;
  double slow_pct = 0.0;
  // Percentage of frames processed at low vs. high resolution (split at the
  // median nominal resolution).
  double low_res_pct = 0.0;
  double high_res_pct = 0.0;
};

ConfigHistogram SummarizeConfigUsage(const ConfigurationSpace& space,
                                     const RunResult& result);

// Cost-model estimate of a finished run's achieved accuracy: the
// frames-weighted mean validation F1 of the configurations that
// processed each frame, with never-localized frames (budget early exit,
// cancellation) counting zero. A configuration that measured zero F1
// (no measurable validation windows — tiny or sparse splits) weighs its
// frames with `fallback_accuracy` (the plan's trained target) as the
// prior instead, so budget cuts still discount the estimate. This is the
// `achieved_confidence` every QueryResult is annotated with; fig9's
// serving-path bench validates it against the measured F1 per accuracy
// band (docs/ACCURACY.md).
double EstimateConfidence(const ConfigurationSpace& space,
                          const RunResult& result,
                          double fallback_accuracy = 0.0);

// Percentage of frames per nominal resolution value.
std::vector<std::pair<int, double>> ResolutionUsage(
    const ConfigurationSpace& space, const RunResult& result);

}  // namespace zeus::core

#endif  // ZEUS_CORE_EXECUTOR_H_
