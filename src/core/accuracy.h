#ifndef ZEUS_CORE_ACCURACY_H_
#define ZEUS_CORE_ACCURACY_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

// Accuracy bands and serving tiers.
//
// A plan is trained for one accuracy target; serving quantizes every
// target onto a milli-accuracy grid so that "the same band" is an exact
// integer comparison everywhere (plan keys, the on-disk catalog, the
// plan cache, metrics labels) and can never alias or miss by an ulp.
// Bands are kBandStep (0.05) wide: degrading a query by one level moves
// its effective target down one band, which is what the autoscaler's
// accuracy-shed action and the kBalanced/kBestEffort tiers trade on.
// The normative reference is docs/ACCURACY.md.

namespace zeus::core {

// Serving tier of a query: how much accuracy the caller allows the
// engine to trade away under load. Wire-encoded as a u8, so the
// enumerator values are part of the protocol (docs/PROTOCOL.md).
enum class QueryTier : int {
  kStrict = 0,      // never degraded; always the plan-time target
  kBalanced = 1,    // at most one band below the requested target
  kBestEffort = 2,  // degrades one band per engine degrade level
};

inline const char* TierName(QueryTier t) {
  switch (t) {
    case QueryTier::kStrict: return "strict";
    case QueryTier::kBalanced: return "balanced";
    case QueryTier::kBestEffort: return "best_effort";
  }
  return "unknown";
}

// Band geometry: targets live on a 0.001 grid; bands are 0.05 wide.
inline constexpr double kBandStep = 0.05;
// The engine never degrades a query below this target, regardless of
// tier or degrade level (a floor for "cheap", not a license for "wrong").
inline constexpr double kMinBandTarget = 0.5;

// The one quantization helper: accuracy → integer milli-units. Every
// accuracy comparison in the system (catalog match, plan-key format,
// band equality) goes through this so float noise cannot split a band.
inline long AccuracyMillis(double accuracy) {
  return std::lround(accuracy * 1000.0);
}

// Quantizes an accuracy target onto the milli grid (the value the
// %.3f plan-key format and the catalog round-trip preserve exactly).
inline double QuantizeAccuracy(double accuracy) {
  return static_cast<double>(AccuracyMillis(accuracy)) / 1000.0;
}

// True when two targets land on the same milli grid point.
inline bool SameAccuracyBand(double a, double b) {
  return AccuracyMillis(a) == AccuracyMillis(b);
}

// Lower boundary of the band a target belongs to: an answer served at
// effective target t must report achieved confidence >= BandFloor(t).
inline double BandFloor(double target) {
  return QuantizeAccuracy(std::max(target - kBandStep, 0.0));
}

// The accuracy target a query actually plans and executes at.
//
//   plan_target    the target parsed from the query (quantized)
//   tier           the caller's serving tier
//   degrade_level  the engine's current degrade level (autoscaler-driven;
//                  0 = no shedding)
//   min_accuracy   per-query floor from QueryOptions (0 = none)
//
// kStrict ignores degradation entirely. kBalanced concedes at most one
// band; kBestEffort concedes one band per level. The result is clamped
// to [max(min_accuracy, kMinBandTarget), plan_target] and re-quantized,
// so the effective target is always a valid band grid point.
inline double EffectiveTarget(double plan_target, QueryTier tier,
                              int degrade_level, double min_accuracy) {
  const double t = QuantizeAccuracy(plan_target);
  if (tier == QueryTier::kStrict || degrade_level <= 0) return t;
  const int steps =
      tier == QueryTier::kBalanced ? std::min(degrade_level, 1) : degrade_level;
  double eff = t - static_cast<double>(steps) * kBandStep;
  const double floor = std::max(QuantizeAccuracy(min_accuracy), kMinBandTarget);
  eff = std::max(eff, std::min(floor, t));
  return QuantizeAccuracy(eff);
}

// Canonical band label for metrics ("0.80", "0.75", ...). Fixed two
// decimals: bands are 0.05 wide so two decimals identify one uniquely.
inline std::string BandLabel(double target) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.2f", QuantizeAccuracy(target));
  return std::string(buf);
}

}  // namespace zeus::core

#endif  // ZEUS_CORE_ACCURACY_H_
