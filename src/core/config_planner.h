#ifndef ZEUS_CORE_CONFIG_PLANNER_H_
#define ZEUS_CORE_CONFIG_PLANNER_H_

#include <vector>

#include "apfg/apfg.h"
#include "core/configuration.h"
#include "core/metrics.h"

namespace zeus::core {

// Configuration planning (§4.2): the one-time pre-processing step that
// measures, for every candidate configuration, its throughput (from the
// cost model) and its accuracy (sliding-window execution on a held-out
// validation split). The resulting table is Table 2 of the paper; the
// per-query maximum over it is the "Maximum Accuracy" column of Table 4.
class ConfigPlanner {
 public:
  struct Options {
    // Profiling draws a positives-dense window sample per configuration
    // (all positive windows on the validation split plus `neg_per_pos`
    // negatives each), capped at `max_windows_per_config`. A plain sliding
    // pass would see almost no positives for large-covered configurations
    // and make the F1 estimates useless for planning.
    int max_windows_per_config = 300;
    double neg_per_pos = 5.0;
    uint64_t seed = 91;
    EvalOptions eval;
  };

  ConfigPlanner(const Options& opts, const CostModel& cost_model)
      : opts_(opts), cost_model_(cost_model) {}

  // Attaches costs and validation F1 to every configuration in `space`.
  // `apfg` must already be trained for `targets`.
  void Profile(ConfigurationSpace* space, apfg::Apfg* apfg,
               const std::vector<const video::Video*>& validation_videos,
               const std::vector<video::ActionClass>& targets) const;

  // Highest validation F1 over the (already profiled) space — Table 4's
  // "Maximum Accuracy".
  static double MaxAccuracy(const ConfigurationSpace& space);

 private:
  Options opts_;
  CostModel cost_model_;
};

}  // namespace zeus::core

#endif  // ZEUS_CORE_CONFIG_PLANNER_H_
