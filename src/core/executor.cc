#include "core/executor.h"

#include <algorithm>

#include "common/timer.h"
#include "rl/env.h"

namespace zeus::core {

RunResult QueryExecutor::Localize(
    const std::vector<const video::Video*>& videos) {
  common::WallTimer timer;
  RunResult result;
  rl::VideoEnv env(videos, &plan_->rl_space, plan_->cache.get(), plan_->targets,
                   plan_->env_opts);
  env.ResetSequential();
  // Modeled cost spent so far, folded incrementally from the invocation
  // log so forced per-video initial steps are charged too.
  double spent = 0.0;
  size_t charged = 0;
  auto charge_logged = [&] {
    const auto& log = env.invocation_log();
    for (; charged < log.size(); ++charged) {
      spent +=
          plan_->rl_space.config(log[charged].first).gpu_seconds_per_invocation;
    }
  };
  while (!env.done()) {
    // Cancellation point: one agent step is the sequential executor's round.
    if (cancel_.cancelled()) {
      result.cancelled = true;
      break;
    }
    int action = plan_->agent->GreedyAction(env.state());
    if (gpu_budget_ > 0.0) {
      // Budget point: stop before an invocation the cost model says
      // cannot fit — the remaining budget can't move the answer.
      charge_logged();
      const double next =
          plan_->rl_space.config(action).gpu_seconds_per_invocation;
      if (spent + next > gpu_budget_) {
        result.budget_exhausted = true;
        break;
      }
    }
    env.Step(action);
  }
  result.masks = env.masks();
  result.total_frames = env.total_frames();
  for (const auto& [config_id, frames] : env.invocation_log()) {
    const Configuration& c = plan_->rl_space.config(config_id);
    result.gpu_seconds += c.gpu_seconds_per_invocation;
    ++result.invocations;
    result.frames_per_config[config_id] += frames;
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

ConfigHistogram SummarizeConfigUsage(const ConfigurationSpace& space,
                                     const RunResult& result) {
  ConfigHistogram h;
  // Cost terciles over the configuration space (by effective throughput).
  std::vector<int> ids;
  for (const Configuration& c : space.configs()) ids.push_back(c.id);
  std::sort(ids.begin(), ids.end(), [&](int a, int b) {
    return space.config(a).throughput_fps > space.config(b).throughput_fps;
  });
  const size_t third = std::max<size_t>(1, ids.size() / 3);
  auto tercile = [&](int id) {
    size_t rank = static_cast<size_t>(
        std::find(ids.begin(), ids.end(), id) - ids.begin());
    if (rank < third) return 0;           // fast
    if (rank < 2 * third) return 1;       // mid
    return 2;                             // slow
  };
  auto resolutions = space.NominalResolutions();
  const int median_res = resolutions[resolutions.size() / 2];

  double total = 0.0;
  double bucket[3] = {0, 0, 0};
  double low = 0.0, high = 0.0;
  for (const auto& [id, frames] : result.frames_per_config) {
    total += frames;
    bucket[tercile(id)] += frames;
    if (space.config(id).nominal_resolution < median_res) {
      low += frames;
    } else {
      high += frames;
    }
  }
  if (total > 0) {
    h.fast_pct = 100.0 * bucket[0] / total;
    h.mid_pct = 100.0 * bucket[1] / total;
    h.slow_pct = 100.0 * bucket[2] / total;
    h.low_res_pct = 100.0 * low / total;
    h.high_res_pct = 100.0 * high / total;
  }
  return h;
}

double EstimateConfidence(const ConfigurationSpace& space,
                          const RunResult& result,
                          double fallback_accuracy) {
  // A configuration whose validation F1 measured exactly zero carries no
  // usable signal (its validation windows held no measurable positives);
  // frames it processed weigh the caller's prior instead, so an answer is
  // never annotated with zero confidence just because the profiling split
  // could not measure the chosen configuration.
  double covered = 0.0;
  double weighted = 0.0;
  for (const auto& [id, frames] : result.frames_per_config) {
    const double f1 = space.config(id).validation_f1;
    covered += static_cast<double>(frames);
    weighted +=
        static_cast<double>(frames) * (f1 > 0.0 ? f1 : fallback_accuracy);
  }
  if (covered <= 0.0) return 0.0;
  // Frames the run never localized (budget early exit, cancellation)
  // contribute zero confidence — the estimate must fall when a budget
  // cuts the run short, never report full-run confidence for a partial
  // answer. A complete run covers every frame, so total == covered.
  const double total =
      std::max(static_cast<double>(result.total_frames), covered);
  return weighted / total;
}

std::vector<std::pair<int, double>> ResolutionUsage(
    const ConfigurationSpace& space, const RunResult& result) {
  std::vector<std::pair<int, double>> out;
  double total = 0.0;
  for (const auto& [id, frames] : result.frames_per_config) {
    (void)id;
    total += frames;
  }
  for (int res : space.NominalResolutions()) {
    double frames = 0.0;
    for (const auto& [id, f] : result.frames_per_config) {
      if (space.config(id).nominal_resolution == res) frames += f;
    }
    out.emplace_back(res, total > 0 ? 100.0 * frames / total : 0.0);
  }
  return out;
}

}  // namespace zeus::core
