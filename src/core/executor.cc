#include "core/executor.h"

#include <algorithm>

#include "common/timer.h"
#include "rl/env.h"

namespace zeus::core {

RunResult QueryExecutor::Localize(
    const std::vector<const video::Video*>& videos) {
  common::WallTimer timer;
  RunResult result;
  rl::VideoEnv env(videos, &plan_->rl_space, plan_->cache.get(), plan_->targets,
                   plan_->env_opts);
  env.ResetSequential();
  while (!env.done()) {
    // Cancellation point: one agent step is the sequential executor's round.
    if (cancel_.cancelled()) {
      result.cancelled = true;
      break;
    }
    int action = plan_->agent->GreedyAction(env.state());
    env.Step(action);
  }
  result.masks = env.masks();
  result.total_frames = env.total_frames();
  for (const auto& [config_id, frames] : env.invocation_log()) {
    const Configuration& c = plan_->rl_space.config(config_id);
    result.gpu_seconds += c.gpu_seconds_per_invocation;
    ++result.invocations;
    result.frames_per_config[config_id] += frames;
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

ConfigHistogram SummarizeConfigUsage(const ConfigurationSpace& space,
                                     const RunResult& result) {
  ConfigHistogram h;
  // Cost terciles over the configuration space (by effective throughput).
  std::vector<int> ids;
  for (const Configuration& c : space.configs()) ids.push_back(c.id);
  std::sort(ids.begin(), ids.end(), [&](int a, int b) {
    return space.config(a).throughput_fps > space.config(b).throughput_fps;
  });
  const size_t third = std::max<size_t>(1, ids.size() / 3);
  auto tercile = [&](int id) {
    size_t rank = static_cast<size_t>(
        std::find(ids.begin(), ids.end(), id) - ids.begin());
    if (rank < third) return 0;           // fast
    if (rank < 2 * third) return 1;       // mid
    return 2;                             // slow
  };
  auto resolutions = space.NominalResolutions();
  const int median_res = resolutions[resolutions.size() / 2];

  double total = 0.0;
  double bucket[3] = {0, 0, 0};
  double low = 0.0, high = 0.0;
  for (const auto& [id, frames] : result.frames_per_config) {
    total += frames;
    bucket[tercile(id)] += frames;
    if (space.config(id).nominal_resolution < median_res) {
      low += frames;
    } else {
      high += frames;
    }
  }
  if (total > 0) {
    h.fast_pct = 100.0 * bucket[0] / total;
    h.mid_pct = 100.0 * bucket[1] / total;
    h.slow_pct = 100.0 * bucket[2] / total;
    h.low_res_pct = 100.0 * low / total;
    h.high_res_pct = 100.0 * high / total;
  }
  return h;
}

std::vector<std::pair<int, double>> ResolutionUsage(
    const ConfigurationSpace& space, const RunResult& result) {
  std::vector<std::pair<int, double>> out;
  double total = 0.0;
  for (const auto& [id, frames] : result.frames_per_config) {
    (void)id;
    total += frames;
  }
  for (int res : space.NominalResolutions()) {
    double frames = 0.0;
    for (const auto& [id, f] : result.frames_per_config) {
      if (space.config(id).nominal_resolution == res) frames += f;
    }
    out.emplace_back(res, total > 0 ? 100.0 * frames / total : 0.0);
  }
  return out;
}

}  // namespace zeus::core
