#include "core/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace zeus::core {

void PrfMetrics::Finalize() {
  precision = (tp + fp) > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  recall = (tp + fn) > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  f1 = (precision + recall) > 0.0
           ? 2.0 * precision * recall / (precision + recall)
           : 0.0;
}

namespace {

// Counts tp/fp/fn/tn over evaluation segments for one video into `m`.
void AccumulateVideo(const video::Video& video,
                     const std::vector<video::ActionClass>& targets,
                     const FrameMask& mask, const EvalOptions& opts,
                     PrfMetrics* m) {
  ZEUS_CHECK(static_cast<int>(mask.size()) == video.num_frames());
  const int n = video.num_frames();
  const int seg = opts.eval_segment_frames;
  for (int start = 0; start < n; start += seg) {
    int end = std::min(n, start + seg);
    int gt_hits = 0, pred_hits = 0;
    for (int f = start; f < end; ++f) {
      if (video.IsActionAny(f, targets)) ++gt_hits;
      if (mask[static_cast<size_t>(f)]) ++pred_hits;
    }
    double span = end - start;
    bool gt_pos = gt_hits / span > opts.iou_threshold;
    bool pred_pos = pred_hits / span > opts.iou_threshold;
    if (gt_pos && pred_pos) ++m->tp;
    else if (!gt_pos && pred_pos) ++m->fp;
    else if (gt_pos && !pred_pos) ++m->fn;
    else ++m->tn;
  }
}

}  // namespace

PrfMetrics EvaluateVideo(const video::Video& video,
                         const std::vector<video::ActionClass>& targets,
                         const FrameMask& mask, const EvalOptions& opts) {
  PrfMetrics m;
  AccumulateVideo(video, targets, mask, opts, &m);
  m.Finalize();
  return m;
}

PrfMetrics EvaluateVideos(const std::vector<const video::Video*>& videos,
                          const std::vector<video::ActionClass>& targets,
                          const std::vector<FrameMask>& masks,
                          const EvalOptions& opts) {
  ZEUS_CHECK(videos.size() == masks.size());
  PrfMetrics m;
  for (size_t i = 0; i < videos.size(); ++i) {
    AccumulateVideo(*videos[i], targets, masks[i], opts, &m);
  }
  m.Finalize();
  return m;
}

double WindowAccuracy(const video::Video& video,
                      const std::vector<video::ActionClass>& targets,
                      const FrameMask& mask, int begin, int end) {
  begin = std::max(0, begin);
  end = std::min(video.num_frames(), end);
  long tp = 0, fp = 0, fn = 0;
  for (int f = begin; f < end; ++f) {
    bool gt = video.IsActionAny(f, targets);
    bool pred = mask[static_cast<size_t>(f)] != 0;
    if (gt && pred) ++tp;
    else if (!gt && pred) ++fp;
    else if (gt && !pred) ++fn;
  }
  if (tp + fp + fn == 0) return 1.0;  // empty window, nothing missed
  double precision = (tp + fp) > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  double recall = (tp + fn) > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

std::vector<video::ActionInstance> MaskToInstances(const FrameMask& mask) {
  std::vector<video::ActionInstance> out;
  const int n = static_cast<int>(mask.size());
  int i = 0;
  while (i < n) {
    if (!mask[static_cast<size_t>(i)]) {
      ++i;
      continue;
    }
    int j = i;
    while (j < n && mask[static_cast<size_t>(j)]) ++j;
    out.push_back({i, j, video::ActionClass::kNone});
    i = j;
  }
  return out;
}

double MeanInstanceIou(const video::Video& video,
                       const std::vector<video::ActionClass>& targets,
                       const FrameMask& mask) {
  auto preds = MaskToInstances(mask);
  double total = 0.0;
  int count = 0;
  for (const video::ActionInstance& gt : video::ExtractInstances(video)) {
    if (std::find(targets.begin(), targets.end(), gt.cls) == targets.end())
      continue;
    double best = 0.0;
    for (const video::ActionInstance& p : preds) {
      int inter = std::min(gt.end, p.end) - std::max(gt.start, p.start);
      if (inter <= 0) continue;
      int uni = std::max(gt.end, p.end) - std::min(gt.start, p.start);
      best = std::max(best, static_cast<double>(inter) / uni);
    }
    total += best;
    ++count;
  }
  return count ? total / count : 0.0;
}

}  // namespace zeus::core
