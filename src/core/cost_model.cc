#include "core/cost_model.h"

// CostModel is header-only; translation unit kept for build uniformity.
