#include "core/localizer.h"

namespace zeus::core {

Localizer::~Localizer() = default;

}  // namespace zeus::core
