#include "engine/shard_ring.h"

#include <algorithm>

#include "common/stringutil.h"

namespace zeus::engine {

uint64_t ShardRing::Hash(const std::string& key) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  // FNV-1a alone leaves similar short keys ("shard-0#1", "shard-0#2")
  // correlated in the high bits the ring orders by; the splitmix64
  // finalizer spreads them uniformly.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

ShardRing::ShardRing(int num_shards, int vnodes_per_shard)
    : num_shards_(std::max(1, num_shards)) {
  vnodes_per_shard = std::max(1, vnodes_per_shard);
  ring_.reserve(static_cast<size_t>(num_shards_) * vnodes_per_shard);
  for (int s = 0; s < num_shards_; ++s) {
    for (int v = 0; v < vnodes_per_shard; ++v) {
      ring_.emplace_back(Hash(common::Format("shard-%d#%d", s, v)), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

ShardRing::ShardRing(const std::vector<int>& shard_ids, int vnodes_per_shard)
    : num_shards_(std::max<int>(1, static_cast<int>(shard_ids.size()))) {
  vnodes_per_shard = std::max(1, vnodes_per_shard);
  if (shard_ids.empty()) {
    // Degenerate but total: an empty member set routes everything to 0,
    // matching ShardRing(1). Callers that care check membership first.
    for (int v = 0; v < vnodes_per_shard; ++v) {
      ring_.emplace_back(Hash(common::Format("shard-%d#%d", 0, v)), 0);
    }
  } else {
    ring_.reserve(shard_ids.size() * static_cast<size_t>(vnodes_per_shard));
    for (int id : shard_ids) {
      // Same label scheme as the count constructor, so ShardRing({0..n-1})
      // is ring-point-identical to ShardRing(n).
      for (int v = 0; v < vnodes_per_shard; ++v) {
        ring_.emplace_back(Hash(common::Format("shard-%d#%d", id, v)), id);
      }
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::vector<ShardRing::KeyMove> ShardRing::DiffOwners(
    const ShardRing& to, const std::vector<std::string>& keys) const {
  std::vector<KeyMove> moves;
  for (const std::string& key : keys) {
    const int old_shard = ShardFor(key);
    const int new_shard = to.ShardFor(key);
    if (old_shard != new_shard) moves.push_back({key, old_shard, new_shard});
  }
  return moves;
}

std::vector<int> ShardRing::ShardsFor(const std::string& key, int n) const {
  n = std::max(1, std::min(n, num_shards_));
  std::vector<int> shards;
  shards.reserve(static_cast<size_t>(n));
  if (num_shards_ == 1) {
    shards.push_back(ring_.front().second);
    return shards;
  }
  const uint64_t h = Hash(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, 0),
                             [](const std::pair<uint64_t, int>& a,
                                const std::pair<uint64_t, int>& b) {
                               return a.first < b.first;
                             });
  if (it == ring_.end()) it = ring_.begin();
  // Walk clockwise collecting distinct owners; every member appears within
  // one full lap, so the loop is bounded by ring_.size().
  for (size_t steps = 0; steps < ring_.size() && static_cast<int>(shards.size()) < n;
       ++steps) {
    const int id = it->second;
    if (std::find(shards.begin(), shards.end(), id) == shards.end()) {
      shards.push_back(id);
    }
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  return shards;
}

int ShardRing::ShardFor(const std::string& key) const {
  // With one member every key has the same owner (which need not be 0
  // under the id-set constructor).
  if (num_shards_ == 1) return ring_.front().second;
  const uint64_t h = Hash(key);
  // First virtual node at or after h, wrapping past the top of the ring.
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, 0),
                             [](const std::pair<uint64_t, int>& a,
                                const std::pair<uint64_t, int>& b) {
                               return a.first < b.first;
                             });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace zeus::engine
