#ifndef ZEUS_ENGINE_EXECUTOR_FACTORY_H_
#define ZEUS_ENGINE_EXECUTOR_FACTORY_H_

#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "core/accuracy.h"
#include "core/localizer.h"
#include "core/query_planner.h"
#include "video/dataset.h"

namespace zeus::engine {

// Which localizer a query runs on. kAuto (the default) picks the
// inter-video batched Zeus-RL executor (§6.4) whenever the query spans more
// than one video and the sequential executor otherwise. The four baselines
// plug into the same execution path so apples-to-apples comparisons run
// through exactly the machinery real queries use.
enum class ExecutorKind {
  kAuto,
  kSequential,  // QueryExecutor (Zeus-RL, one video at a time)
  kBatched,     // BatchedExecutor (Zeus-RL, inter-video batching)
  kSliding,     // Zeus-Sliding baseline
  kHeuristic,   // Zeus-Heuristic baseline
  kFramePp,     // Frame-PP baseline (trains a 2D classifier first)
  kSegmentPp,   // Segment-PP baseline (trains a lite filter first)
};

const char* ExecutorKindName(ExecutorKind kind);

// Parses "auto", "sequential", "batched", "sliding", "heuristic",
// "frame_pp", "segment_pp" (case-insensitive). Returns kAuto on unknown
// input with *ok (when given) set to false.
ExecutorKind ParseExecutorKind(const std::string& name, bool* ok = nullptr);

// Per-query execution knobs, resolved by ExecutorFactory. (Submit() also
// reads the scheduling fields; see engine::QueryOptions.)
struct ExecutionOptions {
  ExecutorKind executor = ExecutorKind::kAuto;
  // Admission priority: higher runs earlier. Ties keep FIFO order within a
  // dataset and round-robin fairness across datasets (see AdmissionQueue).
  int priority = 0;
  // Anti-starvation aging: while queued, the query gains one priority band
  // for every `aging_threshold` dispatches it waits through, so a
  // low-priority ticket under a continuous high-priority flood still
  // completes within a bounded number of dispatches. 0 (default) disables
  // aging for this query. See AdmissionQueue for the exact rules.
  int aging_threshold = 0;
  // Serving tier: how much accuracy the engine may trade away under load
  // (docs/ACCURACY.md). kStrict (default) always plans and executes at
  // the query's own accuracy target; kBalanced concedes at most one
  // band; kBestEffort concedes one band per engine degrade level.
  core::QueryTier tier = core::QueryTier::kStrict;
  // Floor for tier-driven degradation: the effective accuracy target
  // never drops below this (0 = only the global kMinBandTarget floor).
  double min_accuracy = 0.0;
  // Modeled gpu-seconds budget for the localization itself. When > 0 and
  // the tier is not kStrict, the executors early-exit at the round
  // boundary where the cost model says the next round cannot fit; the
  // answer is annotated with its (reduced) achieved confidence. 0 = no
  // budget. Strict-tier queries ignore it so their answers stay
  // bit-identical to an unloaded run.
  double max_latency_budget = 0.0;
  // BatchedExecutor: maximum invocations fused into one modeled launch.
  int max_batch = 16;
  // BatchedExecutor lockstep stepping pool; nullptr falls back to
  // tensor::GlobalComputeContext().pool (a hardware-concurrency pool by
  // default).
  common::ThreadPool* step_pool = nullptr;
  // Seed for the PP baselines' training RNG (their training is part of the
  // method under comparison, so it is owned by the factory-made localizer).
  uint64_t baseline_seed = 7;
};

// Builds ready-to-run localizers from a trained plan. Stateless; every
// Make() call returns a fresh localizer, so concurrent queries never share
// executor state (they share only the plan, whose inference path is
// thread-safe).
class ExecutorFactory {
 public:
  // Resolves kAuto against the query's video count.
  static ExecutorKind Resolve(const ExecutionOptions& opts,
                              size_t num_videos);

  // Builds the localizer for `plan`. The PP baselines additionally train
  // their predicate models on the dataset's train split (that cost is part
  // of the baseline method). The returned localizer borrows `plan` and
  // `dataset`, which must outlive it.
  static common::Result<std::unique_ptr<core::Localizer>> Make(
      const ExecutionOptions& opts, const core::QueryPlan* plan,
      const video::SyntheticDataset* dataset, size_t num_videos);

  // One-line description of what Resolve/Make would run — surfaced by
  // EXPLAIN so users can see the chosen executor without executing.
  static std::string Describe(const ExecutionOptions& opts,
                              size_t num_videos);
};

}  // namespace zeus::engine

#endif  // ZEUS_ENGINE_EXECUTOR_FACTORY_H_
