#include "engine/plan_cache.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "common/fileutil.h"
#include "common/logging.h"
#include "common/stringutil.h"
#include "common/timer.h"
#include "core/plan_io.h"

namespace zeus::engine {

namespace {

// Catalog sidecar format, one file per checkpoint (<prefix>.key):
//   zeus-plan-key
//   <raw plan key, verbatim>
//   family <int>
// The sanitized checkpoint filename is lossy, so the raw key — and the
// dataset family PlanIo::Load needs — must be recorded separately for the
// warm-start scan to find its way back.
constexpr char kCatalogMagic[] = "zeus-plan-key";

struct CatalogEntry {
  std::string key;
  video::DatasetFamily family = video::DatasetFamily::kBdd100kLike;
};

bool ReadCatalogEntry(const std::filesystem::path& path, CatalogEntry* out) {
  std::ifstream in(path);
  std::string magic;
  if (!in.is_open() || !std::getline(in, magic) || magic != kCatalogMagic) {
    return false;
  }
  if (!std::getline(in, out->key) || out->key.empty()) return false;
  std::string family_line;
  if (!std::getline(in, family_line) ||
      !common::StartsWith(family_line, "family ")) {
    return false;
  }
  const int family = std::atoi(family_line.c_str() + 7);
  if (family < 0 || family > static_cast<int>(video::DatasetFamily::kKittiLike)) {
    return false;
  }
  out->family = static_cast<video::DatasetFamily>(family);
  return true;
}

}  // namespace

PlanCache::PlanCache(const Options& opts,
                     core::QueryPlanner::Options planner_options)
    : opts_(opts), planner_options_(std::move(planner_options)) {
  if (opts_.capacity < 1) opts_.capacity = 1;
  if (!opts_.persist_dir.empty()) {
    // Create the checkpoint directory up front; otherwise a missing path
    // would silently degrade persistence into replan-on-every-restart
    // (Save failures only warn).
    std::error_code ec;
    std::filesystem::create_directories(opts_.persist_dir, ec);
    if (ec) {
      ZEUS_LOG(Warning) << "cannot create plan dir '" << opts_.persist_dir
                        << "': " << ec.message();
    }
  }
}

std::string PlanCache::FilePrefix(const std::string& key) const {
  std::string safe;
  safe.reserve(key.size());
  for (char c : key) {
    safe.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  // The crc suffix keeps distinct keys distinct after sanitization.
  return opts_.persist_dir + "/" +
         common::Format("%s-%08x", safe.c_str(),
                        common::Crc32(0, key.data(), key.size()));
}

std::shared_ptr<core::QueryPlan> PlanCache::Peek(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second->state != EntryState::kReady) {
    return nullptr;
  }
  return it->second->plan;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& key : lru_) entries_.erase(key);
  lru_.clear();
}

void PlanCache::TouchLocked(const std::string& key) {
  lru_.remove(key);
  lru_.push_front(key);
  while (lru_.size() > opts_.capacity) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ZEUS_LOG(Debug) << "plan cache evicted '" << victim << "'";
  }
}

common::Result<PlanCache::Lookup> PlanCache::GetOrPlan(
    const std::string& key, const video::SyntheticDataset* dataset,
    const std::vector<video::ActionClass>& targets, double accuracy_target) {
  std::shared_ptr<Entry> entry;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second;
      if (entry->state == EntryState::kPlanning) {
        // Single flight: join the in-flight run. The entry is held by
        // shared_ptr, so the owner's publication is observable even after
        // a kFailed publication erases the map entry.
        cv_.wait(lock, [&] { return entry->state != EntryState::kPlanning; });
      }
      if (entry->state == EntryState::kReady) {
        cache_hits_.fetch_add(1);
        TouchLocked(key);
        return Lookup{entry->plan, 0.0};
      }
      // The flight we joined failed. Its owner already erased the map
      // entry, so the next GetOrPlan (not us) retries planning; we report
      // the shared failure.
      return entry->status;
    }
    // Miss: we become the flight owner.
    entry = std::make_shared<Entry>();
    entries_[key] = entry;
  }

  // We own the (single) flight for this key. Everything below runs
  // unlocked; waiters block on cv_ until the publication at the bottom.
  std::shared_ptr<core::QueryPlan> plan;
  double plan_seconds = 0.0;
  common::Status error = common::Status::Ok();

  if (!opts_.persist_dir.empty()) {
    auto loaded = core::PlanIo::Load(FilePrefix(key),
                                     dataset->profile().family,
                                     planner_options_);
    if (loaded.ok()) {
      plan = std::make_shared<core::QueryPlan>(std::move(loaded).value());
      disk_loads_.fetch_add(1);
      ZEUS_LOG(Info) << "plan '" << key << "' loaded from disk";
    }
  }

  if (plan == nullptr) {
    common::WallTimer timer;
    planner_runs_.fetch_add(1);
    core::QueryPlanner planner(dataset, planner_options_);
    auto planned = planner.PlanForClasses(targets, accuracy_target);
    if (planned.ok()) {
      plan = std::make_shared<core::QueryPlan>(std::move(planned).value());
      plan_seconds = timer.ElapsedSeconds();
      if (!opts_.persist_dir.empty()) {
        const std::string prefix = FilePrefix(key);
        common::Status saved = core::PlanIo::Save(prefix, *plan);
        if (!saved.ok()) {
          ZEUS_LOG(Warning) << "plan persistence failed for '" << key
                            << "': " << saved.ToString();
        } else {
          // Catalog entry: lets WarmUp() recover the raw key (and the
          // family Load needs) from the sanitized checkpoint name. Written
          // atomically (temp + rename) and only after a successful Save,
          // so the sidecar's existence implies a complete checkpoint — a
          // crashed shard can never leave a torn catalog entry.
          const std::string sidecar =
              std::string(kCatalogMagic) + "\n" + key + "\n" + "family " +
              std::to_string(static_cast<int>(dataset->profile().family)) +
              "\n";
          common::Status cat =
              common::AtomicWriteFile(prefix + ".key", sidecar);
          if (!cat.ok()) {
            ZEUS_LOG(Warning) << "plan catalog write failed for '" << key
                              << "': " << cat.ToString();
          }
        }
      }
    } else {
      error = planned.status();
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (plan != nullptr) {
      entry->state = EntryState::kReady;
      entry->plan = plan;
      TouchLocked(key);
    } else {
      entry->state = EntryState::kFailed;
      entry->status = error;
      // Forget the failure so the next request can retry planning.
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == entry) entries_.erase(it);
    }
  }
  cv_.notify_all();

  if (plan == nullptr) return error;
  return Lookup{std::move(plan), plan_seconds};
}

size_t PlanCache::WarmUp(
    const std::function<bool(const std::string& key)>& filter) {
  if (opts_.persist_dir.empty()) return 0;

  // Collect catalog entries first; the directory scan needs no lock.
  // Iterate with explicit error codes throughout — a filesystem failing
  // mid-scan (concurrent removal, remount, network hiccup) must degrade
  // to a warning, not throw std::filesystem_error out of an engine
  // constructor or a live Resize.
  std::vector<CatalogEntry> candidates;
  std::error_code ec;
  std::filesystem::directory_iterator it(opts_.persist_dir, ec);
  const std::filesystem::directory_iterator end;
  for (; !ec && it != end; it.increment(ec)) {
    const std::filesystem::path path = it->path();
    if (path.extension() != ".key") continue;
    CatalogEntry entry;
    if (!ReadCatalogEntry(path, &entry)) {
      ZEUS_LOG(Warning) << "skipping unreadable plan catalog entry "
                        << path.string();
      continue;
    }
    if (filter && !filter(entry.key)) continue;
    candidates.push_back(std::move(entry));
  }
  if (ec) {
    ZEUS_LOG(Warning) << "plan warmup cannot scan '" << opts_.persist_dir
                      << "': " << ec.message();
    return 0;
  }

  size_t loaded = 0;
  for (const CatalogEntry& entry : candidates) {
    // Reserve the key with an in-flight entry so a concurrent GetOrPlan
    // joins this load instead of racing it; skip keys already known.
    std::shared_ptr<Entry> slot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (entries_.count(entry.key)) continue;
      slot = std::make_shared<Entry>();
      entries_[entry.key] = slot;
    }
    auto loaded_plan = core::PlanIo::Load(FilePrefix(entry.key), entry.family,
                                          planner_options_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (loaded_plan.ok()) {
        slot->state = EntryState::kReady;
        slot->plan = std::make_shared<core::QueryPlan>(
            std::move(loaded_plan).value());
        disk_loads_.fetch_add(1);
        TouchLocked(entry.key);
        ++loaded;
      } else {
        slot->state = EntryState::kFailed;
        slot->status = loaded_plan.status();
        auto it = entries_.find(entry.key);
        if (it != entries_.end() && it->second == slot) entries_.erase(it);
        ZEUS_LOG(Warning) << "plan warmup failed for '" << entry.key
                          << "': " << loaded_plan.status().ToString();
      }
    }
    cv_.notify_all();
  }
  if (loaded > 0) {
    ZEUS_LOG(Info) << "plan cache warmed with " << loaded << " plan(s) from '"
                   << opts_.persist_dir << "'";
  }
  return loaded;
}

bool PlanCache::Put(const std::string& key,
                    std::shared_ptr<core::QueryPlan> plan) {
  if (plan == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(key)) return false;
  auto entry = std::make_shared<Entry>();
  entry->state = EntryState::kReady;
  entry->plan = std::move(plan);
  entries_[key] = std::move(entry);
  TouchLocked(key);
  return true;
}

std::vector<std::pair<std::string, std::shared_ptr<core::QueryPlan>>>
PlanCache::Snapshot(
    const std::function<bool(const std::string& key)>& pred) const {
  std::vector<std::pair<std::string, std::shared_ptr<core::QueryPlan>>> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) {
    if (entry->state != EntryState::kReady) continue;
    if (pred && !pred(key)) continue;
    out.emplace_back(key, entry->plan);
  }
  return out;
}

size_t PlanCache::EraseIf(
    const std::function<bool(const std::string& key)>& pred) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (pred && !pred(*it)) {
      ++it;
      continue;
    }
    entries_.erase(*it);
    it = lru_.erase(it);
    ++removed;
  }
  return removed;
}

}  // namespace zeus::engine
