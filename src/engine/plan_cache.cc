#include "engine/plan_cache.h"

#include <algorithm>
#include <cctype>
#include <filesystem>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/stringutil.h"
#include "common/timer.h"
#include "core/plan_io.h"

namespace zeus::engine {

PlanCache::PlanCache(const Options& opts,
                     core::QueryPlanner::Options planner_options)
    : opts_(opts), planner_options_(std::move(planner_options)) {
  if (opts_.capacity < 1) opts_.capacity = 1;
  if (!opts_.persist_dir.empty()) {
    // Create the checkpoint directory up front; otherwise a missing path
    // would silently degrade persistence into replan-on-every-restart
    // (Save failures only warn).
    std::error_code ec;
    std::filesystem::create_directories(opts_.persist_dir, ec);
    if (ec) {
      ZEUS_LOG(Warning) << "cannot create plan dir '" << opts_.persist_dir
                        << "': " << ec.message();
    }
  }
}

std::string PlanCache::FilePrefix(const std::string& key) const {
  std::string safe;
  safe.reserve(key.size());
  for (char c : key) {
    safe.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  // The crc suffix keeps distinct keys distinct after sanitization.
  return opts_.persist_dir + "/" +
         common::Format("%s-%08x", safe.c_str(),
                        common::Crc32(0, key.data(), key.size()));
}

std::shared_ptr<core::QueryPlan> PlanCache::Peek(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second->state != EntryState::kReady) {
    return nullptr;
  }
  return it->second->plan;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& key : lru_) entries_.erase(key);
  lru_.clear();
}

void PlanCache::TouchLocked(const std::string& key) {
  lru_.remove(key);
  lru_.push_front(key);
  while (lru_.size() > opts_.capacity) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ZEUS_LOG(Debug) << "plan cache evicted '" << victim << "'";
  }
}

common::Result<PlanCache::Lookup> PlanCache::GetOrPlan(
    const std::string& key, const video::SyntheticDataset* dataset,
    const std::vector<video::ActionClass>& targets, double accuracy_target) {
  std::shared_ptr<Entry> entry;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second;
      if (entry->state == EntryState::kPlanning) {
        // Single flight: join the in-flight run. The entry is held by
        // shared_ptr, so the owner's publication is observable even after
        // a kFailed publication erases the map entry.
        cv_.wait(lock, [&] { return entry->state != EntryState::kPlanning; });
      }
      if (entry->state == EntryState::kReady) {
        TouchLocked(key);
        return Lookup{entry->plan, 0.0};
      }
      // The flight we joined failed. Its owner already erased the map
      // entry, so the next GetOrPlan (not us) retries planning; we report
      // the shared failure.
      return entry->status;
    }
    // Miss: we become the flight owner.
    entry = std::make_shared<Entry>();
    entries_[key] = entry;
  }

  // We own the (single) flight for this key. Everything below runs
  // unlocked; waiters block on cv_ until the publication at the bottom.
  std::shared_ptr<core::QueryPlan> plan;
  double plan_seconds = 0.0;
  common::Status error = common::Status::Ok();

  if (!opts_.persist_dir.empty()) {
    auto loaded = core::PlanIo::Load(FilePrefix(key),
                                     dataset->profile().family,
                                     planner_options_);
    if (loaded.ok()) {
      plan = std::make_shared<core::QueryPlan>(std::move(loaded).value());
      disk_loads_.fetch_add(1);
      ZEUS_LOG(Info) << "plan '" << key << "' loaded from disk";
    }
  }

  if (plan == nullptr) {
    common::WallTimer timer;
    planner_runs_.fetch_add(1);
    core::QueryPlanner planner(dataset, planner_options_);
    auto planned = planner.PlanForClasses(targets, accuracy_target);
    if (planned.ok()) {
      plan = std::make_shared<core::QueryPlan>(std::move(planned).value());
      plan_seconds = timer.ElapsedSeconds();
      if (!opts_.persist_dir.empty()) {
        common::Status saved = core::PlanIo::Save(FilePrefix(key), *plan);
        if (!saved.ok()) {
          ZEUS_LOG(Warning) << "plan persistence failed for '" << key
                            << "': " << saved.ToString();
        }
      }
    } else {
      error = planned.status();
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (plan != nullptr) {
      entry->state = EntryState::kReady;
      entry->plan = plan;
      TouchLocked(key);
    } else {
      entry->state = EntryState::kFailed;
      entry->status = error;
      // Forget the failure so the next request can retry planning.
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == entry) entries_.erase(it);
    }
  }
  cv_.notify_all();

  if (plan == nullptr) return error;
  return Lookup{std::move(plan), plan_seconds};
}

}  // namespace zeus::engine
