#ifndef ZEUS_ENGINE_QUERY_ENGINE_H_
#define ZEUS_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/query.h"
#include "engine/admission_queue.h"
#include "engine/executor_factory.h"
#include "engine/metrics.h"
#include "engine/plan_cache.h"
#include "video/dataset.h"

namespace zeus::engine {

// Per-submission options: execution knobs plus the scheduling class the
// admission queue reads (`priority`, higher = earlier; ties are FIFO within
// a dataset and weighted round-robin across datasets).
using QueryOptions = ExecutionOptions;

// Certain-answer annotation the cluster attaches to every served result.
// kCertain: the serving replica's plan/dataset epoch matched the replica
// group's committed epoch at serve time, so every live replica would return
// this exact answer. kDegraded: a re-home or replica catch-up was mid-flight
// and the serving replica's epoch diverged — the answer is still computed
// over the full (immutable, deterministic) dataset, but replicas might
// disagree until catch-up completes; `QueryResult::divergence` names why.
// In-process execution (no cluster) always serves kCertain.
enum class Consistency : uint8_t {
  kCertain = 0,
  kDegraded = 1,
};

const char* ConsistencyName(Consistency c);

// Everything one executed query produces. (ZeusDb re-exports this type; it
// lives here so the engine layer has no dependency on the facade.)
struct QueryResult {
  core::ActionQuery query;
  // Localized segments per test video: (video id, [start, end)).
  struct Segment {
    int video_id = 0;
    int start = 0;
    int end = 0;
  };
  std::vector<Segment> segments;
  core::PrfMetrics metrics;
  double throughput_fps = 0.0;
  double gpu_seconds = 0.0;
  double wall_seconds = 0.0;
  double plan_seconds = 0.0;  // 0 when the plan was cached (memory or disk)

  // Name of the localizer that ran (e.g. "Zeus-RL-Batched"). Empty for
  // EXPLAIN queries.
  std::string executor;

  // For EXPLAIN queries: a human-readable plan description including the
  // executor the factory would choose. Empty for normal execution.
  std::string explanation;

  // Certain-answer annotation (see Consistency above). `epoch` is the
  // serving shard's applied plan/dataset epoch — 0 when the result was not
  // served through the cluster. `divergence` is empty iff kCertain.
  Consistency consistency = Consistency::kCertain;
  std::string divergence;
  uint64_t epoch = 0;

  // Accuracy annotation (docs/ACCURACY.md) — orthogonal to the epoch
  // contract above: `consistency` says whether replicas would agree on
  // this answer, these fields say how accurate the answer itself is.
  // `tier` is the tier the query ran under; `accuracy_band` is the
  // effective accuracy target it was planned and executed at (== the
  // query's own target unless tier-driven degradation lowered it);
  // `achieved_confidence` is the cost model's estimate of the accuracy
  // actually achieved (core::EstimateConfidence).
  core::QueryTier tier = core::QueryTier::kStrict;
  double accuracy_band = 0.0;
  double achieved_confidence = 0.0;
  // True when a latency budget early-exited localization rounds; the
  // confidence annotation reflects the reduced coverage.
  bool budget_exhausted = false;

  // Live-stream annotation (docs/ARCHITECTURE.md "Live streams"): the
  // covered frame range — segments were filtered to [window_begin,
  // window_end) intersections — and the dataset growth epoch of the
  // snapshot this answer was computed over. Frozen datasets report their
  // fixed length and frame_epoch 0; the fields are filled for every
  // result, so a one-shot answer and a subscriber's incremental answer
  // over the same prefix are comparable field for field.
  long window_begin = 0;
  long window_end = 0;
  uint64_t frame_epoch = 0;
};

inline bool operator==(const QueryResult::Segment& a,
                       const QueryResult::Segment& b) {
  return a.video_id == b.video_id && a.start == b.start && a.end == b.end;
}
inline bool operator!=(const QueryResult::Segment& a,
                       const QueryResult::Segment& b) {
  return !(a == b);
}

// Exact localization identity: same segments, same boundaries, same order.
// The invariant every executor/concurrency combination must preserve.
inline bool SameSegments(const QueryResult& a, const QueryResult& b) {
  return a.segments == b.segments;
}

// Lifecycle of a submitted query. Progress is coarse-grained: planning
// dominates a cold query by orders of magnitude, so the useful signal is
// which phase the query is in, not a percentage.
enum class QueryState {
  kQueued,     // admitted, waiting for a worker
  kPlanning,   // looking up / training the plan
  kExecuting,  // localizer running on the test split
  kDone,
  kFailed,
  kCancelled,
};

const char* QueryStateName(QueryState state);

// Handle to an asynchronously submitted query. Cheap to copy (shared
// state); safe to poll from any thread.
class QueryTicket {
 public:
  QueryState state() const;
  // Monotone in [0, 1]; 1.0 exactly when the ticket is terminal.
  double progress() const;
  // True once the ticket reached kDone / kFailed / kCancelled.
  bool done() const;

  // Requests cooperative cancellation. A queued query is dropped before it
  // starts; a running query is cut at the next phase boundary, and a query
  // already inside the localizer aborts at the next lockstep round (the
  // token is threaded into the executors), so long localizations stop
  // within one round. Cancelled tickets resolve to StatusCode::kCancelled.
  void Cancel();

  // Blocks until the ticket is terminal and returns the outcome. The
  // reference stays valid for the lifetime of any copy of the ticket.
  const common::Result<QueryResult>& Wait() const;

 private:
  friend class QueryEngine;
  struct Shared;
  explicit QueryTicket(std::shared_ptr<Shared> shared)
      : shared_(std::move(shared)) {}

  std::shared_ptr<Shared> shared_;
};

// What one applied append/growth did to a streamable dataset.
struct AppendOutcome {
  uint64_t frame_epoch = 0;  // dataset growth epoch after the append
  long stream_length = 0;    // per-test-video frame count after the append
  long appended = 0;         // frames actually added (0 = idempotent replay)
};

// One incremental answer published to a subscription. `seq` is 1-based and
// strictly increasing per subscription; a gap between consecutively
// delivered updates means the bounded buffer dropped intermediates for a
// slow consumer (each update covers its full window, so drops conflate
// toward the freshest answer — they never lose frames).
struct StreamUpdate {
  uint64_t seq = 0;
  QueryResult result;
};

// Per-subscription options: how each window re-execution runs, how much of
// the stream it covers, and how many undelivered updates to hold.
struct SubscribeOptions {
  // Execution knobs for every window run — the same admission queue as
  // one-shot queries reads priority/tier from here, so subscriptions
  // compete under the normal fairness and displacement rules.
  ExecutionOptions exec;
  // Sliding window, in frames: each re-execution keeps segments
  // intersecting [max(0, stream_length - window_frames), stream_length).
  // 0 = the full prefix from frame 0 — the mode whose incremental results
  // are bit-identical to a cold one-shot query over the same prefix.
  long window_frames = 0;
  // Bounded undelivered-result buffer; the oldest update is dropped (and
  // counted) when a consumer falls this far behind.
  size_t max_buffered = 16;
};

// Engine-internal shared state of one subscription (definition in
// query_engine.cc; the ticket and the engine share ownership).
struct StreamSubState;

// Handle to a live SubscribeQuery: a standing query whose trained plan is
// re-executed over the current window every time the dataset's frame epoch
// advances. Cheap to copy (shared state); safe to poll from any thread.
class SubscriptionTicket {
 public:
  uint64_t id() const;
  // Blocks until an update with seq > after_seq is available and returns
  // the oldest such update. Passing the last delivered seq makes this an
  // exactly-once cursor; passing 0 re-reads from the oldest buffered
  // update (how a re-attached subscriber catches up after failover).
  // Returns kUnavailable on timeout with the subscription still live,
  // kCancelled once cancelled and drained, or the terminal error if a
  // window run failed.
  common::Result<StreamUpdate> Next(uint64_t after_seq, int timeout_ms) const;
  // Stops the subscription: cuts any in-flight window run at its next
  // cancellation point and stops future re-arms. Already-buffered updates
  // remain readable through Next() until drained.
  void Cancel();
  bool cancelled() const;
  // Highest published seq (0 before the first window completes).
  uint64_t last_seq() const;
  // Updates dropped by the bounded buffer (slow consumer).
  long dropped() const;

 private:
  friend class QueryEngine;
  explicit SubscriptionTicket(std::shared_ptr<StreamSubState> shared)
      : shared_(std::move(shared)) {}

  std::shared_ptr<StreamSubState> shared_;
};

// The concurrent query engine behind ZeusDb: a registry of datasets, a
// single-flight PlanCache, an ExecutorFactory, and a worker pool draining a
// bounded, priority- and fairness-aware admission queue (AdmissionQueue:
// QueryOptions::priority first, weighted round-robin across datasets on
// ties). Multi-shard serving stacks EngineGroup on top of N of these.
//
//   QueryEngine engine(options);
//   engine.RegisterDataset("bdd", std::move(dataset));
//   auto ticket = engine.Submit("bdd", "SELECT ... WHERE ...");
//   ... // poll ticket.value().state() / progress(), or Cancel()
//   const auto& result = ticket.value().Wait();
//
// Execute() is the blocking convenience wrapper: it runs the same pipeline
// inline on the caller's thread (it still shares the plan cache and its
// single-flight discipline, so N blocking callers of one query train its
// plan once).
class QueryEngine {
 public:
  struct Options {
    // Worker threads draining the admission queue. Each runs one query at
    // a time end to end; intra-query parallelism comes from the compute
    // pool (tensor::GlobalComputeContext()), which workers share.
    int num_workers = 2;
    // Bounded admission queue: Submit() fails with kResourceExhausted when
    // this many tickets are already waiting (running queries don't count).
    int max_pending = 32;
    PlanCache::Options cache;
    core::QueryPlanner::Options planner;
    // Engine-wide default execution options; Submit/Execute overloads can
    // override per query.
    ExecutionOptions exec;
  };

  QueryEngine();  // default Options
  explicit QueryEngine(Options options);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Takes ownership of the dataset under `name`.
  common::Status RegisterDataset(const std::string& name,
                                 video::SyntheticDataset dataset);
  // Shared-ownership registration: how EngineGroup::Resize moves a dataset
  // to its new home shard without copying it — the old shard keeps serving
  // its in-flight tail from the same underlying object.
  common::Status RegisterDataset(
      const std::string& name,
      std::shared_ptr<video::SyntheticDataset> dataset);
  bool HasDataset(const std::string& name) const;
  const video::SyntheticDataset* dataset(const std::string& name) const;
  // Shared handle to a registered dataset (nullptr when absent).
  std::shared_ptr<video::SyntheticDataset> ShareDataset(
      const std::string& name) const;
  // Unregisters `name`. Queries already holding the shared dataset handle
  // finish unaffected; new submissions fail with kNotFound. Callers are
  // expected to drain first (DrainDataset) so no queued ticket is
  // stranded.
  void RemoveDataset(const std::string& name);
  // Names of all registered datasets (Resize enumerates these to diff ring
  // ownership).
  std::vector<std::string> dataset_names() const;

  // Blocks until no queued or running query references `name`. New
  // submissions for `name` are NOT fenced — the caller must stop routing
  // traffic here first (EngineGroup flips the ring before draining).
  void DrainDataset(const std::string& name);

  // Blocks until the queue is empty and nothing is running — the graceful
  // shutdown hook a shard server calls between "stop accepting work" and
  // "exit" (cluster/shard_server.h). Like DrainDataset, submissions are
  // not fenced; the caller stops admitting first.
  void DrainAll();

  // Preloads this dataset's persisted plans from the plan-cache catalog
  // (PlanCache::WarmUp with a key filter on the dataset component of every
  // PlanKey). Returns the number of plans loaded. This is the plan-catalog
  // handoff a cluster re-home rides: the new home shard warms the moved
  // dataset's plans from the shared persist dir instead of replanning.
  size_t WarmUpDataset(const std::string& name);

  // Fair-share weight of a dataset in the admission queue (default 1): a
  // dataset with weight w receives up to w consecutive grants per
  // round-robin turn when priorities tie.
  common::Status SetDatasetWeight(const std::string& name, int weight);
  // Current fair-share weight (1 when never set). EngineGroup reads this
  // to verify weights survive a resize; also surfaced per dataset in
  // Stats().
  int DatasetWeight(const std::string& name) const;

  // Asynchronous submission. Parse and registry errors surface here
  // synchronously; planning/execution errors surface through the ticket.
  common::Result<QueryTicket> Submit(const std::string& dataset_name,
                                     const std::string& sql);
  common::Result<QueryTicket> Submit(const std::string& dataset_name,
                                     const core::ActionQuery& query);
  common::Result<QueryTicket> Submit(const std::string& dataset_name,
                                     const core::ActionQuery& query,
                                     const ExecutionOptions& exec);

  // Blocking wrappers (the classic ZeusDb::Execute semantics).
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const std::string& sql);
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const core::ActionQuery& query);
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const core::ActionQuery& query,
                                      const ExecutionOptions& exec);

  // ---- Live streams (docs/ARCHITECTURE.md "Live streams") ----------------

  // Grows a streamable dataset so every test video holds exactly
  // `target_frames` frames, stamping growth epoch `epoch`. Both arguments
  // are absolute, so a retried or replayed append converges to the same
  // bytes and the same epoch — the call is idempotent (a replay that adds
  // nothing reports appended == 0). Copy-on-write: queries already running
  // keep their pre-append snapshot; runs claimed after the swap see the
  // grown dataset. Subscriptions on the dataset are re-armed.
  // kFailedPrecondition when the dataset has no recorded stream seed.
  common::Result<AppendOutcome> GrowDataset(const std::string& name,
                                            long target_frames,
                                            uint64_t epoch);
  // Convenience: extends the stream by `frames` frames and bumps the epoch
  // by one (the local-ingest form; the cluster router converts this to the
  // absolute GrowDataset form before fanning out to replicas).
  common::Result<AppendOutcome> AppendFrames(const std::string& name,
                                             long frames);

  // Registers a standing query over `dataset_name`: the engine runs one
  // window execution immediately and one more after every applied append,
  // publishing each answer as a StreamUpdate. Window runs are admitted
  // through the normal admission queue (priority/fairness/displacement
  // rules apply); the trained plan is reused across windows, so
  // planner_runs stays flat after the first window. The subscription stays
  // live until Cancel() or engine shutdown.
  common::Result<SubscriptionTicket> Subscribe(const std::string& dataset_name,
                                               const std::string& sql,
                                               const SubscribeOptions& opts);
  common::Result<SubscriptionTicket> Subscribe(const std::string& dataset_name,
                                               const core::ActionQuery& query,
                                               const SubscribeOptions& opts);
  // Live (non-cancelled) subscriptions (tests / monitoring).
  size_t subscriptions() const;

  // Cache key for (dataset, targets, accuracy target).
  static std::string PlanKey(const std::string& dataset_name,
                             const core::ActionQuery& query);
  // The dataset component of a PlanKey (its leading, '|'-delimited field) —
  // the key prefix shard routing and resize handoff filter on.
  static std::string PlanKeyDataset(const std::string& key);

  // Ready plan for a query, nullptr when absent. Shared ownership: the plan
  // stays valid even if the cache evicts it later.
  std::shared_ptr<core::QueryPlan> CachedPlan(
      const std::string& dataset_name, const core::ActionQuery& query) const;

  // Human-readable plan description (the EXPLAIN body, minus the executor
  // line Submit/Execute append from the factory).
  static std::string ExplainPlan(const core::QueryPlan& plan);

  PlanCache& plan_cache() { return cache_; }
  const Options& options() const { return opts_; }

  // Accuracy-shed level (docs/ACCURACY.md): 0 = serve every query at its
  // own target; level L lets kBestEffort queries degrade up to L bands
  // (kBalanced at most one, kStrict never). Set by the autoscaler's
  // degrade action through EngineGroup::SetDegradeLevel; takes effect on
  // the next RunTicket, never on queries already executing.
  void SetDegradeLevel(int level);
  int degrade_level() const {
    return degrade_level_.load(std::memory_order_relaxed);
  }

  // Tickets admitted but not yet claimed by a worker (tests / monitoring).
  size_t pending() const;

  // Full self-observation snapshot of this engine: the MetricsRegistry's
  // counters and latency histograms plus the sampled gauges (current and
  // per-dataset queue depth, running queries, fairness weights) and the
  // plan-cache counters. `shard` is left 0 — EngineGroup stamps the shard
  // id when aggregating. `include_datasets == false` skips the
  // per-dataset rows (string + histogram copies) — the autoscaler's
  // sampler only reads the shard-level signals.
  ShardStats Stats(bool include_datasets = true) const;

 private:
  void WorkerLoop();
  // Spawns the worker pool on first use (blocking-only callers never pay
  // for idle threads). Caller holds queue_mu_.
  void EnsureWorkersLocked();
  // Terminal-state publication helper.
  static void Finish(QueryTicket::Shared* t, QueryState state,
                     common::Result<QueryResult> result);
  // Maps a terminal ticket to its metrics outcome (called after RunTicket,
  // which always publishes a terminal state).
  static RunOutcome OutcomeOf(const QueryTicket::Shared& t);
  // The full pipeline for one ticket: plan lookup, executor construction,
  // localization, metrics. Runs on a worker (Submit) or the caller thread
  // (Execute).
  void RunTicket(const std::shared_ptr<QueryTicket::Shared>& t);

  // Growth body shared by GrowDataset/AppendFrames; caller holds
  // append_mu_ and has verified the dataset exists and is streamable.
  common::Result<AppendOutcome> GrowLocked(const std::string& name,
                                           long target_frames, uint64_t epoch);
  // Submits one window re-execution for `sub` through the admission queue
  // (no-op if the subscription is cancelled or already has a run queued or
  // in flight). A full queue defers instead of failing: the next append or
  // completed window retries.
  void ArmSubscription(const std::shared_ptr<StreamSubState>& sub);
  // Publishes a terminal window-run ticket to its subscription and re-arms
  // if the stream advanced while the run was in flight.
  void FinishWindowRun(const std::shared_ptr<QueryTicket::Shared>& t);
  // Raises every subscriber of `name` to at least `epoch` and arms the
  // idle ones; lazily reaps cancelled subscriptions.
  void NotifySubscribers(const std::string& name, uint64_t epoch);

  // Bracket one RunTicket in active_by_dataset_ so DrainDataset can wait
  // out the running tail. BeginRunLocked requires queue_mu_ held — the
  // worker claims the ticket and marks it active under one lock, so a
  // drain can never observe the gap between dequeue and run.
  void BeginRunLocked(const std::string& dataset_name);
  void EndRun(const std::string& dataset_name);

  Options opts_;

  mutable std::mutex datasets_mu_;
  std::map<std::string, std::shared_ptr<video::SyntheticDataset>> datasets_;

  // Serializes appends (the copy-on-write growth is expensive and must not
  // race itself); never held while queries run. Lock order:
  // append_mu_ -> datasets_mu_, append_mu_ -> subs_mu_ -> (per-sub mu).
  std::mutex append_mu_;

  // Live subscriptions by id. Cancelled entries are reaped lazily (on
  // notify/subscribe) and at shutdown.
  mutable std::mutex subs_mu_;
  std::map<uint64_t, std::shared_ptr<StreamSubState>> subs_;
  uint64_t next_sub_id_ = 1;

  PlanCache cache_;
  // Lock-cheap counters/histograms fed by the admission and run paths;
  // Stats() samples the gauges around it.
  MetricsRegistry metrics_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  AdmissionQueue pending_;
  // Queries currently inside RunTicket, per dataset (workers and blocking
  // Execute() callers both count). Guarded by queue_mu_; DrainDataset
  // waits on queue_cv_ for its dataset to hit zero here and in pending_.
  std::map<std::string, int> active_by_dataset_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Current accuracy-shed level (see SetDegradeLevel).
  std::atomic<int> degrade_level_{0};
};

}  // namespace zeus::engine

#endif  // ZEUS_ENGINE_QUERY_ENGINE_H_
