#include "engine/query_engine.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <set>
#include <utility>
#include <vector>

#include "common/stringutil.h"
#include "common/timer.h"
#include "core/accuracy.h"
#include "core/cancellation.h"
#include "core/executor.h"

namespace zeus::engine {

const char* ConsistencyName(Consistency c) {
  switch (c) {
    case Consistency::kCertain:
      return "certain";
    case Consistency::kDegraded:
      return "degraded";
  }
  return "unknown";
}

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "queued";
    case QueryState::kPlanning:
      return "planning";
    case QueryState::kExecuting:
      return "executing";
    case QueryState::kDone:
      return "done";
    case QueryState::kFailed:
      return "failed";
    case QueryState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

// ---- Subscriptions ---------------------------------------------------------

// Shared state of one live subscription. The SubscriptionTicket, the engine's
// subs_ map and any in-flight window-run ticket co-own it; everything mutable
// is guarded by `mu`.
struct StreamSubState {
  // Fixed at Subscribe().
  uint64_t id = 0;
  std::string dataset_name;
  core::ActionQuery query;
  SubscribeOptions opts;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  std::deque<StreamUpdate> buffer;  // undelivered updates, oldest first
  uint64_t next_seq = 1;
  uint64_t last_seq = 0;
  long dropped = 0;
  bool cancelled = false;
  // True while a window re-execution is queued or in flight — at most one
  // at a time per subscription; appends landing mid-run raise target_epoch
  // and the completed run re-arms.
  bool running = false;
  uint64_t target_epoch = 0;    // highest applied-append epoch seen
  uint64_t executed_epoch = 0;  // epoch of the last published window
  bool unsub_recorded = false;  // engine reaped + counted this cancel
  common::Status error = common::Status::Ok();  // terminal window-run failure
  // One cancel flag for the subscription's whole lifetime, threaded into
  // every window run so Cancel() cuts a localization mid-round.
  std::shared_ptr<std::atomic<bool>> cancel =
      std::make_shared<std::atomic<bool>>(false);
};

uint64_t SubscriptionTicket::id() const { return shared_->id; }

common::Result<StreamUpdate> SubscriptionTicket::Next(uint64_t after_seq,
                                                      int timeout_ms) const {
  StreamSubState& s = *shared_;
  std::unique_lock<std::mutex> lock(s.mu);
  auto has_update = [&] {
    return !s.buffer.empty() && s.buffer.back().seq > after_seq;
  };
  s.cv.wait_for(lock, std::chrono::milliseconds(std::max(0, timeout_ms)),
                [&] { return s.cancelled || has_update(); });
  if (has_update()) {
    for (const StreamUpdate& up : s.buffer) {
      if (up.seq > after_seq) return up;
    }
  }
  if (s.cancelled) {
    if (!s.error.ok()) return s.error;
    return common::Status::Cancelled("subscription cancelled");
  }
  return common::Status::Unavailable(
      common::Format("no update past seq %lld yet",
                     static_cast<long long>(after_seq)));
}

void SubscriptionTicket::Cancel() {
  StreamSubState& s = *shared_;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.cancelled) return;
    s.cancelled = true;
  }
  s.cancel->store(true);
  s.cv.notify_all();
}

bool SubscriptionTicket::cancelled() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->cancelled;
}

uint64_t SubscriptionTicket::last_seq() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->last_seq;
}

long SubscriptionTicket::dropped() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->dropped;
}

// ---- QueryTicket -----------------------------------------------------------

struct QueryTicket::Shared {
  // Inputs, fixed at submission.
  std::string dataset_name;
  core::ActionQuery query;
  ExecutionOptions exec;
  // When Submit() admitted the ticket; the queue-wait histogram measures
  // from here to the worker's claim.
  std::chrono::steady_clock::time_point submit_time;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  QueryState state = QueryState::kQueued;
  double progress = 0.0;
  std::optional<common::Result<QueryResult>> result;
  // Shared with the CancellationToken threaded into the executors, so a
  // Cancel() reaches a localizer already inside its lockstep rounds.
  std::shared_ptr<std::atomic<bool>> cancel =
      std::make_shared<std::atomic<bool>>(false);

  // Set when this ticket is a subscription's window re-execution: RunTicket
  // restricts the frame window, and the worker publishes the terminal
  // result to the subscription (FinishWindowRun) instead of leaving it to
  // a Wait() caller. `cancel` aliases the subscription's flag.
  std::shared_ptr<StreamSubState> sub;

  bool cancel_requested() const { return cancel->load(); }
};

QueryState QueryTicket::state() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->state;
}

double QueryTicket::progress() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->progress;
}

bool QueryTicket::done() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->result.has_value();
}

void QueryTicket::Cancel() { shared_->cancel->store(true); }

const common::Result<QueryResult>& QueryTicket::Wait() const {
  std::unique_lock<std::mutex> lock(shared_->mu);
  shared_->cv.wait(lock, [this] { return shared_->result.has_value(); });
  return *shared_->result;
}

// ---- QueryEngine -----------------------------------------------------------

QueryEngine::QueryEngine() : QueryEngine(Options()) {}

QueryEngine::QueryEngine(Options options)
    : opts_(std::move(options)), cache_(opts_.cache, opts_.planner) {
  if (opts_.num_workers < 1) opts_.num_workers = 1;
  if (opts_.max_pending < 1) opts_.max_pending = 1;
  // Warm start: preload every cataloged plan so the first query after a
  // restart is a memory hit. A standalone engine owns every key; sharded
  // serving warms with an ownership filter instead (EngineGroup clears the
  // flag on the per-shard options and calls WarmUp itself).
  if (opts_.cache.warm_start) cache_.WarmUp();
}

void QueryEngine::EnsureWorkersLocked() {
  if (!workers_.empty()) return;
  workers_.reserve(static_cast<size_t>(opts_.num_workers));
  for (int i = 0; i < opts_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryEngine::~QueryEngine() {
  // Cancel subscriptions first: their in-flight window runs cut at the
  // next cancellation point instead of holding up the worker join, and
  // any Next() waiter wakes with kCancelled.
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (auto& [id, sub] : subs_) {
      {
        std::lock_guard<std::mutex> slock(sub->mu);
        sub->cancelled = true;
      }
      sub->cancel->store(true);
      sub->cv.notify_all();
    }
    subs_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Resolve whatever never reached a worker so Wait() cannot hang.
  pending_.Purge([](const AdmissionQueue::Payload& p) {
    Finish(static_cast<QueryTicket::Shared*>(p.get()), QueryState::kCancelled,
           common::Status::Cancelled("engine shut down"));
    return true;
  });
}

common::Status QueryEngine::RegisterDataset(const std::string& name,
                                            video::SyntheticDataset dataset) {
  return RegisterDataset(
      name, std::make_shared<video::SyntheticDataset>(std::move(dataset)));
}

common::Status QueryEngine::RegisterDataset(
    const std::string& name,
    std::shared_ptr<video::SyntheticDataset> dataset) {
  if (dataset == nullptr) {
    return common::Status::InvalidArgument("dataset is null");
  }
  std::lock_guard<std::mutex> lock(datasets_mu_);
  if (datasets_.count(name)) {
    return common::Status::AlreadyExists("dataset '" + name +
                                         "' already registered");
  }
  datasets_[name] = std::move(dataset);
  return common::Status::Ok();
}

bool QueryEngine::HasDataset(const std::string& name) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  return datasets_.count(name) > 0;
}

const video::SyntheticDataset* QueryEngine::dataset(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second.get();
}

std::shared_ptr<video::SyntheticDataset> QueryEngine::ShareDataset(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second;
}

void QueryEngine::RemoveDataset(const std::string& name) {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  datasets_.erase(name);
}

std::vector<std::string> QueryEngine::dataset_names() const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, ds] : datasets_) names.push_back(name);
  return names;
}

void QueryEngine::DrainDataset(const std::string& name) {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_cv_.wait(lock, [&] {
      if (pending_.PendingFor(name) > 0) return false;
      auto it = active_by_dataset_.find(name);
      return it == active_by_dataset_.end() || it->second == 0;
    });
  }
  metrics_.RecordDrain();
}

void QueryEngine::DrainAll() {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_cv_.wait(lock, [&] {
      if (pending_.size() > 0) return false;
      for (const auto& [name, running] : active_by_dataset_) {
        if (running > 0) return false;
      }
      return true;
    });
  }
  metrics_.RecordDrain();
}

size_t QueryEngine::WarmUpDataset(const std::string& name) {
  return cache_.WarmUp(
      [&name](const std::string& key) { return PlanKeyDataset(key) == name; });
}

int QueryEngine::DatasetWeight(const std::string& name) const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return pending_.WeightOf(name);
}

common::Status QueryEngine::SetDatasetWeight(const std::string& name,
                                             int weight) {
  if (!HasDataset(name)) {
    return common::Status::NotFound("dataset '" + name +
                                    "' is not registered");
  }
  if (weight < 1) {
    return common::Status::InvalidArgument("weight must be >= 1");
  }
  std::lock_guard<std::mutex> lock(queue_mu_);
  pending_.SetWeight(name, weight);
  return common::Status::Ok();
}

std::string QueryEngine::PlanKey(const std::string& dataset_name,
                                 const core::ActionQuery& query) {
  std::string classes;
  for (video::ActionClass cls : query.action_classes) {
    classes += video::ActionClassName(cls);
    classes += ',';
  }
  return common::Format("%s|%s|%.3f", dataset_name.c_str(), classes.c_str(),
                        query.accuracy_target);
}

std::string QueryEngine::PlanKeyDataset(const std::string& key) {
  return key.substr(0, key.find('|'));
}

std::shared_ptr<core::QueryPlan> QueryEngine::CachedPlan(
    const std::string& dataset_name, const core::ActionQuery& query) const {
  return cache_.Peek(PlanKey(dataset_name, query));
}

void QueryEngine::SetDegradeLevel(int level) {
  degrade_level_.store(std::max(0, level), std::memory_order_relaxed);
}

size_t QueryEngine::pending() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return pending_.size();
}

ShardStats QueryEngine::Stats(bool include_datasets) const {
  ShardStats out = metrics_.Snapshot(include_datasets);
  if (include_datasets) {
    // Registered-but-quiet datasets still deserve a row (their weight and
    // zero depth are part of the picture).
    std::set<std::string> seen;
    for (const DatasetStats& ds : out.datasets) seen.insert(ds.dataset);
    for (const std::string& name : dataset_names()) {
      if (seen.count(name)) continue;
      DatasetStats ds;
      ds.dataset = name;
      out.datasets.push_back(std::move(ds));
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    out.queue_depth = static_cast<long>(pending_.size());
    for (const auto& [name, running] : active_by_dataset_) {
      out.active += running;
    }
    const auto depths = pending_.PendingByTenant();
    for (auto& ds : out.datasets) {
      auto it = depths.find(ds.dataset);
      ds.queue_depth = it == depths.end() ? 0 : static_cast<long>(it->second);
      ds.weight = pending_.WeightOf(ds.dataset);
    }
  }
  out.planner_runs = cache_.planner_runs();
  out.cache_hits = cache_.cache_hits();
  out.disk_loads = cache_.disk_loads();
  out.degrade_level = degrade_level_.load(std::memory_order_relaxed);
  return out;
}

// ---- Live streams ----------------------------------------------------------

common::Result<AppendOutcome> QueryEngine::GrowLocked(const std::string& name,
                                                      long target_frames,
                                                      uint64_t epoch) {
  std::shared_ptr<video::SyntheticDataset> old = ShareDataset(name);
  AppendOutcome out;
  const long before = old->stream_length();
  if (target_frames <= before && epoch <= old->frame_epoch()) {
    // Idempotent replay: this growth (or a later one) already applied.
    out.frame_epoch = old->frame_epoch();
    out.stream_length = before;
    return out;
  }
  // Copy-on-write: grow a clone, then swap it in. Queries already running
  // hold the old snapshot via ShareDataset and never observe a torn
  // mid-append state; runs claimed after the swap see the grown dataset.
  auto grown = std::make_shared<video::SyntheticDataset>(*old);
  common::Status grow = grown->GrowTo(target_frames, epoch);
  if (!grow.ok()) return grow;
  {
    std::lock_guard<std::mutex> lock(datasets_mu_);
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      return common::Status::NotFound("dataset '" + name +
                                      "' was removed during the append");
    }
    it->second = grown;
  }
  out.frame_epoch = grown->frame_epoch();
  out.stream_length = grown->stream_length();
  out.appended = out.stream_length - before;
  if (out.appended > 0) metrics_.RecordAppend(out.appended);
  NotifySubscribers(name, out.frame_epoch);
  return out;
}

common::Result<AppendOutcome> QueryEngine::GrowDataset(const std::string& name,
                                                       long target_frames,
                                                       uint64_t epoch) {
  // One append at a time: two concurrent clone-and-grows would fork the
  // stream and one fork's frames would be lost in the swap.
  std::lock_guard<std::mutex> grow_lock(append_mu_);
  std::shared_ptr<video::SyntheticDataset> ds = ShareDataset(name);
  if (ds == nullptr) {
    return common::Status::NotFound("dataset '" + name +
                                    "' is not registered");
  }
  if (!ds->streamable()) {
    return common::Status::FailedPrecondition(
        "dataset '" + name + "' is not streamable (no recorded stream seed)");
  }
  return GrowLocked(name, target_frames, epoch);
}

common::Result<AppendOutcome> QueryEngine::AppendFrames(const std::string& name,
                                                        long frames) {
  if (frames <= 0) {
    return common::Status::InvalidArgument("frames must be > 0");
  }
  // Resolve the relative form to an absolute (target, epoch) under the
  // append lock, so concurrent relative appends stack instead of collapsing
  // onto the same target.
  std::lock_guard<std::mutex> grow_lock(append_mu_);
  std::shared_ptr<video::SyntheticDataset> ds = ShareDataset(name);
  if (ds == nullptr) {
    return common::Status::NotFound("dataset '" + name +
                                    "' is not registered");
  }
  if (!ds->streamable()) {
    return common::Status::FailedPrecondition(
        "dataset '" + name + "' is not streamable (no recorded stream seed)");
  }
  return GrowLocked(name, ds->stream_length() + frames, ds->frame_epoch() + 1);
}

common::Result<SubscriptionTicket> QueryEngine::Subscribe(
    const std::string& dataset_name, const std::string& sql,
    const SubscribeOptions& opts) {
  auto parsed = core::QueryParser::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  return Subscribe(dataset_name, parsed.value(), opts);
}

common::Result<SubscriptionTicket> QueryEngine::Subscribe(
    const std::string& dataset_name, const core::ActionQuery& query,
    const SubscribeOptions& opts) {
  if (query.explain_only) {
    return common::Status::InvalidArgument(
        "cannot subscribe to an EXPLAIN query");
  }
  std::shared_ptr<video::SyntheticDataset> ds = ShareDataset(dataset_name);
  if (ds == nullptr) {
    return common::Status::NotFound("dataset '" + dataset_name +
                                    "' is not registered");
  }
  auto sub = std::make_shared<StreamSubState>();
  sub->dataset_name = dataset_name;
  sub->query = query;
  sub->opts = opts;
  sub->target_epoch = ds->frame_epoch();
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    sub->id = next_sub_id_++;
    subs_[sub->id] = sub;
  }
  metrics_.RecordSubscribe();
  // Initial window: publish an answer over the current prefix right away
  // (this is also where the plan trains — every later window is a cache
  // hit, keeping planner_runs flat).
  ArmSubscription(sub);
  return SubscriptionTicket(sub);
}

size_t QueryEngine::subscriptions() const {
  std::lock_guard<std::mutex> lock(subs_mu_);
  size_t live = 0;
  for (const auto& [id, sub] : subs_) {
    std::lock_guard<std::mutex> slock(sub->mu);
    if (!sub->cancelled) ++live;
  }
  return live;
}

void QueryEngine::NotifySubscribers(const std::string& name, uint64_t epoch) {
  std::vector<std::shared_ptr<StreamSubState>> arm;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (auto it = subs_.begin(); it != subs_.end();) {
      const std::shared_ptr<StreamSubState>& sub = it->second;
      bool reap = false;
      {
        std::lock_guard<std::mutex> slock(sub->mu);
        if (sub->cancelled) {
          reap = true;
          if (!sub->unsub_recorded) {
            sub->unsub_recorded = true;
            metrics_.RecordUnsubscribe();
          }
        } else if (sub->dataset_name == name) {
          sub->target_epoch = std::max(sub->target_epoch, epoch);
          if (!sub->running) arm.push_back(sub);
        }
      }
      it = reap ? subs_.erase(it) : std::next(it);
    }
  }
  for (const auto& sub : arm) ArmSubscription(sub);
}

void QueryEngine::ArmSubscription(const std::shared_ptr<StreamSubState>& sub) {
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    if (sub->cancelled || sub->running) return;
    sub->running = true;
  }
  auto shared = std::make_shared<QueryTicket::Shared>();
  shared->dataset_name = sub->dataset_name;
  shared->query = sub->query;
  shared->exec = sub->opts.exec;
  shared->submit_time = std::chrono::steady_clock::now();
  shared->cancel = sub->cancel;  // one flag for the subscription's lifetime
  shared->sub = sub;
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!stopping_ && static_cast<int>(pending_.size()) < opts_.max_pending) {
      pending_.Push(shared->dataset_name, shared->exec.priority,
                    shared->exec.aging_threshold, shared);
      metrics_.RecordSubmitted(shared->dataset_name, pending_.size());
      EnsureWorkersLocked();
      admitted = true;
    }
  }
  if (admitted) {
    queue_cv_.notify_one();
    return;
  }
  // Full queue (or shutdown): defer instead of failing — window runs never
  // displace one-shot admissions; the next append or completed window run
  // retries the arm.
  std::lock_guard<std::mutex> lock(sub->mu);
  sub->running = false;
}

void QueryEngine::FinishWindowRun(
    const std::shared_ptr<QueryTicket::Shared>& t) {
  const std::shared_ptr<StreamSubState>& sub = t->sub;
  const common::Result<QueryResult>& outcome = *t->result;
  bool rearm = false;
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    sub->running = false;
    if (outcome.ok()) {
      const QueryResult& r = outcome.value();
      sub->executed_epoch = std::max(sub->executed_epoch, r.frame_epoch);
      StreamUpdate up;
      up.seq = sub->next_seq++;
      up.result = r;
      sub->last_seq = up.seq;
      sub->buffer.push_back(std::move(up));
      while (sub->buffer.size() > std::max<size_t>(1, sub->opts.max_buffered)) {
        sub->buffer.pop_front();
        ++sub->dropped;
        metrics_.RecordStreamDropped();
      }
      metrics_.RecordStreamResult();
    } else if (outcome.status().code() != common::StatusCode::kCancelled) {
      // A window run failed (planner/executor error). Terminal for the
      // subscription: the same window would fail the same way on replay.
      sub->error = outcome.status();
      sub->cancelled = true;
      sub->cancel->store(true);
    }
    rearm = !sub->cancelled && sub->target_epoch > sub->executed_epoch;
  }
  sub->cv.notify_all();
  // The stream advanced while this window was in flight: go again over the
  // newer prefix (coalesced — one run covers any number of missed appends).
  if (rearm) ArmSubscription(sub);
}

common::Result<QueryTicket> QueryEngine::Submit(const std::string& dataset_name,
                                                const std::string& sql) {
  auto parsed = core::QueryParser::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  return Submit(dataset_name, parsed.value());
}

common::Result<QueryTicket> QueryEngine::Submit(const std::string& dataset_name,
                                                const core::ActionQuery& query) {
  return Submit(dataset_name, query, opts_.exec);
}

common::Result<QueryTicket> QueryEngine::Submit(const std::string& dataset_name,
                                                const core::ActionQuery& query,
                                                const ExecutionOptions& exec) {
  if (!HasDataset(dataset_name)) {
    return common::Status::NotFound("dataset '" + dataset_name +
                                    "' is not registered");
  }
  auto shared = std::make_shared<QueryTicket::Shared>();
  shared->dataset_name = dataset_name;
  shared->query = query;
  shared->exec = exec;
  shared->submit_time = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      return common::Status::FailedPrecondition("engine is shutting down");
    }
    if (static_cast<int>(pending_.size()) >= opts_.max_pending) {
      // Cancelled tickets must not pin queue slots: resolve and drop them
      // now instead of waiting for a worker to dequeue each one.
      pending_.Purge([this](const AdmissionQueue::Payload& p) {
        auto* t = static_cast<QueryTicket::Shared*>(p.get());
        if (!t->cancel_requested()) return false;
        Finish(t, QueryState::kCancelled,
               common::Status::Cancelled("query cancelled"));
        metrics_.RecordCancelledWhileQueued(t->dataset_name);
        return true;
      });
    }
    if (static_cast<int>(pending_.size()) >= opts_.max_pending &&
        exec.tier == core::QueryTier::kStrict) {
      // Strict-tier displacement (docs/ACCURACY.md degradation ladder):
      // before a strict query sees kResourceExhausted, evict the newest
      // lower-tier ticket — strict tenants are rejected only when the
      // queue is full of other strict work.
      auto victim = std::static_pointer_cast<QueryTicket::Shared>(
          pending_.PopNewestIf([](const AdmissionQueue::Payload& p) {
            return static_cast<QueryTicket::Shared*>(p.get())->exec.tier !=
                   core::QueryTier::kStrict;
          }));
      if (victim != nullptr) {
        Finish(victim.get(), QueryState::kFailed,
               common::Status::ResourceExhausted(
                   "displaced by strict-tier admission"));
        metrics_.RecordRejected(victim->dataset_name);
      }
    }
    if (static_cast<int>(pending_.size()) >= opts_.max_pending) {
      metrics_.RecordRejected(dataset_name);
      return common::Status::ResourceExhausted(common::Format(
          "admission queue full (%d pending)", opts_.max_pending));
    }
    pending_.Push(dataset_name, exec.priority, exec.aging_threshold, shared);
    metrics_.RecordSubmitted(dataset_name, pending_.size());
    EnsureWorkersLocked();
  }
  queue_cv_.notify_one();
  return QueryTicket(std::move(shared));
}

common::Result<QueryResult> QueryEngine::Execute(const std::string& dataset_name,
                                                 const std::string& sql) {
  auto parsed = core::QueryParser::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  return Execute(dataset_name, parsed.value());
}

common::Result<QueryResult> QueryEngine::Execute(const std::string& dataset_name,
                                                 const core::ActionQuery& query) {
  return Execute(dataset_name, query, opts_.exec);
}

common::Result<QueryResult> QueryEngine::Execute(const std::string& dataset_name,
                                                 const core::ActionQuery& query,
                                                 const ExecutionOptions& exec) {
  // Thin blocking wrapper: the same pipeline, run inline on the caller's
  // thread (no admission queue, no worker hop). It still goes through the
  // shared PlanCache, so concurrent blocking callers plan once.
  auto shared = std::make_shared<QueryTicket::Shared>();
  shared->dataset_name = dataset_name;
  shared->query = query;
  shared->exec = exec;
  shared->submit_time = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    BeginRunLocked(dataset_name);
  }
  // Inline runs are admissions too — without this, completed could
  // exceed submitted and in-flight arithmetic on the snapshot would go
  // negative. They never queue, though: no queue-wait sample (a zero
  // would drag the percentiles the autoscaler reads) and no peak-depth
  // update (depth 0 never raises the high-water mark).
  metrics_.RecordSubmitted(dataset_name, 0);
  common::WallTimer run_timer;
  RunTicket(shared);
  metrics_.RecordRun(dataset_name, run_timer.ElapsedSeconds(),
                     OutcomeOf(*shared));
  EndRun(dataset_name);
  return *shared->result;
}

void QueryEngine::BeginRunLocked(const std::string& dataset_name) {
  ++active_by_dataset_[dataset_name];
}

void QueryEngine::EndRun(const std::string& dataset_name) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    auto it = active_by_dataset_.find(dataset_name);
    if (it != active_by_dataset_.end() && --it->second == 0) {
      active_by_dataset_.erase(it);
    }
  }
  queue_cv_.notify_all();
}

RunOutcome QueryEngine::OutcomeOf(const QueryTicket::Shared& t) {
  std::lock_guard<std::mutex> lock(t.mu);
  switch (t.state) {
    case QueryState::kFailed:
      return RunOutcome::kFailed;
    case QueryState::kCancelled:
      return RunOutcome::kCancelled;
    default:
      return RunOutcome::kDone;
  }
}

void QueryEngine::Finish(QueryTicket::Shared* t, QueryState state,
                         common::Result<QueryResult> result) {
  {
    std::lock_guard<std::mutex> lock(t->mu);
    t->state = state;
    t->progress = 1.0;
    t->result.emplace(std::move(result));
  }
  t->cv.notify_all();
}

void QueryEngine::WorkerLoop() {
  for (;;) {
    std::shared_ptr<QueryTicket::Shared> t;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;
      t = std::static_pointer_cast<QueryTicket::Shared>(pending_.Pop());
      // Claim and mark active under one lock: a DrainDataset between the
      // pop and the run would otherwise see zero queued + zero active and
      // wrongly conclude the dataset is quiesced.
      if (t != nullptr) BeginRunLocked(t->dataset_name);
    }
    if (t != nullptr) {
      metrics_.RecordQueueWait(
          t->dataset_name,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t->submit_time)
              .count());
      common::WallTimer run_timer;
      RunTicket(t);
      metrics_.RecordRun(t->dataset_name, run_timer.ElapsedSeconds(),
                         OutcomeOf(*t));
      EndRun(t->dataset_name);
      // Window re-executions publish to their subscription (and re-arm if
      // the stream advanced mid-run) after the run slot is released.
      if (t->sub != nullptr) FinishWindowRun(t);
    }
  }
}

void QueryEngine::RunTicket(const std::shared_ptr<QueryTicket::Shared>& t) {
  auto set_phase = [&](QueryState state, double progress) {
    std::lock_guard<std::mutex> lock(t->mu);
    t->state = state;
    t->progress = progress;
  };
  auto cancelled = [&] {
    if (!t->cancel_requested()) return false;
    Finish(t.get(), QueryState::kCancelled,
           common::Status::Cancelled("query cancelled"));
    return true;
  };

  if (cancelled()) return;
  // Shared handle: the dataset stays alive for this whole run even if a
  // concurrent Resize unregisters it from this shard (the in-flight tail
  // of a moved dataset finishes on its old home).
  std::shared_ptr<video::SyntheticDataset> ds = ShareDataset(t->dataset_name);
  if (ds == nullptr) {
    Finish(t.get(), QueryState::kFailed,
           common::Status::NotFound("dataset '" + t->dataset_name +
                                    "' is not registered"));
    return;
  }
  // Resolve the effective accuracy band (docs/ACCURACY.md): the query's
  // own target, possibly lowered by the engine's current accuracy-shed
  // level for non-strict tiers. Everything downstream — the plan-cache
  // key, the planner, the annotation — runs at the effective band, so one
  // dataset can hold a cheap plan and a strict plan side by side.
  core::ActionQuery query = t->query;
  // Window re-executions slide their frame predicate to the snapshot's
  // tail: the window is resolved per run, not at Subscribe(), so a run that
  // coalesced several appends covers all of them.
  if (t->sub != nullptr && t->sub->opts.window_frames > 0) {
    const long begin =
        std::max<long>(0, ds->stream_length() - t->sub->opts.window_frames);
    query.frame_begin =
        static_cast<int>(std::max<long>(query.frame_begin, begin));
  }
  query.accuracy_target = core::EffectiveTarget(
      t->query.accuracy_target, t->exec.tier,
      degrade_level_.load(std::memory_order_relaxed), t->exec.min_accuracy);
  const long requested_millis =
      core::AccuracyMillis(core::QuantizeAccuracy(t->query.accuracy_target));
  const long effective_millis = core::AccuracyMillis(query.accuracy_target);
  const size_t num_test = ds->test_indices().size();

  set_phase(QueryState::kPlanning, 0.1);
  auto lookup =
      cache_.GetOrPlan(PlanKey(t->dataset_name, query), ds.get(),
                       query.action_classes, query.accuracy_target);
  if (!lookup.ok()) {
    Finish(t.get(), QueryState::kFailed, lookup.status());
    return;
  }
  std::shared_ptr<core::QueryPlan> plan = lookup.value().plan;

  QueryResult out;
  out.query = t->query;  // echo the request, not the effective rewrite
  out.plan_seconds = lookup.value().plan_seconds;
  out.tier = t->exec.tier;
  out.accuracy_band = query.accuracy_target;
  // Live-stream annotation: the window this answer covers and the growth
  // epoch of the snapshot it was computed over (fixed length / epoch 0 for
  // frozen datasets).
  out.window_begin = query.frame_begin;
  out.window_end = ds->stream_length();
  out.frame_epoch = ds->frame_epoch();

  if (query.explain_only) {
    out.explanation =
        ExplainPlan(*plan) + "\nexecutor: " +
        ExecutorFactory::Describe(t->exec, num_test);
    Finish(t.get(), QueryState::kDone, std::move(out));
    return;
  }
  if (cancelled()) return;

  set_phase(QueryState::kExecuting, 0.5);
  std::vector<const video::Video*> test_videos;
  for (int i : ds->test_indices()) {
    test_videos.push_back(&ds->video(static_cast<size_t>(i)));
  }
  auto localizer =
      ExecutorFactory::Make(t->exec, plan.get(), ds.get(), test_videos.size());
  if (!localizer.ok()) {
    Finish(t.get(), QueryState::kFailed, localizer.status());
    return;
  }
  out.executor = localizer.value()->name();
  // Thread the ticket's cancel flag into the localizer: the executors poll
  // it every lockstep round, so Cancel() aborts a long localization within
  // one round instead of waiting for the pass to finish.
  localizer.value()->SetCancellation(core::CancellationToken(t->cancel));
  // Latency budget → GPU-seconds budget for the localization rounds.
  // Strict tiers never get one: their schedule (and therefore their
  // answer) must be bit-identical to an unbudgeted run.
  if (t->exec.tier != core::QueryTier::kStrict &&
      t->exec.max_latency_budget > 0.0) {
    localizer.value()->SetGpuBudget(t->exec.max_latency_budget);
  }
  // Sample the plan's feature-cache counters around the localization and
  // record the delta: the engine-level hit/miss/evict counters, so /metrics
  // can show how much of a window was served from features already
  // extracted below the previous high-water mark.
  const apfg::FeatureCache* features = plan->cache.get();
  const uint64_t feat_hits0 = features != nullptr ? features->hits() : 0;
  const uint64_t feat_misses0 = features != nullptr ? features->misses() : 0;
  const uint64_t feat_evict0 = features != nullptr ? features->evictions() : 0;
  core::RunResult run = localizer.value()->Localize(test_videos);
  if (features != nullptr) {
    metrics_.RecordFeatureCache(
        static_cast<long>(features->hits() - feat_hits0),
        static_cast<long>(features->misses() - feat_misses0),
        static_cast<long>(features->evictions() - feat_evict0));
  }
  if (run.cancelled) {
    Finish(t.get(), QueryState::kCancelled,
           common::Status::Cancelled("query cancelled during execution"));
    return;
  }

  out.metrics = core::EvaluateVideos(test_videos, plan->targets, run.masks,
                                     core::EvalOptions{});
  out.throughput_fps = run.ThroughputFps();
  out.gpu_seconds = run.gpu_seconds;
  out.wall_seconds = run.wall_seconds;
  out.budget_exhausted = run.budget_exhausted;
  out.achieved_confidence =
      core::EstimateConfidence(plan->rl_space, run, plan->accuracy_target);
  // Record before segment collection: the limit early-return below is a
  // second kDone exit and must not skip the accuracy accounting.
  metrics_.RecordAnswer(out.achieved_confidence, effective_millis,
                        effective_millis < requested_millis, run.wall_seconds,
                        lookup.value().plan_seconds == 0.0);
  const int range_end = query.frame_end < 0 ? 1 << 30 : query.frame_end;
  for (size_t vi = 0; vi < test_videos.size(); ++vi) {
    for (const video::ActionInstance& inst :
         core::MaskToInstances(run.masks[vi])) {
      // Frame-range predicate: keep segments intersecting the range.
      if (inst.end <= query.frame_begin || inst.start >= range_end) continue;
      if (query.limit >= 0 &&
          static_cast<int>(out.segments.size()) >= query.limit) {
        Finish(t.get(), QueryState::kDone, std::move(out));
        return;
      }
      out.segments.push_back({test_videos[vi]->id(), inst.start, inst.end});
    }
  }
  Finish(t.get(), QueryState::kDone, std::move(out));
}

std::string QueryEngine::ExplainPlan(const core::QueryPlan& plan) {
  std::string out = common::Format(
      "QueryPlan {\n  targets: %zu class(es), accuracy target %.2f\n"
      "  APFG: trained (train_acc %.3f, %d examples, %.1fs)\n"
      "  configuration grid: %zu candidates, RL frontier: %zu\n",
      plan.targets.size(), plan.accuracy_target,
      plan.apfg_stats.train_accuracy, plan.apfg_stats.num_examples,
      plan.apfg_train_seconds, plan.space.size(), plan.rl_space.size());
  for (const core::Configuration& c : plan.rl_space.configs()) {
    out += common::Format(
        "    config %s  throughput %.0f fps  validation F1 %.3f\n",
        c.ToString().c_str(), c.throughput_fps, c.validation_f1);
  }
  out += common::Format(
      "  DQN agent: %s (%.1fs training)\n}",
      plan.agent != nullptr ? "trained" : "absent", plan.rl_train_seconds);
  return out;
}

}  // namespace zeus::engine
