#ifndef ZEUS_ENGINE_AUTOSCALER_H_
#define ZEUS_ENGINE_AUTOSCALER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "engine/metrics.h"

namespace zeus::engine {

class EngineGroup;

// Queue/latency-driven shard autoscaler: the policy loop that turns the
// serving layer from manually operated (`ZeusDb::ResizeShards`) into
// self-operating. A sampler thread owned by the EngineGroup (opt-in via
// `EngineGroup::Options::autoscale.enabled`) periodically reads
// `EngineGroup::Stats()` and calls `Resize()` when the signals cross the
// configured thresholds.
//
// The policy itself — `Decide()` — is a pure function of (signal, config,
// logical tick, policy state): no clocks, no threads, no engine. That is
// what makes the scaling rules table-testable (tests/autoscaler_test.cc)
// the same way the admission queue's ordering rules are.
//
// Policy shape:
//   - Scale UP one shard when either sustained signal crosses its
//     threshold: queued backlog per shard, or p95 queue wait.
//   - Scale DOWN one shard only when the group is near-idle (nothing
//     queued beyond `down_queue_total`, nothing running) — sustained.
//   - Hysteresis: the up and down conditions deliberately do not meet in
//     the middle. Any load between "near-idle" and "backlogged" holds the
//     current size, so the group cannot oscillate when traffic hovers
//     around a single threshold.
//   - Sustain: a condition must hold for `sustain_samples` consecutive
//     samples before acting — one bursty sample never resizes.
//   - Cooldown: at least `cooldown_samples` samples between resizes, so
//     the effect of one resize is observed before the next.
//   - Clamps: the target never leaves [min_shards, max_shards].
//   - Accuracy shed (opt-in via max_degrade_level > 0, docs/ACCURACY.md):
//     under sustained overload the policy first raises the group's
//     degrade level — best-effort queries drop to cheaper accuracy bands
//     — and only scales shards up once the shed ladder is exhausted.
//     Recovery mirrors it: a near-idle group restores accuracy level by
//     level before it gives back a shard. Shedding accuracy is cheaper
//     and faster-acting than adding capacity, and strict-tier answers are
//     never touched by it, so the degradation ladder is
//     shed accuracy -> scale up -> reject admissions.
//
// A resize triggered here has exactly the semantics of a manual
// `ResizeShards`: ring-diff-only movement, plan handoff without replanning
// (`planner_runs` flat), answers bit-identical. The autoscaler changes
// when capacity changes, never what queries return.
class Autoscaler {
 public:
  struct Config {
    // Master switch, read by EngineGroup's constructor.
    bool enabled = false;
    int min_shards = 1;
    int max_shards = 8;
    // Scale-up trigger: total queued tickets >= this many per shard...
    double up_queue_per_shard = 8.0;
    // ...or p95 queue wait at or above this many seconds.
    double up_p95_queue_wait_seconds = 30.0;
    // Scale-down requires total queued <= this AND zero running queries.
    double down_queue_total = 0.0;
    // Consecutive samples a condition must hold before acting.
    int sustain_samples = 3;
    // Minimum samples between two resizes.
    int cooldown_samples = 10;
    // Highest accuracy-shed level the policy may apply before it scales
    // shards (EngineGroup::SetDegradeLevel). 0 — the default — disables
    // accuracy shedding entirely: the policy is then exactly the
    // scale-only ladder above.
    int max_degrade_level = 0;
    // Per-dataset scale-up triggers (0 = disabled). One live stream
    // ingesting into a single dataset overloads its home shard while the
    // group-wide per-shard average stays calm; these thresholds fire on
    // the hottest single dataset's queue depth or p95 queue wait instead
    // of the aggregate. Sampling per-dataset rows costs string/histogram
    // copies, so the sampler only requests them when one of these is set.
    double up_dataset_queue_depth = 0.0;
    double up_dataset_queue_wait_p95_seconds = 0.0;
    // Sampler thread period.
    std::chrono::milliseconds sample_interval{500};
  };

  // The signals the policy reads, distilled from one Stats() snapshot.
  struct Signal {
    int num_shards = 1;
    long queue_depth = 0;  // queued, not yet claimed
    long active = 0;       // currently executing
    double p95_queue_wait_seconds = 0.0;
    // Current group accuracy-shed level (GroupStats::degrade_level).
    int degrade_level = 0;
    // Hottest-dataset signals, distilled from the per-dataset rows (zero /
    // empty when the snapshot was taken without them). `hottest_dataset`
    // names the dataset with the deepest queue — the one a live stream's
    // appends are piling onto. The per-dataset p95 is a lifetime
    // aggregate, not a windowed delta (per-dataset windowing would mean
    // carrying one previous histogram per dataset); the depth signal is
    // the instantaneous gauge and leads the policy.
    long max_dataset_queue_depth = 0;
    double max_dataset_queue_wait_p95 = 0.0;
    std::string hottest_dataset;
  };
  // With `prev_queue_wait` set, the p95 is computed over the WINDOW since
  // that earlier snapshot (bucket-wise delta of the cumulative
  // histograms) — what the sampler thread uses, so one overload from
  // hours ago cannot pin the lifetime p95 above the threshold and ratchet
  // the group to max_shards forever. Without it the lifetime aggregate is
  // used (tests, one-shot callers).
  static Signal SignalFrom(const GroupStats& stats,
                           const HistogramStats* prev_queue_wait = nullptr);

  // Policy memory carried between consecutive Decide() calls.
  struct State {
    int up_streak = 0;
    int down_streak = 0;
    // Tick of the last resize decision; initialized so the first decision
    // is never cooldown-blocked.
    long last_resize_tick = std::numeric_limits<long>::min() / 2;
  };

  struct Decision {
    // Desired shard count; == signal.num_shards means hold.
    int target_shards = 1;
    // Human-readable policy branch, for logs and tests.
    const char* reason = "hold";
    // Desired accuracy-shed level; == signal.degrade_level means no
    // change. Only one of the two targets ever differs from its signal in
    // a single decision — shed/restore and resize are separate rungs.
    int target_degrade = 0;
  };

  // Pure policy step at logical time `now_tick` (the sample counter).
  // Updates `state` (streaks, cooldown bookkeeping) and returns the
  // decision. Deterministic: the same sample sequence always produces the
  // same resize sequence.
  static Decision Decide(const Signal& signal, const Config& config,
                         long now_tick, State* state);

  // Starts the sampler thread immediately. `group` must outlive this
  // object (EngineGroup owns it and stops it first in its destructor).
  Autoscaler(EngineGroup* group, Config config);
  ~Autoscaler();

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  // Stops and joins the sampler thread (idempotent).
  void Stop();

  // Resizes this autoscaler initiated (== decisions that were not holds).
  long decisions() const {
    return decisions_.load(std::memory_order_relaxed);
  }

  const Config& config() const { return cfg_; }

 private:
  void Loop();

  EngineGroup* group_;
  Config cfg_;
  std::atomic<long> decisions_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace zeus::engine

#endif  // ZEUS_ENGINE_AUTOSCALER_H_
