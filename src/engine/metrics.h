#ifndef ZEUS_ENGINE_METRICS_H_
#define ZEUS_ENGINE_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace zeus::engine {

// Self-observation layer for the serving stack. The engine used to expose
// its behavior only as bench output; the autoscaler (engine/autoscaler.h)
// needs queue depth and latency as live, cheap-to-read signals, and
// operators need them as a snapshot (`ZeusDb::Stats()`). Everything here is
// designed for the hot path that feeds it: counters are relaxed atomics,
// histograms are fixed arrays of atomic buckets (no allocation, no lock on
// record), and the only lock is a shared_mutex around the per-dataset map —
// taken shared (uncontended) on every record, exclusively only the first
// time a dataset is seen.

// ---- Snapshot types --------------------------------------------------------
//
// A snapshot is a plain-value copy: safe to hold, aggregate and serialize
// while the engine keeps running. Aggregation across shards is exact —
// histograms merge bucket-wise (same fixed bounds everywhere), counters add.

// Fixed-bucket latency histogram readout. Bucket i counts samples in
// (upper_bound(i-1), upper_bound(i)] with upper_bound(i) = 1µs * 2^i; the
// 40 buckets span 1µs .. ~6 days (2^39µs), the last bucket is open-ended.
// Percentiles report the upper bound of the bucket holding the p-th sample:
// deterministic, and an over- (never under-) estimate — the safe direction
// for scaling decisions.
struct HistogramStats {
  static constexpr size_t kNumBuckets = 40;

  long count = 0;
  double sum_seconds = 0.0;
  std::array<long, kNumBuckets> buckets{};

  // Upper bound of bucket i, in seconds.
  static double BucketBound(size_t i);
  // Value at or below which `p` (in [0,1]) of the samples fall; 0 when
  // empty.
  double Percentile(double p) const;
  double p50() const { return Percentile(0.50); }
  double p95() const { return Percentile(0.95); }
  double p99() const { return Percentile(0.99); }
  double mean_seconds() const {
    return count > 0 ? sum_seconds / static_cast<double>(count) : 0.0;
  }
  void Merge(const HistogramStats& other);
  // Samples recorded since `earlier` (bucket-wise clamped subtraction):
  // how the autoscaler turns two cumulative snapshots into a windowed
  // signal, so an overload from hours ago cannot pin today's p95.
  HistogramStats Delta(const HistogramStats& earlier) const;
};

// Fixed-bucket histogram of achieved confidence (the cost-model accuracy
// estimate every answer is annotated with, docs/ACCURACY.md). Linear
// buckets of width 0.05 over [0, 1] — confidence is a fraction, so the
// latency histogram's power-of-two microsecond grid would be
// meaningless here. Bucket i counts samples in (0.05*i, 0.05*(i+1)].
struct ConfidenceStats {
  static constexpr size_t kNumBuckets = 20;

  long count = 0;
  double sum = 0.0;
  std::array<long, kNumBuckets> buckets{};

  // Upper bound of bucket i (0.05 .. 1.0).
  static double BucketBound(size_t i) {
    return 0.05 * static_cast<double>(i + 1);
  }
  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  void Merge(const ConfidenceStats& other);
};

// One dataset's view on one shard.
struct DatasetStats {
  std::string dataset;
  long queue_depth = 0;  // currently queued (gauge, sampled)
  int weight = 1;        // admission-queue fair-share weight
  long submitted = 0;
  long completed = 0;
  long failed = 0;
  long cancelled = 0;
  long rejected = 0;  // kResourceExhausted at admission
  HistogramStats queue_wait;
  HistogramStats exec;
};

// The counters, gauges and histograms shared by every aggregation level
// (shard and group). One Fold() is the single place the field list is
// summed, so the per-shard merge and the group aggregate can never drift
// apart when a field is added.
struct ServingCounters {
  long queue_depth = 0;       // currently queued (gauge, sampled)
  long active = 0;            // currently inside RunTicket (gauge, sampled)
  long peak_queue_depth = 0;  // high-water mark since construction
  long submitted = 0;
  long completed = 0;
  long failed = 0;
  long cancelled = 0;
  long rejected = 0;
  long drains = 0;  // DrainDataset calls (resize tail waits)
  // Plan-cache counters (PlanCache's own atomics, read at snapshot time).
  long planner_runs = 0;
  long cache_hits = 0;
  long disk_loads = 0;
  // Accuracy-budget serving (docs/ACCURACY.md). `degrade_level` is the
  // engine's current accuracy-shed level (gauge, sampled; group level
  // reports the max across shards). `band_degraded` counts answers
  // served below their requested band; `degraded_band_seconds` is the
  // execution wall time those answers spent there.
  int degrade_level = 0;
  long band_degraded = 0;
  double degraded_band_seconds = 0.0;
  // Live-stream serving (docs/ARCHITECTURE.md "Live streams"). Appends are
  // applied dataset growths (idempotent replays that added nothing do not
  // count); `stream_results` are incremental results published to
  // subscribers, `stream_dropped` the ones a slow consumer's bounded
  // buffer discarded.
  long appends = 0;
  long appended_frames = 0;
  long subscribes = 0;
  long unsubscribes = 0;
  long stream_results = 0;
  long stream_dropped = 0;
  // APFG feature-cache activity (hit/miss/evict deltas sampled around each
  // localization). Concurrent runs sharing one plan may attribute each
  // other's traffic, so these can over-count under contention — they never
  // under-count. Exact per-plan counters live on the FeatureCache itself.
  long feature_hits = 0;
  long feature_misses = 0;
  long feature_evictions = 0;
  // Plans served from cache (memory or disk — no planner run) per
  // accuracy band, keyed by the band's milli-accuracy grid point
  // (core::AccuracyMillis of the effective target).
  std::map<long, long> band_plan_hits;
  // Achieved confidence of every completed answer.
  ConfidenceStats confidence;
  HistogramStats queue_wait;
  HistogramStats exec;

  // Counters add, histograms merge bucket-wise, the peak and the degrade
  // level are maxes.
  void Fold(const ServingCounters& other);
};

// One QueryEngine shard.
struct ShardStats : ServingCounters {
  // Folds `other` into this one (ServingCounters::Fold plus per-dataset
  // rows merged by name). How a scale-down's retired shards keep their
  // history in the group aggregates instead of taking it to the grave.
  void Merge(const ShardStats& other);

  int shard = 0;
  std::vector<DatasetStats> datasets;
};

// The whole serving group: per-shard detail plus exact aggregates (the
// inherited ServingCounters fields, summed over every shard that ever
// served — including ones retired by scale-downs). This is what
// `EngineGroup::Stats()` / `ZeusDb::Stats()` return and what the
// autoscaler samples.
struct GroupStats : ServingCounters {
  int num_shards = 0;
  long resizes = 0;            // completed Resize() calls that changed N
  long autoscaler_decisions = 0;  // resizes initiated by the autoscaler
  std::vector<ShardStats> shards;

  // Folds one shard into the aggregate fields and appends it to `shards`.
  void Absorb(ShardStats shard);
  // Aggregate-only fold (no per-shard row): how retired/retiring shards'
  // history enters the totals, so counters stay monotonic across a
  // scale-down.
  void AbsorbTotals(const ShardStats& shard) { Fold(shard); }
  // Machine-readable form for tooling (sql_console `.stats`, bench JSON
  // context, dashboards). Stable schema documented in
  // docs/ARCHITECTURE.md.
  std::string ToJson() const;
};

// ---- Registry --------------------------------------------------------------

// How one run ended, for the outcome counters.
enum class RunOutcome { kDone, kFailed, kCancelled };

// Lock-cheap metrics sink owned by one QueryEngine (one per shard). The
// engine and its admission path feed it; `Snapshot()` assembles the
// plain-value copy above. Gauges (queue depth, active, weights) are NOT
// stored here — they live in the engine's own structures and are sampled
// into the snapshot by QueryEngine::Stats(), so the registry never
// duplicates state that can drift.
class MetricsRegistry {
 public:
  // Admission accepted `dataset`; `queue_depth_now` is the queue size just
  // after the push (maintains the peak-depth high-water mark). Inline
  // Execute() runs record with depth 0: they count as submissions (so
  // submitted >= completed always holds) without touching the peak.
  void RecordSubmitted(const std::string& dataset, size_t queue_depth_now);
  // Admission rejected with kResourceExhausted.
  void RecordRejected(const std::string& dataset);
  // A queued ticket was dropped by a cancel purge (never ran).
  void RecordCancelledWhileQueued(const std::string& dataset);
  // Time between Submit() and a worker claiming the ticket.
  void RecordQueueWait(const std::string& dataset, double seconds);
  // One RunTicket finished: execution wall time + outcome.
  void RecordRun(const std::string& dataset, double seconds,
                 RunOutcome outcome);
  // One DrainDataset wait completed.
  void RecordDrain();
  // One answer completed with its accuracy annotation: the achieved
  // confidence estimate, the band (milli-accuracy grid point) it was
  // served at, whether that band is below the requested one
  // (`degraded`), the execution seconds it spent there, and whether the
  // plan came from cache (memory or disk) rather than the planner.
  void RecordAnswer(double confidence, long band_millis, bool degraded,
                    double exec_seconds, bool plan_cached);
  // One applied append grew a dataset by `frames` (> 0; idempotent no-op
  // replays are not recorded).
  void RecordAppend(long frames);
  // Subscription lifecycle + published incremental results.
  void RecordSubscribe();
  void RecordUnsubscribe();
  void RecordStreamResult();
  void RecordStreamDropped();
  // Feature-cache hit/miss/evict deltas observed across one localization.
  void RecordFeatureCache(long hits, long misses, long evictions);

  long peak_queue_depth() const {
    return peak_queue_depth_.load(std::memory_order_relaxed);
  }

  // Counters and histograms only; the caller (QueryEngine::Stats) fills
  // the sampled gauges and plan-cache fields afterwards.
  // `include_datasets == false` skips the per-dataset rows entirely — the
  // cheap form the autoscaler's sampler uses.
  ShardStats Snapshot(bool include_datasets = true) const;

 private:
  struct Hist {
    std::array<std::atomic<long>, HistogramStats::kNumBuckets> buckets{};
    std::atomic<long> count{0};
    // Seconds in microsecond ticks: std::atomic<double> has no fetch_add
    // until C++20, and 1µs resolution matches the first bucket bound.
    std::atomic<long> sum_micros{0};

    void Record(double seconds);
    HistogramStats Snapshot() const;
  };
  struct PerDataset {
    std::atomic<long> submitted{0};
    std::atomic<long> completed{0};
    std::atomic<long> failed{0};
    std::atomic<long> cancelled{0};
    std::atomic<long> rejected{0};
    Hist queue_wait;
    Hist exec;
  };

  // Shared-lock lookup, exclusive-lock insert on first sight. The returned
  // pointer is stable: entries are never removed (a dataset that re-homes
  // away keeps its history on the old shard until the shard retires).
  PerDataset* ForDataset(const std::string& dataset);

  std::atomic<long> submitted_{0};
  std::atomic<long> completed_{0};
  std::atomic<long> failed_{0};
  std::atomic<long> cancelled_{0};
  std::atomic<long> rejected_{0};
  std::atomic<long> drains_{0};
  std::atomic<long> peak_queue_depth_{0};
  Hist queue_wait_;
  Hist exec_;

  // Accuracy annotation counters. The confidence histogram mirrors
  // Hist's atomic-bucket shape on the linear 0.05 grid; the per-band
  // plan-hit map is mutex-guarded (one lock per completed answer — cold
  // next to a localization).
  std::array<std::atomic<long>, ConfidenceStats::kNumBuckets>
      confidence_buckets_{};
  std::atomic<long> confidence_count_{0};
  std::atomic<long> confidence_sum_millis_{0};
  std::atomic<long> band_degraded_{0};
  std::atomic<long> degraded_band_micros_{0};
  std::atomic<long> appends_{0};
  std::atomic<long> appended_frames_{0};
  std::atomic<long> subscribes_{0};
  std::atomic<long> unsubscribes_{0};
  std::atomic<long> stream_results_{0};
  std::atomic<long> stream_dropped_{0};
  std::atomic<long> feature_hits_{0};
  std::atomic<long> feature_misses_{0};
  std::atomic<long> feature_evictions_{0};
  mutable std::mutex band_mu_;
  std::map<long, long> band_plan_hits_;

  mutable std::shared_mutex map_mu_;
  std::map<std::string, std::unique_ptr<PerDataset>> per_dataset_;
};

}  // namespace zeus::engine

#endif  // ZEUS_ENGINE_METRICS_H_
