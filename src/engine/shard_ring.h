#ifndef ZEUS_ENGINE_SHARD_RING_H_
#define ZEUS_ENGINE_SHARD_RING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace zeus::engine {

// Consistent-hash ring mapping keys (dataset names / PlanKey prefixes) to
// shard ids. Each shard contributes `vnodes_per_shard` virtual nodes so the
// key space splits evenly; a key lands on the first virtual node clockwise
// from its hash. The properties EngineGroup's routing relies on:
//
//   - Stability: the same key maps to the same shard on every call and on
//     every identically-constructed ring (the hash is deterministic, no
//     process-local state), so a dataset's plan cache stays hot on exactly
//     one shard.
//   - Minimal movement: growing the ring from N to N+1 shards remaps only
//     ~1/(N+1) of the keys — the fraction the new shard's virtual nodes
//     capture — instead of reshuffling everything the way `hash % N` does.
class ShardRing {
 public:
  explicit ShardRing(int num_shards, int vnodes_per_shard = 64);

  // Ring over an explicit shard-id set (ids need not be contiguous). A
  // shard's virtual nodes are derived from its id, not its position, so
  // removing one member — how the cluster router drops a dead shard —
  // leaves every other shard's ring points untouched: only the dead
  // shard's keys move, each to its ring successor. The int-count
  // constructor is exactly ShardRing({0, 1, ..., n-1}).
  explicit ShardRing(const std::vector<int>& shard_ids,
                     int vnodes_per_shard = 64);

  // Shard owning `key`: an index in [0, num_shards) for the count
  // constructor, one of the given ids for the id-set constructor.
  int ShardFor(const std::string& key) const;

  // The first min(n, num_shards) DISTINCT shards clockwise from `key`'s
  // ring position: element 0 is ShardFor(key) (the owner), the rest are
  // its ring successors in walk order. This is the cluster's replica
  // placement: a dataset lives on its owner plus R-1 successors, and when
  // the owner dies the ring's new owner for the key is exactly the next
  // surviving successor — i.e. a shard that already holds a replica.
  std::vector<int> ShardsFor(const std::string& key, int n) const;

  // One key whose owner differs between two rings. The minimal-movement
  // property bounds how many of these a resize produces: growing N→N+1
  // yields ~|keys|/(N+1) moves, all with `to` == the added shard.
  struct KeyMove {
    std::string key;
    int from = 0;
    int to = 0;
  };

  // Owner diff between this ring and `to` over `keys`: exactly the keys
  // whose shard changes, with their old and new owners. This is what
  // EngineGroup::Resize drains and hands off — everything else stays put.
  std::vector<KeyMove> DiffOwners(const ShardRing& to,
                                  const std::vector<std::string>& keys) const;

  int num_shards() const { return num_shards_; }

  // FNV-1a 64-bit: deterministic across processes and platforms (no seed,
  // no size_t width dependence), well-mixed enough for ring placement.
  static uint64_t Hash(const std::string& key);

 private:
  int num_shards_;
  // (ring point, shard id), sorted by point.
  std::vector<std::pair<uint64_t, int>> ring_;
};

}  // namespace zeus::engine

#endif  // ZEUS_ENGINE_SHARD_RING_H_
