#ifndef ZEUS_ENGINE_ADMISSION_QUEUE_H_
#define ZEUS_ENGINE_ADMISSION_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace zeus::engine {

// Priority- and fairness-aware admission queue: the scheduling policy behind
// QueryEngine::Submit, factored out so the ordering rules are deterministic
// and unit-testable without threads.
//
// Ordering rules, in precedence order:
//   1. Effective priority — a higher-priority item always pops before a
//      lower one, regardless of tenant (within a tenant it also jumps the
//      line). The effective priority is the submitted priority plus an
//      aging boost: an item pushed with aging_threshold T > 0 gains one
//      priority band for every T pops it has waited through
//      (QueryOptions::aging_threshold). The boost is monotonic and
//      unbounded, so a low-priority ticket under a continuous
//      high-priority flood eventually ties the flood's band — at which
//      point rule 2 rotates service onto it — and no ticket starves.
//      T == 0 (the default) disables aging for that item.
//   2. Weighted round-robin across tenants — among tenants whose best item
//      ties at the top effective priority, service rotates tenant by
//      tenant, so one tenant flooding the queue cannot starve the rest. A
//      tenant with weight w (default 1, see SetWeight) receives up to w
//      consecutive pops per turn — a deficit-style weighted share.
//   3. FIFO — within one tenant and one effective priority, admission
//      order holds.
//
// Time is logical: one tick per successful Pop(). That keeps the rules a
// pure function of the push/pop sequence (no wall clock), which is what
// makes aging deterministic and unit-testable; on a live engine each pop
// corresponds to one query dispatch, so "T pops" is "T queries' worth of
// waiting".
//
// A tenant is a dataset name: per-dataset fairness is the multi-tenant story
// (each dataset ~ one tenant's traffic). The payload is opaque; QueryEngine
// stores its ticket state there. NOT thread-safe — the engine guards every
// call with its queue mutex.
class AdmissionQueue {
 public:
  using Payload = std::shared_ptr<void>;

  // Weight must be >= 1 (clamped). Takes effect on the tenant's next turn.
  void SetWeight(const std::string& tenant, int weight);

  // `aging_threshold` <= 0 disables aging for this item.
  void Push(const std::string& tenant, int priority, int aging_threshold,
            Payload payload);
  void Push(const std::string& tenant, int priority, Payload payload) {
    Push(tenant, priority, 0, std::move(payload));
  }

  // Best item under the rules above; nullptr when empty. Counts one tick
  // of logical time when an item is returned.
  Payload Pop();

  // Removes every item for which `pred` returns true (e.g. cancelled
  // tickets, which must not pin queue slots). Returns the number removed.
  size_t Purge(const std::function<bool(const Payload&)>& pred);

  // Removes and returns the NEWEST (highest admission seq) item matching
  // `pred`, or nullptr when none matches. This is the strict-tier
  // displacement primitive: when the queue is full and a strict query
  // arrives, the engine evicts the most recently admitted lower-tier
  // ticket — the one that has invested the least waiting — to make room,
  // so strict tenants never see kResourceExhausted while cheaper traffic
  // occupies slots. Does not advance logical time (nothing was served).
  Payload PopNewestIf(const std::function<bool(const Payload&)>& pred);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // Queued items for one tenant (EngineGroup uses this to drain a moving
  // dataset during Resize).
  size_t PendingFor(const std::string& tenant) const;
  // Queued items per tenant with a non-empty queue (the per-dataset
  // queue-depth gauge in MetricsRegistry snapshots).
  std::map<std::string, size_t> PendingByTenant() const;
  // Current fair-share weight of a tenant (1 when never set). Lets the
  // group verify and re-apply weights across a resize.
  int WeightOf(const std::string& tenant) const;

 private:
  struct Item {
    int priority = 0;
    int aging_threshold = 0;  // pops waited per +1 band; 0 = no aging
    uint64_t seq = 0;
    uint64_t enqueue_tick = 0;
    Payload payload;
  };
  struct Tenant {
    // Plain FIFO push order. Aging makes the effective priority
    // time-dependent, so the best item is found by scan — queues are
    // bounded (QueryEngine::Options::max_pending), so the scan is cheap.
    std::deque<Item> items;
    int weight = 1;
    int served = 0;  // consecutive pops in the current turn
  };

  // priority + aging boost at the current tick.
  int EffectivePriority(const Item& item) const;
  // Index of the tenant's best item: max effective priority, seq as the
  // tie-break (FIFO). Caller guarantees the tenant is non-empty.
  size_t BestIndex(const Tenant& t) const;

  std::map<std::string, Tenant> tenants_;
  std::vector<std::string> rr_;  // round-robin order: first-seen tenant order
  size_t cursor_ = 0;            // rr_ index currently being served
  uint64_t next_seq_ = 0;
  uint64_t tick_ = 0;  // logical time: number of successful pops so far
  size_t size_ = 0;
};

}  // namespace zeus::engine

#endif  // ZEUS_ENGINE_ADMISSION_QUEUE_H_
