#ifndef ZEUS_ENGINE_ADMISSION_QUEUE_H_
#define ZEUS_ENGINE_ADMISSION_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace zeus::engine {

// Priority- and fairness-aware admission queue: the scheduling policy behind
// QueryEngine::Submit, factored out so the ordering rules are deterministic
// and unit-testable without threads.
//
// Ordering rules, in precedence order:
//   1. Priority — a higher-priority item always pops before a lower one,
//      regardless of tenant (within a tenant it also jumps the line).
//   2. Weighted round-robin across tenants — among tenants whose head item
//      ties at the top priority, service rotates tenant by tenant, so one
//      tenant flooding the queue cannot starve the rest. A tenant with
//      weight w (default 1, see SetWeight) receives up to w consecutive
//      pops per turn — a deficit-style weighted share.
//   3. FIFO — within one tenant and one priority, admission order holds.
//
// A tenant is a dataset name: per-dataset fairness is the multi-tenant story
// (each dataset ~ one tenant's traffic). The payload is opaque; QueryEngine
// stores its ticket state there. NOT thread-safe — the engine guards every
// call with its queue mutex.
class AdmissionQueue {
 public:
  using Payload = std::shared_ptr<void>;

  // Weight must be >= 1 (clamped). Takes effect on the tenant's next turn.
  void SetWeight(const std::string& tenant, int weight);

  void Push(const std::string& tenant, int priority, Payload payload);

  // Highest-priority item under the rules above; nullptr when empty.
  Payload Pop();

  // Removes every item for which `pred` returns true (e.g. cancelled
  // tickets, which must not pin queue slots). Returns the number removed.
  size_t Purge(const std::function<bool(const Payload&)>& pred);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Item {
    int priority = 0;
    uint64_t seq = 0;
    Payload payload;
  };
  struct Tenant {
    // Sorted by (priority desc, seq asc); same-priority pushes append, so
    // the common flood case is O(1).
    std::deque<Item> items;
    int weight = 1;
    int served = 0;  // consecutive pops in the current turn
  };

  std::map<std::string, Tenant> tenants_;
  std::vector<std::string> rr_;  // round-robin order: first-seen tenant order
  size_t cursor_ = 0;            // rr_ index currently being served
  uint64_t next_seq_ = 0;
  size_t size_ = 0;
};

}  // namespace zeus::engine

#endif  // ZEUS_ENGINE_ADMISSION_QUEUE_H_
