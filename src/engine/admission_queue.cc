#include "engine/admission_queue.h"

#include <algorithm>
#include <utility>

namespace zeus::engine {

void AdmissionQueue::SetWeight(const std::string& tenant, int weight) {
  Tenant& t = tenants_[tenant];
  if (std::find(rr_.begin(), rr_.end(), tenant) == rr_.end()) {
    rr_.push_back(tenant);
  }
  t.weight = std::max(1, weight);
}

void AdmissionQueue::Push(const std::string& tenant, int priority,
                          Payload payload) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) rr_.push_back(tenant);
  Tenant& t = it->second;

  Item item;
  item.priority = priority;
  item.seq = next_seq_++;
  item.payload = std::move(payload);

  // Insert before the first strictly-lower-priority item, scanning from the
  // back: a same-priority push (the common case) appends in O(1).
  auto pos = t.items.end();
  while (pos != t.items.begin() && std::prev(pos)->priority < priority) {
    --pos;
  }
  t.items.insert(pos, std::move(item));
  ++size_;
}

AdmissionQueue::Payload AdmissionQueue::Pop() {
  if (size_ == 0 || rr_.empty()) return nullptr;

  int max_priority = 0;
  bool found = false;
  for (const auto& [name, t] : tenants_) {
    if (t.items.empty()) continue;
    if (!found || t.items.front().priority > max_priority) {
      max_priority = t.items.front().priority;
      found = true;
    }
  }
  if (!found) return nullptr;

  const size_t n = rr_.size();
  for (size_t off = 0; off < n; ++off) {
    const size_t idx = (cursor_ + off) % n;
    Tenant& t = tenants_[rr_[idx]];
    if (t.items.empty() || t.items.front().priority != max_priority) continue;
    if (idx != cursor_) {
      // The turn moved on: the tenant the cursor left behind starts its
      // next turn fresh, and so does the one we just reached.
      tenants_[rr_[cursor_]].served = 0;
      cursor_ = idx;
      t.served = 0;
    }
    Payload out = std::move(t.items.front().payload);
    t.items.pop_front();
    --size_;
    if (++t.served >= t.weight || t.items.empty()) {
      t.served = 0;
      cursor_ = (idx + 1) % n;
    }
    return out;
  }
  return nullptr;
}

size_t AdmissionQueue::Purge(const std::function<bool(const Payload&)>& pred) {
  size_t removed = 0;
  for (auto& [name, t] : tenants_) {
    for (auto it = t.items.begin(); it != t.items.end();) {
      if (pred(it->payload)) {
        it = t.items.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  size_ -= removed;
  return removed;
}

}  // namespace zeus::engine
