#include "engine/admission_queue.h"

#include <algorithm>
#include <utility>

namespace zeus::engine {

void AdmissionQueue::SetWeight(const std::string& tenant, int weight) {
  Tenant& t = tenants_[tenant];
  if (std::find(rr_.begin(), rr_.end(), tenant) == rr_.end()) {
    rr_.push_back(tenant);
  }
  t.weight = std::max(1, weight);
}

void AdmissionQueue::Push(const std::string& tenant, int priority,
                          int aging_threshold, Payload payload) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) rr_.push_back(tenant);
  Tenant& t = it->second;

  Item item;
  item.priority = priority;
  item.aging_threshold = std::max(0, aging_threshold);
  item.seq = next_seq_++;
  item.enqueue_tick = tick_;
  item.payload = std::move(payload);
  t.items.push_back(std::move(item));
  ++size_;
}

int AdmissionQueue::EffectivePriority(const Item& item) const {
  if (item.aging_threshold <= 0) return item.priority;
  const uint64_t waited = tick_ - item.enqueue_tick;
  return item.priority +
         static_cast<int>(waited / static_cast<uint64_t>(item.aging_threshold));
}

size_t AdmissionQueue::BestIndex(const Tenant& t) const {
  size_t best = 0;
  int best_priority = EffectivePriority(t.items[0]);
  for (size_t i = 1; i < t.items.size(); ++i) {
    const int p = EffectivePriority(t.items[i]);
    // Strictly greater: earlier seq (pushed first, hence scanned first)
    // wins ties, preserving FIFO within a band.
    if (p > best_priority) {
      best = i;
      best_priority = p;
    }
  }
  return best;
}

AdmissionQueue::Payload AdmissionQueue::Pop() {
  if (size_ == 0 || rr_.empty()) return nullptr;

  int max_priority = 0;
  bool found = false;
  for (const auto& [name, t] : tenants_) {
    if (t.items.empty()) continue;
    const int p = EffectivePriority(t.items[BestIndex(t)]);
    if (!found || p > max_priority) {
      max_priority = p;
      found = true;
    }
  }
  if (!found) return nullptr;

  const size_t n = rr_.size();
  for (size_t off = 0; off < n; ++off) {
    const size_t idx = (cursor_ + off) % n;
    Tenant& t = tenants_[rr_[idx]];
    if (t.items.empty()) continue;
    const size_t best = BestIndex(t);
    if (EffectivePriority(t.items[best]) != max_priority) continue;
    if (idx != cursor_) {
      // The turn moved on: the tenant the cursor left behind starts its
      // next turn fresh, and so does the one we just reached.
      tenants_[rr_[cursor_]].served = 0;
      cursor_ = idx;
      t.served = 0;
    }
    Payload out = std::move(t.items[best].payload);
    t.items.erase(t.items.begin() + static_cast<long>(best));
    --size_;
    ++tick_;
    if (++t.served >= t.weight || t.items.empty()) {
      t.served = 0;
      cursor_ = (idx + 1) % n;
    }
    return out;
  }
  return nullptr;
}

size_t AdmissionQueue::PendingFor(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.items.size();
}

std::map<std::string, size_t> AdmissionQueue::PendingByTenant() const {
  std::map<std::string, size_t> out;
  for (const auto& [name, t] : tenants_) {
    if (!t.items.empty()) out[name] = t.items.size();
  }
  return out;
}

int AdmissionQueue::WeightOf(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 1 : it->second.weight;
}

AdmissionQueue::Payload AdmissionQueue::PopNewestIf(
    const std::function<bool(const Payload&)>& pred) {
  Tenant* best_tenant = nullptr;
  size_t best_index = 0;
  uint64_t best_seq = 0;
  for (auto& [name, t] : tenants_) {
    for (size_t i = 0; i < t.items.size(); ++i) {
      if (!pred(t.items[i].payload)) continue;
      if (best_tenant == nullptr || t.items[i].seq > best_seq) {
        best_tenant = &t;
        best_index = i;
        best_seq = t.items[i].seq;
      }
    }
  }
  if (best_tenant == nullptr) return nullptr;
  Payload out = std::move(best_tenant->items[best_index].payload);
  best_tenant->items.erase(best_tenant->items.begin() +
                           static_cast<long>(best_index));
  --size_;
  return out;
}

size_t AdmissionQueue::Purge(const std::function<bool(const Payload&)>& pred) {
  size_t removed = 0;
  for (auto& [name, t] : tenants_) {
    for (auto it = t.items.begin(); it != t.items.end();) {
      if (pred(it->payload)) {
        it = t.items.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  size_ -= removed;
  return removed;
}

}  // namespace zeus::engine
