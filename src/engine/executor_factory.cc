#include "engine/executor_factory.h"

#include <utility>

#include "baselines/frame_pp.h"
#include "baselines/heuristic.h"
#include "baselines/segment_pp.h"
#include "baselines/sliding.h"
#include "common/stringutil.h"
#include "core/batched_executor.h"
#include "core/executor.h"

namespace zeus::engine {

namespace {

// Adapter that keeps a baseline localizer together with the RNG it borrows
// (the baselines store the pointer for training-time sampling).
class OwningLocalizer : public core::Localizer {
 public:
  OwningLocalizer(std::unique_ptr<common::Rng> rng,
                  std::unique_ptr<core::Localizer> inner)
      : rng_(std::move(rng)), inner_(std::move(inner)) {}

  core::RunResult Localize(
      const std::vector<const video::Video*>& videos) override {
    return inner_->Localize(videos);
  }
  std::string name() const override { return inner_->name(); }
  void SetCancellation(core::CancellationToken token) override {
    inner_->SetCancellation(std::move(token));
  }

 private:
  std::unique_ptr<common::Rng> rng_;
  std::unique_ptr<core::Localizer> inner_;
};

std::vector<const video::Video*> TrainVideos(
    const video::SyntheticDataset* dataset) {
  std::vector<const video::Video*> out;
  for (int i : dataset->train_indices()) {
    out.push_back(&dataset->video(static_cast<size_t>(i)));
  }
  return out;
}

}  // namespace

const char* ExecutorKindName(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kAuto:
      return "auto";
    case ExecutorKind::kSequential:
      return "sequential";
    case ExecutorKind::kBatched:
      return "batched";
    case ExecutorKind::kSliding:
      return "sliding";
    case ExecutorKind::kHeuristic:
      return "heuristic";
    case ExecutorKind::kFramePp:
      return "frame_pp";
    case ExecutorKind::kSegmentPp:
      return "segment_pp";
  }
  return "unknown";
}

ExecutorKind ParseExecutorKind(const std::string& name, bool* ok) {
  const std::string s = common::ToLower(common::Trim(name));
  if (ok != nullptr) *ok = true;
  if (s == "auto") return ExecutorKind::kAuto;
  if (s == "sequential" || s == "zeus-rl") return ExecutorKind::kSequential;
  if (s == "batched" || s == "zeus-rl-batched") return ExecutorKind::kBatched;
  if (s == "sliding") return ExecutorKind::kSliding;
  if (s == "heuristic") return ExecutorKind::kHeuristic;
  if (s == "frame_pp") return ExecutorKind::kFramePp;
  if (s == "segment_pp") return ExecutorKind::kSegmentPp;
  if (ok != nullptr) *ok = false;
  return ExecutorKind::kAuto;
}

ExecutorKind ExecutorFactory::Resolve(const ExecutionOptions& opts,
                                      size_t num_videos) {
  if (opts.executor != ExecutorKind::kAuto) return opts.executor;
  // Batching pays off exactly when independent per-video traversals exist.
  return num_videos > 1 ? ExecutorKind::kBatched : ExecutorKind::kSequential;
}

std::string ExecutorFactory::Describe(const ExecutionOptions& opts,
                                      size_t num_videos) {
  const ExecutorKind kind = Resolve(opts, num_videos);
  if (kind == ExecutorKind::kBatched) {
    return common::Format("batched (Zeus-RL-Batched, max_batch %d, %zu videos)",
                          opts.max_batch, num_videos);
  }
  return common::Format("%s (%zu video%s)", ExecutorKindName(kind), num_videos,
                        num_videos == 1 ? "" : "s");
}

common::Result<std::unique_ptr<core::Localizer>> ExecutorFactory::Make(
    const ExecutionOptions& opts, const core::QueryPlan* plan,
    const video::SyntheticDataset* dataset, size_t num_videos) {
  if (plan == nullptr) {
    return common::Status::InvalidArgument("executor factory needs a plan");
  }
  const ExecutorKind kind = Resolve(opts, num_videos);
  switch (kind) {
    case ExecutorKind::kAuto:  // unreachable after Resolve
    case ExecutorKind::kSequential:
      return std::unique_ptr<core::Localizer>(
          std::make_unique<core::QueryExecutor>(plan));
    case ExecutorKind::kBatched: {
      core::BatchedExecutor::Options bopts;
      bopts.max_batch = opts.max_batch;
      bopts.step_pool = opts.step_pool;
      return std::unique_ptr<core::Localizer>(
          std::make_unique<core::BatchedExecutor>(plan, bopts));
    }
    case ExecutorKind::kSliding: {
      const int id =
          baselines::PickSlidingConfig(plan->space, plan->accuracy_target);
      return std::unique_ptr<core::Localizer>(
          std::make_unique<baselines::ZeusSliding>(
              plan->space.config(id), plan->apfg.get(), plan->cost_model));
    }
    case ExecutorKind::kHeuristic:
      return std::unique_ptr<core::Localizer>(
          std::make_unique<baselines::ZeusHeuristic>(
              baselines::ZeusHeuristic::Options{}, &plan->rl_space,
              plan->cache.get()));
    case ExecutorKind::kFramePp: {
      if (dataset == nullptr) {
        return common::Status::InvalidArgument(
            "frame_pp needs the dataset (its classifier trains on the train "
            "split)");
      }
      auto rng = std::make_unique<common::Rng>(opts.baseline_seed);
      baselines::FramePp::Options fp;
      fp.nominal_resolution = plan->space.NominalResolutions().back();
      fp.resolution_px =
          plan->space.config(plan->space.SlowestId()).spec.resolution_px;
      auto pp = std::make_unique<baselines::FramePp>(fp, plan->cost_model,
                                                     plan->targets, rng.get());
      ZEUS_RETURN_IF_ERROR(pp->Train(TrainVideos(dataset)));
      return std::unique_ptr<core::Localizer>(std::make_unique<OwningLocalizer>(
          std::move(rng), std::move(pp)));
    }
    case ExecutorKind::kSegmentPp: {
      if (dataset == nullptr) {
        return common::Status::InvalidArgument(
            "segment_pp needs the dataset (its filter trains on the train "
            "split)");
      }
      auto rng = std::make_unique<common::Rng>(opts.baseline_seed);
      auto pp = std::make_unique<baselines::SegmentPp>(
          baselines::SegmentPp::Options{}, plan->cost_model,
          plan->space.config(plan->space.SlowestId()), plan->apfg.get(),
          plan->targets, rng.get());
      ZEUS_RETURN_IF_ERROR(pp->Train(TrainVideos(dataset)));
      return std::unique_ptr<core::Localizer>(std::make_unique<OwningLocalizer>(
          std::move(rng), std::move(pp)));
    }
  }
  return common::Status::Internal("unhandled executor kind");
}

}  // namespace zeus::engine
