#ifndef ZEUS_ENGINE_PLAN_CACHE_H_
#define ZEUS_ENGINE_PLAN_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/query_planner.h"
#include "video/dataset.h"

namespace zeus::engine {

// Thread-safe cache of trained query plans, the most expensive artifact in
// the system (a miss costs minutes of APFG + DQN training).
//
//  - Single-flight planning: concurrent misses on the same key block on the
//    one planner run instead of training the same plan N times. A failed
//    run propagates its status to every waiter and is then forgotten so a
//    later request can retry.
//  - LRU bounding: at most `capacity` ready plans are held in memory;
//    in-flight runs are never evicted.
//  - Disk persistence (optional): with `persist_dir` set, every freshly
//    trained plan is checkpointed via core::PlanIo and misses try the disk
//    before the planner — plans survive process restarts and LRU eviction.
//    Corrupt checkpoints are detected by PlanIo's integrity checks and fall
//    through to replanning.
//  - Catalog + warm start: alongside each checkpoint, a small `.key`
//    catalog entry records the raw plan key and the dataset family it was
//    trained for (sanitized filenames are lossy, so the key cannot be
//    recovered from the checkpoint name alone). WarmUp() scans the catalog
//    and preloads matching plans, so a restarted engine — or a shard that
//    just became a dataset's home after an EngineGroup::Resize — serves
//    its first query from cache instead of paying a lazy disk load (or,
//    worse, a replan when the checkpoint is missing).
class PlanCache {
 public:
  struct Options {
    size_t capacity = 8;      // in-memory LRU bound (clamped to >= 1)
    std::string persist_dir;  // "" => memory-only
    // With persist_dir set: scan the catalog and preload plans at engine
    // start (QueryEngine honors this in its constructor; EngineGroup warms
    // each shard with an ownership filter instead so plans only load on
    // their home shard).
    bool warm_start = false;
  };

  struct Lookup {
    std::shared_ptr<core::QueryPlan> plan;
    // Wall seconds spent in the planner for THIS lookup: > 0 only when the
    // caller's miss triggered training. Memory hits, disk hits and
    // single-flight waiters all report 0 (they did not train anything).
    double plan_seconds = 0.0;
  };

  PlanCache(const Options& opts, core::QueryPlanner::Options planner_options);

  // Returns the plan for `key`, in order of preference: memory hit, join of
  // an in-flight run, disk load, planner run. Blocks while another thread
  // plans the same key.
  common::Result<Lookup> GetOrPlan(
      const std::string& key, const video::SyntheticDataset* dataset,
      const std::vector<video::ActionClass>& targets, double accuracy_target);

  // Non-blocking lookup of a ready plan; nullptr when absent or in flight.
  // The pointer stays valid as long as the caller holds it (shared
  // ownership), independent of later evictions.
  std::shared_ptr<core::QueryPlan> Peek(const std::string& key) const;

  // Scans the persist-dir catalog and preloads every plan whose key is
  // accepted by `filter` (an empty filter accepts everything) and is not
  // already cached or in flight. Loads count as disk_loads, never as
  // planner_runs. Returns the number of plans loaded. No-op without a
  // persist_dir. Thread-safe: loads follow the single-flight protocol, so
  // a concurrent GetOrPlan on the same key joins the warm load instead of
  // racing it.
  size_t WarmUp(const std::function<bool(const std::string& key)>& filter = {});

  // Inserts an already-trained plan as a ready entry (shard handoff during
  // EngineGroup::Resize when no persist_dir is shared). Returns false —
  // and leaves the cache untouched — when the key is already present or in
  // flight.
  bool Put(const std::string& key, std::shared_ptr<core::QueryPlan> plan);

  // Ready (key, plan) pairs whose key satisfies `pred` — the handoff
  // manifest a resize copies to a dataset's new home shard.
  std::vector<std::pair<std::string, std::shared_ptr<core::QueryPlan>>>
  Snapshot(const std::function<bool(const std::string& key)>& pred) const;

  // Drops every ready plan whose key satisfies `pred` from memory
  // (persisted checkpoints stay on disk). Returns the number dropped.
  size_t EraseIf(const std::function<bool(const std::string& key)>& pred);

  // Drops every ready plan from memory (persisted checkpoints stay on
  // disk). In-flight runs are unaffected.
  void Clear();

  // Counters for tests, EXPLAIN diagnostics and MetricsRegistry snapshots.
  long planner_runs() const { return planner_runs_.load(); }
  long disk_loads() const { return disk_loads_.load(); }
  // GetOrPlan lookups served without this caller planning or touching
  // disk: ready-entry memory hits plus successful joins of another
  // caller's in-flight run.
  long cache_hits() const { return cache_hits_.load(); }
  size_t size() const;

  const core::QueryPlanner::Options& planner_options() const {
    return planner_options_;
  }
  const Options& options() const { return opts_; }

  // Filesystem prefix a key persists under (sanitized key + crc32 suffix).
  std::string FilePrefix(const std::string& key) const;

 private:
  enum class EntryState { kPlanning, kReady, kFailed };
  struct Entry {
    EntryState state = EntryState::kPlanning;
    std::shared_ptr<core::QueryPlan> plan;
    common::Status status;
  };

  // Moves `key` to the front of the LRU list and evicts ready entries
  // beyond capacity. Caller holds mu_.
  void TouchLocked(const std::string& key);

  Options opts_;
  core::QueryPlanner::Options planner_options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // signaled when any in-flight run publishes
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  std::list<std::string> lru_;  // most recently used first; ready keys only
  std::atomic<long> planner_runs_{0};
  std::atomic<long> disk_loads_{0};
  std::atomic<long> cache_hits_{0};
};

}  // namespace zeus::engine

#endif  // ZEUS_ENGINE_PLAN_CACHE_H_
