#ifndef ZEUS_ENGINE_PLAN_CACHE_H_
#define ZEUS_ENGINE_PLAN_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/query_planner.h"
#include "video/dataset.h"

namespace zeus::engine {

// Thread-safe cache of trained query plans, the most expensive artifact in
// the system (a miss costs minutes of APFG + DQN training).
//
//  - Single-flight planning: concurrent misses on the same key block on the
//    one planner run instead of training the same plan N times. A failed
//    run propagates its status to every waiter and is then forgotten so a
//    later request can retry.
//  - LRU bounding: at most `capacity` ready plans are held in memory;
//    in-flight runs are never evicted.
//  - Disk persistence (optional): with `persist_dir` set, every freshly
//    trained plan is checkpointed via core::PlanIo and misses try the disk
//    before the planner — plans survive process restarts and LRU eviction.
//    Corrupt checkpoints are detected by PlanIo's integrity checks and fall
//    through to replanning.
class PlanCache {
 public:
  struct Options {
    size_t capacity = 8;      // in-memory LRU bound (clamped to >= 1)
    std::string persist_dir;  // "" => memory-only
  };

  struct Lookup {
    std::shared_ptr<core::QueryPlan> plan;
    // Wall seconds spent in the planner for THIS lookup: > 0 only when the
    // caller's miss triggered training. Memory hits, disk hits and
    // single-flight waiters all report 0 (they did not train anything).
    double plan_seconds = 0.0;
  };

  PlanCache(const Options& opts, core::QueryPlanner::Options planner_options);

  // Returns the plan for `key`, in order of preference: memory hit, join of
  // an in-flight run, disk load, planner run. Blocks while another thread
  // plans the same key.
  common::Result<Lookup> GetOrPlan(
      const std::string& key, const video::SyntheticDataset* dataset,
      const std::vector<video::ActionClass>& targets, double accuracy_target);

  // Non-blocking lookup of a ready plan; nullptr when absent or in flight.
  // The pointer stays valid as long as the caller holds it (shared
  // ownership), independent of later evictions.
  std::shared_ptr<core::QueryPlan> Peek(const std::string& key) const;

  // Drops every ready plan from memory (persisted checkpoints stay on
  // disk). In-flight runs are unaffected.
  void Clear();

  // Counters for tests and EXPLAIN diagnostics.
  long planner_runs() const { return planner_runs_.load(); }
  long disk_loads() const { return disk_loads_.load(); }
  size_t size() const;

  const core::QueryPlanner::Options& planner_options() const {
    return planner_options_;
  }
  const Options& options() const { return opts_; }

  // Filesystem prefix a key persists under (sanitized key + crc32 suffix).
  std::string FilePrefix(const std::string& key) const;

 private:
  enum class EntryState { kPlanning, kReady, kFailed };
  struct Entry {
    EntryState state = EntryState::kPlanning;
    std::shared_ptr<core::QueryPlan> plan;
    common::Status status;
  };

  // Moves `key` to the front of the LRU list and evicts ready entries
  // beyond capacity. Caller holds mu_.
  void TouchLocked(const std::string& key);

  Options opts_;
  core::QueryPlanner::Options planner_options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // signaled when any in-flight run publishes
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  std::list<std::string> lru_;  // most recently used first; ready keys only
  std::atomic<long> planner_runs_{0};
  std::atomic<long> disk_loads_{0};
};

}  // namespace zeus::engine

#endif  // ZEUS_ENGINE_PLAN_CACHE_H_
