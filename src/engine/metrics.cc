#include "engine/metrics.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <utility>

#include "common/stringutil.h"

namespace zeus::engine {

// ---- HistogramStats --------------------------------------------------------

double HistogramStats::BucketBound(size_t i) {
  return 1e-6 * static_cast<double>(1ull << i);
}

double HistogramStats::Percentile(double p) const {
  if (count <= 0) return 0.0;
  long bucket_total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) bucket_total += buckets[i];
  if (bucket_total <= 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  // Rank of the p-th sample, 1-based; p=1 is the last sample. Clamped to
  // the bucket population: `count` and the buckets come from separate
  // atomics, so a torn snapshot must degrade to the highest observed
  // sample, never fall through to the open top bucket's bound.
  const long rank = std::min(
      bucket_total,
      std::max<long>(
          1, static_cast<long>(std::ceil(p * static_cast<double>(count)))));
  long seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return BucketBound(i);
  }
  return BucketBound(kNumBuckets - 1);
}

void HistogramStats::Merge(const HistogramStats& other) {
  count += other.count;
  sum_seconds += other.sum_seconds;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
}

HistogramStats HistogramStats::Delta(const HistogramStats& earlier) const {
  HistogramStats out;
  out.count = std::max(0L, count - earlier.count);
  out.sum_seconds = std::max(0.0, sum_seconds - earlier.sum_seconds);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out.buckets[i] = std::max(0L, buckets[i] - earlier.buckets[i]);
  }
  return out;
}

// ---- ConfidenceStats -------------------------------------------------------

void ConfidenceStats::Merge(const ConfidenceStats& other) {
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
}

// ---- ServingCounters / ShardStats ------------------------------------------

void ServingCounters::Fold(const ServingCounters& other) {
  queue_depth += other.queue_depth;
  active += other.active;
  peak_queue_depth = std::max(peak_queue_depth, other.peak_queue_depth);
  submitted += other.submitted;
  completed += other.completed;
  failed += other.failed;
  cancelled += other.cancelled;
  rejected += other.rejected;
  drains += other.drains;
  planner_runs += other.planner_runs;
  cache_hits += other.cache_hits;
  disk_loads += other.disk_loads;
  degrade_level = std::max(degrade_level, other.degrade_level);
  band_degraded += other.band_degraded;
  degraded_band_seconds += other.degraded_band_seconds;
  appends += other.appends;
  appended_frames += other.appended_frames;
  subscribes += other.subscribes;
  unsubscribes += other.unsubscribes;
  stream_results += other.stream_results;
  stream_dropped += other.stream_dropped;
  feature_hits += other.feature_hits;
  feature_misses += other.feature_misses;
  feature_evictions += other.feature_evictions;
  for (const auto& [band, hits] : other.band_plan_hits) {
    band_plan_hits[band] += hits;
  }
  confidence.Merge(other.confidence);
  queue_wait.Merge(other.queue_wait);
  exec.Merge(other.exec);
}

void ShardStats::Merge(const ShardStats& other) {
  Fold(other);
  for (const DatasetStats& ds : other.datasets) {
    DatasetStats* mine = nullptr;
    for (DatasetStats& candidate : datasets) {
      if (candidate.dataset == ds.dataset) {
        mine = &candidate;
        break;
      }
    }
    if (mine == nullptr) {
      datasets.push_back(ds);
      continue;
    }
    mine->queue_depth += ds.queue_depth;
    mine->submitted += ds.submitted;
    mine->completed += ds.completed;
    mine->failed += ds.failed;
    mine->cancelled += ds.cancelled;
    mine->rejected += ds.rejected;
    mine->queue_wait.Merge(ds.queue_wait);
    mine->exec.Merge(ds.exec);
    // The weight is a live gauge, not history: keep the current row's.
  }
}

// ---- GroupStats ------------------------------------------------------------

void GroupStats::Absorb(ShardStats shard) {
  AbsorbTotals(shard);
  shards.push_back(std::move(shard));
}

namespace {

// JSON string escaping for interpolated names (dataset names are
// caller-chosen, so quotes/backslashes/control bytes must not produce
// malformed output).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += common::Format("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendHistJson(std::string* out, const char* name,
                    const HistogramStats& h) {
  *out += common::Format(
      "\"%s\": {\"count\": %ld, \"mean_seconds\": %.9g, \"p50\": %.9g, "
      "\"p95\": %.9g, \"p99\": %.9g}",
      name, h.count, h.mean_seconds(), h.p50(), h.p95(), h.p99());
}

void AppendCountersJson(std::string* out, long submitted, long completed,
                        long failed, long cancelled, long rejected) {
  *out += common::Format(
      "\"submitted\": %ld, \"completed\": %ld, \"failed\": %ld, "
      "\"cancelled\": %ld, \"rejected\": %ld",
      submitted, completed, failed, cancelled, rejected);
}

}  // namespace

std::string GroupStats::ToJson() const {
  std::string out = "{\n";
  out += common::Format(
      "  \"num_shards\": %d, \"resizes\": %ld, \"autoscaler_decisions\": "
      "%ld,\n",
      num_shards, resizes, autoscaler_decisions);
  out += common::Format(
      "  \"queue_depth\": %ld, \"active\": %ld, \"peak_queue_depth\": %ld,\n"
      "  ",
      queue_depth, active, peak_queue_depth);
  AppendCountersJson(&out, submitted, completed, failed, cancelled, rejected);
  out += common::Format(", \"drains\": %ld,\n", drains);
  out += common::Format(
      "  \"planner_runs\": %ld, \"cache_hits\": %ld, \"disk_loads\": %ld,\n",
      planner_runs, cache_hits, disk_loads);
  out += common::Format(
      "  \"degrade_level\": %d, \"band_degraded\": %ld, "
      "\"degraded_band_seconds\": %.9g,\n",
      degrade_level, band_degraded, degraded_band_seconds);
  out += common::Format(
      "  \"appends\": %ld, \"appended_frames\": %ld, \"subscribes\": %ld, "
      "\"unsubscribes\": %ld, \"stream_results\": %ld, \"stream_dropped\": "
      "%ld,\n",
      appends, appended_frames, subscribes, unsubscribes, stream_results,
      stream_dropped);
  out += common::Format(
      "  \"feature_hits\": %ld, \"feature_misses\": %ld, "
      "\"feature_evictions\": %ld,\n",
      feature_hits, feature_misses, feature_evictions);
  out += common::Format(
      "  \"confidence\": {\"count\": %ld, \"mean\": %.9g},\n",
      confidence.count, confidence.mean());
  out += "  \"band_plan_hits\": {";
  {
    bool first = true;
    for (const auto& [band, hits] : band_plan_hits) {
      if (!first) out += ", ";
      first = false;
      out += common::Format("\"%.3f\": %ld",
                            static_cast<double>(band) / 1000.0, hits);
    }
  }
  out += "},\n  ";
  AppendHistJson(&out, "queue_wait", queue_wait);
  out += ",\n  ";
  AppendHistJson(&out, "exec", exec);
  out += ",\n  \"shards\": [";
  for (size_t s = 0; s < shards.size(); ++s) {
    const ShardStats& sh = shards[s];
    out += s == 0 ? "\n" : ",\n";
    out += common::Format(
        "    {\"shard\": %d, \"queue_depth\": %ld, \"active\": %ld, "
        "\"peak_queue_depth\": %ld, ",
        sh.shard, sh.queue_depth, sh.active, sh.peak_queue_depth);
    AppendCountersJson(&out, sh.submitted, sh.completed, sh.failed,
                       sh.cancelled, sh.rejected);
    out += common::Format(
        ", \"drains\": %ld, \"planner_runs\": %ld, \"cache_hits\": %ld, "
        "\"disk_loads\": %ld, ",
        sh.drains, sh.planner_runs, sh.cache_hits, sh.disk_loads);
    AppendHistJson(&out, "queue_wait", sh.queue_wait);
    out += ", ";
    AppendHistJson(&out, "exec", sh.exec);
    out += ", \"datasets\": [";
    for (size_t d = 0; d < sh.datasets.size(); ++d) {
      const DatasetStats& ds = sh.datasets[d];
      out += d == 0 ? "" : ", ";
      out += "{\"dataset\": ";
      AppendJsonString(&out, ds.dataset);
      out += common::Format(", \"queue_depth\": %ld, \"weight\": %d, ",
                            ds.queue_depth, ds.weight);
      AppendCountersJson(&out, ds.submitted, ds.completed, ds.failed,
                         ds.cancelled, ds.rejected);
      out += ", ";
      AppendHistJson(&out, "queue_wait", ds.queue_wait);
      out += ", ";
      AppendHistJson(&out, "exec", ds.exec);
      out += "}";
    }
    out += "]}";
  }
  out += "\n  ]\n}";
  return out;
}

// ---- MetricsRegistry -------------------------------------------------------

void MetricsRegistry::Hist::Record(double seconds) {
  if (seconds < 0) seconds = 0;
  // Index of the first bucket whose upper bound 1µs * 2^i covers the
  // sample.
  size_t idx = 0;
  double bound = 1e-6;
  while (idx + 1 < HistogramStats::kNumBuckets && seconds > bound) {
    bound *= 2.0;
    ++idx;
  }
  // Bucket before count, with release/acquire pairing on count: a
  // snapshot that observes count == N also observes the N bucket
  // increments, so sum(buckets) >= count always holds for readers (the
  // invariant Percentile's rank clamp leans on).
  buckets[idx].fetch_add(1, std::memory_order_relaxed);
  sum_micros.fetch_add(static_cast<long>(seconds * 1e6),
                       std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_release);
}

HistogramStats MetricsRegistry::Hist::Snapshot() const {
  HistogramStats out;
  out.count = count.load(std::memory_order_acquire);
  out.sum_seconds =
      static_cast<double>(sum_micros.load(std::memory_order_relaxed)) * 1e-6;
  for (size_t i = 0; i < HistogramStats::kNumBuckets; ++i) {
    out.buckets[i] = buckets[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry::PerDataset* MetricsRegistry::ForDataset(
    const std::string& dataset) {
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    auto it = per_dataset_.find(dataset);
    if (it != per_dataset_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(map_mu_);
  auto& slot = per_dataset_[dataset];
  if (slot == nullptr) slot = std::make_unique<PerDataset>();
  return slot.get();
}

void MetricsRegistry::RecordSubmitted(const std::string& dataset,
                                      size_t queue_depth_now) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  ForDataset(dataset)->submitted.fetch_add(1, std::memory_order_relaxed);
  const long depth = static_cast<long>(queue_depth_now);
  long peak = peak_queue_depth_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !peak_queue_depth_.compare_exchange_weak(peak, depth,
                                                  std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::RecordRejected(const std::string& dataset) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  ForDataset(dataset)->rejected.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordCancelledWhileQueued(const std::string& dataset) {
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  ForDataset(dataset)->cancelled.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordQueueWait(const std::string& dataset,
                                      double seconds) {
  queue_wait_.Record(seconds);
  ForDataset(dataset)->queue_wait.Record(seconds);
}

void MetricsRegistry::RecordRun(const std::string& dataset, double seconds,
                                RunOutcome outcome) {
  exec_.Record(seconds);
  PerDataset* d = ForDataset(dataset);
  d->exec.Record(seconds);
  switch (outcome) {
    case RunOutcome::kDone:
      completed_.fetch_add(1, std::memory_order_relaxed);
      d->completed.fetch_add(1, std::memory_order_relaxed);
      break;
    case RunOutcome::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      d->failed.fetch_add(1, std::memory_order_relaxed);
      break;
    case RunOutcome::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      d->cancelled.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void MetricsRegistry::RecordDrain() {
  drains_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordAnswer(double confidence, long band_millis,
                                   bool degraded, double exec_seconds,
                                   bool plan_cached) {
  confidence = std::min(1.0, std::max(0.0, confidence));
  size_t idx = 0;
  while (idx + 1 < ConfidenceStats::kNumBuckets &&
         confidence > ConfidenceStats::BucketBound(idx)) {
    ++idx;
  }
  confidence_buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  confidence_sum_millis_.fetch_add(static_cast<long>(confidence * 1000.0),
                                   std::memory_order_relaxed);
  confidence_count_.fetch_add(1, std::memory_order_release);
  if (degraded) {
    band_degraded_.fetch_add(1, std::memory_order_relaxed);
    degraded_band_micros_.fetch_add(static_cast<long>(exec_seconds * 1e6),
                                    std::memory_order_relaxed);
  }
  if (plan_cached) {
    std::lock_guard<std::mutex> lock(band_mu_);
    ++band_plan_hits_[band_millis];
  }
}

void MetricsRegistry::RecordAppend(long frames) {
  appends_.fetch_add(1, std::memory_order_relaxed);
  appended_frames_.fetch_add(frames, std::memory_order_relaxed);
}

void MetricsRegistry::RecordSubscribe() {
  subscribes_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordUnsubscribe() {
  unsubscribes_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordStreamResult() {
  stream_results_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordStreamDropped() {
  stream_dropped_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordFeatureCache(long hits, long misses,
                                         long evictions) {
  if (hits > 0) feature_hits_.fetch_add(hits, std::memory_order_relaxed);
  if (misses > 0) feature_misses_.fetch_add(misses, std::memory_order_relaxed);
  if (evictions > 0) {
    feature_evictions_.fetch_add(evictions, std::memory_order_relaxed);
  }
}

ShardStats MetricsRegistry::Snapshot(bool include_datasets) const {
  ShardStats out;
  out.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.cancelled = cancelled_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.drains = drains_.load(std::memory_order_relaxed);
  out.appends = appends_.load(std::memory_order_relaxed);
  out.appended_frames = appended_frames_.load(std::memory_order_relaxed);
  out.subscribes = subscribes_.load(std::memory_order_relaxed);
  out.unsubscribes = unsubscribes_.load(std::memory_order_relaxed);
  out.stream_results = stream_results_.load(std::memory_order_relaxed);
  out.stream_dropped = stream_dropped_.load(std::memory_order_relaxed);
  out.feature_hits = feature_hits_.load(std::memory_order_relaxed);
  out.feature_misses = feature_misses_.load(std::memory_order_relaxed);
  out.feature_evictions = feature_evictions_.load(std::memory_order_relaxed);
  out.band_degraded = band_degraded_.load(std::memory_order_relaxed);
  out.degraded_band_seconds =
      static_cast<double>(
          degraded_band_micros_.load(std::memory_order_relaxed)) *
      1e-6;
  out.confidence.count = confidence_count_.load(std::memory_order_acquire);
  out.confidence.sum =
      static_cast<double>(
          confidence_sum_millis_.load(std::memory_order_relaxed)) *
      1e-3;
  for (size_t i = 0; i < ConfidenceStats::kNumBuckets; ++i) {
    out.confidence.buckets[i] =
        confidence_buckets_[i].load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(band_mu_);
    out.band_plan_hits = band_plan_hits_;
  }
  out.queue_wait = queue_wait_.Snapshot();
  out.exec = exec_.Snapshot();
  if (!include_datasets) return out;
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  out.datasets.reserve(per_dataset_.size());
  for (const auto& [name, d] : per_dataset_) {
    DatasetStats ds;
    ds.dataset = name;
    ds.submitted = d->submitted.load(std::memory_order_relaxed);
    ds.completed = d->completed.load(std::memory_order_relaxed);
    ds.failed = d->failed.load(std::memory_order_relaxed);
    ds.cancelled = d->cancelled.load(std::memory_order_relaxed);
    ds.rejected = d->rejected.load(std::memory_order_relaxed);
    ds.queue_wait = d->queue_wait.Snapshot();
    ds.exec = d->exec.Snapshot();
    out.datasets.push_back(std::move(ds));
  }
  return out;
}

}  // namespace zeus::engine
