#include "engine/engine_group.h"

#include <utility>

namespace zeus::engine {

EngineGroup::EngineGroup() : EngineGroup(Options()) {}

EngineGroup::EngineGroup(Options options)
    : opts_(std::move(options)),
      ring_(opts_.num_shards, opts_.vnodes_per_shard) {
  shards_.reserve(static_cast<size_t>(ring_.num_shards()));
  for (int i = 0; i < ring_.num_shards(); ++i) {
    shards_.push_back(std::make_unique<QueryEngine>(opts_.engine));
  }
}

common::Status EngineGroup::RegisterDataset(const std::string& name,
                                            video::SyntheticDataset dataset) {
  return engine_for(name).RegisterDataset(name, std::move(dataset));
}

bool EngineGroup::HasDataset(const std::string& name) const {
  return shard(ring_.ShardFor(name)).HasDataset(name);
}

const video::SyntheticDataset* EngineGroup::dataset(
    const std::string& name) const {
  return shard(ring_.ShardFor(name)).dataset(name);
}

common::Status EngineGroup::SetDatasetWeight(const std::string& name,
                                             int weight) {
  return engine_for(name).SetDatasetWeight(name, weight);
}

common::Result<QueryTicket> EngineGroup::Submit(const std::string& dataset_name,
                                                const std::string& sql) {
  return engine_for(dataset_name).Submit(dataset_name, sql);
}

common::Result<QueryTicket> EngineGroup::Submit(
    const std::string& dataset_name, const core::ActionQuery& query) {
  return engine_for(dataset_name).Submit(dataset_name, query);
}

common::Result<QueryTicket> EngineGroup::Submit(const std::string& dataset_name,
                                                const core::ActionQuery& query,
                                                const QueryOptions& opts) {
  return engine_for(dataset_name).Submit(dataset_name, query, opts);
}

common::Result<QueryResult> EngineGroup::Execute(
    const std::string& dataset_name, const std::string& sql) {
  return engine_for(dataset_name).Execute(dataset_name, sql);
}

common::Result<QueryResult> EngineGroup::Execute(
    const std::string& dataset_name, const core::ActionQuery& query) {
  return engine_for(dataset_name).Execute(dataset_name, query);
}

common::Result<QueryResult> EngineGroup::Execute(
    const std::string& dataset_name, const core::ActionQuery& query,
    const QueryOptions& opts) {
  return engine_for(dataset_name).Execute(dataset_name, query, opts);
}

std::shared_ptr<core::QueryPlan> EngineGroup::CachedPlan(
    const std::string& dataset_name, const core::ActionQuery& query) const {
  return shard(ring_.ShardFor(dataset_name))
      .CachedPlan(dataset_name, query);
}

long EngineGroup::planner_runs() const {
  long total = 0;
  for (const auto& s : shards_) total += s->plan_cache().planner_runs();
  return total;
}

long EngineGroup::disk_loads() const {
  long total = 0;
  for (const auto& s : shards_) total += s->plan_cache().disk_loads();
  return total;
}

size_t EngineGroup::pending() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->pending();
  return total;
}

}  // namespace zeus::engine
