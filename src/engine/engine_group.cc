#include "engine/engine_group.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"

namespace zeus::engine {

EngineGroup::EngineGroup() : EngineGroup(Options()) {}

EngineGroup::EngineGroup(Options options)
    : opts_(std::move(options)),
      ring_(opts_.num_shards, opts_.vnodes_per_shard) {
  opts_.num_shards = ring_.num_shards();
  // Shards never self-warm: an unfiltered warm load would pull every
  // dataset's plans onto every shard. The group warms each shard below
  // through a ring ownership filter instead.
  QueryEngine::Options engine_opts = opts_.engine;
  engine_opts.cache.warm_start = false;
  shards_.reserve(static_cast<size_t>(ring_.num_shards()));
  for (int i = 0; i < ring_.num_shards(); ++i) {
    shards_.push_back(std::make_shared<QueryEngine>(engine_opts));
  }
  if (opts_.engine.cache.warm_start) {
    for (int i = 0; i < ring_.num_shards(); ++i) {
      shards_[static_cast<size_t>(i)]->plan_cache().WarmUp(
          [this, i](const std::string& key) {
            return ring_.ShardFor(QueryEngine::PlanKeyDataset(key)) == i;
          });
    }
  }
  // Last: the policy thread samples Stats() immediately, so every member
  // above must already be live.
  if (opts_.autoscale.enabled) {
    autoscaler_ = std::make_unique<Autoscaler>(this, opts_.autoscale);
  }
}

EngineGroup::~EngineGroup() {
  // Stop the policy thread before members start dying under it (it reads
  // shards_ through Stats() and can be blocked inside Resize()).
  if (autoscaler_ != nullptr) autoscaler_->Stop();
}

std::function<bool(const std::string&)> EngineGroup::KeysOf(
    const std::string& dataset_name) {
  return [dataset_name](const std::string& key) {
    return QueryEngine::PlanKeyDataset(key) == dataset_name;
  };
}

std::shared_ptr<QueryEngine> EngineGroup::EngineForShared(
    const std::string& dataset_name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return shards_[static_cast<size_t>(ring_.ShardFor(dataset_name))];
}

common::Status EngineGroup::RegisterDataset(const std::string& name,
                                            video::SyntheticDataset dataset) {
  // Serialized with Resize: a dataset registered mid-flip could otherwise
  // land on a shard the new ring no longer routes it to.
  std::lock_guard<std::mutex> resize_lock(resize_mu_);
  return EngineForShared(name)->RegisterDataset(name, std::move(dataset));
}

bool EngineGroup::HasDataset(const std::string& name) const {
  return EngineForShared(name)->HasDataset(name);
}

const video::SyntheticDataset* EngineGroup::dataset(
    const std::string& name) const {
  return EngineForShared(name)->dataset(name);
}

common::Status EngineGroup::SetDatasetWeight(const std::string& name,
                                             int weight) {
  // Mirror the shard-level validation up front so an invalid call cannot
  // disturb the durable record below.
  if (weight < 1) {
    return common::Status::InvalidArgument("weight must be >= 1");
  }
  common::Status st = EngineForShared(name)->SetDatasetWeight(name, weight);
  if (st.ok()) {
    // The group-level map is the durable record: Resize() re-applies it
    // to the new home queue whenever the dataset moves, so the weight is
    // never silently reset by an elastic event. Only successful updates
    // are recorded — a failed call can never clobber (or roll back over)
    // a concurrent successful one.
    std::lock_guard<std::mutex> lock(weights_mu_);
    dataset_weights_[name] = weight;
  }
  return st;
}

void EngineGroup::SetDegradeLevel(int level) {
  const int clamped = std::max(0, level);
  // Record first, then fan out: a Resize() racing this call reads the
  // group atomic when it builds added shards, so a shard constructed
  // either side of the fan-out still ends at the new level.
  degrade_level_.store(clamped, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& shard : shards_) shard->SetDegradeLevel(clamped);
}

common::Result<QueryTicket> EngineGroup::Submit(const std::string& dataset_name,
                                                const std::string& sql) {
  // Route and enqueue under the shared lock: the ticket is either queued
  // before a concurrent resize flips the ring (so the flip's drain waits
  // for it) or routed by the new ring — never dropped in between.
  std::shared_lock<std::shared_mutex> lock(mu_);
  return shards_[static_cast<size_t>(ring_.ShardFor(dataset_name))]->Submit(
      dataset_name, sql);
}

common::Result<QueryTicket> EngineGroup::Submit(
    const std::string& dataset_name, const core::ActionQuery& query) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return shards_[static_cast<size_t>(ring_.ShardFor(dataset_name))]->Submit(
      dataset_name, query);
}

common::Result<QueryTicket> EngineGroup::Submit(const std::string& dataset_name,
                                                const core::ActionQuery& query,
                                                const QueryOptions& opts) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return shards_[static_cast<size_t>(ring_.ShardFor(dataset_name))]->Submit(
      dataset_name, query, opts);
}

common::Result<QueryResult> EngineGroup::Execute(
    const std::string& dataset_name, const std::string& sql) {
  auto parsed = core::QueryParser::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  return Execute(dataset_name, parsed.value());
}

common::Result<QueryResult> EngineGroup::Execute(
    const std::string& dataset_name, const core::ActionQuery& query) {
  return Execute(dataset_name, query, opts_.engine.exec);
}

common::Result<QueryResult> EngineGroup::Execute(
    const std::string& dataset_name, const core::ActionQuery& query,
    const QueryOptions& opts) {
  // Submit-then-wait rather than an inline run: the enqueue happens under
  // the shared routing lock (same resize guarantee as Submit) while the
  // minutes-long planning/execution never holds it. Queue back-pressure
  // (kResourceExhausted) surfaces to the caller, like Submit.
  auto ticket = Submit(dataset_name, query, opts);
  if (!ticket.ok()) return ticket.status();
  return ticket.value().Wait();
}

std::shared_ptr<core::QueryPlan> EngineGroup::CachedPlan(
    const std::string& dataset_name, const core::ActionQuery& query) const {
  return EngineForShared(dataset_name)->CachedPlan(dataset_name, query);
}

common::Result<AppendOutcome> EngineGroup::GrowDataset(const std::string& name,
                                                       long target_frames,
                                                       uint64_t epoch) {
  // Same shared-lock discipline as Submit: the growth lands either on the
  // pre-flip home (whose tail a racing resize drains) or on the new one.
  std::shared_lock<std::shared_mutex> lock(mu_);
  return shards_[static_cast<size_t>(ring_.ShardFor(name))]->GrowDataset(
      name, target_frames, epoch);
}

common::Result<AppendOutcome> EngineGroup::AppendFrames(const std::string& name,
                                                        long frames) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return shards_[static_cast<size_t>(ring_.ShardFor(name))]->AppendFrames(
      name, frames);
}

common::Result<SubscriptionTicket> EngineGroup::Subscribe(
    const std::string& dataset_name, const std::string& sql,
    const SubscribeOptions& opts) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return shards_[static_cast<size_t>(ring_.ShardFor(dataset_name))]->Subscribe(
      dataset_name, sql, opts);
}

common::Result<SubscriptionTicket> EngineGroup::Subscribe(
    const std::string& dataset_name, const core::ActionQuery& query,
    const SubscribeOptions& opts) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return shards_[static_cast<size_t>(ring_.ShardFor(dataset_name))]->Subscribe(
      dataset_name, query, opts);
}

int EngineGroup::ShardFor(const std::string& dataset_name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ring_.ShardFor(dataset_name);
}

int EngineGroup::num_shards() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int>(shards_.size());
}

common::Result<EngineGroup::ResizeReport> EngineGroup::Resize(
    int new_num_shards) {
  if (new_num_shards < 1) {
    return common::Status::InvalidArgument("num_shards must be >= 1");
  }
  // Fast no-op: a resize to the current count must not pay for — or wait
  // behind — an in-progress resize's drains. Racy against a concurrent
  // resize, so the count is re-checked under the serial lock below; this
  // check only serves callers asking for the size they can already see.
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (static_cast<int>(shards_.size()) == new_num_shards) {
      ResizeReport report;
      report.old_num_shards = new_num_shards;
      report.new_num_shards = new_num_shards;
      return report;
    }
  }

  // Whole resizes serialize with each other (drains included) on this
  // outer lock; registrations only contend on resize_mu_ below, which is
  // never held across a drain wait.
  std::lock_guard<std::mutex> serial_lock(resize_serial_mu_);

  struct PendingMove {
    ShardRing::KeyMove move;
    std::shared_ptr<QueryEngine> src;
  };
  std::vector<PendingMove> pending;
  ResizeReport report;
  report.new_num_shards = new_num_shards;
  std::vector<std::shared_ptr<QueryEngine>> retired;
  {
    // Structural phases (move computation .. ring flip): exclusive with
    // dataset registration, so a dataset registered mid-resize cannot
    // land on a shard the new ring no longer routes it to.
    std::lock_guard<std::mutex> resize_lock(resize_mu_);
    // resize_serial_mu_ + resize_mu_ are the only writer gates for
    // ring_/shards_, so reading them here without mu_ is race-free;
    // concurrent readers are unaffected.
    const int old_n = static_cast<int>(shards_.size());
    report.old_num_shards = old_n;
    if (new_num_shards == old_n) return report;

    std::vector<std::string> datasets;
    for (const auto& shard : shards_) {
      for (std::string& name : shard->dataset_names()) {
        datasets.push_back(std::move(name));
      }
    }

    ShardRing new_ring(new_num_shards, opts_.vnodes_per_shard);
    // Minimal movement: only the ring owner diff is disturbed. On growth
    // every move lands on an added shard; on shrink only the removed
    // shards' datasets move.
    std::vector<ShardRing::KeyMove> moves =
        ring_.DiffOwners(new_ring, datasets);

    std::vector<std::shared_ptr<QueryEngine>> added;
    QueryEngine::Options engine_opts = opts_.engine;
    engine_opts.cache.warm_start = false;  // handoff below is filtered
    for (int s = old_n; s < new_num_shards; ++s) {
      added.push_back(std::make_shared<QueryEngine>(engine_opts));
      // Added shards inherit the group's accuracy-shed level — like the
      // fairness weights below, the degrade state must survive elastic
      // events rather than silently resetting on the new shards.
      added.back()->SetDegradeLevel(
          degrade_level_.load(std::memory_order_relaxed));
    }
    auto engine_at = [&](int id) -> const std::shared_ptr<QueryEngine>& {
      return id < old_n ? shards_[static_cast<size_t>(id)]
                        : added[static_cast<size_t>(id - old_n)];
    };

    // Phase 1 (pre-flip): give every moved dataset's new home the dataset
    // handle and its trained plans, so the instant the ring flips the new
    // owner can serve from cache. Plans travel through the shared
    // persist_dir catalog (disk manifests, PlanIo-verified); in-memory
    // transfer is the fallback without persistence — the planner is never
    // involved either way.
    pending.reserve(moves.size());
    // Datasets arriving on each destination shard, so the catalog is
    // scanned once per destination instead of once per moved dataset.
    std::map<int, std::set<std::string>> arrivals;
    for (ShardRing::KeyMove& m : moves) {
      std::shared_ptr<QueryEngine> src = engine_at(m.from);
      const std::shared_ptr<QueryEngine>& dst = engine_at(m.to);
      std::shared_ptr<video::SyntheticDataset> ds = src->ShareDataset(m.key);
      if (ds != nullptr) {
        common::Status st = dst->RegisterDataset(m.key, std::move(ds));
        if (!st.ok() && st.code() != common::StatusCode::kAlreadyExists) {
          return st;
        }
      }
      arrivals[m.to].insert(m.key);
      pending.push_back({std::move(m), std::move(src)});
    }
    if (!opts_.engine.cache.persist_dir.empty()) {
      for (const auto& [dst_id, names] : arrivals) {
        report.plans_moved += static_cast<long>(
            engine_at(dst_id)->plan_cache().WarmUp(
                [&names](const std::string& key) {
                  return names.count(QueryEngine::PlanKeyDataset(key)) > 0;
                }));
      }
    }
    // Hand over whatever is (still) only in a source's memory — e.g.
    // plans whose disk checkpoint failed to write, or everything when no
    // persist_dir is configured. No-op for keys the warm load covered.
    for (const PendingMove& p : pending) {
      for (auto& [key, plan] :
           p.src->plan_cache().Snapshot(KeysOf(p.move.key))) {
        if (engine_at(p.move.to)->plan_cache().Put(key, std::move(plan))) {
          ++report.plans_moved;
        }
      }
    }

    // Phase 2: the flip. The only mu_-exclusive section — swap the ring
    // and the shard vector; every submission from here on routes with the
    // new ring.
    // carry_mu_ is held ACROSS the flip (lock order: carry_mu_ -> mu_,
    // same as Stats()), so leaving shards_ and entering retiring_ is one
    // atomic step to any observer: a concurrent Stats() counts a
    // shrinking shard exactly once — never zero (blind spot), never twice
    // (still in shards_ and already retiring).
    {
      std::lock_guard<std::mutex> carry_lock(carry_mu_);
      std::unique_lock<std::shared_mutex> lock(mu_);
      ring_ = std::move(new_ring);
      for (auto& shard : added) shards_.push_back(std::move(shard));
      for (int s = old_n - 1; s >= new_num_shards; --s) {
        // A shard leaving the ring is still live (its tail drains below)
        // and its metrics must not disappear from Stats() for the whole
        // drain window: it stays visible as "retiring" until the final
        // fold.
        retiring_.push_back(shards_[static_cast<size_t>(s)]);
        retired.push_back(std::move(shards_[static_cast<size_t>(s)]));
        shards_.pop_back();
      }
      opts_.num_shards = new_num_shards;
    }

    // Re-apply group-level fairness weights to every moved dataset's new
    // home queue, before the first post-flip pop can be scheduled
    // unweighted. Without this, a SetDatasetWeight was silently dropped
    // by the next resize (the weight lived only in the old shard's
    // queue).
    {
      std::lock_guard<std::mutex> weights_lock(weights_mu_);
      for (const PendingMove& p : pending) {
        auto it = dataset_weights_.find(p.move.key);
        if (it == dataset_weights_.end()) continue;
        common::Status st =
            shards_[static_cast<size_t>(p.move.to)]->SetDatasetWeight(
                p.move.key, it->second);
        if (!st.ok()) {
          ZEUS_LOG(Warning) << "resize: could not re-apply weight for '"
                            << p.move.key << "': " << st.ToString();
        }
      }
    }
  }  // resize_mu_ released: registrations proceed during the drains below.

  // Phase 3 (post-flip): let each moved dataset's in-flight tail finish
  // on its old shard, then retire the dataset (and its cached plans)
  // there. New traffic is already flowing to the new owners, and new
  // registrations are admitted concurrently — the drain waits sit only on
  // this thread, never on the registration path.
  for (PendingMove& p : pending) {
    p.src->DrainDataset(p.move.key);
    // The drained tail may have trained plans AFTER the phase-1 handoff
    // (a cold query that was queued on the old shard when the resize
    // started). Hand those over too before forgetting them — without
    // this, the no-persistence path would silently discard a freshly
    // trained plan and force a replan on the new owner. With a
    // persist_dir the plan is also on disk, but the direct transfer
    // keeps the new owner warm either way. Put() is a no-op for keys
    // already handed over in phase 1. shards_[p.move.to] is valid after
    // the flip for growth and shrink alike (`to` always indexes the new
    // layout), and resize_serial_mu_ keeps the read race-free (only
    // resizes mutate the vector).
    for (auto& [key, plan] : p.src->plan_cache().Snapshot(KeysOf(p.move.key))) {
      if (shards_[static_cast<size_t>(p.move.to)]->plan_cache().Put(
              key, std::move(plan))) {
        ++report.plans_moved;
      }
    }
    p.src->RemoveDataset(p.move.key);
    p.src->plan_cache().EraseIf(KeysOf(p.move.key));
    report.moved.push_back(p.move.key);
    ZEUS_LOG(Info) << "resize: dataset '" << p.move.key << "' moved shard "
                   << p.move.from << " -> " << p.move.to;
  }
  std::sort(report.moved.begin(), report.moved.end());
  // Retired shards are fully drained (every dataset they owned was moved
  // above). Fold their final metrics into the carry and drop them from
  // the retiring list in ONE critical section — a Stats() racing this
  // sees each shard's history exactly once, live or carried, never
  // neither — then destruction joins their worker pools.
  {
    std::lock_guard<std::mutex> carry_lock(carry_mu_);
    for (const auto& shard : retired) {
      retired_carry_.Merge(shard->Stats());
    }
    retiring_.erase(
        std::remove_if(retiring_.begin(), retiring_.end(),
                       [&](const std::shared_ptr<QueryEngine>& shard) {
                         for (const auto& r : retired) {
                           if (r == shard) return true;
                         }
                         return false;
                       }),
        retiring_.end());
  }
  retired.clear();
  resizes_.fetch_add(1, std::memory_order_relaxed);
  return report;
}

GroupStats EngineGroup::Stats(bool include_datasets) const {
  GroupStats out;
  out.resizes = resizes_.load(std::memory_order_relaxed);
  out.autoscaler_decisions =
      autoscaler_ != nullptr ? autoscaler_->decisions() : 0;
  // carry_mu_ spans the shards_ read AND the retiring/carry reads
  // (lock order carry_mu_ -> mu_, matching the resize flip), so a shard
  // mid-shrink is observed in exactly one of the three places.
  std::lock_guard<std::mutex> carry_lock(carry_mu_);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.num_shards = static_cast<int>(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      ShardStats shard = shards_[i]->Stats(include_datasets);
      shard.shard = static_cast<int>(i);
      out.Absorb(std::move(shard));
    }
  }
  // Retired and still-retiring shards' history enters the aggregates
  // (not the per-shard rows): totals stay monotonic across scale-downs,
  // with no blind spot while a retiring shard drains its tail.
  for (const auto& shard : retiring_) {
    out.AbsorbTotals(shard->Stats(/*include_datasets=*/false));
  }
  out.AbsorbTotals(retired_carry_);
  return out;
}

long EngineGroup::planner_runs() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  long total = 0;
  for (const auto& s : shards_) total += s->plan_cache().planner_runs();
  return total;
}

long EngineGroup::disk_loads() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  long total = 0;
  for (const auto& s : shards_) total += s->plan_cache().disk_loads();
  return total;
}

size_t EngineGroup::pending() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const auto& s : shards_) total += s->pending();
  return total;
}

}  // namespace zeus::engine
