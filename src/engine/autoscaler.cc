#include "engine/autoscaler.h"

#include <algorithm>

#include "common/logging.h"
#include "engine/engine_group.h"

namespace zeus::engine {

Autoscaler::Signal Autoscaler::SignalFrom(
    const GroupStats& stats, const HistogramStats* prev_queue_wait) {
  Signal s;
  s.num_shards = stats.num_shards;
  s.queue_depth = stats.queue_depth;
  s.active = stats.active;
  s.p95_queue_wait_seconds =
      prev_queue_wait != nullptr
          ? stats.queue_wait.Delta(*prev_queue_wait).p95()
          : stats.queue_wait.p95();
  s.degrade_level = stats.degrade_level;
  // Hottest dataset: deepest queue across every shard's per-dataset rows
  // (each dataset homes on exactly one shard, so no cross-shard merge is
  // needed). Ties keep the first seen — deterministic given the snapshot.
  for (const ShardStats& sh : stats.shards) {
    for (const DatasetStats& ds : sh.datasets) {
      if (ds.queue_depth > s.max_dataset_queue_depth) {
        s.max_dataset_queue_depth = ds.queue_depth;
        s.hottest_dataset = ds.dataset;
      }
      s.max_dataset_queue_wait_p95 =
          std::max(s.max_dataset_queue_wait_p95, ds.queue_wait.p95());
    }
  }
  return s;
}

Autoscaler::Decision Autoscaler::Decide(const Signal& signal,
                                        const Config& config, long now_tick,
                                        State* state) {
  const int min_shards = std::max(1, config.min_shards);
  const int max_shards = std::max(min_shards, config.max_shards);
  const int n = std::max(1, signal.num_shards);
  const int max_degrade = std::max(0, config.max_degrade_level);
  const int degrade = std::max(0, signal.degrade_level);
  Decision hold{n, "hold", degrade};

  // Out-of-band shard counts (a manual resize beyond the policy's limits)
  // are respected, not fought: clamping only applies to the policy's own
  // moves.
  const bool group_hot =
      static_cast<double>(signal.queue_depth) >=
          config.up_queue_per_shard * static_cast<double>(n) ||
      signal.p95_queue_wait_seconds >= config.up_p95_queue_wait_seconds;
  // Per-dataset rung: one hot dataset (a live stream's home) can saturate
  // its shard while the group-wide average stays under the per-shard
  // threshold. Disabled thresholds (0) never fire.
  const bool dataset_hot =
      (config.up_dataset_queue_depth > 0.0 &&
       static_cast<double>(signal.max_dataset_queue_depth) >=
           config.up_dataset_queue_depth) ||
      (config.up_dataset_queue_wait_p95_seconds > 0.0 &&
       signal.max_dataset_queue_wait_p95 >=
           config.up_dataset_queue_wait_p95_seconds);
  const bool up_signal = signal.queue_depth > 0 && (group_hot || dataset_hot);
  const bool down_signal =
      static_cast<double>(signal.queue_depth) <= config.down_queue_total &&
      signal.active == 0;

  // The two conditions are separated by a dead band: anything that is
  // neither backlogged nor near-idle resets both streaks and holds. That
  // is the hysteresis that prevents flapping around one threshold.
  if (up_signal) {
    ++state->up_streak;
    state->down_streak = 0;
  } else if (down_signal) {
    ++state->down_streak;
    state->up_streak = 0;
  } else {
    state->up_streak = 0;
    state->down_streak = 0;
  }

  const int sustain = std::max(1, config.sustain_samples);
  const bool cooling =
      now_tick - state->last_resize_tick <
      static_cast<long>(std::max(0, config.cooldown_samples));
  if (cooling) {
    // Streaks keep accumulating through the cooldown, so a backlog that
    // persists acts the instant the cooldown expires.
    hold.reason = "hold: cooldown";
    return hold;
  }

  // Sustained backlog: climb the degradation ladder in order — shed
  // accuracy first (cheap, instant, strict tiers untouched), add a shard
  // only once the shed levels are exhausted. Rejection is never a policy
  // action; it is what admission does on its own when both rungs are
  // spent.
  if (state->up_streak >= sustain && degrade < max_degrade) {
    state->up_streak = 0;
    state->down_streak = 0;
    state->last_resize_tick = now_tick;
    return Decision{n, "degrade: sustained backlog", degrade + 1};
  }
  if (state->up_streak >= sustain && n < max_shards) {
    state->up_streak = 0;
    state->down_streak = 0;
    state->last_resize_tick = now_tick;
    return Decision{n + 1,
                    group_hot ? "scale-up: sustained backlog"
                              : "scale-up: hot dataset",
                    degrade};
  }
  if (state->up_streak >= sustain && n >= max_shards) {
    hold.reason = "hold: at max_shards";
    return hold;
  }
  // Recovery mirrors the ladder: restore accuracy level by level before
  // giving back capacity, so a still-warm group serves full-accuracy
  // answers again as early as possible.
  if (state->down_streak >= sustain && degrade > 0) {
    state->up_streak = 0;
    state->down_streak = 0;
    state->last_resize_tick = now_tick;
    return Decision{n, "restore: near-idle", degrade - 1};
  }
  if (state->down_streak >= sustain && n > min_shards) {
    state->up_streak = 0;
    state->down_streak = 0;
    state->last_resize_tick = now_tick;
    return Decision{n - 1, "scale-down: near-idle", degrade};
  }
  if (state->down_streak >= sustain && n <= min_shards) {
    hold.reason = "hold: at min_shards";
    return hold;
  }
  return hold;
}

Autoscaler::Autoscaler(EngineGroup* group, Config config)
    : group_(group), cfg_(config) {
  if (cfg_.sample_interval.count() < 1) {
    cfg_.sample_interval = std::chrono::milliseconds(1);
  }
  thread_ = std::thread([this] { Loop(); });
}

Autoscaler::~Autoscaler() { Stop(); }

void Autoscaler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Autoscaler::Loop() {
  State state;
  long tick = 0;
  // Previous sample's cumulative queue-wait histogram: the p95 signal is
  // computed over the delta between consecutive samples, so it reflects
  // the current window, not the engine's whole life.
  HistogramStats prev_queue_wait;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, cfg_.sample_interval, [this] { return stopping_; });
      if (stopping_) return;
    }
    // The cheap snapshot: the policy reads only group-level signals, so
    // the per-dataset rows (string + histogram copies per dataset per
    // shard) are skipped on this fixed-interval path — unless a
    // per-dataset trigger is configured, which needs them.
    const bool per_dataset = cfg_.up_dataset_queue_depth > 0.0 ||
                             cfg_.up_dataset_queue_wait_p95_seconds > 0.0;
    const GroupStats stats = group_->Stats(/*include_datasets=*/per_dataset);
    const Signal signal = SignalFrom(stats, &prev_queue_wait);
    prev_queue_wait = stats.queue_wait;
    const Decision decision = Decide(signal, cfg_, tick++, &state);
    if (decision.target_degrade != signal.degrade_level) {
      // The shed/restore rung: no resize, no drains — just the group
      // atomic and a shard fan-out. Takes effect on the next RunTicket.
      ZEUS_LOG(Info) << "autoscaler: " << decision.reason
                     << " (degrade level " << signal.degrade_level << " -> "
                     << decision.target_degrade << "; queued "
                     << signal.queue_depth << ", active " << signal.active
                     << ", p95 wait " << signal.p95_queue_wait_seconds
                     << "s)";
      decisions_.fetch_add(1, std::memory_order_relaxed);
      group_->SetDegradeLevel(decision.target_degrade);
      continue;
    }
    if (decision.target_shards == signal.num_shards) continue;
    ZEUS_LOG(Info) << "autoscaler: " << decision.reason << " ("
                   << signal.num_shards << " -> " << decision.target_shards
                   << " shards; queued " << signal.queue_depth << ", active "
                   << signal.active << ", p95 wait "
                   << signal.p95_queue_wait_seconds << "s)";
    decisions_.fetch_add(1, std::memory_order_relaxed);
    // Resize blocks on the moved datasets' drains — deliberately in THIS
    // thread, never in a serving path. Concurrent manual resizes
    // serialize with it; losing that race just means the next sample sees
    // the new shape.
    auto resized = group_->Resize(decision.target_shards);
    if (!resized.ok()) {
      ZEUS_LOG(Warning) << "autoscaler resize failed: "
                        << resized.status().ToString();
    }
  }
}

}  // namespace zeus::engine
