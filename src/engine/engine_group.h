#ifndef ZEUS_ENGINE_ENGINE_GROUP_H_
#define ZEUS_ENGINE_ENGINE_GROUP_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "engine/shard_ring.h"

namespace zeus::engine {

// Sharded serving layer: N QueryEngine shards behind one Submit()/Execute()
// front. Every dataset is routed by consistent hashing on its name — the
// dataset component of every PlanKey — to exactly one home shard
// (ShardRing), so all of a dataset's queries hit one plan cache and its
// plans stay hot there instead of being replanned N times. Each shard keeps
// its own worker pool, admission queue and PlanCache; shards share nothing
// but the process-wide compute pool, so the group scales the serving layer
// without adding cross-shard synchronization.
//
// The routing changes which threads run a query, never its answer: results
// are bit-identical to a single engine executing the same queries (asserted
// in tests/engine_group_test.cc).
//
// num_shards == 1 is exactly the single-engine behavior ZeusDb always had;
// ZeusDb fronts an EngineGroup and defaults to that.
class EngineGroup {
 public:
  struct Options {
    // Number of QueryEngine shards (clamped to >= 1).
    int num_shards = 1;
    // Virtual nodes per shard on the routing ring; more nodes = smoother
    // key distribution, slightly larger ring.
    int vnodes_per_shard = 64;
    // Per-shard engine configuration (workers, queue bound, cache,
    // planner, default execution options). A shared cache.persist_dir is
    // safe: each plan key lives on exactly one shard.
    QueryEngine::Options engine;
  };

  EngineGroup();  // default Options (one shard)
  explicit EngineGroup(Options options);

  EngineGroup(const EngineGroup&) = delete;
  EngineGroup& operator=(const EngineGroup&) = delete;

  // Registers the dataset on its home shard (only there: the ring keeps
  // every later query for it on the same shard).
  common::Status RegisterDataset(const std::string& name,
                                 video::SyntheticDataset dataset);
  bool HasDataset(const std::string& name) const;
  const video::SyntheticDataset* dataset(const std::string& name) const;

  // Fair-share weight of a dataset in its home shard's admission queue.
  common::Status SetDatasetWeight(const std::string& name, int weight);

  // Submission and execution route to the dataset's home shard; the ticket
  // API is unchanged from QueryEngine.
  common::Result<QueryTicket> Submit(const std::string& dataset_name,
                                     const std::string& sql);
  common::Result<QueryTicket> Submit(const std::string& dataset_name,
                                     const core::ActionQuery& query);
  common::Result<QueryTicket> Submit(const std::string& dataset_name,
                                     const core::ActionQuery& query,
                                     const QueryOptions& opts);
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const std::string& sql);
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const core::ActionQuery& query);
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const core::ActionQuery& query,
                                      const QueryOptions& opts);

  std::shared_ptr<core::QueryPlan> CachedPlan(
      const std::string& dataset_name, const core::ActionQuery& query) const;

  // Routing introspection.
  int ShardFor(const std::string& dataset_name) const {
    return ring_.ShardFor(dataset_name);
  }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  QueryEngine& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  const QueryEngine& shard(int i) const {
    return *shards_[static_cast<size_t>(i)];
  }
  // The home-shard engine for a dataset (advanced control: per-shard plan
  // cache, engine options).
  QueryEngine& engine_for(const std::string& dataset_name) {
    return shard(ShardFor(dataset_name));
  }

  // Aggregate counters across shards (tests / monitoring).
  long planner_runs() const;
  long disk_loads() const;
  size_t pending() const;

  const Options& options() const { return opts_; }

 private:
  Options opts_;
  ShardRing ring_;
  std::vector<std::unique_ptr<QueryEngine>> shards_;
};

}  // namespace zeus::engine

#endif  // ZEUS_ENGINE_ENGINE_GROUP_H_
