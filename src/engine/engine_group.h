#ifndef ZEUS_ENGINE_ENGINE_GROUP_H_
#define ZEUS_ENGINE_ENGINE_GROUP_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "engine/autoscaler.h"
#include "engine/metrics.h"
#include "engine/query_engine.h"
#include "engine/shard_ring.h"

namespace zeus::engine {

// Sharded serving layer: N QueryEngine shards behind one Submit()/Execute()
// front. Every dataset is routed by consistent hashing on its name — the
// dataset component of every PlanKey — to exactly one home shard
// (ShardRing), so all of a dataset's queries hit one plan cache and its
// plans stay hot there instead of being replanned N times. Each shard keeps
// its own worker pool, admission queue and PlanCache; shards share nothing
// but the process-wide compute pool, so the group scales the serving layer
// without adding cross-shard synchronization.
//
// The routing changes which threads run a query, never its answer: results
// are bit-identical to a single engine executing the same queries (asserted
// in tests/engine_group_test.cc).
//
// Elasticity: Resize(new_num_shards) grows or shrinks the group live.
// Routing state is guarded by a reader/writer lock that submissions take
// shared — the resize holds it exclusively only for the ring/shard-vector
// swap, not for drains or plan loads, so the serving path stays
// lock-minimal. The consistent-hash ring's minimal-movement property keeps
// the disruption to the few datasets whose owner actually changes; their
// trained plans travel to the new home through the shared
// `persist_dir` catalog (PlanIo manifests, see PlanCache::WarmUp) — never
// through the planner.
//
// Warm start: with `engine.cache.persist_dir` set and
// `engine.cache.warm_start` on, each shard preloads the persisted plans it
// owns (and only those — the group warms each shard through a ring
// ownership filter) at construction, so a restarted group serves its first
// query from cache.
//
// Self-observation: Stats() aggregates every shard's MetricsRegistry
// snapshot (queue depth/wait, execution latency percentiles, outcome and
// plan-cache counters, per-dataset breakdown) exactly — histograms merge
// bucket-wise. With Options::autoscale.enabled the group also owns an
// Autoscaler: a policy thread that samples Stats() and drives Resize()
// from sustained queue depth / p95 queue wait, turning the serving layer
// self-operating (engine/autoscaler.h).
//
// num_shards == 1 is exactly the single-engine behavior ZeusDb always had;
// ZeusDb fronts an EngineGroup and defaults to that.
class EngineGroup {
 public:
  struct Options {
    // Number of QueryEngine shards (clamped to >= 1).
    int num_shards = 1;
    // Virtual nodes per shard on the routing ring; more nodes = smoother
    // key distribution, slightly larger ring.
    int vnodes_per_shard = 64;
    // Per-shard engine configuration (workers, queue bound, cache,
    // planner, default execution options). A shared cache.persist_dir is
    // safe: each plan key lives on exactly one shard. It is also the plan
    // handoff channel for Resize() and the warm-start source
    // (cache.warm_start).
    QueryEngine::Options engine;
    // Opt-in self-operation: with autoscale.enabled the group owns a
    // policy thread that samples Stats() and drives Resize() from queue
    // depth / p95 queue wait (see engine/autoscaler.h for the knobs).
    // num_shards is the starting size; the policy keeps the live size in
    // [autoscale.min_shards, autoscale.max_shards].
    Autoscaler::Config autoscale;
  };

  // What one Resize() did: which datasets changed home shard (exactly the
  // ring owner diff — everything else was untouched) and how many trained
  // plans were handed to new homes without replanning.
  struct ResizeReport {
    int old_num_shards = 0;
    int new_num_shards = 0;
    // Datasets whose ring owner changed, drained and re-homed.
    std::vector<std::string> moved;
    // Plans delivered to new home shards: persist-dir warm loads plus
    // direct in-memory transfers (the fallback when no persist_dir is
    // configured). Never includes a planner run.
    long plans_moved = 0;
  };

  EngineGroup();  // default Options (one shard)
  explicit EngineGroup(Options options);
  // Stops the autoscaler (if any) before the shards go down.
  ~EngineGroup();

  EngineGroup(const EngineGroup&) = delete;
  EngineGroup& operator=(const EngineGroup&) = delete;

  // Live shard-count change. Growth builds the new shards, hands every
  // moved dataset (ring owner diff only — the consistent-hash minimal
  // movement property) and its trained plans to the new home, then flips
  // the ring under the exclusive lock; shrink additionally drains and
  // retires the removed shards. In-flight and queued tickets on a moving
  // dataset finish on the old shard; submissions after the flip route to
  // the new owner, which already has the dataset and its plans —
  // `planner_runs` stays flat across a resize. Per-dataset fairness
  // weights (SetDatasetWeight) migrate with their datasets: the group
  // keeps the weight map and re-applies it to every moved dataset's new
  // home queue as part of the resize.
  //
  // Blocks until the moved datasets' in-flight tails drain, but the drain
  // waits happen OFF the registration path: RegisterDataset only
  // serializes with the ring flip itself, so a registration storm during
  // a long drain proceeds instead of queueing behind it. Concurrent
  // Resize calls serialize with each other end to end.
  //
  // `new_num_shards < 1` returns kInvalidArgument; a resize to the
  // current count is a clean no-op (no drains, no exclusive section) and
  // does not wait behind an in-progress resize.
  common::Result<ResizeReport> Resize(int new_num_shards);

  // Registers the dataset on its home shard (only there: the ring keeps
  // every later query for it on the same shard).
  common::Status RegisterDataset(const std::string& name,
                                 video::SyntheticDataset dataset);
  bool HasDataset(const std::string& name) const;
  const video::SyntheticDataset* dataset(const std::string& name) const;

  // Fair-share weight of a dataset in its home shard's admission queue.
  // Recorded at the group level too, so the weight survives every later
  // Resize() no matter where the dataset re-homes.
  common::Status SetDatasetWeight(const std::string& name, int weight);

  // Accuracy-shed level (docs/ACCURACY.md), fanned out to every shard and
  // recorded at the group level so a Resize() applies it to newly added
  // shards too. Level 0 (the default) serves every query at its own
  // target; level L lets best-effort queries degrade up to L bands. The
  // autoscaler's degrade action drives this; it is also a manual override
  // for operators.
  void SetDegradeLevel(int level);
  int degrade_level() const {
    return degrade_level_.load(std::memory_order_relaxed);
  }

  // Submission and execution route to the dataset's home shard; the ticket
  // API is unchanged from QueryEngine.
  common::Result<QueryTicket> Submit(const std::string& dataset_name,
                                     const std::string& sql);
  common::Result<QueryTicket> Submit(const std::string& dataset_name,
                                     const core::ActionQuery& query);
  common::Result<QueryTicket> Submit(const std::string& dataset_name,
                                     const core::ActionQuery& query,
                                     const QueryOptions& opts);
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const std::string& sql);
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const core::ActionQuery& query);
  common::Result<QueryResult> Execute(const std::string& dataset_name,
                                      const core::ActionQuery& query,
                                      const QueryOptions& opts);

  std::shared_ptr<core::QueryPlan> CachedPlan(
      const std::string& dataset_name, const core::ActionQuery& query) const;

  // Live streams: appends and subscriptions route to the dataset's home
  // shard like submissions do. A subscription stays pinned to the engine
  // that created it — if a later Resize() re-homes the dataset, appends
  // land on the new home and the pinned subscription stops seeing epochs;
  // re-subscribe after a resize (the cluster router does this re-attach
  // automatically on failover).
  common::Result<AppendOutcome> GrowDataset(const std::string& name,
                                            long target_frames,
                                            uint64_t epoch);
  common::Result<AppendOutcome> AppendFrames(const std::string& name,
                                             long frames);
  common::Result<SubscriptionTicket> Subscribe(const std::string& dataset_name,
                                               const std::string& sql,
                                               const SubscribeOptions& opts);
  common::Result<SubscriptionTicket> Subscribe(const std::string& dataset_name,
                                               const core::ActionQuery& query,
                                               const SubscribeOptions& opts);

  // Routing introspection.
  int ShardFor(const std::string& dataset_name) const;
  int num_shards() const;
  // Direct shard access (tests / advanced control). Not synchronized
  // against a concurrent Resize — do not mix with one.
  QueryEngine& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  const QueryEngine& shard(int i) const {
    return *shards_[static_cast<size_t>(i)];
  }
  // The home-shard engine for a dataset (advanced control: per-shard plan
  // cache, engine options). Same caveat as shard().
  QueryEngine& engine_for(const std::string& dataset_name) {
    return shard(ShardFor(dataset_name));
  }

  // Aggregate counters across shards (tests / monitoring).
  long planner_runs() const;
  long disk_loads() const;
  size_t pending() const;

  // Full self-observation snapshot: per-shard MetricsRegistry snapshots
  // (queue depth/wait, execution latency histograms, outcome counters,
  // plan-cache hits/loads, per-dataset breakdown) aggregated exactly at
  // the group level, plus the resize counters. This is what the
  // autoscaler samples and what `ZeusDb::Stats()` returns;
  // GroupStats::ToJson() is the tooling form. `include_datasets == false`
  // skips the per-dataset rows — the cheap form the autoscaler's
  // fixed-interval sampler uses (aggregates are identical either way).
  GroupStats Stats(bool include_datasets = true) const;

  const Options& options() const { return opts_; }

 private:
  // True for plan-cache keys owned by `dataset_name`.
  static std::function<bool(const std::string&)> KeysOf(
      const std::string& dataset_name);
  // Shared-lock resolution of a dataset's home engine.
  std::shared_ptr<QueryEngine> EngineForShared(
      const std::string& dataset_name) const;

  Options opts_;

  // Serializes whole Resize() calls against each other, drains included.
  // Registrations never touch this one, so they proceed while a resize
  // waits out a long in-flight tail.
  std::mutex resize_serial_mu_;

  // Serializes dataset registration with the structural part of a resize
  // (move computation through ring flip), so a dataset registered
  // mid-resize cannot land on a shard the new ring no longer routes it
  // to. Held only for the fast phases — never across drain waits.
  // Lock order: resize_serial_mu_ -> resize_mu_ -> mu_.
  std::mutex resize_mu_;

  // Guards ring_ + shards_. Submissions take it shared for the whole
  // route-and-enqueue step, so a ticket is always either queued before the
  // resize flip (and drained by it) or routed by the new ring — never
  // lost in between.
  mutable std::shared_mutex mu_;
  ShardRing ring_;
  std::vector<std::shared_ptr<QueryEngine>> shards_;

  // Group-level fairness weights (dataset -> weight), the durable record
  // behind SetDatasetWeight. Shard queues are re-populated from this map
  // when a resize re-homes a dataset.
  mutable std::mutex weights_mu_;
  std::map<std::string, int> dataset_weights_;

  // Completed Resize() calls that changed the shard count.
  std::atomic<long> resizes_{0};

  // Group-level accuracy-shed record (see SetDegradeLevel): shards added
  // by a resize inherit it before they join the ring.
  std::atomic<int> degrade_level_{0};

  // Scale-down history, in two stages so Stats() never has a blind spot:
  // shards leaving the ring land in `retiring_` at the flip (still live,
  // still draining their tails — Stats() samples them there), and their
  // final snapshot folds into `retired_carry_` in the same carry_mu_
  // critical section that removes them from `retiring_`. Group totals and
  // histograms are therefore monotonic across the whole shrink — flip,
  // drain window and retirement included.
  mutable std::mutex carry_mu_;
  std::vector<std::shared_ptr<QueryEngine>> retiring_;
  ShardStats retired_carry_;

  // Present iff options().autoscale.enabled. Declared last is not enough
  // for safe teardown (it samples Stats() and calls Resize()), so the
  // destructor stops it explicitly before anything else.
  std::unique_ptr<Autoscaler> autoscaler_;
};

}  // namespace zeus::engine

#endif  // ZEUS_ENGINE_ENGINE_GROUP_H_
