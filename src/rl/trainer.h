#ifndef ZEUS_RL_TRAINER_H_
#define ZEUS_RL_TRAINER_H_

#include <memory>

#include "common/rng.h"
#include "rl/dqn_agent.h"
#include "rl/env.h"
#include "rl/reward.h"

namespace zeus::rl {

// Implements the training loop of Algorithm 1 with the accuracy-aware
// aggregate reward of Algorithm 2: experiences collected inside an
// aggregation window are staged (without their final reward) in the replay
// buffer; when the window closes, the window's achieved accuracy determines
// the shared aggregate reward that is patched into all staged experiences
// (the "delayed replay buffer update strategy" of §4.6).
class DqnTrainer {
 public:
  struct Options {
    int episodes = 14;
    int window_frames = 128;     // aggregation window W (source frames)
    double accuracy_target = 0.85;
    int update_every = 4;        // env steps between DQN updates
    size_t min_buffer = 256;     // replay warm-up before updates start
    size_t buffer_capacity = 2048;
    // Use prioritized experience replay instead of the paper's uniform
    // buffer (ablation, see bench_ablation_rl).
    bool prioritized_replay = false;
    PrioritizedReplayBuffer::Options per;
    RewardOptions reward;
    DqnAgent::Options agent;     // state_dim/num_actions overwritten from env
  };

  struct Result {
    int episodes = 0;
    long steps = 0;
    int updates = 0;
    float mean_td_loss = 0.0f;
    float final_epsilon = 0.0f;
    double train_seconds = 0.0;
    double last_episode_accuracy = 0.0;  // achieved train accuracy (F1)
  };

  DqnTrainer(VideoEnv* env, const Options& opts, common::Rng* rng);

  // Runs the full training schedule and returns aggregate statistics.
  Result Train();

  DqnAgent* agent() { return agent_.get(); }

  // Transfers ownership of the trained agent to the caller (the trainer
  // must not be used afterwards).
  std::shared_ptr<DqnAgent> ReleaseAgent() { return std::move(agent_); }

  const Options& options() const { return opts_; }

 private:
  // Closes the aggregation window ending at `end` in video `vi`, computing
  // the aggregate reward over [win_start_, end).
  void CloseWindow(int vi, int end);

  VideoEnv* env_;
  Options opts_;
  common::Rng rng_;
  std::shared_ptr<DqnAgent> agent_;
  std::unique_ptr<ReplayBuffer> buffer_;
  std::unique_ptr<RewardFunction> reward_;
  int win_start_ = 0;  // start frame of the open window (within video)
};

}  // namespace zeus::rl

#endif  // ZEUS_RL_TRAINER_H_
