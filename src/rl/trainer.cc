#include "rl/trainer.h"

#include "common/logging.h"
#include "common/timer.h"
#include "core/metrics.h"

namespace zeus::rl {

DqnTrainer::DqnTrainer(VideoEnv* env, const Options& opts, common::Rng* rng)
    : env_(env), opts_(opts), rng_(rng->Fork()) {
  DqnAgent::Options agent_opts = opts_.agent;
  agent_opts.state_dim = env_->state_dim();
  agent_opts.num_actions = env_->num_actions();
  agent_ = std::make_shared<DqnAgent>(agent_opts, &rng_);
  if (opts_.prioritized_replay) {
    buffer_ = std::make_unique<PrioritizedReplayBuffer>(opts_.buffer_capacity,
                                                        opts_.per);
  } else {
    buffer_ = std::make_unique<ReplayBuffer>(opts_.buffer_capacity);
  }
  reward_ = std::make_unique<RewardFunction>(opts_.reward, env_->num_actions());
}

void DqnTrainer::CloseWindow(int vi, int end) {
  if (buffer_->StagedCount() == 0) {
    win_start_ = end;
    return;
  }
  double aggregate = 0.0;
  if (reward_->options().mode != RewardOptions::Mode::kLocalOnly) {
    double achieved = core::WindowAccuracy(env_->video(vi), env_->targets(),
                                           env_->mask(vi), win_start_, end);
    aggregate = reward_->options().aggregate_weight *
                RewardFunction::AggregateReward(achieved,
                                                opts_.accuracy_target);
  }
  buffer_->CommitStaged(static_cast<float>(aggregate));
  win_start_ = end;
}

DqnTrainer::Result DqnTrainer::Train() {
  Result result;
  common::WallTimer timer;
  double loss_sum = 0.0;
  long loss_count = 0;

  for (int episode = 0; episode < opts_.episodes; ++episode) {
    env_->Reset(&rng_);
    win_start_ = 0;
    bool done = false;
    long steps_since_update = 0;
    while (!done) {
      std::vector<float> state = env_->state();
      int action = agent_->SelectAction(state);
      VideoEnv::StepResult step = env_->Step(action);
      done = step.done;
      ++result.steps;

      Experience e;
      e.state = std::move(state);
      e.action = action;
      e.reward = static_cast<float>(reward_->LocalReward(
          env_->space().config(action), step.window_has_action));
      e.next_state = env_->state();
      e.done = step.done || step.crossed_video;
      buffer_->Stage(std::move(e));

      // Aggregation windows never span a video boundary.
      if (step.crossed_video) {
        CloseWindow(step.video_index, step.window_end);
        win_start_ = 0;
      } else if (step.window_end - win_start_ >= opts_.window_frames) {
        CloseWindow(step.video_index, step.window_end);
      }

      if (++steps_since_update >= opts_.update_every &&
          buffer_->size() >= opts_.min_buffer) {
        steps_since_update = 0;
        float loss = agent_->TrainStep(*buffer_);
        if (loss >= 0.0f) {
          loss_sum += loss;
          ++loss_count;
        }
      }
    }
    agent_->EndEpisode();

    // Episode-level achieved accuracy over all videos (diagnostic).
    if (episode == opts_.episodes - 1) {
      core::PrfMetrics m;
      std::vector<const video::Video*> vids;
      std::vector<core::FrameMask> masks;
      for (size_t i = 0; i < env_->num_videos(); ++i) {
        vids.push_back(&env_->video(static_cast<int>(i)));
        masks.push_back(env_->mask(static_cast<int>(i)));
      }
      m = core::EvaluateVideos(vids, env_->targets(), masks,
                               core::EvalOptions{});
      result.last_episode_accuracy = m.f1;
    }
    ZEUS_LOG(Debug) << "episode " << episode
                    << " eps=" << agent_->epsilon()
                    << " buffer=" << buffer_->size();
  }

  result.episodes = opts_.episodes;
  result.updates = agent_->updates();
  result.mean_td_loss =
      loss_count ? static_cast<float>(loss_sum / loss_count) : 0.0f;
  result.final_epsilon = agent_->epsilon();
  result.train_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace zeus::rl
