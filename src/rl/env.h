#ifndef ZEUS_RL_ENV_H_
#define ZEUS_RL_ENV_H_

#include <utility>
#include <vector>

#include "apfg/feature_cache.h"
#include "core/configuration.h"
#include "core/metrics.h"
#include "video/video.h"

namespace zeus::rl {

// The RL environment of §4.1 and Fig. 5. The agent traverses a set of
// videos. One Step(config) consumes exactly one APFG invocation: the next
// segment is decoded under `config`, the APFG emits (ProxyFeature,
// prediction), the prediction labels the covered window, and the feature
// becomes the next state — exactly the data flow of the paper's
// illustrative example (Fig. 6). The first segment of every video is
// processed with the slowest (most accurate) configuration, as in §3.
class VideoEnv {
 public:
  struct Options {
    // Width of the APFG ProxyFeature (must match the Apfg behind `cache`).
    int feature_dim = 32;
    // State = ProxyFeature, optionally augmented with the classifier's
    // action probability, a one-hot of the configuration that produced it,
    // and the position in the video. The paper conditions the state on
    // config_curr via U(segment, config); the explicit extras expose that
    // conditioning (all functions of the same invocation's outputs) to the
    // small MLP directly.
    bool append_action_prob = true;
    bool append_config_onehot = true;
    bool append_position = true;
  };

  VideoEnv(std::vector<const video::Video*> videos,
           const core::ConfigurationSpace* space, apfg::FeatureCache* cache,
           std::vector<video::ActionClass> targets, const Options& opts);

  int state_dim() const;
  int num_actions() const { return static_cast<int>(space_->size()); }

  // Starts a new episode over a random permutation of the videos (§5) /
  // the original order (inference). Performs the forced first invocation
  // of video 0 with the slowest configuration.
  void Reset(common::Rng* rng);
  void ResetSequential();

  const std::vector<float>& state() const { return state_; }

  struct StepResult {
    int video_index = 0;   // env-local index of the video stepped in
    int window_start = 0;  // frames covered by this decision
    int window_end = 0;    // exclusive, clamped to the video end
    bool prediction = false;         // APFG output for this segment
    bool window_has_action = false;  // any ground-truth action frame inside
    bool crossed_video = false;      // this step finished a video
    bool done = false;               // episode exhausted
  };

  // Applies configuration `config_id` to the next segment.
  StepResult Step(int config_id);

  bool done() const { return done_; }

  // Prediction masks recorded during the current episode (index-parallel to
  // the constructor's video list).
  const core::FrameMask& mask(int video_index) const {
    return masks_[static_cast<size_t>(video_index)];
  }
  const std::vector<core::FrameMask>& masks() const { return masks_; }
  const video::Video& video(int video_index) const {
    return *videos_[static_cast<size_t>(video_index)];
  }
  size_t num_videos() const { return videos_.size(); }
  const std::vector<video::ActionClass>& targets() const { return targets_; }
  const core::ConfigurationSpace& space() const { return *space_; }
  long total_frames() const { return total_frames_; }

  // Every APFG invocation issued this episode: (config id, frames covered).
  // Includes the forced per-video initial invocations.
  const std::vector<std::pair<int, int>>& invocation_log() const {
    return invocations_;
  }

 private:
  // Processes the segment at the current position under `config_id`,
  // recording prediction, invocation, and the new state; advances the
  // position. Returns the covered window [start, end).
  std::pair<int, int> ProcessSegment(int config_id, bool* prediction);

  // Forced slowest-config invocation at the start of the current video.
  void ForcedInitialStep();

  // Shared Reset body: clears episode state and performs the forced first
  // invocation under the already-set `order_`.
  void ResetCommon();

  std::vector<const video::Video*> videos_;
  const core::ConfigurationSpace* space_;
  apfg::FeatureCache* cache_;
  std::vector<video::ActionClass> targets_;
  Options opts_;

  std::vector<int> order_;  // episode permutation of video indices
  size_t order_pos_ = 0;    // which video in the permutation
  int position_ = 0;        // current frame in the current video
  bool done_ = false;
  std::vector<float> state_;
  std::vector<core::FrameMask> masks_;
  std::vector<std::pair<int, int>> invocations_;
  long total_frames_ = 0;
  int initial_config_ = 0;  // slowest configuration id
};

}  // namespace zeus::rl

#endif  // ZEUS_RL_ENV_H_
