#include "rl/reward.h"

namespace zeus::rl {

double RewardFunction::LocalReward(const core::Configuration& c,
                                   bool window_has_action) const {
  if (opts_.mode == RewardOptions::Mode::kAggregateOnly) return 0.0;
  const double fastness = c.alpha * num_configs_;  // mean == 1.0
  double r;
  if (window_has_action) {
    // Slow (accurate) configurations earn beta - fastness > 0; fast ones
    // are penalized (Fig. 7a).
    r = opts_.beta - fastness;
  } else {
    // Empty window: reward proportional to fastness (Fig. 7b/7c). Slow
    // configurations are not penalized — false-negative avoidance is
    // prioritized over speed (§4.4).
    r = fastness;
  }
  return opts_.local_weight * r;
}

double RewardFunction::AggregateReward(double achieved, double target) {
  if (achieved >= target) {
    // Maximal when the achieved accuracy barely clears the target: the
    // surplus (1 - achieved) shrinks as accuracy overshoots, so the agent
    // is pushed to spend excess accuracy on faster configurations.
    return target < 1.0 ? (1.0 - achieved) / (1.0 - target) : 1.0;
  }
  // Below target: penalty proportional to the deficit.
  return achieved - target;
}

}  // namespace zeus::rl
