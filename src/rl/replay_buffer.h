#ifndef ZEUS_RL_REPLAY_BUFFER_H_
#define ZEUS_RL_REPLAY_BUFFER_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace zeus::rl {

// One (state, action, reward, next_state, done) transition. States are the
// APFG ProxyFeatures (plus optional conditioning extras), so the buffer
// stays small even with thousands of experiences — the reason the paper
// feeds features rather than raw 4-D tensors to the agent (§4.3).
struct Experience {
  std::vector<float> state;
  int action = 0;
  float reward = 0.0f;
  std::vector<float> next_state;
  bool done = false;
};

// Cyclic experience replay buffer (§4.3) with the delayed-reward commit
// protocol of §4.6: incomplete experiences accumulate in a staging area
// while an aggregation window is open; CommitStaged() patches in the
// window's rewards and moves them into the ring.
class ReplayBuffer {
 public:
  // A sampled minibatch: experiences, their ring indices (for priority
  // updates) and per-sample importance weights (all 1 for uniform replay).
  struct SampleResult {
    std::vector<const Experience*> items;
    std::vector<size_t> indices;
    std::vector<float> weights;
  };

  explicit ReplayBuffer(size_t capacity) : capacity_(capacity) {}
  virtual ~ReplayBuffer() = default;

  // Immediate push (local-reward mode).
  void Push(Experience e);

  // Delayed protocol: stage an experience without its reward.
  void Stage(Experience e);
  size_t StagedCount() const { return staged_.size(); }

  // Adds `reward_delta` to every staged experience's reward (local part may
  // already be set) and moves them into the ring buffer.
  void CommitStaged(float reward_delta);

  // Drops staged experiences (e.g. at episode end with no window close).
  void DiscardStaged() { staged_.clear(); }

  // Uniform sample with replacement of `n` experiences.
  std::vector<const Experience*> Sample(size_t n, common::Rng* rng) const;

  // Sample with indices and importance weights. The base class samples
  // uniformly with unit weights.
  virtual SampleResult SampleBatch(size_t n, common::Rng* rng) const;

  // Hook for prioritized variants: update priorities of `indices` with
  // their freshly-computed TD errors. No-op for uniform replay.
  virtual void UpdatePriorities(const std::vector<size_t>& indices,
                                const std::vector<float>& td_errors);

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  bool CanSample(size_t n) const { return size() >= n && size() > 0; }

  const Experience& at(size_t i) const { return ring_[i]; }

 protected:
  // Called after `e` has been placed at ring index `idx` (insert or
  // overwrite), so subclasses can maintain per-slot metadata.
  virtual void OnInsert(size_t idx) { (void)idx; }

 private:
  size_t capacity_;
  size_t next_ = 0;  // ring write cursor
  std::vector<Experience> ring_;
  std::vector<Experience> staged_;
};

// Proportional prioritized experience replay (Schaul et al. 2016): each
// transition is sampled with probability proportional to
// (|td_error| + eps)^alpha, and gradients are scaled by normalized
// importance weights (N * p_i)^-beta to stay unbiased. New transitions get
// the current maximum priority so every experience is replayed at least
// once. An ablation extension beyond the paper's uniform replay (§4.3).
class PrioritizedReplayBuffer : public ReplayBuffer {
 public:
  struct Options {
    float alpha = 0.6f;  // prioritization strength (0 = uniform)
    float beta = 0.4f;   // importance-weight correction strength
    float epsilon = 1e-3f;
  };

  // Defined out of line: a default argument of type Options cannot be used
  // while the enclosing class is still incomplete.
  explicit PrioritizedReplayBuffer(size_t capacity);
  PrioritizedReplayBuffer(size_t capacity, Options opts)
      : ReplayBuffer(capacity), opts_(opts) {}

  SampleResult SampleBatch(size_t n, common::Rng* rng) const override;

  void UpdatePriorities(const std::vector<size_t>& indices,
                        const std::vector<float>& td_errors) override;

  float priority(size_t i) const { return priorities_[i]; }

 protected:
  void OnInsert(size_t idx) override;

 private:
  Options opts_;
  float max_priority_ = 1.0f;
  std::vector<float> priorities_;
};

}  // namespace zeus::rl

#endif  // ZEUS_RL_REPLAY_BUFFER_H_
