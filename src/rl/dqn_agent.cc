#include "rl/dqn_agent.h"

#include <algorithm>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"

namespace zeus::rl {

DqnAgent::DqnAgent(const Options& opts, common::Rng* rng)
    : opts_(opts), rng_(rng->Fork()), epsilon_(opts.epsilon_start) {
  online_ = std::make_unique<QNetwork>(opts.state_dim, opts.num_actions,
                                       opts.hidden_dim, &rng_);
  target_ = std::make_unique<QNetwork>(opts.state_dim, opts.num_actions,
                                       opts.hidden_dim, &rng_);
  ZEUS_CHECK(target_->CopyWeightsFrom(*online_).ok());
  optimizer_ = std::make_unique<nn::Adam>(online_->Parameters(), opts.lr);
}

int DqnAgent::SelectAction(const std::vector<float>& state) {
  if (rng_.NextBernoulli(epsilon_)) {
    return rng_.NextInt(0, opts_.num_actions - 1);
  }
  return GreedyAction(state);
}

int DqnAgent::GreedyAction(const std::vector<float>& state) {
  std::vector<float> q = QValues(state);
  return static_cast<int>(std::max_element(q.begin(), q.end()) - q.begin());
}

std::vector<float> DqnAgent::QValues(const std::vector<float>& state) {
  ZEUS_CHECK(static_cast<int>(state.size()) == opts_.state_dim);
  tensor::Tensor s = tensor::Tensor::FromData({1, opts_.state_dim},
                                              std::vector<float>(state));
  tensor::Tensor q = online_->Forward(s, /*train=*/false);
  return q.vec();
}

float DqnAgent::TrainStep(ReplayBuffer& buffer) {
  const size_t batch = static_cast<size_t>(opts_.batch_size);
  if (!buffer.CanSample(batch)) return -1.0f;
  ReplayBuffer::SampleResult sample = buffer.SampleBatch(batch, &rng_);
  const int n = static_cast<int>(sample.items.size());
  const int sd = opts_.state_dim;
  const int na = opts_.num_actions;

  tensor::Tensor states({n, sd});
  tensor::Tensor next_states({n, sd});
  for (int i = 0; i < n; ++i) {
    std::copy(sample.items[static_cast<size_t>(i)]->state.begin(),
              sample.items[static_cast<size_t>(i)]->state.end(),
              states.data() + static_cast<size_t>(i) * sd);
    std::copy(sample.items[static_cast<size_t>(i)]->next_state.begin(),
              sample.items[static_cast<size_t>(i)]->next_state.end(),
              next_states.data() + static_cast<size_t>(i) * sd);
  }

  // TD targets from the frozen target network. Double DQN decouples action
  // selection (online net) from evaluation (target net).
  tensor::Tensor next_q = target_->Forward(next_states, /*train=*/false);
  tensor::Tensor next_q_online;
  if (opts_.double_dqn) {
    next_q_online = online_->Forward(next_states, /*train=*/false);
  }
  tensor::Tensor pred_selected({n});
  tensor::Tensor target_selected({n});

  tensor::Tensor q = online_->Forward(states, /*train=*/true);
  for (int i = 0; i < n; ++i) {
    const Experience& e = *sample.items[static_cast<size_t>(i)];
    float next_value;
    if (opts_.double_dqn) {
      int best = 0;
      for (int a = 1; a < na; ++a) {
        if (next_q_online[static_cast<size_t>(i) * na + a] >
            next_q_online[static_cast<size_t>(i) * na + best]) {
          best = a;
        }
      }
      next_value = next_q[static_cast<size_t>(i) * na + best];
    } else {
      next_value = next_q[static_cast<size_t>(i) * na];
      for (int a = 1; a < na; ++a) {
        next_value =
            std::max(next_value, next_q[static_cast<size_t>(i) * na + a]);
      }
    }
    pred_selected[static_cast<size_t>(i)] =
        q[static_cast<size_t>(i) * na + e.action];
    target_selected[static_cast<size_t>(i)] =
        e.reward + (e.done ? 0.0f : opts_.gamma * next_value);
  }

  nn::LossResult loss = nn::Huber(pred_selected, target_selected);
  // Report TD errors back to the buffer (priority update for PER).
  std::vector<float> td_errors(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    td_errors[static_cast<size_t>(i)] =
        pred_selected[static_cast<size_t>(i)] -
        target_selected[static_cast<size_t>(i)];
  }
  buffer.UpdatePriorities(sample.indices, td_errors);

  // Scatter the per-sample gradient back onto the selected actions only,
  // scaled by the importance weights (all 1 for uniform replay).
  tensor::Tensor grad_q({n, na});
  for (int i = 0; i < n; ++i) {
    const Experience& e = *sample.items[static_cast<size_t>(i)];
    grad_q[static_cast<size_t>(i) * na + e.action] =
        loss.grad[static_cast<size_t>(i)] *
        sample.weights[static_cast<size_t>(i)];
  }
  online_->Backward(grad_q);
  nn::ClipGradNorm(online_->Parameters(), opts_.grad_clip);
  optimizer_->Step();

  ++updates_;
  if (updates_ % opts_.target_sync_every == 0) {
    ZEUS_CHECK(target_->CopyWeightsFrom(*online_).ok());
  }
  return loss.loss;
}

void DqnAgent::EndEpisode() {
  switch (opts_.epsilon_schedule) {
    case EpsilonSchedule::kExponential:
      epsilon_ = std::max(opts_.epsilon_end, epsilon_ * opts_.epsilon_decay);
      break;
    case EpsilonSchedule::kLinear: {
      float step = (opts_.epsilon_start - opts_.epsilon_end) /
                   static_cast<float>(std::max(1, opts_.epsilon_linear_episodes));
      epsilon_ = std::max(opts_.epsilon_end, epsilon_ - step);
      break;
    }
  }
}

common::Status DqnAgent::Load(const std::string& path) {
  ZEUS_RETURN_IF_ERROR(online_->Load(path));
  return target_->CopyWeightsFrom(*online_);
}

}  // namespace zeus::rl
