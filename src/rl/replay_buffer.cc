#include "rl/replay_buffer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace zeus::rl {

void ReplayBuffer::Push(Experience e) {
  size_t idx;
  if (ring_.size() < capacity_) {
    idx = ring_.size();
    ring_.push_back(std::move(e));
  } else {
    idx = next_;
    ring_[next_] = std::move(e);
  }
  next_ = (next_ + 1) % capacity_;
  OnInsert(idx);
}

void ReplayBuffer::Stage(Experience e) { staged_.push_back(std::move(e)); }

void ReplayBuffer::CommitStaged(float reward_delta) {
  for (Experience& e : staged_) {
    e.reward += reward_delta;
    Push(std::move(e));
  }
  staged_.clear();
}

std::vector<const Experience*> ReplayBuffer::Sample(size_t n,
                                                    common::Rng* rng) const {
  ZEUS_CHECK(!ring_.empty());
  std::vector<const Experience*> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(&ring_[rng->NextU64() % ring_.size()]);
  }
  return out;
}

ReplayBuffer::SampleResult ReplayBuffer::SampleBatch(size_t n,
                                                     common::Rng* rng) const {
  ZEUS_CHECK(size() > 0);
  SampleResult out;
  out.items.reserve(n);
  out.indices.reserve(n);
  out.weights.assign(n, 1.0f);
  for (size_t i = 0; i < n; ++i) {
    size_t idx = rng->NextU64() % size();
    out.indices.push_back(idx);
    out.items.push_back(&at(idx));
  }
  return out;
}

void ReplayBuffer::UpdatePriorities(const std::vector<size_t>& indices,
                                    const std::vector<float>& td_errors) {
  (void)indices;
  (void)td_errors;
}

PrioritizedReplayBuffer::PrioritizedReplayBuffer(size_t capacity)
    : PrioritizedReplayBuffer(capacity, Options()) {}

void PrioritizedReplayBuffer::OnInsert(size_t idx) {
  if (idx >= priorities_.size()) {
    priorities_.resize(idx + 1, max_priority_);
  }
  priorities_[idx] = max_priority_;
}

ReplayBuffer::SampleResult PrioritizedReplayBuffer::SampleBatch(
    size_t n, common::Rng* rng) const {
  ZEUS_CHECK(size() > 0);
  // Proportional sampling over p_i^alpha via a prefix-sum walk. Buffer
  // sizes here are a few thousand entries, so the O(size + n log size)
  // cost is negligible next to a Q-network forward pass.
  std::vector<double> cumulative(size());
  double total = 0.0;
  for (size_t i = 0; i < size(); ++i) {
    total += std::pow(priorities_[i] + opts_.epsilon, opts_.alpha);
    cumulative[i] = total;
  }
  SampleResult out;
  out.items.reserve(n);
  out.indices.reserve(n);
  out.weights.reserve(n);
  double max_weight = 0.0;
  std::vector<double> probs(n);
  for (size_t i = 0; i < n; ++i) {
    double u = rng->NextDouble() * total;
    size_t idx = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    idx = std::min(idx, size() - 1);
    out.indices.push_back(idx);
    out.items.push_back(&at(idx));
    double p = (idx == 0 ? cumulative[0] : cumulative[idx] -
                                               cumulative[idx - 1]) /
               total;
    probs[i] = p;
  }
  for (size_t i = 0; i < n; ++i) {
    double w = std::pow(static_cast<double>(size()) * probs[i], -opts_.beta);
    out.weights.push_back(static_cast<float>(w));
    max_weight = std::max(max_weight, w);
  }
  // Normalize by the max weight so weights stay in (0, 1] and only scale
  // gradients down (standard PER stabilization).
  if (max_weight > 0.0) {
    for (float& w : out.weights) w = static_cast<float>(w / max_weight);
  }
  return out;
}

void PrioritizedReplayBuffer::UpdatePriorities(
    const std::vector<size_t>& indices, const std::vector<float>& td_errors) {
  ZEUS_CHECK(indices.size() == td_errors.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    ZEUS_CHECK(indices[i] < priorities_.size());
    float p = std::abs(td_errors[i]);
    priorities_[indices[i]] = p;
    max_priority_ = std::max(max_priority_, p);
  }
}

}  // namespace zeus::rl
