#ifndef ZEUS_RL_QNETWORK_H_
#define ZEUS_RL_QNETWORK_H_

#include "common/rng.h"
#include "nn/sequential.h"

namespace zeus::rl {

// The DQN function approximator: a 3-layer MLP mapping a state vector to one
// Q-value per configuration (§5: "Zeus's DQN model is a Multi-layer
// Perceptron with 3 fully-connected layers").
class QNetwork {
 public:
  QNetwork(int state_dim, int num_actions, int hidden_dim, common::Rng* rng);

  // {N, state_dim} -> {N, num_actions}.
  tensor::Tensor Forward(const tensor::Tensor& states, bool train);
  void Backward(const tensor::Tensor& grad_q);

  std::vector<nn::Parameter*> Parameters() { return net_.Parameters(); }
  common::Status CopyWeightsFrom(QNetwork& other) {
    return net_.CopyWeightsFrom(other.net_);
  }
  common::Status Save(const std::string& path) { return net_.SaveWeights(path); }
  common::Status Load(const std::string& path) { return net_.LoadWeights(path); }

  int state_dim() const { return state_dim_; }
  int num_actions() const { return num_actions_; }

 private:
  int state_dim_;
  int num_actions_;
  nn::Sequential net_;
};

}  // namespace zeus::rl

#endif  // ZEUS_RL_QNETWORK_H_
