#ifndef ZEUS_RL_REWARD_H_
#define ZEUS_RL_REWARD_H_

#include "core/configuration.h"

namespace zeus::rl {

// Reward shaping options. Zeus-RL uses kCombined: the local term (Eq. 2)
// gives the agent a dense signal to speed through non-action regions, while
// the aggregate accuracy-aware term (Alg. 2) is what lets the planner trade
// excess accuracy for throughput against the user's target.
struct RewardOptions {
  enum class Mode { kLocalOnly, kAggregateOnly, kCombined };
  Mode mode = Mode::kCombined;

  // Fastness cutoff beta of Eq. 2, expressed in *scaled* fastness units
  // (alpha_c * num_configs, so the mean configuration has fastness 1.0).
  double beta = 1.2;
  double local_weight = 0.25;
  double aggregate_weight = 2.0;
};

// Implements the two reward functions of §4.4 and §4.6.
class RewardFunction {
 public:
  RewardFunction(const RewardOptions& opts, int num_configs)
      : opts_(opts), num_configs_(num_configs) {}

  // Local reward (Eq. 2) for taking configuration `c` over a window that
  // does (or does not) contain ground-truth action frames. alpha values are
  // normalized to sum to 1 over the space; we rescale by num_configs so the
  // returned values are O(1).
  double LocalReward(const core::Configuration& c,
                     bool window_has_action) const;

  // Aggregate accuracy-aware reward (Alg. 2, lines 7-10): `achieved` is the
  // window accuracy alpha', `target` the query's accuracy target alpha.
  static double AggregateReward(double achieved, double target);

  const RewardOptions& options() const { return opts_; }

 private:
  RewardOptions opts_;
  int num_configs_;
};

}  // namespace zeus::rl

#endif  // ZEUS_RL_REWARD_H_
