#include "rl/env.h"

#include <algorithm>

#include "apfg/segment_sampler.h"

namespace zeus::rl {

VideoEnv::VideoEnv(std::vector<const video::Video*> videos,
                   const core::ConfigurationSpace* space,
                   apfg::FeatureCache* cache,
                   std::vector<video::ActionClass> targets,
                   const Options& opts)
    : videos_(std::move(videos)),
      space_(space),
      cache_(cache),
      targets_(std::move(targets)),
      opts_(opts) {
  ZEUS_CHECK(!videos_.empty());
  ZEUS_CHECK(space_->size() > 0);
  for (const video::Video* v : videos_) total_frames_ += v->num_frames();
  order_.resize(videos_.size());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = static_cast<int>(i);
  initial_config_ = space_->SlowestId();
}

int VideoEnv::state_dim() const {
  int dim = opts_.feature_dim;
  if (opts_.append_action_prob) dim += 1;
  if (opts_.append_config_onehot) dim += num_actions();
  if (opts_.append_position) dim += 1;
  return dim;
}

void VideoEnv::Reset(common::Rng* rng) {
  rng->Shuffle(&order_);
  ResetCommon();
}

void VideoEnv::ResetSequential() {
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = static_cast<int>(i);
  ResetCommon();
}

void VideoEnv::ResetCommon() {
  order_pos_ = 0;
  position_ = 0;
  done_ = false;
  invocations_.clear();
  masks_.clear();
  masks_.reserve(videos_.size());
  for (const video::Video* v : videos_) {
    masks_.emplace_back(static_cast<size_t>(v->num_frames()), 0);
  }
  ForcedInitialStep();
}

std::pair<int, int> VideoEnv::ProcessSegment(int config_id, bool* prediction) {
  const int vi = order_[order_pos_];
  const video::Video& v = *videos_[static_cast<size_t>(vi)];
  const core::Configuration& c = space_->config(config_id);

  const auto out_ptr = cache_->Get(v, position_, c.spec);
  const apfg::Apfg::Output& out = *out_ptr;
  const int start = position_;
  const int end = std::min(v.num_frames(), position_ + c.CoveredFrames());
  invocations_.emplace_back(config_id, end - start);

  if (out.prediction) {
    core::FrameMask& mask = masks_[static_cast<size_t>(vi)];
    for (int f = start; f < end; ++f) mask[static_cast<size_t>(f)] = 1;
  }
  *prediction = out.prediction != 0;

  // Build the state from this invocation's feature.
  state_.clear();
  ZEUS_CHECK(static_cast<int>(out.feature.size()) == opts_.feature_dim);
  state_.insert(state_.end(), out.feature.data(),
                out.feature.data() + out.feature.size());
  if (opts_.append_action_prob) state_.push_back(out.action_prob);
  if (opts_.append_config_onehot) {
    for (int a = 0; a < num_actions(); ++a) {
      state_.push_back(a == config_id ? 1.0f : 0.0f);
    }
  }
  position_ = end;
  if (opts_.append_position) {
    state_.push_back(static_cast<float>(position_) / v.num_frames());
  }
  return {start, end};
}

void VideoEnv::ForcedInitialStep() {
  bool prediction = false;
  ProcessSegment(initial_config_, &prediction);
}

VideoEnv::StepResult VideoEnv::Step(int config_id) {
  StepResult res;
  ZEUS_CHECK(!done_);
  const int vi = order_[order_pos_];
  const video::Video& v = *videos_[static_cast<size_t>(vi)];

  bool prediction = false;
  auto [start, end] = ProcessSegment(config_id, &prediction);
  res.video_index = vi;
  res.window_start = start;
  res.window_end = end;
  res.prediction = prediction;
  res.window_has_action =
      apfg::SegmentLabel(v, start, end - start, targets_,
                         /*iou_threshold=*/0.0) != 0;

  if (position_ >= v.num_frames()) {
    res.crossed_video = true;
    ++order_pos_;
    position_ = 0;
    if (order_pos_ >= order_.size()) {
      done_ = true;
      res.done = true;
      return res;
    }
    // Forced most-accurate first segment of the next video (§3).
    ForcedInitialStep();
    // A short video could be fully covered by the forced step.
    while (position_ >= videos_[static_cast<size_t>(order_[order_pos_])]
                            ->num_frames()) {
      ++order_pos_;
      position_ = 0;
      if (order_pos_ >= order_.size()) {
        done_ = true;
        res.done = true;
        return res;
      }
      ForcedInitialStep();
    }
  }
  return res;
}

}  // namespace zeus::rl
