#ifndef ZEUS_RL_DQN_AGENT_H_
#define ZEUS_RL_DQN_AGENT_H_

#include <memory>

#include "common/rng.h"
#include "nn/optimizer.h"
#include "rl/qnetwork.h"
#include "rl/replay_buffer.h"

namespace zeus::rl {

// How epsilon anneals across episodes.
enum class EpsilonSchedule {
  kExponential,  // epsilon *= epsilon_decay per episode
  kLinear,       // epsilon -= (start - end) / epsilon_linear_episodes
};

// Deep Q-learning agent (Mnih et al. 2013, as used in §4.3): an online
// Q-network trained on replayed minibatches against a periodically synced
// target network, with epsilon-greedy exploration and Huber TD loss.
// Optional extensions (ablations beyond the paper's vanilla DQN): Double
// DQN target decoupling and prioritized-replay importance weighting.
class DqnAgent {
 public:
  struct Options {
    int state_dim = 32;
    int num_actions = 8;
    int hidden_dim = 64;
    float gamma = 0.92f;        // discount
    float lr = 1e-3f;
    float epsilon_start = 1.0f;
    float epsilon_end = 0.05f;
    float epsilon_decay = 0.72f;  // multiplicative, per episode
    EpsilonSchedule epsilon_schedule = EpsilonSchedule::kExponential;
    int epsilon_linear_episodes = 8;  // for the linear schedule
    int target_sync_every = 32;   // updates between target syncs
    int batch_size = 128;
    float grad_clip = 5.0f;
    // Double DQN (van Hasselt et al. 2016): pick the argmax action with the
    // online network, evaluate it with the target network. Counters the
    // max-operator overestimation bias of vanilla DQN.
    bool double_dqn = false;
  };

  DqnAgent(const Options& opts, common::Rng* rng);

  // Epsilon-greedy action for a single state.
  int SelectAction(const std::vector<float>& state);

  // Pure greedy action (inference).
  int GreedyAction(const std::vector<float>& state);

  // Q-values for a single state.
  std::vector<float> QValues(const std::vector<float>& state);

  // One DQN update from a replay sample. Returns the Huber TD loss, or a
  // negative value if the buffer cannot supply a batch yet. Feeds TD errors
  // back into the buffer (a no-op for uniform replay, the priority update
  // for PrioritizedReplayBuffer).
  float TrainStep(ReplayBuffer& buffer);

  // Call at episode end: anneals epsilon per the configured schedule.
  void EndEpisode();

  float epsilon() const { return epsilon_; }
  void set_epsilon(float e) { epsilon_ = e; }
  const Options& options() const { return opts_; }
  int updates() const { return updates_; }

  QNetwork& online() { return *online_; }

  common::Status Save(const std::string& path) { return online_->Save(path); }
  common::Status Load(const std::string& path);

 private:
  Options opts_;
  common::Rng rng_;
  std::unique_ptr<QNetwork> online_;
  std::unique_ptr<QNetwork> target_;
  std::unique_ptr<nn::Adam> optimizer_;
  float epsilon_;
  int updates_ = 0;
};

}  // namespace zeus::rl

#endif  // ZEUS_RL_DQN_AGENT_H_
