#include "rl/qnetwork.h"

#include "nn/activations.h"
#include "nn/linear.h"

namespace zeus::rl {

QNetwork::QNetwork(int state_dim, int num_actions, int hidden_dim,
                   common::Rng* rng)
    : state_dim_(state_dim), num_actions_(num_actions) {
  net_.Emplace<nn::Linear>(state_dim, hidden_dim, rng);
  net_.Emplace<nn::ReLU>();
  net_.Emplace<nn::Linear>(hidden_dim, hidden_dim, rng);
  net_.Emplace<nn::ReLU>();
  net_.Emplace<nn::Linear>(hidden_dim, num_actions, rng);
}

tensor::Tensor QNetwork::Forward(const tensor::Tensor& states, bool train) {
  return net_.Forward(states, train);
}

void QNetwork::Backward(const tensor::Tensor& grad_q) { net_.Backward(grad_q); }

}  // namespace zeus::rl
