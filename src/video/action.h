#ifndef ZEUS_VIDEO_ACTION_H_
#define ZEUS_VIDEO_ACTION_H_

#include <vector>

#include "common/rng.h"
#include "video/video.h"

namespace zeus::video {

// Normalized 2-D point in [0,1]^2 (x to the right, y downwards).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

// Motion signatures. Action classes map to characteristic trajectories;
// distractor kinds produce motion that is frame-wise indistinguishable from
// actions (same blob appearance) but has the wrong temporal signature, so
// per-frame classifiers (Frame-PP) cannot separate them — matching the
// paper's central observation (Fig. 1).
enum class TrajectoryKind : int {
  // Action signatures.
  kCrossRight = 0,     // left -> right straight crossing
  kCrossLeft,          // right -> left straight crossing
  kLeftTurnSweep,      // curved sweep (driver POV left turn)
  kPoleVaultArc,       // run-up + parabolic arc over a bar
  kTwoStageLift,       // clean-and-jerk: two vertical pulls with a pause
  kIroningOscillate,   // small horizontal oscillation at a fixed station
  kServeTossHit,       // vertical toss, pause, fast diagonal hit

  // Distractor signatures (label stays kNone).
  kLoiter,             // blob wanders near a fixed point (random walk)
  kHalfCrossReturn,    // walks to the middle, turns back
  kVerticalCross,      // crosses top -> bottom
  kStaticBlob,         // parked object
  kRightTurnSweep,     // mirrored turn (confusable with kLeftTurnSweep)
};

// Trajectory of the blob for `kind` at relative progress t in [0,1].
// `jitter` is a per-instance random phase/offset vector so no two instances
// are pixel-identical.
Point TrajectoryPoint(TrajectoryKind kind, double t, const double jitter[4]);

// Nominal duration of one traversal of the trajectory, in frames. Events
// longer than this repeat the motion (a long CrossRight instance is several
// pedestrians crossing back-to-back; a long PoleVault is repeated vaults),
// keeping per-frame motion speed independent of the annotated instance
// length — without this, long actions would move sub-pixel per frame and
// carry no learnable temporal signal.
int TrajectoryCycleFrames(TrajectoryKind kind);

// The distractor kinds a dataset draws from (all of them).
const std::vector<TrajectoryKind>& AllDistractorKinds();

// Maps an action class to its motion signature.
TrajectoryKind TrajectoryForClass(ActionClass cls);

// Spatial appearance of a moving blob. Real action agents (pedestrians,
// athletes) carry fine internal structure; "ghost" distractors (shadows,
// light sweeps) are smooth. The structure survives only at high decode
// resolutions — this is what makes the Resolution knob trade accuracy for
// cost, mirroring the behaviour of real CNNs on real video.
enum class BlobShape : int {
  kTextured = 0,  // Gaussian core + high-frequency side lobes
  kSmooth = 1,    // plain Gaussian
};

// A renderable moving-blob event: either an action instance (cls != kNone)
// or a distractor (cls == kNone).
struct BlobEvent {
  int start_frame = 0;
  int end_frame = 0;  // exclusive
  ActionClass cls = ActionClass::kNone;
  TrajectoryKind traj = TrajectoryKind::kLoiter;
  BlobShape shape = BlobShape::kTextured;
  double amplitude = 0.65;   // peak brightness added by the blob
  double sigma = 0.05;       // blob radius as a fraction of frame size
  double jitter[4] = {0, 0, 0, 0};
};

// Samples jitter for an event.
void SampleJitter(common::Rng* rng, double jitter[4]);

}  // namespace zeus::video

#endif  // ZEUS_VIDEO_ACTION_H_
