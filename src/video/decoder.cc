#include "video/decoder.h"

#include <algorithm>
#include <cmath>

namespace zeus::video {

void SegmentDecoder::ResizeFrame(const float* src, int src_h, int src_w,
                                 int out_res, float* dst) {
  // Box-filter area resize: each destination pixel averages the source
  // rectangle it maps onto. Exact for integer ratios; good enough otherwise.
  const double sy = static_cast<double>(src_h) / out_res;
  const double sx = static_cast<double>(src_w) / out_res;
  for (int oy = 0; oy < out_res; ++oy) {
    int y0 = static_cast<int>(oy * sy);
    int y1 = std::max(y0 + 1, static_cast<int>((oy + 1) * sy));
    y1 = std::min(y1, src_h);
    for (int ox = 0; ox < out_res; ++ox) {
      int x0 = static_cast<int>(ox * sx);
      int x1 = std::max(x0 + 1, static_cast<int>((ox + 1) * sx));
      x1 = std::min(x1, src_w);
      double acc = 0.0;
      for (int y = y0; y < y1; ++y) {
        const float* row = src + static_cast<size_t>(y) * src_w;
        for (int x = x0; x < x1; ++x) acc += row[x];
      }
      dst[static_cast<size_t>(oy) * out_res + ox] =
          static_cast<float>(acc / ((y1 - y0) * (x1 - x0)));
    }
  }
}

tensor::Tensor SegmentDecoder::Decode(const Video& video, int start_frame,
                                      const DecodeSpec& spec) {
  ZEUS_CHECK(spec.resolution_px > 0 && spec.segment_length > 0 &&
             spec.sampling_rate > 0);
  const int r = spec.resolution_px;
  tensor::Tensor out({1, spec.segment_length, r, r});
  float* dst = out.data();
  const int last = video.num_frames() - 1;
  for (int i = 0; i < spec.segment_length; ++i) {
    int f = std::min(last, std::max(0, start_frame + i * spec.sampling_rate));
    ResizeFrame(video.FrameData(f), video.height(), video.width(), r,
                dst + static_cast<size_t>(i) * r * r);
  }
  // Per-segment standardization: zero mean, unit-ish variance. Removes the
  // per-video brightness and contrast variation that a fixed affine
  // normalization leaks into the features — without it the classifier keys
  // on background statistics and fails to generalize to unseen videos.
  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    sum += dst[i];
    sum_sq += static_cast<double>(dst[i]) * dst[i];
  }
  const double n = static_cast<double>(out.size());
  const double mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - mean * mean);
  const float scale = static_cast<float>(1.0 / (std::sqrt(var) + 1e-3));
  for (size_t i = 0; i < out.size(); ++i) {
    dst[i] = (dst[i] - static_cast<float>(mean)) * scale;
  }
  return out;
}

}  // namespace zeus::video
