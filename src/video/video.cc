#include "video/video.h"

#include <algorithm>

#include "common/stringutil.h"

namespace zeus::video {

const char* ActionClassName(ActionClass cls) {
  switch (cls) {
    case ActionClass::kNone:
      return "None";
    case ActionClass::kCrossRight:
      return "CrossRight";
    case ActionClass::kCrossLeft:
      return "CrossLeft";
    case ActionClass::kLeftTurn:
      return "LeftTurn";
    case ActionClass::kPoleVault:
      return "PoleVault";
    case ActionClass::kCleanAndJerk:
      return "CleanAndJerk";
    case ActionClass::kIroningClothes:
      return "IroningClothes";
    case ActionClass::kTennisServe:
      return "TennisServe";
  }
  return "Unknown";
}

ActionClass ParseActionClass(const std::string& name) {
  std::string key = common::ToLower(name);
  std::string squashed;
  for (char c : key) {
    if (c == '-' || c == '_' || c == ' ') continue;
    squashed.push_back(c);
  }
  if (squashed == "crossright") return ActionClass::kCrossRight;
  if (squashed == "crossleft") return ActionClass::kCrossLeft;
  if (squashed == "leftturn") return ActionClass::kLeftTurn;
  if (squashed == "polevault") return ActionClass::kPoleVault;
  if (squashed == "cleanandjerk") return ActionClass::kCleanAndJerk;
  if (squashed == "ironingclothes" || squashed == "ironing")
    return ActionClass::kIroningClothes;
  if (squashed == "tennisserve") return ActionClass::kTennisServe;
  return ActionClass::kNone;
}

void Video::Append(const Video& tail) {
  ZEUS_CHECK(tail.height_ == height_ && tail.width_ == width_);
  data_.insert(data_.end(), tail.data_.begin(), tail.data_.end());
  labels_.insert(labels_.end(), tail.labels_.begin(), tail.labels_.end());
  num_frames_ += tail.num_frames_;
}

Video Video::Slice(int start, int count) const {
  ZEUS_CHECK(start >= 0 && count >= 0 && start + count <= num_frames_);
  Video out(count, height_, width_);
  const size_t frame_px = static_cast<size_t>(height_) * width_;
  std::copy(data_.begin() + static_cast<long>(start) * static_cast<long>(frame_px),
            data_.begin() +
                static_cast<long>(start + count) * static_cast<long>(frame_px),
            out.data_.begin());
  std::copy(labels_.begin() + start, labels_.begin() + start + count,
            out.labels_.begin());
  return out;
}

bool Video::IsActionAny(int f, const std::vector<ActionClass>& classes) const {
  ActionClass l = Label(f);
  return std::find(classes.begin(), classes.end(), l) != classes.end();
}

int Video::CountActionFrames(ActionClass cls) const {
  int n = 0;
  for (ActionClass l : labels_)
    if (l == cls) ++n;
  return n;
}

std::vector<ActionInstance> ExtractInstances(const Video& video) {
  std::vector<ActionInstance> out;
  int n = video.num_frames();
  int i = 0;
  while (i < n) {
    ActionClass cls = video.Label(i);
    if (cls == ActionClass::kNone) {
      ++i;
      continue;
    }
    int j = i;
    while (j < n && video.Label(j) == cls) ++j;
    out.push_back({i, j, cls});
    i = j;
  }
  return out;
}

}  // namespace zeus::video
