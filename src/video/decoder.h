#ifndef ZEUS_VIDEO_DECODER_H_
#define ZEUS_VIDEO_DECODER_H_

#include "tensor/tensor.h"
#include "video/video.h"

namespace zeus::video {

// Physical decode parameters for one segment fetch: how many frames to take,
// every how many source frames, and at what square pixel resolution.
// (The query-level Configuration in zeus::core carries the paper's nominal
// knob values and maps onto this.)
struct DecodeSpec {
  int resolution_px = 30;  // output H == W
  int segment_length = 8;  // frames in the decoded tensor (L)
  int sampling_rate = 1;   // take one frame every `sampling_rate` frames
};

// Decodes video segments into {1, L, r, r} tensors: frame subsampling at the
// requested sampling rate plus box-filter (area) spatial resize, followed by
// per-segment standardization (zero mean, unit variance across the decoded
// tensor). This is the stand-in for the paper's nvdec/OpenCV decode +
// resize + normalize stage; the per-segment statistics make the features
// invariant to per-video brightness and contrast.
class SegmentDecoder {
 public:
  // Decodes the segment starting at `start_frame`. Frames past the end of
  // the video clamp to the last frame (the executor stops at the video end
  // anyway; clamping keeps shapes static for the network).
  static tensor::Tensor Decode(const Video& video, int start_frame,
                               const DecodeSpec& spec);

  // Number of source frames covered by one decode: L * sampling_rate.
  static int CoveredFrames(const DecodeSpec& spec) {
    return spec.segment_length * spec.sampling_rate;
  }

  // Area-resize one frame (native h x w) into out_res x out_res floats.
  static void ResizeFrame(const float* src, int src_h, int src_w, int out_res,
                          float* dst);
};

}  // namespace zeus::video

#endif  // ZEUS_VIDEO_DECODER_H_
