#ifndef ZEUS_VIDEO_VIDEO_H_
#define ZEUS_VIDEO_VIDEO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace zeus::video {

// Action classes supported by the synthetic datasets. Numbering is stable
// because frame annotations store the enum value.
enum class ActionClass : int {
  kNone = 0,
  // BDD100K-like driving classes (§6.1 of the paper).
  kCrossRight = 1,      // pedestrian crosses left -> right
  kCrossLeft = 2,       // pedestrian crosses right -> left
  kLeftTurn = 3,        // driver takes a left turn
  // Thumos14-like sports classes.
  kPoleVault = 4,
  kCleanAndJerk = 5,
  // ActivityNet-like household/sports classes.
  kIroningClothes = 6,
  kTennisServe = 7,
};

// Highest ActionClass value — keep in sync when extending the enum.
// Deserializers (e.g. PlanIo) range-check stored class ids against this.
inline constexpr int kMaxActionClassId = static_cast<int>(ActionClass::kTennisServe);

// Human-readable name ("CrossRight") used in reports and query strings.
const char* ActionClassName(ActionClass cls);

// Parses "cross-right" / "CrossRight" / "left_turn" etc. Returns kNone on
// unknown names.
ActionClass ParseActionClass(const std::string& name);

// A single-channel (luminance) video with per-frame ground-truth labels.
// Frames are stored contiguously; pixel (f, y, x) lives at
// data[(f * height + y) * width + x], values roughly in [0, 1].
class Video {
 public:
  Video(int num_frames, int height, int width)
      : num_frames_(num_frames),
        height_(height),
        width_(width),
        data_(static_cast<size_t>(num_frames) * height * width, 0.0f),
        labels_(static_cast<size_t>(num_frames), ActionClass::kNone) {}

  int num_frames() const { return num_frames_; }
  int height() const { return height_; }
  int width() const { return width_; }

  float* FrameData(int f) {
    ZEUS_CHECK(f >= 0 && f < num_frames_);
    return data_.data() + static_cast<size_t>(f) * height_ * width_;
  }
  const float* FrameData(int f) const {
    ZEUS_CHECK(f >= 0 && f < num_frames_);
    return data_.data() + static_cast<size_t>(f) * height_ * width_;
  }

  // Oracle label function L(n) from §2.1.
  ActionClass Label(int f) const {
    ZEUS_CHECK(f >= 0 && f < num_frames_);
    return labels_[static_cast<size_t>(f)];
  }
  void SetLabel(int f, ActionClass cls) {
    ZEUS_CHECK(f >= 0 && f < num_frames_);
    labels_[static_cast<size_t>(f)] = cls;
  }

  // Binary label function f_X(n) from Eq. (1).
  bool IsAction(int f, ActionClass cls) const { return Label(f) == cls; }

  // Binary label against any of a set of classes (multi-class training,
  // §6.5: frames matching either class are positives).
  bool IsActionAny(int f, const std::vector<ActionClass>& classes) const;

  // Number of frames labeled with `cls`.
  int CountActionFrames(ActionClass cls) const;

  const std::vector<ActionClass>& labels() const { return labels_; }

  // Stream append: extends this video with `tail`'s frames and labels.
  // Shapes must match. Existing frame bytes are never rewritten (only the
  // backing vector may reallocate), so a reader that snapshotted an
  // earlier num_frames() and indexes below it always sees the same
  // pixels — growth is strictly suffix-only.
  void Append(const Video& tail);

  // Copy of frames [start, start + count) as a standalone video (stream
  // blocks are rendered whole and sliced to the appended range). The id
  // is not copied.
  Video Slice(int start, int count) const;

  // Optional identifier for debugging / cache keys.
  void set_id(int id) { id_ = id; }
  int id() const { return id_; }

 private:
  int num_frames_;
  int height_;
  int width_;
  std::vector<float> data_;
  std::vector<ActionClass> labels_;
  int id_ = -1;
};

// A contiguous [start, end) frame interval of one action instance.
struct ActionInstance {
  int start = 0;
  int end = 0;  // exclusive
  ActionClass cls = ActionClass::kNone;

  int length() const { return end - start; }
};

// Extracts the ground-truth action instances (maximal runs of equal
// non-kNone labels) from a video.
std::vector<ActionInstance> ExtractInstances(const Video& video);

}  // namespace zeus::video

#endif  // ZEUS_VIDEO_VIDEO_H_
