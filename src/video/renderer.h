#ifndef ZEUS_VIDEO_RENDERER_H_
#define ZEUS_VIDEO_RENDERER_H_

#include <vector>

#include "common/rng.h"
#include "video/action.h"
#include "video/video.h"

namespace zeus::video {

// Visual style of a dataset family. Domain-shifted datasets (Cityscapes-like,
// KITTI-like in §6.6) change these statistics while keeping action semantics
// identical, producing a realistic train/test distribution gap.
struct SceneStyle {
  double base_brightness = 0.35;   // mean background level
  double texture_amplitude = 0.10; // low-frequency background texture
  double noise_sigma = 0.05;      // per-pixel Gaussian noise
  double drift_speed = 0.15;      // background drift (camera motion), px/frame
                                   // as a fraction of width per 100 frames
  double blob_amplitude = 0.65;   // brightness of moving agents
  double blob_sigma = 0.055;      // agent radius (fraction of frame size)
  double speed_scale = 1.0;       // multiplies action durations
};

// Renders a video from a list of blob events over a textured, drifting,
// noisy background, and writes the frame-level ground-truth labels.
class SceneRenderer {
 public:
  SceneRenderer(int height, int width, SceneStyle style)
      : height_(height), width_(width), style_(style) {}

  // Renders `events` into a fresh video of `num_frames` frames. The rng
  // drives background phases and pixel noise only (event geometry is fixed
  // by the event jitter), so re-rendering with the same rng state is
  // deterministic.
  Video Render(int num_frames, const std::vector<BlobEvent>& events,
               common::Rng* rng) const;

 private:
  void RenderBackground(int frame_idx, const double phases[6], float* out,
                        common::Rng* rng) const;
  void SplatBlob(Point center, double amplitude, double sigma,
                 BlobShape shape, float* frame) const;

  int height_;
  int width_;
  SceneStyle style_;
};

}  // namespace zeus::video

#endif  // ZEUS_VIDEO_RENDERER_H_
