#include "video/action.h"

#include <cmath>

namespace zeus::video {

namespace {

// Smoothstep easing keeps velocities continuous at the endpoints, so actions
// do not start with a visual "pop" that a single frame could detect.
double Ease(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

Point TrajectoryPoint(TrajectoryKind kind, double t, const double jitter[4]) {
  t = std::min(1.0, std::max(0.0, t));
  const double j0 = jitter[0], j1 = jitter[1], j2 = jitter[2], j3 = jitter[3];
  switch (kind) {
    case TrajectoryKind::kCrossRight: {
      double y = 0.52 + 0.12 * j0 + 0.02 * std::sin(6.0 * t + j1 * 6.28);
      return {0.06 + 0.88 * Ease(t), y};
    }
    case TrajectoryKind::kCrossLeft: {
      double y = 0.52 + 0.12 * j0 + 0.02 * std::sin(6.0 * t + j1 * 6.28);
      return {0.94 - 0.88 * Ease(t), y};
    }
    case TrajectoryKind::kLeftTurnSweep: {
      // Quarter-circle sweep from bottom-center to mid-left.
      double ang = 0.5 * M_PI * Ease(t);
      double r = 0.45 + 0.05 * j0;
      return {0.55 - r * std::sin(ang), 0.8 - r * (1.0 - std::cos(ang)) * 1.1};
    }
    case TrajectoryKind::kRightTurnSweep: {
      double ang = 0.5 * M_PI * Ease(t);
      double r = 0.45 + 0.05 * j0;
      return {0.45 + r * std::sin(ang), 0.8 - r * (1.0 - std::cos(ang)) * 1.1};
    }
    case TrajectoryKind::kPoleVaultArc: {
      // Run-up for the first 60%, then a parabolic arc.
      if (t < 0.6) {
        double u = t / 0.6;
        return {0.08 + 0.47 * u, 0.72 + 0.03 * j0};
      }
      double u = (t - 0.6) / 0.4;  // arc phase
      double x = 0.55 + 0.35 * u;
      double y = 0.72 - 1.9 * u * (1.0 - u) - 0.05 * j1;
      return {x, y};
    }
    case TrajectoryKind::kTwoStageLift: {
      // Pull to the chest, brief pause, jerk overhead.
      double x = 0.5 + 0.05 * j0;
      if (t < 0.4) return {x, 0.78 - 0.28 * Ease(t / 0.4)};
      if (t < 0.6) return {x, 0.50};
      return {x, 0.50 - 0.30 * Ease((t - 0.6) / 0.4)};
    }
    case TrajectoryKind::kIroningOscillate: {
      double cycles = 3.0 + 2.0 * std::abs(j2);
      double x = 0.55 + 0.14 * std::sin(2.0 * M_PI * cycles * t + j1 * 6.28);
      return {x, 0.58 + 0.05 * j0};
    }
    case TrajectoryKind::kServeTossHit: {
      // Toss up for 50%, hang 15%, fast diagonal hit 35%.
      double x0 = 0.35 + 0.05 * j0;
      if (t < 0.5) return {x0, 0.70 - 0.50 * Ease(t / 0.5)};
      if (t < 0.65) return {x0, 0.20};
      double u = (t - 0.65) / 0.35;
      return {x0 + 0.5 * u * u, 0.20 + 0.45 * u};
    }
    case TrajectoryKind::kLoiter: {
      double x = 0.3 + 0.4 * std::abs(j0) + 0.04 * std::sin(9.0 * t + j1 * 6.28);
      double y = 0.3 + 0.4 * std::abs(j2) + 0.04 * std::cos(7.0 * t + j3 * 6.28);
      return {x, y};
    }
    case TrajectoryKind::kHalfCrossReturn: {
      double y = 0.52 + 0.12 * j0;
      // A pedestrian who hesitates at the curb: steps out a short distance
      // at roughly a third of crossing speed, then retreats. Any single
      // frame looks like the start of a crossing (defeats Frame-PP), but
      // even a short segment sees motion that is too slow and too small to
      // be a real crossing — local windows stay separable, which the
      // paper's high-accuracy short configurations require.
      double u = t < 0.4 ? Ease(t / 0.4) : Ease((1.0 - t) / 0.6);
      return {0.06 + 0.16 * u, y};
    }
    case TrajectoryKind::kVerticalCross: {
      double x = 0.35 + 0.3 * std::abs(j0);
      return {x, 0.06 + 0.88 * Ease(t)};
    }
    case TrajectoryKind::kStaticBlob: {
      return {0.25 + 0.5 * std::abs(j0), 0.25 + 0.5 * std::abs(j2)};
    }
  }
  return {0.5, 0.5};
}

int TrajectoryCycleFrames(TrajectoryKind kind) {
  switch (kind) {
    case TrajectoryKind::kCrossRight:
    case TrajectoryKind::kCrossLeft:
    case TrajectoryKind::kHalfCrossReturn:
    case TrajectoryKind::kVerticalCross:
      // The cycle length controls the accuracy/knob trade-off that Table 2
      // depends on. 20 frames ≈ 1.3 px/frame of blob motion at the native
      // 30 px render: one densely-sampled 8-frame window sees half a
      // crossing as smooth, clearly-directed motion (accurate), while
      // sampling every 8th frame steps 40% of a cycle and aliases the
      // repeating crossing (inaccurate) — the paper's ordering, where the
      // slow dense configurations beat the fast coarse ones.
      return 20;
    case TrajectoryKind::kLeftTurnSweep:
    case TrajectoryKind::kRightTurnSweep:
      return 44;
    // Sports cycles are short for the same Table 2 reason as the crossing
    // classes: ~1 px/frame at the 24 px native render makes densely-sampled
    // short windows the most informative, while rate-8 sampling undersamples
    // the cycle.
    case TrajectoryKind::kPoleVaultArc:
      return 16;
    case TrajectoryKind::kTwoStageLift:
      return 18;
    case TrajectoryKind::kIroningOscillate:
      return 20;
    case TrajectoryKind::kServeTossHit:
      return 16;
    case TrajectoryKind::kLoiter:
    case TrajectoryKind::kStaticBlob:
      return 40;
  }
  return 40;
}

const std::vector<TrajectoryKind>& AllDistractorKinds() {
  static const std::vector<TrajectoryKind>* kinds =
      new std::vector<TrajectoryKind>{
          TrajectoryKind::kLoiter,       TrajectoryKind::kHalfCrossReturn,
          TrajectoryKind::kVerticalCross, TrajectoryKind::kStaticBlob,
          TrajectoryKind::kRightTurnSweep};
  return *kinds;
}

TrajectoryKind TrajectoryForClass(ActionClass cls) {
  switch (cls) {
    case ActionClass::kCrossRight:
      return TrajectoryKind::kCrossRight;
    case ActionClass::kCrossLeft:
      return TrajectoryKind::kCrossLeft;
    case ActionClass::kLeftTurn:
      return TrajectoryKind::kLeftTurnSweep;
    case ActionClass::kPoleVault:
      return TrajectoryKind::kPoleVaultArc;
    case ActionClass::kCleanAndJerk:
      return TrajectoryKind::kTwoStageLift;
    case ActionClass::kIroningClothes:
      return TrajectoryKind::kIroningOscillate;
    case ActionClass::kTennisServe:
      return TrajectoryKind::kServeTossHit;
    case ActionClass::kNone:
      break;
  }
  return TrajectoryKind::kLoiter;
}

void SampleJitter(common::Rng* rng, double jitter[4]) {
  for (int i = 0; i < 4; ++i) jitter[i] = rng->NextUniform(-1.0, 1.0);
}

}  // namespace zeus::video
