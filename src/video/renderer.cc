#include "video/renderer.h"

#include <algorithm>
#include <cmath>

namespace zeus::video {

void SceneRenderer::RenderBackground(int frame_idx, const double phases[6],
                                     float* out, common::Rng* rng) const {
  const double drift =
      style_.drift_speed * frame_idx / 100.0;  // fraction of width
  for (int y = 0; y < height_; ++y) {
    double fy = static_cast<double>(y) / height_;
    for (int x = 0; x < width_; ++x) {
      double fx = static_cast<double>(x) / width_ + drift;
      double tex =
          std::sin(2.0 * M_PI * (1.3 * fx + phases[0])) *
              std::cos(2.0 * M_PI * (0.9 * fy + phases[1])) +
          0.5 * std::sin(2.0 * M_PI * (2.7 * fx + 1.9 * fy + phases[2]));
      double v = style_.base_brightness + style_.texture_amplitude * tex * 0.5 +
                 style_.noise_sigma * rng->NextGaussian();
      out[y * width_ + x] = static_cast<float>(std::clamp(v, 0.0, 1.0));
    }
  }
}

void SceneRenderer::SplatBlob(Point center, double amplitude, double sigma,
                              BlobShape shape, float* frame) const {
  const double cx = center.x * width_;
  const double cy = center.y * height_;
  const double s = sigma * std::max(width_, height_);
  const int radius = static_cast<int>(std::ceil(3.5 * s));
  const int x0 = std::max(0, static_cast<int>(cx) - radius);
  const int x1 = std::min(width_ - 1, static_cast<int>(cx) + radius);
  const int y0 = std::max(0, static_cast<int>(cy) - radius);
  const int y1 = std::min(height_ - 1, static_cast<int>(cy) + radius);
  const double inv2s2 = 1.0 / (2.0 * s * s);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      double dx = x - cx, dy = y - cy;
      double d2 = dx * dx + dy * dy;
      double v = amplitude * std::exp(-d2 * inv2s2);
      if (shape == BlobShape::kTextured) {
        // High-frequency internal pattern (period ~1.5 sigma): a dark/light
        // modulation that area-averaging wipes out at low resolutions, so
        // textured agents and smooth ghosts become indistinguishable there.
        // Pattern period ~1.8 sigma: fine enough that area-averaging below
        // ~2/3 of the native resolution wipes it out (the Resolution knob's
        // accuracy cost), coarse enough to survive the native render.
        double pattern =
            std::cos(2.0 * M_PI * dx / (1.8 * s)) *
            std::cos(2.0 * M_PI * dy / (1.8 * s));
        v *= 0.50 + 0.50 * pattern;
      }
      double out = frame[y * width_ + x] + v;
      frame[y * width_ + x] = static_cast<float>(std::min(1.0, out));
    }
  }
}

Video SceneRenderer::Render(int num_frames,
                            const std::vector<BlobEvent>& events,
                            common::Rng* rng) const {
  Video video(num_frames, height_, width_);
  double phases[6];
  for (double& p : phases) p = rng->NextDouble();

  for (int f = 0; f < num_frames; ++f) {
    RenderBackground(f, phases, video.FrameData(f), rng);
  }
  for (const BlobEvent& ev : events) {
    const int len = ev.end_frame - ev.start_frame;
    if (len <= 0) continue;
    // Events longer than one trajectory cycle repeat the motion so that
    // per-frame speed does not shrink with instance length.
    const int cycle = std::min(len, TrajectoryCycleFrames(ev.traj));
    for (int f = std::max(0, ev.start_frame);
         f < std::min(num_frames, ev.end_frame); ++f) {
      int phase = (f - ev.start_frame) % cycle;
      double t = static_cast<double>(phase) / std::max(1, cycle - 1);
      Point p = TrajectoryPoint(ev.traj, t, ev.jitter);
      SplatBlob(p, ev.amplitude, ev.sigma, ev.shape, video.FrameData(f));
      if (ev.cls != ActionClass::kNone) {
        video.SetLabel(f, ev.cls);
      }
    }
  }
  return video;
}

}  // namespace zeus::video
