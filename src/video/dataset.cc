#include "video/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace zeus::video {

const char* DatasetFamilyName(DatasetFamily family) {
  switch (family) {
    case DatasetFamily::kBdd100kLike:
      return "BDD100K-like";
    case DatasetFamily::kThumos14Like:
      return "Thumos14-like";
    case DatasetFamily::kActivityNetLike:
      return "ActivityNet-like";
    case DatasetFamily::kCityscapesLike:
      return "Cityscapes-like";
    case DatasetFamily::kKittiLike:
      return "KITTI-like";
  }
  return "Unknown";
}

DatasetProfile DatasetProfile::ForFamily(DatasetFamily family) {
  DatasetProfile p;
  p.family = family;
  p.name = DatasetFamilyName(family);
  switch (family) {
    case DatasetFamily::kBdd100kLike:
      // Table 3: 2 classes, 7.03% action frames, avg len 115 (58.7 std),
      // (6, 305) min/max — scaled ~2x shorter in time.
      p.num_videos = 64;
      p.frames_per_video = 500;
      p.native_resolution = 30;
      p.classes = {ActionClass::kCrossRight, ActionClass::kCrossLeft,
                   ActionClass::kLeftTurn};
      p.action_fraction = 0.07;
      p.mean_action_length = 48.0;
      p.stddev_action_length = 18.0;
      p.min_action_length = 16;
      p.max_action_length = 110;
      p.distractor_rate = 0.8;
      p.style = SceneStyle{};
      p.style.blob_amplitude = 0.75;
      p.style.blob_sigma = 0.075;
      p.style.noise_sigma = 0.035;
      break;
    case DatasetFamily::kThumos14Like:
      // Table 3: 40.27% action frames, avg 211 (186 std), (18, 3543).
      p.num_videos = 28;
      p.frames_per_video = 500;
      p.native_resolution = 24;
      p.classes = {ActionClass::kPoleVault, ActionClass::kCleanAndJerk};
      p.action_fraction = 0.40;
      p.mean_action_length = 80.0;
      p.stddev_action_length = 55.0;
      p.min_action_length = 16;
      p.max_action_length = 280;
      p.distractor_rate = 0.8;
      p.style.base_brightness = 0.30;
      p.style.texture_amplitude = 0.12;
      p.style.noise_sigma = 0.045;
      p.style.drift_speed = 0.05;
      p.style.blob_sigma = 0.085;
      break;
    case DatasetFamily::kActivityNetLike:
      // Table 3: 56.37% action frames, avg 909 (1239 std), (20, 6931):
      // long, dense actions.
      p.num_videos = 28;
      p.frames_per_video = 500;
      p.native_resolution = 24;
      p.classes = {ActionClass::kIroningClothes, ActionClass::kTennisServe};
      p.action_fraction = 0.56;
      p.mean_action_length = 170.0;
      p.stddev_action_length = 120.0;
      p.min_action_length = 20;
      p.max_action_length = 420;
      p.distractor_rate = 0.4;
      p.style.base_brightness = 0.40;
      p.style.texture_amplitude = 0.08;
      p.style.noise_sigma = 0.05;
      p.style.drift_speed = 0.02;
      p.style.blob_sigma = 0.085;
      break;
    case DatasetFamily::kCityscapesLike:
      // European city streets: brighter scenes, more texture, slightly
      // different agent appearance. Same classes as BDD.
      p = ForFamily(DatasetFamily::kBdd100kLike);
      p.family = DatasetFamily::kCityscapesLike;
      p.name = DatasetFamilyName(DatasetFamily::kCityscapesLike);
      p.num_videos = 24;
      p.style.base_brightness = 0.45;
      p.style.texture_amplitude = 0.14;
      p.style.noise_sigma = 0.06;
      p.style.blob_amplitude = 0.55;
      p.style.blob_sigma = 0.040;
      p.style.speed_scale = 0.9;
      break;
    case DatasetFamily::kKittiLike:
      // Residential streets: strongest shift — dimmer, noisier, slower
      // agents with smaller apparent size.
      p = ForFamily(DatasetFamily::kBdd100kLike);
      p.family = DatasetFamily::kKittiLike;
      p.name = DatasetFamilyName(DatasetFamily::kKittiLike);
      p.num_videos = 24;
      // KITTI has no CrossRight instances (§6.6 evaluates only LeftTurn).
      p.classes = {ActionClass::kCrossLeft, ActionClass::kLeftTurn};
      p.style.base_brightness = 0.28;
      p.style.texture_amplitude = 0.16;
      p.style.noise_sigma = 0.08;
      p.style.blob_amplitude = 0.50;
      p.style.blob_sigma = 0.038;
      p.style.speed_scale = 1.25;
      break;
  }
  return p;
}

namespace {

// Samples one action length from the profile's truncated Gaussian.
int SampleActionLength(const DatasetProfile& p, common::Rng* rng) {
  double len =
      rng->NextGaussian(p.mean_action_length, p.stddev_action_length) *
      p.style.speed_scale;
  len = std::clamp(len, static_cast<double>(p.min_action_length),
                   static_cast<double>(p.max_action_length));
  return static_cast<int>(len);
}

// Builds the event script for `n` frames of one video: action instances
// are placed left-to-right with exponential gaps tuned to hit the target
// action fraction; distractors are sprinkled independently. Stream blocks
// call this with n = kStreamBlockFrames so a growing video keeps the same
// event statistics as its stored prefix.
std::vector<BlobEvent> ScriptVideo(const DatasetProfile& p, int n,
                                   common::Rng* rng) {
  std::vector<BlobEvent> events;

  // Expected gap so that mean_len / (mean_len + gap) == action_fraction.
  const double mean_len = p.mean_action_length * p.style.speed_scale;
  const double mean_gap =
      mean_len * (1.0 - p.action_fraction) / std::max(1e-6, p.action_fraction);

  int cursor = static_cast<int>(-mean_gap * std::log(1.0 - rng->NextDouble()) *
                                0.5);  // first gap, shorter on average
  while (cursor < n) {
    int len = SampleActionLength(p, rng);
    if (cursor + len > n) break;
    BlobEvent ev;
    ev.start_frame = cursor;
    ev.end_frame = cursor + len;
    ev.cls = p.classes[static_cast<size_t>(rng->NextInt(
        0, static_cast<int>(p.classes.size()) - 1))];
    ev.traj = TrajectoryForClass(ev.cls);
    ev.amplitude = p.style.blob_amplitude;
    ev.sigma = p.style.blob_sigma;
    SampleJitter(rng, ev.jitter);
    events.push_back(ev);
    double gap = -mean_gap * std::log(std::max(1e-12, 1.0 - rng->NextDouble()));
    cursor += len + std::max(4, static_cast<int>(gap));
  }

  // Distractors: Poisson-ish arrivals at `distractor_rate` per 100 frames.
  // Half are ordinary non-action agents (textured, wrong trajectory); half
  // are "ghosts" — smooth blobs (shadows, light sweeps) that FOLLOW an
  // action trajectory. Ghosts are separable only by fine spatial texture,
  // which is exactly what low decode resolutions destroy — they are the
  // reason the Resolution knob costs accuracy.
  const auto& kinds = AllDistractorKinds();
  int expected = static_cast<int>(p.distractor_rate * n / 100.0);
  for (int i = 0; i < expected; ++i) {
    BlobEvent ev;
    int len = SampleActionLength(p, rng);
    int start = rng->NextInt(0, std::max(0, n - len - 1));
    ev.start_frame = start;
    ev.end_frame = start + len;
    ev.cls = ActionClass::kNone;
    ev.sigma = p.style.blob_sigma;
    if (rng->NextBernoulli(0.10)) {
      // Ghost: action-like motion, smooth appearance. Amplitude matched to
      // the *area-averaged* brightness of a textured agent so the two are
      // indistinguishable once the texture falls below the pixel pitch.
      ActionClass mimic = p.classes[static_cast<size_t>(rng->NextInt(
          0, static_cast<int>(p.classes.size()) - 1))];
      ev.traj = TrajectoryForClass(mimic);
      ev.shape = BlobShape::kSmooth;
      ev.amplitude = p.style.blob_amplitude * 0.60;
    } else {
      ev.traj = kinds[static_cast<size_t>(
          rng->NextInt(0, static_cast<int>(kinds.size()) - 1))];
      ev.shape = BlobShape::kTextured;
      ev.amplitude = p.style.blob_amplitude;
    }
    SampleJitter(rng, ev.jitter);
    events.push_back(ev);
  }
  return events;
}

// Renders one deterministic stream block: kStreamBlockFrames frames of
// video `video_index`'s tail, block `block_index` past the generated base.
// The rng is seeded purely from (stream seed, video index, block index),
// so re-rendering the same block anywhere — another process, a repaired
// replica, a retry — produces identical bytes.
Video RenderStreamBlock(const DatasetProfile& p, uint64_t stream_seed,
                        int video_index, long block_index) {
  uint64_t mix = stream_seed;
  mix ^= 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(video_index) + 1);
  mix ^= 0xBF58476D1CE4E5B9ull * (static_cast<uint64_t>(block_index) + 1);
  common::Rng rng(mix);
  auto events =
      ScriptVideo(p, SyntheticDataset::kStreamBlockFrames, &rng);
  SceneRenderer renderer(p.native_resolution, p.native_resolution, p.style);
  return renderer.Render(SyntheticDataset::kStreamBlockFrames, events, &rng);
}

}  // namespace

namespace {
// Globally unique video ids so feature caches shared across datasets (e.g.
// the domain-adaptation experiments) never collide on cache keys.
int g_next_video_id = 0;
}  // namespace

SyntheticDataset SyntheticDataset::Generate(const DatasetProfile& profile,
                                            uint64_t seed) {
  SyntheticDataset ds;
  ds.profile_ = profile;
  common::Rng rng(seed);
  SceneRenderer renderer(profile.native_resolution, profile.native_resolution,
                         profile.style);
  ds.videos_.reserve(static_cast<size_t>(profile.num_videos));
  for (int i = 0; i < profile.num_videos; ++i) {
    common::Rng video_rng = rng.Fork();
    auto events = ScriptVideo(profile, profile.frames_per_video, &video_rng);
    Video v = renderer.Render(profile.frames_per_video, events, &video_rng);
    v.set_id(g_next_video_id++);
    ds.videos_.push_back(std::move(v));
  }
  // Deterministic split: shuffle indices with a fixed fork of the seed.
  std::vector<int> idx(static_cast<size_t>(profile.num_videos));
  for (int i = 0; i < profile.num_videos; ++i) idx[static_cast<size_t>(i)] = i;
  common::Rng split_rng = rng.Fork();
  split_rng.Shuffle(&idx);
  const int n_train = profile.num_videos * 6 / 10;
  const int n_val = profile.num_videos * 2 / 10;
  ds.train_.assign(idx.begin(), idx.begin() + n_train);
  ds.val_.assign(idx.begin() + n_train, idx.begin() + n_train + n_val);
  ds.test_.assign(idx.begin() + n_train + n_val, idx.end());
  // Record the stream identity: growth blocks are seeded from this.
  ds.has_stream_seed_ = true;
  ds.stream_seed_ = seed;
  ds.base_frames_ = profile.frames_per_video;
  return ds;
}

long SyntheticDataset::stream_length() const {
  if (test_.empty()) return base_frames_;
  return videos_[static_cast<size_t>(test_[0])].num_frames();
}

common::Status SyntheticDataset::GrowTo(long target_frames, uint64_t epoch) {
  if (!has_stream_seed_) {
    return common::Status::InvalidArgument(
        "dataset is not streamable (no recorded generation seed)");
  }
  frame_epoch_ = std::max(frame_epoch_, epoch);
  for (int idx : test_) {
    Video& v = videos_[static_cast<size_t>(idx)];
    while (v.num_frames() < target_frames) {
      const long block =
          (v.num_frames() - base_frames_) / kStreamBlockFrames;
      const long block_begin = base_frames_ + block * kStreamBlockFrames;
      Video rendered = RenderStreamBlock(profile_, stream_seed_, idx, block);
      const int from = static_cast<int>(v.num_frames() - block_begin);
      const int want = static_cast<int>(
          std::min<long>(kStreamBlockFrames - from,
                         target_frames - v.num_frames()));
      v.Append(rendered.Slice(from, want));
    }
  }
  return common::Status::Ok();
}

void SyntheticDataset::RestoreStreamState(uint64_t seed, int base_frames,
                                          uint64_t epoch) {
  has_stream_seed_ = true;
  stream_seed_ = seed;
  base_frames_ = base_frames;
  frame_epoch_ = epoch;
}

SyntheticDataset SyntheticDataset::FromParts(DatasetProfile profile,
                                             std::vector<Video> videos,
                                             std::vector<int> train,
                                             std::vector<int> val,
                                             std::vector<int> test) {
  const int n = static_cast<int>(videos.size());
  for (const std::vector<int>* split : {&train, &val, &test}) {
    for (int i : *split) {
      ZEUS_CHECK(i >= 0 && i < n);
    }
  }
  SyntheticDataset ds;
  ds.profile_ = std::move(profile);
  ds.videos_ = std::move(videos);
  ds.train_ = std::move(train);
  ds.val_ = std::move(val);
  ds.test_ = std::move(test);
  return ds;
}

DatasetStatistics SyntheticDataset::ComputeStatistics() const {
  DatasetStatistics stats;
  stats.num_classes = static_cast<int>(profile_.classes.size());
  common::RunningStats lengths;
  long action_frames = 0;
  for (const Video& v : videos_) {
    stats.total_frames += v.num_frames();
    for (const ActionInstance& inst : ExtractInstances(v)) {
      lengths.Add(inst.length());
      action_frames += inst.length();
    }
  }
  stats.percent_action_frames =
      stats.total_frames
          ? 100.0 * static_cast<double>(action_frames) / stats.total_frames
          : 0.0;
  stats.avg_action_length = lengths.mean();
  stats.stddev_action_length = lengths.stddev();
  stats.min_action_length = static_cast<int>(lengths.min());
  stats.max_action_length = static_cast<int>(lengths.max());
  stats.num_instances = static_cast<int>(lengths.count());
  return stats;
}

SyntheticDataset SyntheticDataset::MergeClasses(
    const std::vector<ActionClass>& classes, ActionClass merged) const {
  SyntheticDataset out = *this;
  for (Video& v : out.videos_) {
    for (int f = 0; f < v.num_frames(); ++f) {
      if (std::find(classes.begin(), classes.end(), v.Label(f)) !=
          classes.end()) {
        v.SetLabel(f, merged);
      } else if (v.Label(f) != ActionClass::kNone) {
        v.SetLabel(f, ActionClass::kNone);
      }
    }
  }
  return out;
}

}  // namespace zeus::video
