#ifndef ZEUS_VIDEO_DATASET_H_
#define ZEUS_VIDEO_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "video/renderer.h"
#include "video/video.h"

namespace zeus::video {

// The dataset families evaluated in the paper (§6.1 / Table 3), plus the
// two domain-adaptation targets (§6.6).
enum class DatasetFamily {
  kBdd100kLike,
  kThumos14Like,
  kActivityNetLike,
  kCityscapesLike,  // BDD classes, shifted scene statistics
  kKittiLike,       // BDD classes, strongly shifted scene statistics
};

const char* DatasetFamilyName(DatasetFamily family);

// Generation parameters for one synthetic dataset. Defaults are the
// ~20x-scaled-down equivalents of Table 3 (see DESIGN.md §4).
struct DatasetProfile {
  DatasetFamily family = DatasetFamily::kBdd100kLike;
  std::string name = "BDD100K-like";
  int num_videos = 48;
  int frames_per_video = 400;
  int native_resolution = 30;  // rendered pixels (square frames)
  // Classes annotated in this dataset; every video may contain instances of
  // any of them plus distractors.
  std::vector<ActionClass> classes;
  // Target fraction of frames covered by actions (Table 3 "Percent Actions").
  double action_fraction = 0.07;
  // Action instance length distribution (frames).
  double mean_action_length = 60.0;
  double stddev_action_length = 28.0;
  int min_action_length = 12;
  int max_action_length = 150;
  // Distractor (non-action motion) density: expected events per 100 frames.
  double distractor_rate = 0.8;
  SceneStyle style;

  // Canonical profile for a family, sized for single-core experiments.
  static DatasetProfile ForFamily(DatasetFamily family);
};

// Aggregate statistics, mirroring Table 3 columns.
struct DatasetStatistics {
  int num_classes = 0;
  long total_frames = 0;
  double percent_action_frames = 0.0;
  double avg_action_length = 0.0;
  double stddev_action_length = 0.0;
  int min_action_length = 0;
  int max_action_length = 0;
  int num_instances = 0;
};

// An in-memory synthetic dataset: a bag of annotated videos plus split
// indices. Generation is deterministic given (profile, seed).
class SyntheticDataset {
 public:
  static SyntheticDataset Generate(const DatasetProfile& profile,
                                   uint64_t seed);

  // Reassembles a dataset from persisted parts (storage round-trip). Split
  // indices must each be a subset of [0, videos.size()).
  static SyntheticDataset FromParts(DatasetProfile profile,
                                    std::vector<Video> videos,
                                    std::vector<int> train,
                                    std::vector<int> val,
                                    std::vector<int> test);

  const DatasetProfile& profile() const { return profile_; }
  const std::vector<Video>& videos() const { return videos_; }
  size_t num_videos() const { return videos_.size(); }
  const Video& video(size_t i) const { return videos_[i]; }

  // Deterministic 60 / 20 / 20 train / validation / test split.
  const std::vector<int>& train_indices() const { return train_; }
  const std::vector<int>& val_indices() const { return val_; }
  const std::vector<int>& test_indices() const { return test_; }

  DatasetStatistics ComputeStatistics() const;

  // Returns a copy of this dataset where frames labeled with any class in
  // `classes` are relabeled to `merged` — the multi-class training setup of
  // §6.5 (either class counts as a positive).
  SyntheticDataset MergeClasses(const std::vector<ActionClass>& classes,
                                ActionClass merged) const;

 private:
  DatasetProfile profile_;
  std::vector<Video> videos_;
  std::vector<int> train_, val_, test_;
};

}  // namespace zeus::video

#endif  // ZEUS_VIDEO_DATASET_H_
