#ifndef ZEUS_VIDEO_DATASET_H_
#define ZEUS_VIDEO_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "video/renderer.h"
#include "video/video.h"

namespace zeus::video {

// The dataset families evaluated in the paper (§6.1 / Table 3), plus the
// two domain-adaptation targets (§6.6).
enum class DatasetFamily {
  kBdd100kLike,
  kThumos14Like,
  kActivityNetLike,
  kCityscapesLike,  // BDD classes, shifted scene statistics
  kKittiLike,       // BDD classes, strongly shifted scene statistics
};

const char* DatasetFamilyName(DatasetFamily family);

// Generation parameters for one synthetic dataset. Defaults are the
// ~20x-scaled-down equivalents of Table 3 (see DESIGN.md §4).
struct DatasetProfile {
  DatasetFamily family = DatasetFamily::kBdd100kLike;
  std::string name = "BDD100K-like";
  int num_videos = 48;
  int frames_per_video = 400;
  int native_resolution = 30;  // rendered pixels (square frames)
  // Classes annotated in this dataset; every video may contain instances of
  // any of them plus distractors.
  std::vector<ActionClass> classes;
  // Target fraction of frames covered by actions (Table 3 "Percent Actions").
  double action_fraction = 0.07;
  // Action instance length distribution (frames).
  double mean_action_length = 60.0;
  double stddev_action_length = 28.0;
  int min_action_length = 12;
  int max_action_length = 150;
  // Distractor (non-action motion) density: expected events per 100 frames.
  double distractor_rate = 0.8;
  SceneStyle style;

  // Canonical profile for a family, sized for single-core experiments.
  static DatasetProfile ForFamily(DatasetFamily family);
};

// Aggregate statistics, mirroring Table 3 columns.
struct DatasetStatistics {
  int num_classes = 0;
  long total_frames = 0;
  double percent_action_frames = 0.0;
  double avg_action_length = 0.0;
  double stddev_action_length = 0.0;
  int min_action_length = 0;
  int max_action_length = 0;
  int num_instances = 0;
};

// An in-memory synthetic dataset: a bag of annotated videos plus split
// indices. Generation is deterministic given (profile, seed).
class SyntheticDataset {
 public:
  static SyntheticDataset Generate(const DatasetProfile& profile,
                                   uint64_t seed);

  // Reassembles a dataset from persisted parts (storage round-trip). Split
  // indices must each be a subset of [0, videos.size()).
  static SyntheticDataset FromParts(DatasetProfile profile,
                                    std::vector<Video> videos,
                                    std::vector<int> train,
                                    std::vector<int> val,
                                    std::vector<int> test);

  const DatasetProfile& profile() const { return profile_; }
  const std::vector<Video>& videos() const { return videos_; }
  size_t num_videos() const { return videos_.size(); }
  const Video& video(size_t i) const { return videos_[i]; }

  // Deterministic 60 / 20 / 20 train / validation / test split.
  const std::vector<int>& train_indices() const { return train_; }
  const std::vector<int>& val_indices() const { return val_; }
  const std::vector<int>& test_indices() const { return test_; }

  DatasetStatistics ComputeStatistics() const;

  // Returns a copy of this dataset where frames labeled with any class in
  // `classes` are relabeled to `merged` — the multi-class training setup of
  // §6.5 (either class counts as a positive).
  SyntheticDataset MergeClasses(const std::vector<ActionClass>& classes,
                                ActionClass merged) const;

  // ---- Live-stream growth -------------------------------------------------
  //
  // A generated dataset can grow: test-split videos gain frames in
  // deterministic blocks of kStreamBlockFrames, each seeded by
  // (generation seed, video index, block index). Because a block's bytes
  // depend only on those three values, any append batching converges to
  // identical pixels — growing 64 frames once or 8 frames eight times
  // yields byte-identical videos. That prefix-stability is what makes
  // replica catch-up, idempotent append retries, and the bit-identical
  // subscriber contract possible. Train/val videos never grow: the
  // trained plan's profiling splits stay frozen, so plan reuse across
  // windows stays valid.

  static constexpr int kStreamBlockFrames = 64;

  // True when this dataset can grow (generated with a recorded seed — or
  // restored via RestoreStreamState — and has test videos to grow).
  bool streamable() const { return has_stream_seed_ && !test_.empty(); }

  // Monotone growth epoch, stamped by GrowTo (applied as max). Readers
  // that snapshot (frame_epoch, stream_length) see a consistent prefix.
  uint64_t frame_epoch() const { return frame_epoch_; }

  // Frame count the test videos were generated with (growth starts here).
  int base_frames() const { return base_frames_; }
  uint64_t stream_seed() const { return stream_seed_; }

  // Current length of the growing (test-split) videos.
  long stream_length() const;

  // Grows every test-split video to exactly `target_frames` and stamps
  // `epoch`. Idempotent: a target at/below the current length only bumps
  // the epoch (monotone max), and re-applying any prefix of appends is a
  // no-op. Fails with InvalidArgument when the dataset is not streamable.
  common::Status GrowTo(long target_frames, uint64_t epoch);

  // Restores stream identity after a storage round-trip (LoadDataset) so
  // a reloaded dataset keeps growing deterministically from where the
  // saved one stopped.
  void RestoreStreamState(uint64_t seed, int base_frames, uint64_t epoch);

 private:
  DatasetProfile profile_;
  std::vector<Video> videos_;
  std::vector<int> train_, val_, test_;
  bool has_stream_seed_ = false;
  uint64_t stream_seed_ = 0;
  uint64_t frame_epoch_ = 0;
  int base_frames_ = 0;
};

}  // namespace zeus::video

#endif  // ZEUS_VIDEO_DATASET_H_
