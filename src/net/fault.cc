#include "net/fault.h"

#include <atomic>

namespace zeus::net {

namespace {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace

void FaultInjector::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  fired_ = 0;
}

bool FaultInjector::Match(FaultDirection direction, FrameType type,
                          const std::string& tag, FaultRule* fired) {
  std::lock_guard<std::mutex> lock(mu_);
  for (FaultRule& rule : rules_) {
    if (rule.times == 0) continue;
    if (rule.direction != FaultDirection::kAny && rule.direction != direction) {
      continue;
    }
    if (rule.match_type && rule.type != type) continue;
    if (!rule.tag_contains.empty() &&
        tag.find(rule.tag_contains) == std::string::npos) {
      continue;
    }
    if (rule.skip > 0) {
      --rule.skip;
      continue;
    }
    if (rule.times > 0) --rule.times;
    ++fired_;
    *fired = rule;
    return true;
  }
  return false;
}

long FaultInjector::fired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

void SetFaultInjector(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* GetFaultInjector() {
  return g_injector.load(std::memory_order_acquire);
}

}  // namespace zeus::net
