#include "net/wire.h"

#include <cstring>

#include "common/crc32.h"
#include "common/stringutil.h"

namespace zeus::net {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kPing: return "Ping";
    case FrameType::kExecute: return "Execute";
    case FrameType::kSubmit: return "Submit";
    case FrameType::kCancel: return "Cancel";
    case FrameType::kStats: return "Stats";
    case FrameType::kRegisterDataset: return "RegisterDataset";
    case FrameType::kTicketState: return "TicketState";
    case FrameType::kTicketWait: return "TicketWait";
    case FrameType::kRemoveDataset: return "RemoveDataset";
    case FrameType::kSyncPlans: return "SyncPlans";
    case FrameType::kEpochQuery: return "EpochQuery";
    case FrameType::kAppendFrames: return "AppendFrames";
    case FrameType::kSubscribe: return "Subscribe";
    case FrameType::kStreamPoll: return "StreamPoll";
    case FrameType::kUnsubscribe: return "Unsubscribe";
    case FrameType::kPong: return "Pong";
    case FrameType::kOk: return "Ok";
    case FrameType::kError: return "Error";
    case FrameType::kResult: return "Result";
    case FrameType::kStatsReply: return "StatsReply";
    case FrameType::kSubmitReply: return "SubmitReply";
    case FrameType::kTicketStateReply: return "TicketStateReply";
    case FrameType::kRegisterReply: return "RegisterReply";
    case FrameType::kSyncReply: return "SyncReply";
    case FrameType::kEpochReply: return "EpochReply";
    case FrameType::kAppendReply: return "AppendReply";
    case FrameType::kSubscribeReply: return "SubscribeReply";
    case FrameType::kStreamResult: return "StreamResult";
  }
  return "Unknown";
}

bool IsIdempotent(FrameType type) {
  switch (type) {
    case FrameType::kPing:
    case FrameType::kCancel:
    case FrameType::kStats:
    case FrameType::kRegisterDataset:
    case FrameType::kTicketState:
    case FrameType::kRemoveDataset:
    // Plan-catalog sync converges to the same catalog/epoch no matter how
    // many times it lands; the epoch probe is a pure read.
    case FrameType::kSyncPlans:
    case FrameType::kEpochQuery:
    // The stream set (wire.h): absolute-target appends, keyed subscribes,
    // cursor-addressed polls and unsubscribes all converge on replay.
    case FrameType::kAppendFrames:
    case FrameType::kSubscribe:
    case FrameType::kStreamPoll:
    case FrameType::kUnsubscribe:
      return true;
    default:
      return false;
  }
}

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

bool WireReader::Need(size_t n) {
  if (!ok_ || buf_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

bool WireReader::U8(uint8_t* v) {
  if (!Need(1)) return false;
  *v = static_cast<uint8_t>(buf_[pos_++]);
  return true;
}

bool WireReader::U32(uint32_t* v) {
  if (!Need(4)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool WireReader::U64(uint64_t* v) {
  if (!Need(8)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool WireReader::I32(int32_t* v) {
  uint32_t u = 0;
  if (!U32(&u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

bool WireReader::I64(int64_t* v) {
  uint64_t u = 0;
  if (!U64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool WireReader::F64(double* v) {
  uint64_t bits = 0;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool WireReader::Str(std::string* s) {
  uint32_t len = 0;
  if (!U32(&len)) return false;
  if (!Need(len)) return false;
  s->assign(buf_, pos_, len);
  pos_ += len;
  return true;
}

std::string EncodeFrame(const Frame& frame) {
  const uint32_t body_len = kFrameHeaderBytes +
                            static_cast<uint32_t>(frame.payload.size()) +
                            kFrameTrailerBytes;
  std::string out;
  out.reserve(4 + body_len);
  WireWriter w;
  w.U32(body_len);
  w.U8(kWireVersion);
  w.U8(static_cast<uint8_t>(frame.type));
  w.U64(frame.request_id);
  out = w.Take();
  out.append(frame.payload);
  const uint32_t crc = common::Crc32(0, out.data() + 4, out.size() - 4);
  WireWriter t;
  t.U32(crc);
  out.append(t.str());
  return out;
}

common::Status DecodeFrameBody(const std::string& body, Frame* out) {
  if (body.size() < kFrameHeaderBytes + kFrameTrailerBytes) {
    return common::Status::InvalidArgument("frame body too short");
  }
  const size_t crc_off = body.size() - kFrameTrailerBytes;
  WireReader crc_reader(body);
  // Read the stored crc from the tail manually.
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(static_cast<uint8_t>(body[crc_off + i]))
              << (8 * i);
  }
  if (common::Crc32(0, body.data(), crc_off) != stored) {
    return common::Status::InvalidArgument("frame crc32 mismatch");
  }
  WireReader r(body);
  uint8_t version = 0, type = 0;
  uint64_t request_id = 0;
  if (!r.U8(&version) || !r.U8(&type) || !r.U64(&request_id)) {
    return common::Status::InvalidArgument("frame header unreadable");
  }
  if (version != kWireVersion) {
    return common::Status::InvalidArgument(
        common::Format("unsupported wire version %d", version));
  }
  out->type = static_cast<FrameType>(type);
  out->request_id = request_id;
  out->payload.assign(body, kFrameHeaderBytes,
                      crc_off - kFrameHeaderBytes);
  return common::Status::Ok();
}

}  // namespace zeus::net
