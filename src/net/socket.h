#ifndef ZEUS_NET_SOCKET_H_
#define ZEUS_NET_SOCKET_H_

#include <string>

#include "common/status.h"

namespace zeus::net {

// Thin RAII wrappers over POSIX TCP sockets, with deadlines everywhere.
// Everything the cluster layer needs and nothing else: connect with a
// timeout, read/write-exactly-n with a deadline (poll()-driven, so a peer
// that stops mid-frame turns into a clean kUnavailable instead of a hung
// thread), and a listener whose Accept can be woken by closing the fd
// (how servers stop their accept loops).
//
// Deadline convention: milliseconds; <= 0 means wait forever.

class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { Close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  // Non-blocking connect + poll with `timeout_ms`; on success the socket is
  // blocking-mode with TCP_NODELAY set (the protocol is request/response —
  // Nagle only adds latency).
  common::Status Connect(const std::string& host, int port, int timeout_ms);

  // Writes exactly n bytes or fails. kUnavailable on timeout / peer reset.
  common::Status WriteAll(const void* data, size_t n, int deadline_ms);
  // Reads exactly n bytes or fails. kUnavailable on timeout / clean close
  // mid-read; a clean close before the FIRST byte reports kNotFound so
  // callers can tell "peer hung up between frames" from "peer died
  // mid-frame".
  common::Status ReadAll(void* data, size_t n, int deadline_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();
  // shutdown(2) both directions: unblocks any thread inside ReadAll /
  // WriteAll on this socket (how servers kick live connections on Stop).
  void Shutdown();

 private:
  int fd_ = -1;
};

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds and listens on host:port. port 0 picks an ephemeral port; the
  // bound port is readable via port() afterwards.
  common::Status Listen(const std::string& host, int port);

  // Blocks until a connection arrives or the listener is closed from
  // another thread (which surfaces as a non-OK status).
  common::Result<TcpSocket> Accept();

  int port() const { return port_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace zeus::net

#endif  // ZEUS_NET_SOCKET_H_
