#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "common/stringutil.h"

namespace zeus::net {

namespace {

using Clock = std::chrono::steady_clock;

// Remaining budget of a deadline started `deadline_ms` ago at `start`;
// -1 (poll's "infinite") when deadline_ms <= 0.
int RemainingMs(Clock::time_point start, int deadline_ms) {
  if (deadline_ms <= 0) return -1;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           Clock::now() - start)
                           .count();
  const long left = deadline_ms - static_cast<long>(elapsed);
  return left > 0 ? static_cast<int>(left) : 0;
}

common::Status Unavailable(const std::string& what) {
  return common::Status::Unavailable(what + ": " + ::strerror(errno));
}

bool SetBlocking(int fd, bool blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

bool ParseAddr(const std::string& host, int port, sockaddr_in* addr) {
  ::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  const std::string h = host.empty() ? "127.0.0.1" : host;
  return ::inet_pton(AF_INET, h.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

common::Status TcpSocket::Connect(const std::string& host, int port,
                                  int timeout_ms) {
  Close();
  sockaddr_in addr;
  if (!ParseAddr(host, port, &addr)) {
    return common::Status::InvalidArgument("bad address '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable("socket");
  if (!SetBlocking(fd, false)) {
    ::close(fd);
    return Unavailable("fcntl");
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return Unavailable(common::Format("connect %s:%d", host.c_str(), port));
  }
  if (rc != 0) {
    pollfd p{fd, POLLOUT, 0};
    rc = ::poll(&p, 1, timeout_ms > 0 ? timeout_ms : -1);
    if (rc <= 0) {
      ::close(fd);
      return common::Status::Unavailable(
          common::Format("connect %s:%d timed out", host.c_str(), port));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      errno = err;
      return Unavailable(common::Format("connect %s:%d", host.c_str(), port));
    }
  }
  if (!SetBlocking(fd, true)) {
    ::close(fd);
    return Unavailable("fcntl");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return common::Status::Ok();
}

common::Status TcpSocket::WriteAll(const void* data, size_t n,
                                   int deadline_ms) {
  if (fd_ < 0) return common::Status::Unavailable("socket closed");
  const auto start = Clock::now();
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < n) {
    pollfd pfd{fd_, POLLOUT, 0};
    const int remaining = RemainingMs(start, deadline_ms);
    if (deadline_ms > 0 && remaining == 0) {
      return common::Status::Unavailable("write deadline exceeded");
    }
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc == 0) return common::Status::Unavailable("write deadline exceeded");
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Unavailable("poll");
    }
    // MSG_NOSIGNAL: a peer that died must surface as EPIPE, not SIGPIPE.
    const ssize_t w = ::send(fd_, p + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Unavailable("send");
    }
    done += static_cast<size_t>(w);
  }
  return common::Status::Ok();
}

common::Status TcpSocket::ReadAll(void* data, size_t n, int deadline_ms) {
  if (fd_ < 0) return common::Status::Unavailable("socket closed");
  const auto start = Clock::now();
  char* p = static_cast<char*>(data);
  size_t done = 0;
  while (done < n) {
    pollfd pfd{fd_, POLLIN, 0};
    const int remaining = RemainingMs(start, deadline_ms);
    if (deadline_ms > 0 && remaining == 0) {
      return common::Status::Unavailable("read deadline exceeded");
    }
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc == 0) return common::Status::Unavailable("read deadline exceeded");
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Unavailable("poll");
    }
    const ssize_t r = ::recv(fd_, p + done, n - done, 0);
    if (r == 0) {
      // Clean close. Between frames (nothing read yet) this is the normal
      // way a peer ends a connection; mid-frame it means the peer died.
      return done == 0 ? common::Status::NotFound("connection closed")
                       : common::Status::Unavailable("peer closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Unavailable("recv");
    }
    done += static_cast<size_t>(r);
  }
  return common::Status::Ok();
}

common::Status TcpListener::Listen(const std::string& host, int port) {
  Close();
  sockaddr_in addr;
  if (!ParseAddr(host, port, &addr)) {
    return common::Status::InvalidArgument("bad address '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Unavailable(common::Format("bind %s:%d", host.c_str(), port));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Unavailable("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Unavailable("getsockname");
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return common::Status::Ok();
}

common::Result<TcpSocket> TcpListener::Accept() {
  // Snapshot the fd: Close() from another thread is the documented way to
  // stop an accept loop.
  const int fd = fd_;
  if (fd < 0) return common::Status::Unavailable("listener closed");
  const int conn = ::accept(fd, nullptr, nullptr);
  if (conn < 0) {
    if (fd_ < 0) return common::Status::Unavailable("listener closed");
    return Unavailable("accept");
  }
  int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpSocket(conn);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    const int fd = fd_;
    fd_ = -1;
    // shutdown() first so a blocked accept() returns even on Linux where
    // close() alone does not reliably wake it.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace zeus::net
