#include "net/frame_conn.h"

#include <chrono>
#include <thread>

#include "common/stringutil.h"

namespace zeus::net {

bool FrameConn::Inject(FaultDirection direction, FrameType type,
                       FaultRule* fired) {
  FaultInjector* injector = GetFaultInjector();
  if (injector == nullptr) return false;
  return injector->Match(direction, type, tag_, fired);
}

common::Status FrameConn::WriteFrame(const Frame& frame, int deadline_ms) {
  std::string bytes = EncodeFrame(frame);
  FaultRule fired;
  if (Inject(FaultDirection::kSend, frame.type, &fired)) {
    switch (fired.action) {
      case FaultAction::kDrop:
        // The sender believes the frame went out; the peer never sees it.
        return common::Status::Ok();
      case FaultAction::kDelayMs:
        std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
        break;
      case FaultAction::kClose:
        Shutdown();
        Close();
        return common::Status::Unavailable("connection closed (injected)");
      case FaultAction::kCorrupt:
        // Flip a byte inside the crc-covered region; the peer must reject
        // the frame as corrupt, never act on it.
        bytes[4 + kFrameHeaderBytes / 2] ^= 0x40;
        break;
    }
  }
  common::Status st = socket_.WriteAll(bytes.data(), bytes.size(), deadline_ms);
  if (!st.ok()) Close();
  return st;
}

common::Status FrameConn::ReadFrame(Frame* out, int deadline_ms) {
  uint8_t len_bytes[4];
  common::Status st = socket_.ReadAll(len_bytes, 4, deadline_ms);
  if (!st.ok()) {
    // kNotFound (clean close between frames) passes through untouched.
    if (st.code() != common::StatusCode::kNotFound) Close();
    return st;
  }
  uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i) {
    body_len |= static_cast<uint32_t>(len_bytes[i]) << (8 * i);
  }
  return ReadFrameBody(body_len, out, deadline_ms);
}

common::Status FrameConn::ReadFrameBody(uint32_t body_len, Frame* out,
                                        int deadline_ms) {
  if (body_len < kFrameHeaderBytes + kFrameTrailerBytes ||
      body_len > kMaxFrameBytes) {
    Close();
    return common::Status::Unavailable(
        common::Format("bad frame length %u", body_len));
  }
  std::string body(body_len, '\0');
  common::Status st = socket_.ReadAll(body.data(), body.size(), deadline_ms);
  if (!st.ok()) {
    Close();
    // A close mid-frame is a transport loss whatever ReadAll called it.
    return common::Status::Unavailable("frame truncated: " + st.message());
  }

  // The frame type is byte 1 of the body; peek it so recv-side fault rules
  // can match by type before the frame is acted on.
  const FrameType peeked = static_cast<FrameType>(body[1]);
  FaultRule fired;
  if (Inject(FaultDirection::kRecv, peeked, &fired)) {
    switch (fired.action) {
      case FaultAction::kDrop:
        // Pretend the frame never arrived; keep reading. The deadline is
        // NOT restarted — a dropped reply still times the caller out.
        return ReadFrame(out, deadline_ms);
      case FaultAction::kDelayMs:
        std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
        break;
      case FaultAction::kClose:
        Shutdown();
        Close();
        return common::Status::Unavailable("connection closed (injected)");
      case FaultAction::kCorrupt:
        body[kFrameHeaderBytes / 2] ^= 0x40;
        break;
    }
  }

  st = DecodeFrameBody(body, out);
  if (!st.ok()) {
    // Framing integrity is gone (crc mismatch / bad header): nothing after
    // this point on the stream can be trusted, so the connection dies.
    Close();
    return common::Status::Unavailable("corrupt frame: " + st.message());
  }
  return common::Status::Ok();
}

}  // namespace zeus::net
