#ifndef ZEUS_NET_FAULT_H_
#define ZEUS_NET_FAULT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/wire.h"

namespace zeus::net {

// Deterministic fault-injection seam for the cluster transport. Robustness
// claims in this repo are proven by tests, not asserted in comments — and
// network failures are the hardest to provoke organically, so the transport
// itself carries the hook: FrameConn consults the process-global injector
// (when one is installed) on every frame it sends or receives, and an
// armed rule turns that frame into a drop, a delay, a connection close or
// a corruption. Rules match deterministically (frame type, direction,
// connection tag, skip-the-first-k counter) — no randomness, so a failing
// scenario replays exactly.
//
// Cost when unused: one relaxed atomic load per frame (the injector
// pointer), nothing else. Production builds simply never install one.

enum class FaultDirection : uint8_t {
  kSend,
  kRecv,
  kAny,
};

enum class FaultAction : uint8_t {
  kDrop,     // swallow the frame; sender believes it was sent / receiver
             // keeps waiting for the next one
  kDelayMs,  // sleep `delay_ms` before the frame proceeds (slow peer)
  kClose,    // shut the connection down instead of transferring the frame
  kCorrupt,  // flip bits in the encoded bytes (send) / decoded-from bytes
             // (recv) so the crc check rejects the frame
};

struct FaultRule {
  FaultAction action = FaultAction::kDrop;
  FaultDirection direction = FaultDirection::kAny;
  // Match only this frame type; unset (default) matches every type.
  bool match_type = false;
  FrameType type = FrameType::kPing;
  // Match only connections whose tag contains this substring ("" = all).
  // Servers tag their conns "server", clients "client", the router
  // "router" — so a test can fault exactly one side of one hop.
  std::string tag_contains;
  // Skip the first `skip` matching frames before arming (0 = arm now).
  int skip = 0;
  // Fire at most this many times; < 0 = unlimited.
  int times = 1;
  int delay_ms = 0;
};

class FaultInjector {
 public:
  void AddRule(FaultRule rule);
  void Clear();

  // First armed rule matching (direction, type, tag), consuming one firing
  // of it; kDelayMs sleeping happens in the caller (FrameConn), not here,
  // so the injector's lock is never held across a sleep. Returns false when
  // nothing matches.
  bool Match(FaultDirection direction, FrameType type, const std::string& tag,
             FaultRule* fired);

  // Total firings since construction / last Clear (test assertions).
  long fired_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<FaultRule> rules_;
  long fired_ = 0;
};

// Process-global injector the transport consults. Tests install one around
// a scenario and MUST uninstall (set nullptr) before tearing the scenario
// down. Not owned; the caller keeps the injector alive while installed.
void SetFaultInjector(FaultInjector* injector);
FaultInjector* GetFaultInjector();

}  // namespace zeus::net

#endif  // ZEUS_NET_FAULT_H_
