#ifndef ZEUS_NET_WIRE_H_
#define ZEUS_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace zeus::net {

// Length-prefixed binary framing for the cluster transport. One frame on
// the wire is:
//
//   u32  body_len            (little-endian; bytes that follow this field)
//   u8   version             (kWireVersion)
//   u8   type                (FrameType)
//   u64  request_id          (caller-chosen correlation id, echoed back)
//   ...  payload             (body_len - 18 bytes, format per FrameType —
//                             see cluster/protocol.h)
//   u32  crc32               (over version..payload, the PlanIo/RocksDB
//                             IEEE polynomial from common/crc32.h)
//
// The crc trailer makes partial writes self-invalidating: a sender that
// dies (or is killed) mid-frame leaves bytes the receiver rejects as
// corrupt instead of half-executing, which is what makes "a write error
// means the request was NOT executed" a safe retry rule for the client
// (cluster/remote_shard.h). Every integer is little-endian, packed
// byte-by-byte — no struct punning, no host-order dependence.
inline constexpr uint8_t kWireVersion = 1;
// version + type + request_id.
inline constexpr uint32_t kFrameHeaderBytes = 1 + 1 + 8;
inline constexpr uint32_t kFrameTrailerBytes = 4;  // crc32
// Hard bound on body_len: anything larger is garbage (or an HTTP request
// that strayed onto the binary port) and is rejected before allocation.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

// Frame types. Requests < 32, responses >= 32. The request set is exactly
// the cluster surface: query submission/execution/cancellation, health +
// stats, dataset registration (which doubles as the plan-catalog handoff
// trigger on re-home), ticket follow-ups for the async surface, and the
// replication maintenance pair (plan-catalog sync + epoch probe).
enum class FrameType : uint8_t {
  // Requests.
  kPing = 1,
  kExecute = 2,          // ExecRequest -> kResult | kError
  kSubmit = 3,           // ExecRequest -> kSubmitReply | kError
  kCancel = 4,           // u64 ticket id -> kOk | kError
  kStats = 5,            // (empty) -> kStatsReply
  kRegisterDataset = 6,  // DatasetSpec -> kRegisterReply | kError
  kTicketState = 7,      // u64 ticket id -> kTicketStateReply | kError
  kTicketWait = 8,       // u64 ticket id -> kResult | kError
  kRemoveDataset = 9,    // string name -> kOk | kError
  kSyncPlans = 10,       // SyncPlansRequest -> kSyncReply | kError
  kEpochQuery = 11,      // string name -> kEpochReply
  // Live streams (append-mode ingestion + standing queries).
  kAppendFrames = 12,    // AppendFramesRequest -> kAppendReply | kError
  kSubscribe = 13,       // SubscribeRequest -> kSubscribeReply | kError
  kStreamPoll = 14,      // StreamPollRequest -> kStreamResult | kError
  kUnsubscribe = 15,     // u64 sub id -> kOk | kError

  // Responses.
  kPong = 32,
  kOk = 33,
  kError = 34,  // u8 StatusCode + string message
  kResult = 35,
  kStatsReply = 36,
  kSubmitReply = 37,
  kTicketStateReply = 38,
  kRegisterReply = 39,
  kSyncReply = 40,
  kEpochReply = 41,
  kAppendReply = 42,
  kSubscribeReply = 43,
  kStreamResult = 44,
};

const char* FrameTypeName(FrameType type);

// True for request frames that are safe to send twice: re-executing them
// cannot change the outcome (registration is keyed and deterministic,
// cancel/stats/state are reads or at-least-once by design). kExecute,
// kSubmit and kTicketWait are NOT here — once fully written, re-sending
// could run a query twice (or double-register a wait) — so the client only
// retries them while it can prove the server never saw a complete frame.
// The stream set is idempotent by construction: kAppendFrames carries an
// ABSOLUTE target length + epoch (a replay grows nothing), kSubscribe a
// client-chosen subscription id (a replay re-attaches to the existing
// subscription), kStreamPoll an explicit after_seq cursor (a replay
// re-reads, never consumes), and kUnsubscribe of a gone id is kOk.
bool IsIdempotent(FrameType type);

struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  std::string payload;
};

// ---- Payload builders / readers -------------------------------------------

// Append-only little-endian payload builder.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  // IEEE-754 bits through a u64 (bit-exact round trip).
  void F64(double v);
  // u32 length + raw bytes.
  void Str(const std::string& s);

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Bounds-checked reader over a payload. Every getter returns false (and
// poisons the reader) instead of reading past the end, so decoders degrade
// to "reject frame", never to UB — the property tests in tests/net_test.cc
// feed this truncations of every length.
class WireReader {
 public:
  explicit WireReader(const std::string& buf) : buf_(buf) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I32(int32_t* v);
  bool I64(int64_t* v);
  bool F64(double* v);
  // Rejects lengths that overrun the buffer before allocating.
  bool Str(std::string* s);

  bool ok() const { return ok_; }
  // True when every byte was consumed — decoders use it to reject frames
  // with trailing junk.
  bool AtEnd() const { return ok_ && pos_ == buf_.size(); }
  // Unconsumed bytes — decoders bound length-prefixed collections with it
  // before allocating, so a lying count can never drive an allocation.
  size_t remaining() const { return pos_ < buf_.size() ? buf_.size() - pos_ : 0; }

 private:
  bool Need(size_t n);

  const std::string& buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Frame <-> bytes -------------------------------------------------------

// Serializes the whole frame, length prefix and crc trailer included.
std::string EncodeFrame(const Frame& frame);

// Parses the body of a frame (everything after the length prefix) whose
// declared length was `body`. Validates version, minimum size and crc.
common::Status DecodeFrameBody(const std::string& body, Frame* out);

}  // namespace zeus::net

#endif  // ZEUS_NET_WIRE_H_
