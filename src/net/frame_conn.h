#ifndef ZEUS_NET_FRAME_CONN_H_
#define ZEUS_NET_FRAME_CONN_H_

#include <string>
#include <utility>

#include "net/fault.h"
#include "net/socket.h"
#include "net/wire.h"

namespace zeus::net {

// One framed connection: a TcpSocket plus the encode/decode + integrity
// discipline of wire.h, plus the fault-injection seam. All transport
// errors — timeout, reset, crc mismatch, oversized frame — come back as
// kUnavailable so callers have exactly one "transient, retry or surface"
// code to handle; a clean peer close between frames is kNotFound.
class FrameConn {
 public:
  FrameConn() = default;
  explicit FrameConn(TcpSocket socket, std::string tag = "")
      : socket_(std::move(socket)), tag_(std::move(tag)) {}

  common::Status WriteFrame(const Frame& frame, int deadline_ms);
  common::Status ReadFrame(Frame* out, int deadline_ms);
  // Continuation of ReadFrame for callers that already consumed the 4-byte
  // length prefix themselves (the router sniffs "GET " for /metrics before
  // deciding the connection speaks HTTP or frames).
  common::Status ReadFrameBody(uint32_t body_len, Frame* out, int deadline_ms);

  bool valid() const { return socket_.valid(); }
  TcpSocket& socket() { return socket_; }
  const std::string& tag() const { return tag_; }
  void Close() { socket_.Close(); }
  void Shutdown() { socket_.Shutdown(); }

 private:
  // Applies an armed fault rule for (direction, type). Returns the action
  // to take: proceed normally, pretend-success (drop on send), or an error
  // status (close / corrupt handled by the caller via `mutate`).
  bool Inject(FaultDirection direction, FrameType type, FaultRule* fired);

  TcpSocket socket_;
  std::string tag_;
};

}  // namespace zeus::net

#endif  // ZEUS_NET_FRAME_CONN_H_
