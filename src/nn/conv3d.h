#ifndef ZEUS_NN_CONV3D_H_
#define ZEUS_NN_CONV3D_H_

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace zeus::nn {

// 3-D convolution over {N, C, L, H, W} inputs — the spatio-temporal building
// block of R3D (Fig. 3 of the paper). By default lowered onto the blocked
// SGEMM kernel via vol2col packing (tensor/gemm.h, nn/im2col.h); the seed's
// direct loop nest survives as ComputePath::kReference for parity testing.
class Conv3d : public Layer {
 public:
  struct Options {
    std::array<int, 3> kernel = {3, 3, 3};   // {kt, kh, kw}
    std::array<int, 3> stride = {1, 1, 1};   // {st, sh, sw}
    std::array<int, 3> padding = {1, 1, 1};  // {pt, ph, pw}
    // Keep the vol2col panels from the training-mode forward pass and reuse
    // them in Backward instead of re-lowering the cached input (one repack
    // saved per training step). Costs one {N, Ci*kt*kh*kw, lo*ho*wo} buffer
    // while gradients are pending; gradients are bit-identical either way.
    bool cache_lowering = true;
  };

  Conv3d(int in_channels, int out_channels, const Options& opts,
         common::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Conv3d"; }

  // Output spatial size for one dimension.
  static int OutDim(int in, int kernel, int stride, int padding) {
    return (in + 2 * padding - kernel) / stride + 1;
  }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  const Options& options() const { return opts_; }

 private:
  // vol2col + GEMM lowering (ComputePath::kGemm, the default).
  tensor::Tensor ForwardGemm(const tensor::Tensor& input, bool train);
  tensor::Tensor BackwardGemm(const tensor::Tensor& grad_output);
  // The seed's direct loop nest (ComputePath::kReference), kept as the
  // parity oracle for tests. Note: accumulates in double.
  tensor::Tensor ForwardReference(const tensor::Tensor& input);
  tensor::Tensor BackwardReference(const tensor::Tensor& grad_output);

  int in_channels_;
  int out_channels_;
  Options opts_;
  Parameter weight_;  // {out, in, kt, kh, kw}
  Parameter bias_;    // {out}
  tensor::Tensor cached_input_;
  // vol2col panels of cached_input_ ({n, kdim, spatial}); empty when the
  // last training-mode forward did not lower (reference path or
  // cache_lowering off).
  tensor::Tensor cached_cols_;
};

}  // namespace zeus::nn

#endif  // ZEUS_NN_CONV3D_H_
