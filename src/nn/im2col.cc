#include "nn/im2col.h"

#include <cstring>

namespace zeus::nn {

void Im2Col(const float* x, int c, int h, int w, int kh, int kw, int sh,
            int sw, int ph, int pw, int ho, int wo, float* col) {
  float* dst = col;
  for (int ic = 0; ic < c; ++ic) {
    const float* plane = x + static_cast<size_t>(ic) * h * w;
    for (int dh = 0; dh < kh; ++dh) {
      for (int dw = 0; dw < kw; ++dw) {
        for (int oh = 0; oh < ho; ++oh) {
          const int hh = oh * sh - ph + dh;
          if (hh < 0 || hh >= h) {
            std::memset(dst, 0, sizeof(float) * wo);
            dst += wo;
            continue;
          }
          const float* row = plane + static_cast<size_t>(hh) * w;
          const int w0 = -pw + dw;
          if (sw == 1 && w0 >= 0 && w0 + wo <= w) {
            std::memcpy(dst, row + w0, sizeof(float) * wo);
            dst += wo;
            continue;
          }
          for (int ow = 0; ow < wo; ++ow) {
            const int ww = w0 + ow * sw;
            *dst++ = (ww < 0 || ww >= w) ? 0.0f : row[ww];
          }
        }
      }
    }
  }
}

void Col2ImAdd(const float* col, int c, int h, int w, int kh, int kw, int sh,
               int sw, int ph, int pw, int ho, int wo, float* dx) {
  const float* src = col;
  for (int ic = 0; ic < c; ++ic) {
    float* plane = dx + static_cast<size_t>(ic) * h * w;
    for (int dh = 0; dh < kh; ++dh) {
      for (int dw = 0; dw < kw; ++dw) {
        for (int oh = 0; oh < ho; ++oh) {
          const int hh = oh * sh - ph + dh;
          if (hh < 0 || hh >= h) {
            src += wo;
            continue;
          }
          float* row = plane + static_cast<size_t>(hh) * w;
          for (int ow = 0; ow < wo; ++ow) {
            const int ww = ow * sw - pw + dw;
            if (ww >= 0 && ww < w) row[ww] += src[ow];
          }
          src += wo;
        }
      }
    }
  }
}

void Vol2Col(const float* x, int c, int l, int h, int w, int kt, int kh,
             int kw, int st, int sh, int sw, int pt, int ph, int pw, int lo,
             int ho, int wo, float* col) {
  float* dst = col;
  for (int ic = 0; ic < c; ++ic) {
    const float* vol = x + static_cast<size_t>(ic) * l * h * w;
    for (int dt = 0; dt < kt; ++dt) {
      for (int dh = 0; dh < kh; ++dh) {
        for (int dw = 0; dw < kw; ++dw) {
          for (int ot = 0; ot < lo; ++ot) {
            const int tt = ot * st - pt + dt;
            if (tt < 0 || tt >= l) {
              std::memset(dst, 0, sizeof(float) * ho * wo);
              dst += static_cast<size_t>(ho) * wo;
              continue;
            }
            const float* frame = vol + static_cast<size_t>(tt) * h * w;
            for (int oh = 0; oh < ho; ++oh) {
              const int hh = oh * sh - ph + dh;
              if (hh < 0 || hh >= h) {
                std::memset(dst, 0, sizeof(float) * wo);
                dst += wo;
                continue;
              }
              const float* row = frame + static_cast<size_t>(hh) * w;
              const int w0 = -pw + dw;
              if (sw == 1 && w0 >= 0 && w0 + wo <= w) {
                std::memcpy(dst, row + w0, sizeof(float) * wo);
                dst += wo;
                continue;
              }
              for (int ow = 0; ow < wo; ++ow) {
                const int ww = w0 + ow * sw;
                *dst++ = (ww < 0 || ww >= w) ? 0.0f : row[ww];
              }
            }
          }
        }
      }
    }
  }
}

void Col2VolAdd(const float* col, int c, int l, int h, int w, int kt, int kh,
                int kw, int st, int sh, int sw, int pt, int ph, int pw,
                int lo, int ho, int wo, float* dx) {
  const float* src = col;
  for (int ic = 0; ic < c; ++ic) {
    float* vol = dx + static_cast<size_t>(ic) * l * h * w;
    for (int dt = 0; dt < kt; ++dt) {
      for (int dh = 0; dh < kh; ++dh) {
        for (int dw = 0; dw < kw; ++dw) {
          for (int ot = 0; ot < lo; ++ot) {
            const int tt = ot * st - pt + dt;
            if (tt < 0 || tt >= l) {
              src += static_cast<size_t>(ho) * wo;
              continue;
            }
            float* frame = vol + static_cast<size_t>(tt) * h * w;
            for (int oh = 0; oh < ho; ++oh) {
              const int hh = oh * sh - ph + dh;
              if (hh < 0 || hh >= h) {
                src += wo;
                continue;
              }
              float* row = frame + static_cast<size_t>(hh) * w;
              for (int ow = 0; ow < wo; ++ow) {
                const int ww = ow * sw - pw + dw;
                if (ww >= 0 && ww < w) row[ww] += src[ow];
              }
              src += wo;
            }
          }
        }
      }
    }
  }
}

}  // namespace zeus::nn
