#ifndef ZEUS_NN_POOLING_H_
#define ZEUS_NN_POOLING_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace zeus::nn {

// Global average pooling over all trailing spatial/temporal dims:
//   {N, C, ...} -> {N, C}
// This is the "adaptive average pooling to 1x1x1" step of R3D (Fig. 3b).
class GlobalAvgPool : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string Name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<int> cached_shape_;
};

// 2x2(x2) max pooling with stride = kernel, for 2-D ({N,C,H,W}) inputs.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int kernel = 2) : kernel_(kernel) {}

  tensor::Tensor Forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string Name() const override { return "MaxPool2d"; }

 private:
  int kernel_;
  std::vector<int> cached_shape_;
  std::vector<int> argmax_;  // flat input index of each output element
};

}  // namespace zeus::nn

#endif  // ZEUS_NN_POOLING_H_
