#include "nn/sequential.h"

#include "tensor/serialize.h"

namespace zeus::nn {

tensor::Tensor Sequential::Forward(const tensor::Tensor& input, bool train) {
  tensor::Tensor x = input;
  for (auto& layer : layers_) x = layer->Forward(x, train);
  return x;
}

tensor::Tensor Sequential::Backward(const tensor::Tensor& grad_output) {
  tensor::Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    auto ps = layer->Parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

tensor::Tensor Sequential::ForwardPrefix(const tensor::Tensor& input, size_t k,
                                         bool train) {
  ZEUS_CHECK(k <= layers_.size());
  tensor::Tensor x = input;
  for (size_t i = 0; i < k; ++i) x = layers_[i]->Forward(x, train);
  return x;
}

tensor::Tensor Sequential::ForwardSuffix(const tensor::Tensor& input, size_t k,
                                         bool train) {
  ZEUS_CHECK(k <= layers_.size());
  tensor::Tensor x = input;
  for (size_t i = k; i < layers_.size(); ++i) x = layers_[i]->Forward(x, train);
  return x;
}

common::Status Sequential::SaveWeights(const std::string& path) {
  std::vector<tensor::Tensor> weights;
  for (Parameter* p : Parameters()) weights.push_back(p->value);
  return tensor::SaveTensors(path, weights);
}

common::Status Sequential::LoadWeights(const std::string& path) {
  auto loaded = tensor::LoadTensors(path);
  if (!loaded.ok()) return loaded.status();
  auto params = Parameters();
  const auto& weights = loaded.value();
  if (weights.size() != params.size()) {
    return common::Status::InvalidArgument(
        "checkpoint has " + std::to_string(weights.size()) +
        " tensors, network expects " + std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (weights[i].shape() != params[i]->value.shape()) {
      return common::Status::InvalidArgument("checkpoint tensor " +
                                             std::to_string(i) +
                                             " has mismatched shape");
    }
    params[i]->value = weights[i];
  }
  return common::Status::Ok();
}

common::Status Sequential::CopyWeightsFrom(Sequential& other) {
  auto dst = Parameters();
  auto src = other.Parameters();
  if (dst.size() != src.size()) {
    return common::Status::InvalidArgument("parameter count mismatch");
  }
  for (size_t i = 0; i < dst.size(); ++i) {
    if (dst[i]->value.shape() != src[i]->value.shape()) {
      return common::Status::InvalidArgument("parameter shape mismatch");
    }
    dst[i]->value = src[i]->value;
  }
  return common::Status::Ok();
}

}  // namespace zeus::nn
