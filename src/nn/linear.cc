#include "nn/linear.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace zeus::nn {

Linear::Linear(int in_features, int out_features, common::Rng* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}) {
  // Kaiming-uniform fan-in init, as in torch.nn.Linear.
  float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  tensor::FillUniform(&weight_.value, rng, bound);
  tensor::FillUniform(&bias_.value, rng, bound);
}

tensor::Tensor Linear::Forward(const tensor::Tensor& input, bool train) {
  ZEUS_CHECK(input.ndim() == 2 && input.dim(1) == in_features_);
  if (train) cached_input_ = input;
  // y = x @ W^T + b, on this layer's compute context. kInt8 is an
  // inference-only path: training forwards downgrade to fp32 so backward
  // differentiates the activations that produced the loss.
  tensor::ComputeContext ctx = compute_context();
  if (train && ctx.path == tensor::ComputePath::kInt8) {
    ctx.path = tensor::ComputePath::kGemm;
  }
  tensor::Tensor y = tensor::MatMulTransposedB(input, weight_.value, &ctx);
  int n = y.dim(0);
  for (int i = 0; i < n; ++i) {
    float* row = y.data() + static_cast<size_t>(i) * out_features_;
    for (int j = 0; j < out_features_; ++j) row[j] += bias_.value[j];
  }
  return y;
}

tensor::Tensor Linear::Backward(const tensor::Tensor& grad_output) {
  ZEUS_CHECK(grad_output.ndim() == 2 && grad_output.dim(1) == out_features_);
  ZEUS_CHECK(!cached_input_.empty());
  // dW += dy^T @ x ; db += sum over rows of dy ; dx = dy @ W
  // Gradients are never quantized: downgrade kInt8 to the fp32 GEMM path.
  tensor::ComputeContext ctx = compute_context();
  if (ctx.path == tensor::ComputePath::kInt8) {
    ctx.path = tensor::ComputePath::kGemm;
  }
  tensor::Tensor dw =
      tensor::MatMulTransposedA(grad_output, cached_input_, &ctx);
  weight_.grad.Add(dw);
  int n = grad_output.dim(0);
  for (int i = 0; i < n; ++i) {
    const float* row = grad_output.data() + static_cast<size_t>(i) * out_features_;
    for (int j = 0; j < out_features_; ++j) bias_.grad[j] += row[j];
  }
  return tensor::MatMul(grad_output, weight_.value, &ctx);
}

}  // namespace zeus::nn
