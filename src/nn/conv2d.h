#ifndef ZEUS_NN_CONV2D_H_
#define ZEUS_NN_CONV2D_H_

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace zeus::nn {

// 2-D convolution over {N, C, H, W} inputs. Used by the Frame-PP baseline's
// per-frame classifier (2D ResNet analogue in the paper).
class Conv2d : public Layer {
 public:
  struct Options {
    std::array<int, 2> kernel = {3, 3};
    std::array<int, 2> stride = {1, 1};
    std::array<int, 2> padding = {1, 1};
    // Keep the im2col panels from the training-mode forward pass and reuse
    // them in Backward instead of re-lowering the cached input (one repack
    // saved per training step). Costs one {N, Ci*kh*kw, ho*wo} buffer while
    // gradients are pending; gradients are bit-identical either way (the
    // panels are a pure function of the cached input).
    bool cache_lowering = true;
  };

  Conv2d(int in_channels, int out_channels, const Options& opts,
         common::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Conv2d"; }

  static int OutDim(int in, int kernel, int stride, int padding) {
    return (in + 2 * padding - kernel) / stride + 1;
  }

 private:
  // im2col + GEMM lowering (ComputePath::kGemm, the default).
  tensor::Tensor ForwardGemm(const tensor::Tensor& input, bool train);
  tensor::Tensor BackwardGemm(const tensor::Tensor& grad_output);
  // The seed's direct loop nest (ComputePath::kReference), kept as the
  // parity oracle for tests. Note: accumulates in double.
  tensor::Tensor ForwardReference(const tensor::Tensor& input);
  tensor::Tensor BackwardReference(const tensor::Tensor& grad_output);

  int in_channels_;
  int out_channels_;
  Options opts_;
  Parameter weight_;  // {out, in, kh, kw}
  Parameter bias_;    // {out}
  tensor::Tensor cached_input_;
  // im2col panels of cached_input_ ({n, kdim, spatial}); empty when the
  // last training-mode forward did not lower (reference path or
  // cache_lowering off).
  tensor::Tensor cached_cols_;
};

}  // namespace zeus::nn

#endif  // ZEUS_NN_CONV2D_H_
