#ifndef ZEUS_NN_IM2COL_H_
#define ZEUS_NN_IM2COL_H_

// Patch-packing routines that lower convolution onto GEMM (tensor/gemm.h).
//
// A {C, H, W} image becomes a {C*kh*kw, ho*wo} column matrix: row index
// (c*kh + dh)*kw + dw, column index oh*wo + ow — exactly the flat layout of
// a {Co, C, kh, kw} weight tensor viewed as {Co, C*kh*kw}, so
//   Y {Co, ho*wo} = W_mat @ col.
// Vol2Col is the {C, L, H, W} analogue with rows (((c*kt + dt)*kh + dh)*kw
// + dw) and columns (ot*ho + oh)*wo + ow. Out-of-bounds taps (padding) pack
// as zeros. Col2ImAdd / Col2VolAdd scatter-add a column-matrix gradient
// back into image layout for the backward pass.
//
// All routines take raw row-major buffers; callers own shape validation.

namespace zeus::nn {

void Im2Col(const float* x, int c, int h, int w, int kh, int kw, int sh,
            int sw, int ph, int pw, int ho, int wo, float* col);

void Col2ImAdd(const float* col, int c, int h, int w, int kh, int kw, int sh,
               int sw, int ph, int pw, int ho, int wo, float* dx);

void Vol2Col(const float* x, int c, int l, int h, int w, int kt, int kh,
             int kw, int st, int sh, int sw, int pt, int ph, int pw, int lo,
             int ho, int wo, float* col);

void Col2VolAdd(const float* col, int c, int l, int h, int w, int kt, int kh,
                int kw, int st, int sh, int sw, int pt, int ph, int pw,
                int lo, int ho, int wo, float* dx);

}  // namespace zeus::nn

#endif  // ZEUS_NN_IM2COL_H_
