#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>

namespace zeus::nn {

namespace {

float RelError(float analytic, float numeric) {
  float denom = std::max({std::abs(analytic), std::abs(numeric), 1e-4f});
  return std::abs(analytic - numeric) / denom;
}

}  // namespace

GradCheckResult CheckInputGradient(
    Layer* layer, const tensor::Tensor& input,
    const std::function<float(const tensor::Tensor&)>& loss_of_output,
    const std::function<tensor::Tensor(const tensor::Tensor&)>& grad_of_output,
    int max_coords, float epsilon) {
  // Analytic gradient.
  ZeroGrads(layer->Parameters());
  tensor::Tensor out = layer->Forward(input, /*train=*/true);
  tensor::Tensor analytic = layer->Backward(grad_of_output(out));

  GradCheckResult result;
  size_t stride = std::max<size_t>(1, input.size() / static_cast<size_t>(max_coords));
  for (size_t i = 0; i < input.size(); i += stride) {
    tensor::Tensor plus = input;
    tensor::Tensor minus = input;
    plus[i] += epsilon;
    minus[i] -= epsilon;
    float lp = loss_of_output(layer->Forward(plus, false));
    float lm = loss_of_output(layer->Forward(minus, false));
    float numeric = (lp - lm) / (2.0f * epsilon);
    result.max_rel_error =
        std::max(result.max_rel_error, RelError(analytic[i], numeric));
    ++result.checked;
  }
  return result;
}

GradCheckResult CheckParameterGradient(
    Layer* layer, const tensor::Tensor& input,
    const std::function<float(const tensor::Tensor&)>& loss_of_output,
    const std::function<tensor::Tensor(const tensor::Tensor&)>& grad_of_output,
    int max_coords, float epsilon) {
  auto params = layer->Parameters();
  ZeroGrads(params);
  tensor::Tensor out = layer->Forward(input, /*train=*/true);
  layer->Backward(grad_of_output(out));

  GradCheckResult result;
  for (Parameter* p : params) {
    size_t stride =
        std::max<size_t>(1, p->value.size() / static_cast<size_t>(max_coords));
    for (size_t i = 0; i < p->value.size(); i += stride) {
      float saved = p->value[i];
      p->value[i] = saved + epsilon;
      float lp = loss_of_output(layer->Forward(input, false));
      p->value[i] = saved - epsilon;
      float lm = loss_of_output(layer->Forward(input, false));
      p->value[i] = saved;
      float numeric = (lp - lm) / (2.0f * epsilon);
      result.max_rel_error =
          std::max(result.max_rel_error, RelError(p->grad[i], numeric));
      ++result.checked;
    }
  }
  return result;
}

}  // namespace zeus::nn
