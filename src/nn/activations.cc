#include "nn/activations.h"

#include <cmath>

namespace zeus::nn {

tensor::Tensor ReLU::Forward(const tensor::Tensor& input, bool train) {
  tensor::Tensor out = input;
  if (train) mask_.assign(input.size(), 0);
  float* y = out.data();
  for (size_t i = 0; i < out.size(); ++i) {
    if (y[i] > 0.0f) {
      if (train) mask_[i] = 1;
    } else {
      y[i] = 0.0f;
    }
  }
  return out;
}

tensor::Tensor ReLU::Backward(const tensor::Tensor& grad_output) {
  ZEUS_CHECK(mask_.size() == grad_output.size());
  tensor::Tensor grad_input = grad_output;
  float* dx = grad_input.data();
  for (size_t i = 0; i < grad_input.size(); ++i) {
    if (!mask_[i]) dx[i] = 0.0f;
  }
  return grad_input;
}

tensor::Tensor Tanh::Forward(const tensor::Tensor& input, bool train) {
  tensor::Tensor out = input;
  float* y = out.data();
  for (size_t i = 0; i < out.size(); ++i) y[i] = std::tanh(y[i]);
  if (train) cached_output_ = out;
  return out;
}

tensor::Tensor Tanh::Backward(const tensor::Tensor& grad_output) {
  ZEUS_CHECK(tensor::SameShape(cached_output_, grad_output));
  tensor::Tensor grad_input = grad_output;
  float* dx = grad_input.data();
  const float* y = cached_output_.data();
  for (size_t i = 0; i < grad_input.size(); ++i) dx[i] *= 1.0f - y[i] * y[i];
  return grad_input;
}

tensor::Tensor Dropout::Forward(const tensor::Tensor& input, bool train) {
  was_training_ = train;
  if (!train || p_ <= 0.0f) return input;
  tensor::Tensor out = input;
  mask_.assign(input.size(), 0.0f);
  const float scale = 1.0f / (1.0f - p_);
  float* y = out.data();
  for (size_t i = 0; i < out.size(); ++i) {
    if (rng_->NextBernoulli(p_)) {
      y[i] = 0.0f;
    } else {
      mask_[i] = scale;
      y[i] *= scale;
    }
  }
  return out;
}

tensor::Tensor Dropout::Backward(const tensor::Tensor& grad_output) {
  if (!was_training_ || p_ <= 0.0f) return grad_output;
  ZEUS_CHECK(mask_.size() == grad_output.size());
  tensor::Tensor grad_input = grad_output;
  float* dx = grad_input.data();
  for (size_t i = 0; i < grad_input.size(); ++i) dx[i] *= mask_[i];
  return grad_input;
}

tensor::Tensor Flatten::Forward(const tensor::Tensor& input, bool train) {
  if (train) cached_shape_ = input.shape();
  int n = input.dim(0);
  int rest = static_cast<int>(input.size()) / n;
  return input.Reshape({n, rest});
}

tensor::Tensor Flatten::Backward(const tensor::Tensor& grad_output) {
  ZEUS_CHECK(!cached_shape_.empty());
  return grad_output.Reshape(cached_shape_);
}

}  // namespace zeus::nn
