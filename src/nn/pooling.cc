#include "nn/pooling.h"

#include <limits>

namespace zeus::nn {

tensor::Tensor GlobalAvgPool::Forward(const tensor::Tensor& input, bool train) {
  ZEUS_CHECK(input.ndim() >= 3);
  if (train) cached_shape_ = input.shape();
  const int n = input.dim(0), c = input.dim(1);
  size_t spatial = 1;
  for (int i = 2; i < input.ndim(); ++i) spatial *= static_cast<size_t>(input.dim(i));
  tensor::Tensor out({n, c});
  const float* x = input.data();
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane = x + (static_cast<size_t>(b) * c + ch) * spatial;
      double s = 0.0;
      for (size_t i = 0; i < spatial; ++i) s += plane[i];
      out[static_cast<size_t>(b) * c + ch] =
          static_cast<float>(s / static_cast<double>(spatial));
    }
  }
  return out;
}

tensor::Tensor GlobalAvgPool::Backward(const tensor::Tensor& grad_output) {
  ZEUS_CHECK(!cached_shape_.empty());
  const int n = cached_shape_[0], c = cached_shape_[1];
  size_t spatial = 1;
  for (size_t i = 2; i < cached_shape_.size(); ++i)
    spatial *= static_cast<size_t>(cached_shape_[i]);
  tensor::Tensor grad_input(cached_shape_);
  float* dx = grad_input.data();
  const float inv = 1.0f / static_cast<float>(spatial);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      float g = grad_output[static_cast<size_t>(b) * c + ch] * inv;
      float* plane = dx + (static_cast<size_t>(b) * c + ch) * spatial;
      for (size_t i = 0; i < spatial; ++i) plane[i] = g;
    }
  }
  return grad_input;
}

tensor::Tensor MaxPool2d::Forward(const tensor::Tensor& input, bool train) {
  ZEUS_CHECK(input.ndim() == 4);
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int ho = h / kernel_;
  const int wo = w / kernel_;
  ZEUS_CHECK(ho > 0 && wo > 0);
  if (train) cached_shape_ = input.shape();
  tensor::Tensor out({n, c, ho, wo});
  argmax_.assign(out.size(), 0);
  const float* x = input.data();
  float* y = out.data();
  size_t oi = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          x + (static_cast<size_t>(b) * c + ch) * static_cast<size_t>(h) * w;
      const size_t plane_off =
          (static_cast<size_t>(b) * c + ch) * static_cast<size_t>(h) * w;
      for (int oh = 0; oh < ho; ++oh) {
        for (int ow = 0; ow < wo; ++ow) {
          float best = -std::numeric_limits<float>::infinity();
          int best_idx = 0;
          for (int dh = 0; dh < kernel_; ++dh) {
            for (int dw = 0; dw < kernel_; ++dw) {
              int hh = oh * kernel_ + dh;
              int ww = ow * kernel_ + dw;
              int idx = hh * w + ww;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          y[oi] = best;
          argmax_[oi] = static_cast<int>(plane_off) + best_idx;
          ++oi;
        }
      }
    }
  }
  return out;
}

tensor::Tensor MaxPool2d::Backward(const tensor::Tensor& grad_output) {
  ZEUS_CHECK(!cached_shape_.empty());
  tensor::Tensor grad_input(cached_shape_);
  float* dx = grad_input.data();
  for (size_t i = 0; i < grad_output.size(); ++i) {
    dx[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

}  // namespace zeus::nn
