#include "nn/conv3d.h"

#include <cmath>

#include "common/thread_pool.h"
#include "nn/batch_split.h"
#include "nn/im2col.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace zeus::nn {

Conv3d::Conv3d(int in_channels, int out_channels, const Options& opts,
               common::Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      opts_(opts),
      weight_({out_channels, in_channels, opts.kernel[0], opts.kernel[1],
               opts.kernel[2]}),
      bias_({out_channels}) {
  int fan_in = in_channels * opts.kernel[0] * opts.kernel[1] * opts.kernel[2];
  float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  tensor::FillUniform(&weight_.value, rng, bound);
  tensor::FillUniform(&bias_.value, rng, bound);
}

tensor::Tensor Conv3d::Forward(const tensor::Tensor& input, bool train) {
  ZEUS_CHECK(input.ndim() == 5 && input.dim(1) == in_channels_);
  if (train) cached_input_ = input;
  if (compute_context().path == tensor::ComputePath::kReference) {
    // Any previously cached panels no longer match cached_input_.
    if (train) cached_cols_ = tensor::Tensor();
    return ForwardReference(input);
  }
  return ForwardGemm(input, train);
}

tensor::Tensor Conv3d::Backward(const tensor::Tensor& grad_output) {
  ZEUS_CHECK(!cached_input_.empty());
  return compute_context().path == tensor::ComputePath::kReference
             ? BackwardReference(grad_output)
             : BackwardGemm(grad_output);
}

tensor::Tensor Conv3d::ForwardGemm(const tensor::Tensor& input, bool train) {
  const int n = input.dim(0), ci = in_channels_, li = input.dim(2),
            hi = input.dim(3), wi = input.dim(4);
  const auto [kt, kh, kw] = opts_.kernel;
  const auto [st, sh, sw] = opts_.stride;
  const auto [pt, ph, pw] = opts_.padding;
  const int lo = OutDim(li, kt, st, pt);
  const int ho = OutDim(hi, kh, sh, ph);
  const int wo = OutDim(wi, kw, sw, pw);
  ZEUS_CHECK(lo > 0 && ho > 0 && wo > 0);
  tensor::Tensor out({n, out_channels_, lo, ho, wo});

  const tensor::ComputeContext& ctx = compute_context();
  const int kdim = ci * kt * kh * kw;
  const int spatial = lo * ho * wo;
  const size_t x_nstride = static_cast<size_t>(ci) * li * hi * wi;
  const size_t y_nstride = static_cast<size_t>(out_channels_) * spatial;
  const size_t col_stride = static_cast<size_t>(kdim) * spatial;
  // Training-mode lowering writes straight into the persistent panel buffer
  // so Backward can skip the repack; eval uses per-task scratch panels and
  // leaves members untouched (eval forwards stay thread-safe).
  const bool keep = train && opts_.cache_lowering;
  if (keep) {
    cached_cols_ = tensor::Tensor({n, kdim, spatial});
  } else if (train) {
    cached_cols_ = tensor::Tensor();
  }

  // Int8 inference only: training forwards stay fp32 so the cached
  // activations backward differentiates are the ones that produced the loss.
  const bool use_int8 = !train && ctx.path == tensor::ComputePath::kInt8;
  tensor::Int8Panels wq;
  if (use_int8) {
    tensor::QuantizePackA(weight_.value.data(), kdim, out_channels_, kdim,
                          &wq, &ctx);
  }

  // Per segment: Y {Co, lo*ho*wo} = W {Co, Ci*kt*kh*kw} @ col, plus bias.
  // Images are independent, so any batch split is bit-exact.
  auto run_range = [&](int b_lo, int b_hi) {
    tensor::Tensor scratch;
    if (!keep) scratch = tensor::Tensor({kdim, spatial});
    tensor::Int8Panels colq;
    for (int b = b_lo; b < b_hi; ++b) {
      float* colp =
          keep ? cached_cols_.data() + b * col_stride : scratch.data();
      Vol2Col(input.data() + b * x_nstride, ci, li, hi, wi, kt, kh, kw, st,
              sh, sw, pt, ph, pw, lo, ho, wo, colp);
      float* y = out.data() + b * y_nstride;
      if (use_int8) {
        tensor::QuantizePackB(colp, spatial, false, kdim, spatial, &colq,
                              &ctx);
        tensor::QuantizedGemm(out_channels_, spatial, kdim, wq, colq, y,
                              spatial, &ctx);
      } else {
        tensor::Sgemm(false, false, out_channels_, spatial, kdim, 1.0f,
                      weight_.value.data(), kdim, colp, spatial, 0.0f, y,
                      spatial, &ctx);
      }
      for (int oc = 0; oc < out_channels_; ++oc) {
        float* row = y + static_cast<size_t>(oc) * spatial;
        const float bv = bias_.value[oc];
        for (int s = 0; s < spatial; ++s) row[s] += bv;
      }
    }
  };
  const size_t per_image_macs =
      static_cast<size_t>(out_channels_) * spatial * kdim;
  const int tasks = BatchSplitTasks(ctx, n, per_image_macs);
  if (tasks == 1) {
    run_range(0, n);
  } else {
    common::ParallelFor(ctx.pool, tasks, [&](int t) {
      run_range(BatchSplitBegin(n, tasks, t), BatchSplitEnd(n, tasks, t));
    });
  }
  return out;
}

tensor::Tensor Conv3d::BackwardGemm(const tensor::Tensor& grad_output) {
  const tensor::Tensor& input = cached_input_;
  const int n = input.dim(0), ci = in_channels_, li = input.dim(2),
            hi = input.dim(3), wi = input.dim(4);
  const auto [kt, kh, kw] = opts_.kernel;
  const auto [st, sh, sw] = opts_.stride;
  const auto [pt, ph, pw] = opts_.padding;
  const int lo = grad_output.dim(2), ho = grad_output.dim(3),
            wo = grad_output.dim(4);

  const tensor::ComputeContext& ctx = compute_context();
  const int kdim = ci * kt * kh * kw;
  const int spatial = lo * ho * wo;
  const size_t x_nstride = static_cast<size_t>(ci) * li * hi * wi;
  const size_t y_nstride = static_cast<size_t>(out_channels_) * spatial;
  const size_t col_stride = static_cast<size_t>(kdim) * spatial;
  // Reuse the forward pass's vol2col panels when they are present (they are
  // refreshed or cleared by every training-mode forward, so a non-empty
  // buffer always matches cached_input_); otherwise re-lower per segment.
  const bool have_cols = !cached_cols_.empty() && cached_cols_.dim(0) == n &&
                         cached_cols_.dim(1) == kdim &&
                         cached_cols_.dim(2) == spatial;
  tensor::Tensor grad_input(input.shape());
  // Weight/bias gradients go through per-image partial buffers reduced in
  // ascending-b order below — even when the loop runs serially — so the
  // accumulation structure (and hence the bits) never depends on how the
  // minibatch is split across workers. grad_input regions are disjoint.
  const int wsize = static_cast<int>(weight_.grad.size());
  tensor::Tensor dw_part({n, wsize});
  tensor::Tensor db_part({n, out_channels_});

  auto run_range = [&](int b_lo, int b_hi) {
    tensor::Tensor col;
    if (!have_cols) col = tensor::Tensor({kdim, spatial});
    tensor::Tensor dcol({kdim, spatial});
    for (int b = b_lo; b < b_hi; ++b) {
      const float* dy = grad_output.data() + b * y_nstride;
      float* db = db_part.data() + static_cast<size_t>(b) * out_channels_;
      for (int oc = 0; oc < out_channels_; ++oc) {
        const float* row = dy + static_cast<size_t>(oc) * spatial;
        float s = 0.0f;
        for (int i = 0; i < spatial; ++i) s += row[i];
        db[oc] = s;
      }
      const float* colp;
      if (have_cols) {
        colp = cached_cols_.data() + b * col_stride;
      } else {
        Vol2Col(input.data() + b * x_nstride, ci, li, hi, wi, kt, kh, kw, st,
                sh, sw, pt, ph, pw, lo, ho, wo, col.data());
        colp = col.data();
      }
      tensor::Sgemm(false, true, out_channels_, kdim, spatial, 1.0f, dy,
                    spatial, colp, spatial, 0.0f,
                    dw_part.data() + static_cast<size_t>(b) * wsize, kdim,
                    &ctx);
      tensor::Sgemm(true, false, kdim, spatial, out_channels_, 1.0f,
                    weight_.value.data(), kdim, dy, spatial, 0.0f,
                    dcol.data(), spatial, &ctx);
      Col2VolAdd(dcol.data(), ci, li, hi, wi, kt, kh, kw, st, sh, sw, pt, ph,
                 pw, lo, ho, wo, grad_input.data() + b * x_nstride);
    }
  };
  const size_t per_image_macs =
      2 * static_cast<size_t>(out_channels_) * spatial * kdim;
  const int tasks = BatchSplitTasks(ctx, n, per_image_macs);
  if (tasks == 1) {
    run_range(0, n);
  } else {
    common::ParallelFor(ctx.pool, tasks, [&](int t) {
      run_range(BatchSplitBegin(n, tasks, t), BatchSplitEnd(n, tasks, t));
    });
  }

  float* dw = weight_.grad.data();
  float* db = bias_.grad.data();
  for (int b = 0; b < n; ++b) {
    const float* wp = dw_part.data() + static_cast<size_t>(b) * wsize;
    for (int i = 0; i < wsize; ++i) dw[i] += wp[i];
    const float* bp = db_part.data() + static_cast<size_t>(b) * out_channels_;
    for (int oc = 0; oc < out_channels_; ++oc) db[oc] += bp[oc];
  }
  return grad_input;
}

tensor::Tensor Conv3d::ForwardReference(const tensor::Tensor& input) {
  const int n = input.dim(0), ci = in_channels_, li = input.dim(2),
            hi = input.dim(3), wi = input.dim(4);
  const auto [kt, kh, kw] = opts_.kernel;
  const auto [st, sh, sw] = opts_.stride;
  const auto [pt, ph, pw] = opts_.padding;
  const int lo = OutDim(li, kt, st, pt);
  const int ho = OutDim(hi, kh, sh, ph);
  const int wo = OutDim(wi, kw, sw, pw);
  ZEUS_CHECK(lo > 0 && ho > 0 && wo > 0);
  tensor::Tensor out({n, out_channels_, lo, ho, wo});

  const float* x = input.data();
  const float* w = weight_.value.data();
  float* y = out.data();
  const size_t x_cstride = static_cast<size_t>(li) * hi * wi;
  const size_t x_nstride = x_cstride * ci;
  const size_t y_cstride = static_cast<size_t>(lo) * ho * wo;
  const size_t y_nstride = y_cstride * out_channels_;
  const size_t w_cstride = static_cast<size_t>(kt) * kh * kw;
  const size_t w_ostride = w_cstride * ci;

  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_channels_; ++oc) {
      float* yplane = y + b * y_nstride + oc * y_cstride;
      const float bias_v = bias_.value[oc];
      for (int ot = 0; ot < lo; ++ot) {
        const int t0 = ot * st - pt;
        for (int oh = 0; oh < ho; ++oh) {
          const int h0 = oh * sh - ph;
          for (int ow = 0; ow < wo; ++ow) {
            const int w0 = ow * sw - pw;
            double acc = bias_v;
            for (int ic = 0; ic < ci; ++ic) {
              const float* xc = x + b * x_nstride + ic * x_cstride;
              const float* wc = w + oc * w_ostride + ic * w_cstride;
              for (int dt = 0; dt < kt; ++dt) {
                const int t = t0 + dt;
                if (t < 0 || t >= li) continue;
                for (int dh = 0; dh < kh; ++dh) {
                  const int hh = h0 + dh;
                  if (hh < 0 || hh >= hi) continue;
                  const float* xrow =
                      xc + (static_cast<size_t>(t) * hi + hh) * wi;
                  const float* wrow =
                      wc + (static_cast<size_t>(dt) * kh + dh) * kw;
                  for (int dw = 0; dw < kw; ++dw) {
                    const int ww = w0 + dw;
                    if (ww < 0 || ww >= wi) continue;
                    acc += static_cast<double>(xrow[ww]) * wrow[dw];
                  }
                }
              }
            }
            yplane[(static_cast<size_t>(ot) * ho + oh) * wo + ow] =
                static_cast<float>(acc);
          }
        }
      }
    }
  }
  return out;
}

tensor::Tensor Conv3d::BackwardReference(const tensor::Tensor& grad_output) {
  const tensor::Tensor& input = cached_input_;
  const int n = input.dim(0), ci = in_channels_, li = input.dim(2),
            hi = input.dim(3), wi = input.dim(4);
  const auto [kt, kh, kw] = opts_.kernel;
  const auto [st, sh, sw] = opts_.stride;
  const auto [pt, ph, pw] = opts_.padding;
  const int lo = grad_output.dim(2), ho = grad_output.dim(3),
            wo = grad_output.dim(4);

  tensor::Tensor grad_input(input.shape());
  const float* x = input.data();
  const float* w = weight_.value.data();
  const float* dy = grad_output.data();
  float* dx = grad_input.data();
  float* dw_ = weight_.grad.data();
  float* db = bias_.grad.data();

  const size_t x_cstride = static_cast<size_t>(li) * hi * wi;
  const size_t x_nstride = x_cstride * ci;
  const size_t y_cstride = static_cast<size_t>(lo) * ho * wo;
  const size_t y_nstride = y_cstride * out_channels_;
  const size_t w_cstride = static_cast<size_t>(kt) * kh * kw;
  const size_t w_ostride = w_cstride * ci;

  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_channels_; ++oc) {
      const float* dyplane = dy + b * y_nstride + oc * y_cstride;
      for (int ot = 0; ot < lo; ++ot) {
        const int t0 = ot * st - pt;
        for (int oh = 0; oh < ho; ++oh) {
          const int h0 = oh * sh - ph;
          for (int ow = 0; ow < wo; ++ow) {
            const float g =
                dyplane[(static_cast<size_t>(ot) * ho + oh) * wo + ow];
            if (g == 0.0f) continue;
            const int w0 = ow * sw - pw;
            db[oc] += g;
            for (int ic = 0; ic < ci; ++ic) {
              const float* xc = x + b * x_nstride + ic * x_cstride;
              float* dxc = dx + b * x_nstride + ic * x_cstride;
              const float* wc = w + oc * w_ostride + ic * w_cstride;
              float* dwc = dw_ + oc * w_ostride + ic * w_cstride;
              for (int dt = 0; dt < kt; ++dt) {
                const int t = t0 + dt;
                if (t < 0 || t >= li) continue;
                for (int dh = 0; dh < kh; ++dh) {
                  const int hh = h0 + dh;
                  if (hh < 0 || hh >= hi) continue;
                  const size_t xoff = (static_cast<size_t>(t) * hi + hh) * wi;
                  const size_t woff = (static_cast<size_t>(dt) * kh + dh) * kw;
                  for (int dwk = 0; dwk < kw; ++dwk) {
                    const int ww = w0 + dwk;
                    if (ww < 0 || ww >= wi) continue;
                    dwc[woff + dwk] += g * xc[xoff + ww];
                    dxc[xoff + ww] += g * wc[woff + dwk];
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

}  // namespace zeus::nn
