#ifndef ZEUS_NN_SEQUENTIAL_H_
#define ZEUS_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/layer.h"

namespace zeus::nn {

// A straight-line stack of layers. Owns its layers. Also the unit of weight
// (de)serialization: SaveWeights/LoadWeights walk Parameters() in order.
class Sequential : public Layer {
 public:
  Sequential() = default;

  // Appends a layer; returns a raw observer pointer for callers that need to
  // poke at a specific layer (e.g. to read a feature tap).
  template <typename L, typename... Args>
  L* Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    Append(std::move(layer));
    return raw;
  }

  void Append(std::unique_ptr<Layer> layer) {
    layer->SetComputeContext(compute_context_ptr());
    layers_.push_back(std::move(layer));
  }

  // Propagates to every contained layer (including ones appended later).
  void SetComputeContext(const tensor::ComputeContext* ctx) override {
    Layer::SetComputeContext(ctx);
    for (auto& layer : layers_) layer->SetComputeContext(ctx);
  }

  tensor::Tensor Forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override { return "Sequential"; }

  // Runs forward only through layers [0, k), e.g. to extract an intermediate
  // feature representation (the APFG's ProxyFeature tap).
  tensor::Tensor ForwardPrefix(const tensor::Tensor& input, size_t k,
                               bool train);
  // Runs forward through layers [k, end).
  tensor::Tensor ForwardSuffix(const tensor::Tensor& input, size_t k,
                               bool train);

  size_t NumLayers() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_[i].get(); }

  // Checkpointing. LoadWeights requires identical architecture.
  common::Status SaveWeights(const std::string& path);
  common::Status LoadWeights(const std::string& path);

  // Copies all parameter values from another identically-shaped network
  // (used for DQN target-network sync).
  common::Status CopyWeightsFrom(Sequential& other);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace zeus::nn

#endif  // ZEUS_NN_SEQUENTIAL_H_
