#ifndef ZEUS_NN_BATCH_SPLIT_H_
#define ZEUS_NN_BATCH_SPLIT_H_

#include <algorithm>
#include <cstddef>

#include "common/thread_pool.h"
#include "tensor/gemm.h"

namespace zeus::nn {

// Deterministic outer/inner parallelism split for minibatch loops.
//
// A conv layer has two levers: split the minibatch across pool workers
// (outer) or let each per-image GEMM parallelize internally (inner). Both at
// once would deadlock-guard into serial inner GEMMs anyway (nested
// ParallelFor runs inline on the worker), so the policy picks exactly one:
//
//   - outer when there are enough images to feed every worker (n >= threads),
//     or when images are individually too small for intra-GEMM splitting to
//     pay (per_image_macs below ~16 M MACs);
//   - inner (tasks = 1) for a few huge images, where the batch split would
//     idle most workers.
//
// The decision depends only on (n, per_image_macs, pool size, batch_split
// flag) — never on runtime load — and every task computes its images
// independently, so layer outputs are bit-identical for any pool size.
//
// Callers MUST run the loop inline when this returns 1 (not via a
// single-task ParallelFor, which would move the loop onto a worker thread
// and serialize the inner GEMMs too).
inline int BatchSplitTasks(const tensor::ComputeContext& ctx, int n,
                           size_t per_image_macs) {
  if (!ctx.batch_split || ctx.pool == nullptr || n <= 1) return 1;
  if (ctx.pool->num_threads() <= 1) return 1;
  if (common::ThreadPool::InWorkerThread()) return 1;
  // Too little total work to amortize a pool dispatch at all.
  if (static_cast<size_t>(n) * per_image_macs < (size_t{1} << 15)) return 1;
  constexpr size_t kOuterPreferredMacs = size_t{1} << 24;
  const int threads = ctx.pool->num_threads();
  if (n >= threads || per_image_macs < kOuterPreferredMacs) {
    return std::min(n, threads);
  }
  return 1;
}

// Contiguous image range for task `idx` of `tasks`: [lo, hi).
inline int BatchSplitBegin(int n, int tasks, int idx) {
  return static_cast<int>(static_cast<long long>(idx) * n / tasks);
}
inline int BatchSplitEnd(int n, int tasks, int idx) {
  return static_cast<int>(static_cast<long long>(idx + 1) * n / tasks);
}

}  // namespace zeus::nn

#endif  // ZEUS_NN_BATCH_SPLIT_H_
