#ifndef ZEUS_NN_ACTIVATIONS_H_
#define ZEUS_NN_ACTIVATIONS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace zeus::nn {

// Elementwise rectified linear unit.
class ReLU : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string Name() const override { return "ReLU"; }

 private:
  std::vector<uint8_t> mask_;
};

// Elementwise tanh (used in small MLP heads).
class Tanh : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string Name() const override { return "Tanh"; }

 private:
  tensor::Tensor cached_output_;
};

// Inverted dropout; active only in training mode.
class Dropout : public Layer {
 public:
  Dropout(float p, common::Rng* rng) : p_(p), rng_(rng) {}

  tensor::Tensor Forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string Name() const override { return "Dropout"; }

 private:
  float p_;
  common::Rng* rng_;
  std::vector<float> mask_;
  bool was_training_ = false;
};

// Collapses all trailing dims: {N, ...} -> {N, prod(...)}.
class Flatten : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string Name() const override { return "Flatten"; }

 private:
  std::vector<int> cached_shape_;
};

}  // namespace zeus::nn

#endif  // ZEUS_NN_ACTIVATIONS_H_
