#include "nn/layer.h"

namespace zeus::nn {

Layer::~Layer() = default;

void ZeroGrads(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->ZeroGrad();
}

size_t ParameterCount(const std::vector<Parameter*>& params) {
  size_t n = 0;
  for (const Parameter* p : params) n += p->value.size();
  return n;
}

}  // namespace zeus::nn
