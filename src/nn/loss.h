#ifndef ZEUS_NN_LOSS_H_
#define ZEUS_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace zeus::nn {

// Scalar loss value plus the gradient w.r.t. the network output that
// produced it. Mean-reduced over the batch.
struct LossResult {
  float loss = 0.0f;
  tensor::Tensor grad;
};

// Softmax cross-entropy over logits {N, C} with integer class labels.
// Optionally weights each sample (used for class-imbalance correction when
// actions are rare, e.g. BDD-like data at 7% action frames).
LossResult SoftmaxCrossEntropy(const tensor::Tensor& logits,
                               const std::vector<int>& labels,
                               const std::vector<float>* sample_weights = nullptr);

// Huber (smooth-L1) loss between predictions and targets, elementwise over
// 1-D tensors; delta = 1. Used for the DQN TD error (Alg. 1, line 13).
LossResult Huber(const tensor::Tensor& pred, const tensor::Tensor& target,
                 float delta = 1.0f);

// Mean squared error over same-shape tensors.
LossResult Mse(const tensor::Tensor& pred, const tensor::Tensor& target);

// Classification accuracy of logits {N, C} against labels.
float Accuracy(const tensor::Tensor& logits, const std::vector<int>& labels);

}  // namespace zeus::nn

#endif  // ZEUS_NN_LOSS_H_
