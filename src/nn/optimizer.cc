#include "nn/optimizer.h"

#include <cmath>

namespace zeus::nn {

Optimizer::~Optimizer() = default;

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::Step() {
  for (size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    tensor::Tensor& vel = velocity_[k];
    float* w = p->value.data();
    float* g = p->grad.data();
    float* v = vel.data();
    for (size_t i = 0; i < p->value.size(); ++i) {
      float grad = g[i] + weight_decay_ * w[i];
      v[i] = momentum_ * v[i] + grad;
      w[i] -= lr_ * v[i];
    }
    p->ZeroGrad();
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    float* w = p->value.data();
    float* g = p->grad.data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    for (size_t i = 0; i < p->value.size(); ++i) {
      float grad = g[i] + weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad * grad;
      float mhat = m[i] / bc1;
      float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p->ZeroGrad();
  }
}

void ClipGradNorm(const std::vector<Parameter*>& params, float max_norm) {
  double total = 0.0;
  for (Parameter* p : params) {
    const float* g = p->grad.data();
    for (size_t i = 0; i < p->grad.size(); ++i)
      total += static_cast<double>(g[i]) * g[i];
  }
  double norm = std::sqrt(total);
  if (norm <= max_norm || norm == 0.0) return;
  float scale = static_cast<float>(max_norm / norm);
  for (Parameter* p : params) p->grad.Scale(scale);
}

}  // namespace zeus::nn
