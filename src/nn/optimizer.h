#ifndef ZEUS_NN_OPTIMIZER_H_
#define ZEUS_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layer.h"

namespace zeus::nn {

// Base optimizer interface: Step() applies accumulated gradients to the
// registered parameters and zeroes them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer();

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void Step() = 0;

  void ZeroGrad() { ZeroGrads(params_); }
  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

 protected:
  std::vector<Parameter*> params_;
  float lr_ = 1e-3f;
};

// SGD with classical momentum and optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);

  void Step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

// Adam (Kingma & Ba, 2015) — the paper cites it for network training.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

// Clips the global L2 norm of all gradients to at most `max_norm`.
void ClipGradNorm(const std::vector<Parameter*>& params, float max_norm);

}  // namespace zeus::nn

#endif  // ZEUS_NN_OPTIMIZER_H_
