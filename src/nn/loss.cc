#include "nn/loss.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace zeus::nn {

LossResult SoftmaxCrossEntropy(const tensor::Tensor& logits,
                               const std::vector<int>& labels,
                               const std::vector<float>* sample_weights) {
  ZEUS_CHECK(logits.ndim() == 2);
  const int n = logits.dim(0), c = logits.dim(1);
  ZEUS_CHECK(static_cast<int>(labels.size()) == n);
  tensor::Tensor probs = tensor::SoftmaxRows(logits);
  LossResult res;
  res.grad = tensor::Tensor(logits.shape());
  double total = 0.0;
  double weight_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const int y = labels[i];
    ZEUS_CHECK(y >= 0 && y < c);
    const float w = sample_weights ? (*sample_weights)[i] : 1.0f;
    const float* prow = probs.data() + static_cast<size_t>(i) * c;
    float* grow = res.grad.data() + static_cast<size_t>(i) * c;
    total -= w * std::log(std::max(prow[y], 1e-12f));
    for (int j = 0; j < c; ++j) {
      grow[j] = w * (prow[j] - (j == y ? 1.0f : 0.0f));
    }
    weight_sum += w;
  }
  const float inv = weight_sum > 0.0 ? static_cast<float>(1.0 / weight_sum) : 0.0f;
  res.loss = static_cast<float>(total) * inv;
  res.grad.Scale(inv);
  return res;
}

LossResult Huber(const tensor::Tensor& pred, const tensor::Tensor& target,
                 float delta) {
  ZEUS_CHECK(tensor::SameShape(pred, target));
  const size_t n = pred.size();
  ZEUS_CHECK(n > 0);
  LossResult res;
  res.grad = tensor::Tensor(pred.shape());
  double total = 0.0;
  const float inv = 1.0f / static_cast<float>(n);
  for (size_t i = 0; i < n; ++i) {
    float e = pred[i] - target[i];
    float ae = std::abs(e);
    if (ae <= delta) {
      total += 0.5 * e * e;
      res.grad[i] = e * inv;
    } else {
      total += delta * (ae - 0.5 * delta);
      res.grad[i] = (e > 0 ? delta : -delta) * inv;
    }
  }
  res.loss = static_cast<float>(total) * inv;
  return res;
}

LossResult Mse(const tensor::Tensor& pred, const tensor::Tensor& target) {
  ZEUS_CHECK(tensor::SameShape(pred, target));
  const size_t n = pred.size();
  ZEUS_CHECK(n > 0);
  LossResult res;
  res.grad = tensor::Tensor(pred.shape());
  double total = 0.0;
  const float inv = 1.0f / static_cast<float>(n);
  for (size_t i = 0; i < n; ++i) {
    float e = pred[i] - target[i];
    total += e * e;
    res.grad[i] = 2.0f * e * inv;
  }
  res.loss = static_cast<float>(total) * inv;
  return res;
}

float Accuracy(const tensor::Tensor& logits, const std::vector<int>& labels) {
  ZEUS_CHECK(logits.ndim() == 2);
  const int n = logits.dim(0), c = logits.dim(1);
  ZEUS_CHECK(static_cast<int>(labels.size()) == n);
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    const float* row = logits.data() + static_cast<size_t>(i) * c;
    int best = 0;
    for (int j = 1; j < c; ++j)
      if (row[j] > row[best]) best = j;
    if (best == labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(n);
}

}  // namespace zeus::nn
