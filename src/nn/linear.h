#ifndef ZEUS_NN_LINEAR_H_
#define ZEUS_NN_LINEAR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace zeus::nn {

// Fully-connected layer: y = x W^T + b, x: {N, in}, W: {out, in}, b: {out}.
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, common::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Linear"; }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Parameter weight_;
  Parameter bias_;
  tensor::Tensor cached_input_;
};

}  // namespace zeus::nn

#endif  // ZEUS_NN_LINEAR_H_
