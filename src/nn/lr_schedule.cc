#include "nn/lr_schedule.h"

#include <algorithm>
#include <cmath>

namespace zeus::nn {

float StepLr::LrAt(int step) const {
  int decays = period_ > 0 ? step / period_ : 0;
  return base_lr() * std::pow(gamma_, static_cast<float>(decays));
}

float CosineLr::LrAt(int step) const {
  if (total_steps_ <= 0 || step >= total_steps_) return min_lr_;
  double phase = M_PI * static_cast<double>(step) / total_steps_;
  return static_cast<float>(min_lr_ + (base_lr() - min_lr_) *
                                          0.5 * (1.0 + std::cos(phase)));
}

float WarmupLr::LrAt(int step) const {
  if (step < warmup_steps_) {
    return base_lr() * static_cast<float>(step) /
           static_cast<float>(std::max(1, warmup_steps_));
  }
  if (inner_ != nullptr) return inner_->LrAt(step - warmup_steps_);
  return base_lr();
}

}  // namespace zeus::nn
