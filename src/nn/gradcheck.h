#ifndef ZEUS_NN_GRADCHECK_H_
#define ZEUS_NN_GRADCHECK_H_

#include <functional>

#include "nn/layer.h"

namespace zeus::nn {

// Finite-difference gradient checking, used only by tests. `loss_fn` must be
// a pure function of the layer's current parameters and the given input.
struct GradCheckResult {
  float max_rel_error = 0.0f;  // max over checked coordinates
  int checked = 0;
};

// Checks d(loss)/d(input) of a layer against central differences.
// Samples up to `max_coords` input coordinates.
GradCheckResult CheckInputGradient(
    Layer* layer, const tensor::Tensor& input,
    const std::function<float(const tensor::Tensor&)>& loss_of_output,
    const std::function<tensor::Tensor(const tensor::Tensor&)>& grad_of_output,
    int max_coords = 24, float epsilon = 1e-3f);

// Checks d(loss)/d(theta) for every parameter of the layer.
GradCheckResult CheckParameterGradient(
    Layer* layer, const tensor::Tensor& input,
    const std::function<float(const tensor::Tensor&)>& loss_of_output,
    const std::function<tensor::Tensor(const tensor::Tensor&)>& grad_of_output,
    int max_coords = 24, float epsilon = 1e-3f);

}  // namespace zeus::nn

#endif  // ZEUS_NN_GRADCHECK_H_
