#ifndef ZEUS_NN_LR_SCHEDULE_H_
#define ZEUS_NN_LR_SCHEDULE_H_

#include "nn/optimizer.h"

namespace zeus::nn {

// Learning-rate schedules over an Optimizer. Call Step() once per epoch
// (or per whatever unit the schedule was sized for); the schedule rewrites
// the optimizer's learning rate in place.
//
//   Adam opt(model.Parameters(), 3e-3f);
//   CosineLr schedule(&opt, /*total_steps=*/epochs);
//   for (int e = 0; e < epochs; ++e) { TrainEpoch(); schedule.Step(); }
class LrSchedule {
 public:
  explicit LrSchedule(Optimizer* optimizer)
      : optimizer_(optimizer), base_lr_(optimizer->learning_rate()) {}
  virtual ~LrSchedule() = default;

  LrSchedule(const LrSchedule&) = delete;
  LrSchedule& operator=(const LrSchedule&) = delete;

  // Advances the schedule by one unit and updates the optimizer.
  void Step() {
    ++steps_;
    optimizer_->set_learning_rate(LrAt(steps_));
  }

  int steps() const { return steps_; }
  float base_lr() const { return base_lr_; }

  // Learning rate the schedule prescribes after `step` steps.
  virtual float LrAt(int step) const = 0;

 protected:
  Optimizer* optimizer_;
  float base_lr_;

 private:
  int steps_ = 0;
};

// Multiplies the learning rate by `gamma` every `period` steps.
class StepLr : public LrSchedule {
 public:
  StepLr(Optimizer* optimizer, int period, float gamma = 0.1f)
      : LrSchedule(optimizer), period_(period), gamma_(gamma) {}

  float LrAt(int step) const override;

 private:
  int period_;
  float gamma_;
};

// Cosine annealing from the base rate to `min_lr` over `total_steps`, flat
// at `min_lr` afterwards.
class CosineLr : public LrSchedule {
 public:
  CosineLr(Optimizer* optimizer, int total_steps, float min_lr = 0.0f)
      : LrSchedule(optimizer), total_steps_(total_steps), min_lr_(min_lr) {}

  float LrAt(int step) const override;

 private:
  int total_steps_;
  float min_lr_;
};

// Linear warmup to the base rate over `warmup_steps`, then delegates the
// post-warmup shape to an inner schedule (or stays flat when `inner` is
// null). The inner schedule's step clock starts after warmup ends.
class WarmupLr : public LrSchedule {
 public:
  WarmupLr(Optimizer* optimizer, int warmup_steps, LrSchedule* inner = nullptr)
      : LrSchedule(optimizer), warmup_steps_(warmup_steps), inner_(inner) {}

  float LrAt(int step) const override;

 private:
  int warmup_steps_;
  LrSchedule* inner_;
};

}  // namespace zeus::nn

#endif  // ZEUS_NN_LR_SCHEDULE_H_
