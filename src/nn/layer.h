#ifndef ZEUS_NN_LAYER_H_
#define ZEUS_NN_LAYER_H_

#include <string>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace zeus::nn {

// A trainable weight plus its accumulated gradient. Layers own their
// parameters; optimizers mutate them through pointers returned by
// Layer::Parameters().
struct Parameter {
  tensor::Tensor value;
  tensor::Tensor grad;

  explicit Parameter(std::vector<int> shape)
      : value(shape), grad(std::move(shape)) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

// Base class for all differentiable layers. The contract is the classic
// define-by-run pair:
//   y = Forward(x, train)   caches whatever Backward needs
//   dx = Backward(dy)       accumulates into parameter .grad fields
// Layers are stateful across a Forward/Backward pair and must not be shared
// between concurrent evaluations.
class Layer {
 public:
  virtual ~Layer();

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  virtual tensor::Tensor Forward(const tensor::Tensor& input, bool train) = 0;
  virtual tensor::Tensor Backward(const tensor::Tensor& grad_output) = 0;

  // Trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> Parameters() { return {}; }

  virtual std::string Name() const = 0;

  // Points this layer's kernels at a compute context (thread pool, blocking,
  // naive/GEMM path selection). nullptr — the default — means "follow the
  // process-wide tensor::GlobalComputeContext()". Containers (Sequential)
  // propagate to their children. The context must outlive the layer's use.
  virtual void SetComputeContext(const tensor::ComputeContext* ctx) {
    compute_ctx_ = ctx;
  }
  const tensor::ComputeContext* compute_context_ptr() const {
    return compute_ctx_;
  }

 protected:
  // Effective context for kernel calls inside Forward/Backward.
  const tensor::ComputeContext& compute_context() const {
    return tensor::EffectiveContext(compute_ctx_);
  }

 private:
  const tensor::ComputeContext* compute_ctx_ = nullptr;
};

// Zeroes the gradients of every parameter in the list.
void ZeroGrads(const std::vector<Parameter*>& params);

// Total number of scalar weights.
size_t ParameterCount(const std::vector<Parameter*>& params);

}  // namespace zeus::nn

#endif  // ZEUS_NN_LAYER_H_
