// Unit tests for zeus::common — Status/Result, Rng determinism and
// distributional sanity, running statistics, string utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/stringutil.h"

namespace zeus::common {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextIntCoversRangeInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.NextInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(4);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto copy = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(5);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  EXPECT_NE(child.NextU64(), a.NextU64());
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
}

TEST(StringUtilTest, ToLowerTrimSplit) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(Trim("  x y  "), "x y");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, StartsWithAndFormat) {
  EXPECT_TRUE(StartsWith("select *", "select"));
  EXPECT_FALSE(StartsWith("sel", "select"));
  EXPECT_EQ(Format("%d-%s", 3, "x"), "3-x");
}

}  // namespace
}  // namespace zeus::common
