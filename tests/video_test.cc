// Unit tests for zeus::video — labels/instances, trajectories, renderer,
// dataset profiles vs Table 3 targets, decoder sampling/resize invariants.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "video/action.h"
#include "video/dataset.h"
#include "video/decoder.h"
#include "video/renderer.h"
#include "video/video.h"

namespace zeus::video {
namespace {

TEST(VideoTest, LabelsDefaultToNone) {
  Video v(10, 4, 4);
  for (int f = 0; f < 10; ++f) EXPECT_EQ(v.Label(f), ActionClass::kNone);
}

TEST(VideoTest, InstanceExtraction) {
  Video v(10, 2, 2);
  for (int f = 2; f < 5; ++f) v.SetLabel(f, ActionClass::kCrossRight);
  for (int f = 7; f < 9; ++f) v.SetLabel(f, ActionClass::kLeftTurn);
  auto inst = ExtractInstances(v);
  ASSERT_EQ(inst.size(), 2u);
  EXPECT_EQ(inst[0].start, 2);
  EXPECT_EQ(inst[0].end, 5);
  EXPECT_EQ(inst[0].cls, ActionClass::kCrossRight);
  EXPECT_EQ(inst[1].length(), 2);
}

TEST(VideoTest, AdjacentDifferentClassesSplit) {
  Video v(6, 2, 2);
  v.SetLabel(1, ActionClass::kCrossRight);
  v.SetLabel(2, ActionClass::kCrossLeft);
  auto inst = ExtractInstances(v);
  ASSERT_EQ(inst.size(), 2u);
}

TEST(ActionClassTest, ParseRoundTrip) {
  for (ActionClass cls :
       {ActionClass::kCrossRight, ActionClass::kCrossLeft,
        ActionClass::kLeftTurn, ActionClass::kPoleVault,
        ActionClass::kCleanAndJerk, ActionClass::kIroningClothes,
        ActionClass::kTennisServe}) {
    EXPECT_EQ(ParseActionClass(ActionClassName(cls)), cls);
  }
  EXPECT_EQ(ParseActionClass("cross-right"), ActionClass::kCrossRight);
  EXPECT_EQ(ParseActionClass("left_turn"), ActionClass::kLeftTurn);
  EXPECT_EQ(ParseActionClass("garbage"), ActionClass::kNone);
}

TEST(TrajectoryTest, CrossRightMovesRight) {
  double jitter[4] = {0, 0, 0, 0};
  Point a = TrajectoryPoint(TrajectoryKind::kCrossRight, 0.0, jitter);
  Point b = TrajectoryPoint(TrajectoryKind::kCrossRight, 1.0, jitter);
  EXPECT_LT(a.x, 0.2);
  EXPECT_GT(b.x, 0.8);
}

TEST(TrajectoryTest, CrossLeftMirrorsCrossRight) {
  double jitter[4] = {0, 0, 0, 0};
  for (double t : {0.0, 0.3, 0.7, 1.0}) {
    Point r = TrajectoryPoint(TrajectoryKind::kCrossRight, t, jitter);
    Point l = TrajectoryPoint(TrajectoryKind::kCrossLeft, t, jitter);
    EXPECT_NEAR(r.x + l.x, 1.0, 1e-9);
  }
}

TEST(TrajectoryTest, AllKindsStayInFrame) {
  common::Rng rng(5);
  for (int kind = 0; kind <= static_cast<int>(TrajectoryKind::kRightTurnSweep);
       ++kind) {
    double jitter[4];
    SampleJitter(&rng, jitter);
    for (double t = 0.0; t <= 1.0; t += 0.05) {
      Point p = TrajectoryPoint(static_cast<TrajectoryKind>(kind), t, jitter);
      EXPECT_GE(p.x, -0.1) << "kind " << kind;
      EXPECT_LE(p.x, 1.1) << "kind " << kind;
      EXPECT_GE(p.y, -0.15) << "kind " << kind;
      EXPECT_LE(p.y, 1.1) << "kind " << kind;
    }
  }
}

TEST(RendererTest, LabelsMatchEvents) {
  SceneRenderer renderer(16, 16, SceneStyle{});
  common::Rng rng(1);
  BlobEvent ev;
  ev.start_frame = 5;
  ev.end_frame = 15;
  ev.cls = ActionClass::kCrossRight;
  ev.traj = TrajectoryKind::kCrossRight;
  Video v = renderer.Render(30, {ev}, &rng);
  EXPECT_EQ(v.Label(4), ActionClass::kNone);
  EXPECT_EQ(v.Label(5), ActionClass::kCrossRight);
  EXPECT_EQ(v.Label(14), ActionClass::kCrossRight);
  EXPECT_EQ(v.Label(15), ActionClass::kNone);
}

TEST(RendererTest, BlobBrightensFrame) {
  SceneStyle style;
  style.noise_sigma = 0.0;
  SceneRenderer renderer(20, 20, style);
  common::Rng rng_a(2), rng_b(2);
  Video empty = renderer.Render(1, {}, &rng_a);
  BlobEvent ev;
  ev.start_frame = 0;
  ev.end_frame = 1;
  ev.traj = TrajectoryKind::kStaticBlob;
  Video with = renderer.Render(1, {ev}, &rng_b);
  double sum_empty = 0, sum_with = 0;
  for (int i = 0; i < 400; ++i) {
    sum_empty += empty.FrameData(0)[i];
    sum_with += with.FrameData(0)[i];
  }
  EXPECT_GT(sum_with, sum_empty + 0.5);
}

TEST(RendererTest, PixelsInUnitRange) {
  SceneRenderer renderer(16, 16, SceneStyle{});
  common::Rng rng(3);
  BlobEvent ev;
  ev.start_frame = 0;
  ev.end_frame = 10;
  ev.traj = TrajectoryKind::kLoiter;
  Video v = renderer.Render(10, {ev}, &rng);
  for (int f = 0; f < 10; ++f) {
    for (int i = 0; i < 256; ++i) {
      EXPECT_GE(v.FrameData(f)[i], 0.0f);
      EXPECT_LE(v.FrameData(f)[i], 1.0f);
    }
  }
}

TEST(DecoderTest, ShapeMatchesSpec) {
  Video v(100, 30, 30);
  DecodeSpec spec{15, 8, 2};
  tensor::Tensor t = SegmentDecoder::Decode(v, 0, spec);
  EXPECT_EQ(t.shape(), (std::vector<int>{1, 8, 15, 15}));
  EXPECT_EQ(SegmentDecoder::CoveredFrames(spec), 16);
}

TEST(DecoderTest, SamplingPicksEveryNthFrame) {
  // Frame f has constant pixel value f / 100.
  Video v(40, 4, 4);
  for (int f = 0; f < 40; ++f) {
    for (int i = 0; i < 16; ++i) v.FrameData(f)[i] = f / 100.0f;
  }
  DecodeSpec spec{4, 3, 5};
  tensor::Tensor t = SegmentDecoder::Decode(v, 10, spec);
  // Standardization is affine, so frames 10/15/20 (values .10/.15/.20) must
  // come out strictly increasing and evenly spaced, with zero overall mean.
  EXPECT_LT(t[0], t[16]);
  EXPECT_LT(t[16], t[32]);
  EXPECT_NEAR(t[16] - t[0], t[32] - t[16], 1e-4);
  double mean = 0.0;
  for (size_t i = 0; i < t.size(); ++i) mean += t[i];
  EXPECT_NEAR(mean / static_cast<double>(t.size()), 0.0, 1e-5);
}

TEST(DecoderTest, OutputIsStandardized) {
  common::Rng rng(3);
  Video v(20, 8, 8);
  for (int f = 0; f < 20; ++f) {
    for (int i = 0; i < 64; ++i) {
      v.FrameData(f)[i] = 0.3f + 0.2f * rng.NextFloat();
    }
  }
  tensor::Tensor t = SegmentDecoder::Decode(v, 0, DecodeSpec{8, 8, 2});
  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sum_sq += static_cast<double>(t[i]) * t[i];
  }
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(sum / n, 0.0, 1e-4);
  // Variance close to 1 (the epsilon in the scale shaves off a little).
  EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

TEST(DecoderTest, StandardizationIsBrightnessInvariant) {
  // Two videos identical up to a global brightness offset and gain must
  // decode to (nearly) identical tensors.
  common::Rng rng(9);
  Video a(12, 6, 6), b(12, 6, 6);
  for (int f = 0; f < 12; ++f) {
    for (int i = 0; i < 36; ++i) {
      float x = 0.2f + 0.3f * rng.NextFloat();
      a.FrameData(f)[i] = x;
      b.FrameData(f)[i] = 0.25f + 0.5f * x;  // brighter, lower contrast
    }
  }
  DecodeSpec spec{6, 4, 3};
  tensor::Tensor ta = SegmentDecoder::Decode(a, 0, spec);
  tensor::Tensor tb = SegmentDecoder::Decode(b, 0, spec);
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_NEAR(ta[i], tb[i], 5e-2) << "pixel " << i;
  }
}

TEST(DecoderTest, ClampsPastVideoEnd) {
  Video v(10, 4, 4);
  for (int i = 0; i < 16; ++i) v.FrameData(9)[i] = 0.9f;
  DecodeSpec spec{4, 4, 4};
  tensor::Tensor t = SegmentDecoder::Decode(v, 8, spec);  // frames 8,12,16,20
  // Frames past the end clamp to frame 9's content.
  EXPECT_FLOAT_EQ(t[16], t[32]);
  EXPECT_FLOAT_EQ(t[32], t[48]);
}

TEST(DecoderTest, AreaResizeAveragesExactlyForIntegerRatio) {
  Video v(1, 4, 4);
  float* px = v.FrameData(0);
  for (int i = 0; i < 16; ++i) px[i] = static_cast<float>(i) / 16.0f;
  DecodeSpec spec{2, 1, 1};
  tensor::Tensor t = SegmentDecoder::Decode(v, 0, spec);
  // Expected 2x2 block means of the 4x4 source (before standardization).
  float blocks[4] = {(0 + 1 + 4 + 5) / 4.0f / 16.0f,
                     (2 + 3 + 6 + 7) / 4.0f / 16.0f,
                     (8 + 9 + 12 + 13) / 4.0f / 16.0f,
                     (10 + 11 + 14 + 15) / 4.0f / 16.0f};
  // Standardization is affine, so ratios of differences are preserved.
  float r_expected = (blocks[2] - blocks[0]) / (blocks[1] - blocks[0]);
  float r_actual = (t[2] - t[0]) / (t[1] - t[0]);
  EXPECT_NEAR(r_actual, r_expected, 1e-3);
}

TEST(DatasetTest, DeterministicGeneration) {
  auto profile = DatasetProfile::ForFamily(DatasetFamily::kBdd100kLike);
  profile.num_videos = 3;
  profile.frames_per_video = 60;
  auto a = SyntheticDataset::Generate(profile, 77);
  auto b = SyntheticDataset::Generate(profile, 77);
  ASSERT_EQ(a.num_videos(), b.num_videos());
  for (size_t i = 0; i < a.num_videos(); ++i) {
    EXPECT_EQ(a.video(i).labels(), b.video(i).labels());
    EXPECT_EQ(a.video(i).FrameData(0)[0], b.video(i).FrameData(0)[0]);
  }
}

TEST(DatasetTest, SplitsDisjointAndComplete) {
  auto profile = DatasetProfile::ForFamily(DatasetFamily::kBdd100kLike);
  profile.num_videos = 10;
  profile.frames_per_video = 40;
  auto ds = SyntheticDataset::Generate(profile, 5);
  std::vector<int> all;
  for (auto& split : {ds.train_indices(), ds.val_indices(), ds.test_indices()})
    all.insert(all.end(), split.begin(), split.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(all[static_cast<size_t>(i)], i);
}

TEST(DatasetTest, ActionFractionNearTarget) {
  auto profile = DatasetProfile::ForFamily(DatasetFamily::kBdd100kLike);
  profile.num_videos = 16;
  profile.frames_per_video = 400;
  auto ds = SyntheticDataset::Generate(profile, 9);
  auto stats = ds.ComputeStatistics();
  // 7% target (Table 3); generation is stochastic so allow a wide band.
  EXPECT_GT(stats.percent_action_frames, 3.0);
  EXPECT_LT(stats.percent_action_frames, 14.0);
  EXPECT_GE(stats.min_action_length, profile.min_action_length);
  EXPECT_LE(stats.max_action_length, profile.max_action_length);
}

TEST(DatasetTest, MergeClassesRelabels) {
  auto profile = DatasetProfile::ForFamily(DatasetFamily::kBdd100kLike);
  profile.num_videos = 4;
  profile.frames_per_video = 300;
  auto ds = SyntheticDataset::Generate(profile, 11);
  auto merged = ds.MergeClasses(
      {ActionClass::kCrossRight, ActionClass::kCrossLeft},
      ActionClass::kCrossRight);
  for (size_t vi = 0; vi < ds.num_videos(); ++vi) {
    for (int f = 0; f < ds.video(vi).num_frames(); ++f) {
      ActionClass orig = ds.video(vi).Label(f);
      ActionClass now = merged.video(vi).Label(f);
      if (orig == ActionClass::kCrossRight || orig == ActionClass::kCrossLeft) {
        EXPECT_EQ(now, ActionClass::kCrossRight);
      } else {
        EXPECT_EQ(now, ActionClass::kNone);
      }
    }
  }
}

// Table 3 family sweep: every profile generates with its declared classes
// and a plausible action density.
class FamilySweep : public ::testing::TestWithParam<DatasetFamily> {};

TEST_P(FamilySweep, GeneratesPlausibleData) {
  auto profile = DatasetProfile::ForFamily(GetParam());
  profile.num_videos = 4;
  auto ds = SyntheticDataset::Generate(profile, 13);
  auto stats = ds.ComputeStatistics();
  EXPECT_GT(stats.num_instances, 0);
  EXPECT_GT(stats.percent_action_frames, 0.0);
  EXPECT_EQ(stats.num_classes, static_cast<int>(profile.classes.size()));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep,
                         ::testing::Values(DatasetFamily::kBdd100kLike,
                                           DatasetFamily::kThumos14Like,
                                           DatasetFamily::kActivityNetLike,
                                           DatasetFamily::kCityscapesLike,
                                           DatasetFamily::kKittiLike));

// ---------------------------------------------------------------------------
// Live-stream growth

DatasetProfile SmallStreamProfile() {
  auto profile = DatasetProfile::ForFamily(DatasetFamily::kBdd100kLike);
  profile.num_videos = 6;
  profile.frames_per_video = 80;
  profile.native_resolution = 16;
  return profile;
}

bool SamePixels(const Video& a, const Video& b) {
  if (a.num_frames() != b.num_frames() || a.height() != b.height() ||
      a.width() != b.width()) {
    return false;
  }
  for (int f = 0; f < a.num_frames(); ++f) {
    const float* pa = a.FrameData(f);
    const float* pb = b.FrameData(f);
    for (int i = 0; i < a.height() * a.width(); ++i) {
      if (pa[i] != pb[i]) return false;
    }
  }
  return a.labels() == b.labels();
}

TEST(VideoTest, AppendExtendsFramesAndLabels) {
  Video v(4, 3, 3);
  v.SetLabel(1, ActionClass::kCrossRight);
  Video tail(2, 3, 3);
  tail.SetLabel(0, ActionClass::kLeftTurn);
  tail.FrameData(1)[5] = 0.75f;
  v.Append(tail);
  ASSERT_EQ(v.num_frames(), 6);
  EXPECT_EQ(v.Label(1), ActionClass::kCrossRight);
  EXPECT_EQ(v.Label(4), ActionClass::kLeftTurn);
  EXPECT_EQ(v.FrameData(5)[5], 0.75f);
}

TEST(VideoTest, SliceCopiesSubRange) {
  Video v(5, 2, 2);
  for (int f = 0; f < 5; ++f) v.FrameData(f)[0] = static_cast<float>(f);
  v.SetLabel(3, ActionClass::kPoleVault);
  Video s = v.Slice(2, 2);
  ASSERT_EQ(s.num_frames(), 2);
  EXPECT_EQ(s.FrameData(0)[0], 2.0f);
  EXPECT_EQ(s.FrameData(1)[0], 3.0f);
  EXPECT_EQ(s.Label(1), ActionClass::kPoleVault);
}

TEST(StreamGrowthTest, GrowToIsPrefixStable) {
  auto ds = SyntheticDataset::Generate(SmallStreamProfile(), 21);
  const SyntheticDataset before = ds;
  ASSERT_TRUE(ds.GrowTo(200, 1).ok());
  // Every pre-existing frame is byte-identical; only test videos grew.
  for (size_t i = 0; i < ds.num_videos(); ++i) {
    const Video& now = ds.video(i);
    const Video& was = before.video(i);
    EXPECT_TRUE(SamePixels(was, now.Slice(0, was.num_frames())))
        << "video " << i;
  }
  for (int idx : ds.test_indices()) {
    EXPECT_EQ(ds.video(static_cast<size_t>(idx)).num_frames(), 200);
  }
  for (int idx : ds.train_indices()) {
    EXPECT_EQ(ds.video(static_cast<size_t>(idx)).num_frames(), 80);
  }
  EXPECT_EQ(ds.stream_length(), 200);
  EXPECT_EQ(ds.frame_epoch(), 1u);
}

TEST(StreamGrowthTest, BatchingDoesNotChangeBytes) {
  // The core stream invariant: growing 0 -> 150 in one shot, in uneven
  // dribbles, or on a separate copy (a repaired replica) converges to
  // byte-identical videos.
  auto profile = SmallStreamProfile();
  auto ds = SyntheticDataset::Generate(profile, 33);
  SyntheticDataset one_shot = ds;    // copies preserve ids + stream state
  SyntheticDataset dribble = ds;
  ASSERT_TRUE(one_shot.GrowTo(230, 5).ok());
  for (long target : {83, 90, 144, 145, 208, 230}) {
    ASSERT_TRUE(dribble.GrowTo(target, 1).ok());
  }
  for (size_t i = 0; i < ds.num_videos(); ++i) {
    EXPECT_TRUE(SamePixels(one_shot.video(i), dribble.video(i)))
        << "video " << i;
  }
}

TEST(StreamGrowthTest, GrowToIsIdempotentAndEpochMonotone) {
  auto ds = SyntheticDataset::Generate(SmallStreamProfile(), 9);
  ASSERT_TRUE(ds.GrowTo(160, 3).ok());
  const SyntheticDataset snapshot = ds;
  // Re-applying a smaller target is a pure epoch no-op (epochs are max'd).
  ASSERT_TRUE(ds.GrowTo(100, 2).ok());
  EXPECT_EQ(ds.frame_epoch(), 3u);
  EXPECT_EQ(ds.stream_length(), 160);
  for (size_t i = 0; i < ds.num_videos(); ++i) {
    EXPECT_TRUE(SamePixels(snapshot.video(i), ds.video(i)));
  }
}

TEST(StreamGrowthTest, GrownTailHasActionContent) {
  // Appended blocks keep the family's event statistics: a long enough
  // tail contains labeled action frames, not dead air.
  auto ds = SyntheticDataset::Generate(SmallStreamProfile(), 17);
  ASSERT_TRUE(ds.GrowTo(80 + 10 * SyntheticDataset::kStreamBlockFrames, 1).ok());
  long action_frames = 0;
  for (int idx : ds.test_indices()) {
    const Video& v = ds.video(static_cast<size_t>(idx));
    for (int f = 80; f < v.num_frames(); ++f) {
      if (v.Label(f) != ActionClass::kNone) ++action_frames;
    }
  }
  EXPECT_GT(action_frames, 0);
}

TEST(StreamGrowthTest, FromPartsIsNotStreamableUntilRestored) {
  auto ds = SyntheticDataset::Generate(SmallStreamProfile(), 4);
  std::vector<Video> videos(ds.videos().begin(), ds.videos().end());
  auto parts = SyntheticDataset::FromParts(
      ds.profile(), std::move(videos), ds.train_indices(), ds.val_indices(),
      ds.test_indices());
  EXPECT_FALSE(parts.streamable());
  EXPECT_FALSE(parts.GrowTo(100, 1).ok());
  parts.RestoreStreamState(4, 80, 0);
  ASSERT_TRUE(parts.streamable());
  ASSERT_TRUE(parts.GrowTo(100, 1).ok());
  // Restored growth matches growth on the original object.
  ASSERT_TRUE(ds.GrowTo(100, 1).ok());
  for (size_t i = 0; i < ds.num_videos(); ++i) {
    EXPECT_TRUE(SamePixels(ds.video(i), parts.video(i)));
  }
}

}  // namespace
}  // namespace zeus::video
