// Tests for the inter-video batched executor (§6.4 extension): semantics
// must be identical to the sequential executor; only the cost accounting
// changes, and it must change in the right direction.

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/batched_executor.h"
#include "core/executor.h"
#include "core/query_planner.h"
#include "video/dataset.h"

namespace zeus {
namespace {

class BatchedExecutorTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto profile =
        video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
    profile.num_videos = 12;
    profile.frames_per_video = 200;
    dataset_ = new video::SyntheticDataset(
        video::SyntheticDataset::Generate(profile, 73));

    core::QueryPlanner::Options opts;
    opts.apfg.epochs = 4;
    opts.profile.max_windows_per_config = 60;
    opts.trainer.episodes = 3;
    opts.trainer.min_buffer = 32;
    opts.trainer.agent.batch_size = 32;
    core::QueryPlanner planner(dataset_, opts);
    auto plan = planner.PlanForClasses({video::ActionClass::kCrossRight}, 0.8);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = new core::QueryPlan(std::move(plan).value());
    for (int i : dataset_->test_indices()) {
      test_.push_back(&dataset_->video(static_cast<size_t>(i)));
    }
  }

  static void TearDownTestSuite() {
    delete plan_;
    delete dataset_;
    plan_ = nullptr;
    dataset_ = nullptr;
  }

  static video::SyntheticDataset* dataset_;
  static core::QueryPlan* plan_;
  static std::vector<const video::Video*> test_;
};

video::SyntheticDataset* BatchedExecutorTest::dataset_ = nullptr;
core::QueryPlan* BatchedExecutorTest::plan_ = nullptr;
std::vector<const video::Video*> BatchedExecutorTest::test_;

TEST_F(BatchedExecutorTest, MasksIdenticalToSequentialExecutor) {
  core::QueryExecutor sequential(plan_);
  auto base = sequential.Localize(test_);
  core::BatchedExecutor::Options opts;
  opts.max_batch = 8;
  core::BatchedExecutor batched(plan_, opts);
  auto run = batched.Localize(test_);
  ASSERT_EQ(run.masks.size(), base.masks.size());
  for (size_t i = 0; i < run.masks.size(); ++i) {
    EXPECT_EQ(run.masks[i], base.masks[i]) << "video " << i;
  }
  EXPECT_EQ(run.total_frames, base.total_frames);
  EXPECT_EQ(run.invocations, base.invocations);
  EXPECT_EQ(run.frames_per_config, base.frames_per_config);
}

// Stepping a round's same-configuration group over a thread pool must not
// change anything observable: the environments are independent, the feature
// cache is thread-safe, and APFG inference is deterministic (bit-identical
// across thread counts), so every mask, count and cost matches byte for
// byte.
TEST_F(BatchedExecutorTest, ParallelSteppingByteIdenticalToSequential) {
  core::BatchedExecutor sequential(plan_);
  auto base = sequential.Localize(test_);
  common::ThreadPool pool(4);
  core::BatchedExecutor::Options opts;
  opts.step_pool = &pool;
  core::BatchedExecutor parallel(plan_, opts);
  auto run = parallel.Localize(test_);
  ASSERT_EQ(run.masks.size(), base.masks.size());
  for (size_t i = 0; i < run.masks.size(); ++i) {
    EXPECT_EQ(run.masks[i], base.masks[i]) << "video " << i;
  }
  EXPECT_EQ(run.total_frames, base.total_frames);
  EXPECT_EQ(run.invocations, base.invocations);
  EXPECT_EQ(run.frames_per_config, base.frames_per_config);
  EXPECT_EQ(run.gpu_seconds, base.gpu_seconds);
}

TEST_F(BatchedExecutorTest, WidthOneMatchesSequentialCost) {
  core::QueryExecutor sequential(plan_);
  auto base = sequential.Localize(test_);
  core::BatchedExecutor::Options opts;
  opts.max_batch = 1;
  core::BatchedExecutor batched(plan_, opts);
  auto run = batched.Localize(test_);
  EXPECT_NEAR(run.gpu_seconds, base.gpu_seconds, 1e-9);
}

TEST_F(BatchedExecutorTest, CostDecreasesMonotonicallyWithWidth) {
  double prev = 1e18;
  for (int width : {1, 2, 4, 8, 16}) {
    core::BatchedExecutor::Options opts;
    opts.max_batch = width;
    core::BatchedExecutor batched(plan_, opts);
    auto run = batched.Localize(test_);
    EXPECT_LE(run.gpu_seconds, prev + 1e-12) << "width " << width;
    prev = run.gpu_seconds;
  }
}

TEST_F(BatchedExecutorTest, SingleVideoStillWorks) {
  core::BatchedExecutor batched(plan_);
  auto run = batched.Localize({test_[0]});
  ASSERT_EQ(run.masks.size(), 1u);
  EXPECT_EQ(static_cast<int>(run.masks[0].size()), test_[0]->num_frames());
  EXPECT_GT(run.gpu_seconds, 0.0);
}

}  // namespace
}  // namespace zeus
