// Unit tests for the four baselines — interface contracts, cost accounting,
// config selection rules, heuristic state machine.

#include <gtest/gtest.h>

#include "apfg/feature_cache.h"
#include "baselines/frame_pp.h"
#include "baselines/heuristic.h"
#include "baselines/segment_pp.h"
#include "baselines/sliding.h"
#include "common/rng.h"
#include "video/dataset.h"

namespace zeus::baselines {
namespace {

struct BaselineFixture : public ::testing::Test {
  void SetUp() override {
    auto profile =
        video::DatasetProfile::ForFamily(video::DatasetFamily::kBdd100kLike);
    profile.num_videos = 3;
    profile.frames_per_video = 120;
    dataset = std::make_unique<video::SyntheticDataset>(
        video::SyntheticDataset::Generate(profile, 33));
    for (size_t i = 0; i < dataset->num_videos(); ++i) {
      videos.push_back(&dataset->video(i));
    }
    space = core::ConfigurationSpace::ForFamily(profile.family);
    space.AttachCosts(cost_model);
    rng = std::make_unique<common::Rng>(44);
    apfg = std::make_unique<apfg::Apfg>(apfg::ApfgTrainOptions{}, true,
                                        rng.get());
    cache = std::make_unique<apfg::FeatureCache>(apfg.get());
    targets = {video::ActionClass::kCrossRight};
  }

  std::unique_ptr<video::SyntheticDataset> dataset;
  std::vector<const video::Video*> videos;
  core::ConfigurationSpace space;
  core::CostModel cost_model;
  std::unique_ptr<common::Rng> rng;
  std::unique_ptr<apfg::Apfg> apfg;
  std::unique_ptr<apfg::FeatureCache> cache;
  std::vector<video::ActionClass> targets;
};

TEST_F(BaselineFixture, SlidingProducesMaskPerVideoAndCharges) {
  ZeusSliding sliding(space.config(space.FastestId()), apfg.get(), cost_model);
  auto run = sliding.Localize(videos);
  ASSERT_EQ(run.masks.size(), videos.size());
  for (size_t i = 0; i < videos.size(); ++i) {
    EXPECT_EQ(static_cast<int>(run.masks[i].size()),
              videos[i]->num_frames());
  }
  EXPECT_GT(run.invocations, 0);
  EXPECT_GT(run.gpu_seconds, 0.0);
  EXPECT_EQ(run.total_frames, 3 * 120);
  // Non-overlapping coverage: invocations * covered >= total frames.
  int covered = space.config(space.FastestId()).CoveredFrames();
  EXPECT_GE(run.invocations * covered, run.total_frames);
}

TEST_F(BaselineFixture, SlidingCostMatchesInvocations) {
  const auto& config = space.config(space.SlowestId());
  ZeusSliding sliding(config, apfg.get(), cost_model);
  auto run = sliding.Localize(videos);
  EXPECT_NEAR(run.gpu_seconds,
              run.invocations * config.gpu_seconds_per_invocation, 1e-9);
}

TEST_F(BaselineFixture, PickSlidingConfigPrefersFastestMeetingTarget) {
  auto* configs = space.mutable_configs();
  for (auto& c : *configs) c.validation_f1 = 0.5;
  (*configs)[3].validation_f1 = 0.9;
  (*configs)[10].validation_f1 = 0.92;
  int picked = PickSlidingConfig(space, 0.85);
  // Both 3 and 10 qualify; the faster one wins.
  int expected = space.config(3).throughput_fps > space.config(10).throughput_fps
                     ? 3
                     : 10;
  EXPECT_EQ(picked, expected);
}

TEST_F(BaselineFixture, PickSlidingConfigFallsBackToMostAccurate) {
  auto* configs = space.mutable_configs();
  for (auto& c : *configs) c.validation_f1 = 0.4;
  (*configs)[7].validation_f1 = 0.6;
  EXPECT_EQ(PickSlidingConfig(space, 0.9), 7);
}

TEST_F(BaselineFixture, HeuristicUsesThreeLevels) {
  ZeusHeuristic heuristic({}, &space, cache.get());
  EXPECT_NE(heuristic.fast_id(), heuristic.slow_id());
  EXPECT_EQ(heuristic.fast_id(), space.FastestId());
  EXPECT_EQ(heuristic.slow_id(), space.SlowestId());
  auto run = heuristic.Localize(videos);
  EXPECT_EQ(run.masks.size(), videos.size());
  // Only the three levels appear in the usage histogram.
  for (const auto& [id, frames] : run.frames_per_config) {
    (void)frames;
    EXPECT_TRUE(id == heuristic.fast_id() || id == heuristic.mid_id() ||
                id == heuristic.slow_id());
  }
}

TEST_F(BaselineFixture, FramePpChargesPerFrame) {
  FramePp::Options opts;
  opts.resolution_px = 30;
  opts.train_epochs = 1;
  FramePp frame_pp(opts, cost_model, targets, rng.get());
  ASSERT_TRUE(frame_pp.Train(videos).ok());
  auto run = frame_pp.Localize(videos);
  EXPECT_EQ(run.invocations, run.total_frames);  // one invocation per frame
  EXPECT_EQ(run.masks.size(), videos.size());
}

TEST_F(BaselineFixture, SegmentPpFiltersBeforeVerifying) {
  SegmentPp::Options opts;
  opts.train_epochs = 1;
  const auto& config = space.config(space.SlowestId());
  SegmentPp segment_pp(opts, cost_model, config, apfg.get(), targets,
                       rng.get());
  ASSERT_TRUE(segment_pp.Train(videos).ok());
  auto run = segment_pp.Localize(videos);
  // Filter runs on every non-overlapping window; verification only on
  // survivors, so invocations <= 2x windows.
  long windows = 0;
  int covered = config.CoveredFrames();
  for (auto* v : videos) windows += (v->num_frames() + covered - 1) / covered;
  EXPECT_GE(run.invocations, windows);
  EXPECT_LE(run.invocations, 2 * windows);
}

TEST_F(BaselineFixture, LocalizerNamesAreStable) {
  ZeusSliding sliding(space.config(0), apfg.get(), cost_model);
  ZeusHeuristic heuristic({}, &space, cache.get());
  EXPECT_EQ(sliding.name(), "Zeus-Sliding");
  EXPECT_EQ(heuristic.name(), "Zeus-Heuristic");
}

}  // namespace
}  // namespace zeus::baselines
